(* rx — command-line shell over a persistent System R/X database directory.

     rx init            --db DIR [--archive]
     rx create-table    --db DIR --table T --columns "sku:varchar,doc:xml"
     rx index build     --db DIR --table T --column C --name I --path P --type double
     rx index status    --db DIR --table T --column C --name I
     rx index rollback  --db DIR --table T --column C --name I
     rx index drop      --db DIR --table T --column C --name I
     rx index list      --db DIR --table T --column C
     rx create-index / rx drop-index      (deprecated aliases)
     rx create-text-index --db DIR --table T --column C --name I
     rx insert          --db DIR --table T --xml "doc=<a>...</a>" [--xml-file doc=path]
     rx load            --db DIR --table T --column C PATH   (bulk ingest)
     rx get             --db DIR --table T --column C --docid N
     rx query           --db DIR --table T --column C --xpath Q [--explain] [--profile]
     rx search          --db DIR --table T --column C --terms "native xml"
     rx exec            --db DIR [--file SCRIPT]   (BEGIN/COMMIT/ROLLBACK batches)
     rx checkpoint      --db DIR
     rx verify          --db DIR
     rx restore         --db SRC --target DST [--to-lsn L]
     rx stats           --db DIR [--json]
*)

open Cmdliner
open Systemrx
open Rx_relational

let with_db ?parallelism dir f =
  let config =
    match parallelism with
    | None -> Database.default_config
    | Some p -> { Database.default_config with parallelism = p }
  in
  let db = Database.open_dir ~config dir in
  Fun.protect ~finally:(fun () -> Database.close db) (fun () -> f db)

let parallelism_arg =
  let doc =
    "Worker domains for parallel scans and bulk loads: 0 picks one per \
     core, 1 forces sequential execution. Defaults to the RX_PARALLELISM \
     environment variable, or 0."
  in
  Arg.(value & opt (some int) None & info [ "parallelism" ] ~docv:"N" ~doc)

let db_arg =
  let doc = "Database directory (created if absent)." in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

let table_arg =
  Arg.(required & opt (some string) None & info [ "table" ] ~docv:"TABLE" ~doc:"Table name.")

let column_arg =
  Arg.(required & opt (some string) None & info [ "column" ] ~docv:"COL" ~doc:"XML column name.")

(* Stable exit codes (documented in README and DESIGN.md), shared with the
   rxd wire-protocol status codes via Database.error_code:
     0  success
     1  usage or application error (bad arguments, parse/validation failure)
     2  unexpected internal error
     3  Busy        — lock wait timed out
     4  Deadlock    — transaction chosen as deadlock victim, rolled back
     5  Read_only   — database is degraded, writes refused
     6  corruption  — page checksum or WAL record CRC mismatch *)
let handle_errors f =
  try
    f ();
    0
  with e ->
    Printf.eprintf "error: %s\n" (Database.error_message e);
    Database.error_code e

(* --- init --- *)

let init_cmd =
  let archive_arg =
    Arg.(
      value & flag
      & info [ "archive" ]
          ~doc:
            "Enable WAL archiving: each checkpoint captures the log span it \
             truncates into $(i,DIR)/archive, preserving the full history \
             from LSN 0 for replication catch-up and $(b,rx restore). \
             Enable it before the first checkpoint or the early history is \
             lost.")
  in
  let run dir archive =
    handle_errors (fun () ->
        (* the archive directory must exist before the engine's first
           checkpoint (the close below), or the bootstrap span is lost *)
        if archive then begin
          if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
          let adir = Database.archive_path dir in
          if not (Sys.file_exists adir) then Unix.mkdir adir 0o755
        end;
        with_db dir (fun _db -> Printf.printf "initialized database in %s\n" dir);
        if archive then
          Printf.printf "WAL archiving enabled (%s)\n" (Database.archive_path dir))
  in
  Cmd.v (Cmd.info "init" ~doc:"Create (or open) a database directory.")
    Term.(const run $ db_arg $ archive_arg)

(* --- create-table --- *)

let parse_columns spec =
  String.split_on_char ',' spec
  |> List.map (fun part ->
         match String.split_on_char ':' (String.trim part) with
         | [ name; ty ] -> (
             match Value.col_type_of_string (String.trim ty) with
             | Some ty -> (String.trim name, ty)
             | None -> invalid_arg (Printf.sprintf "unknown column type %S" ty))
         | _ -> invalid_arg (Printf.sprintf "bad column spec %S (want name:type)" part))

let create_table_cmd =
  let columns_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "columns" ] ~docv:"SPEC" ~doc:"Comma-separated name:type list, e.g. \"sku:varchar,doc:xml\".")
  in
  let run dir table columns =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let cols = parse_columns columns in
            ignore (Database.create_table db ~name:table ~columns:cols);
            Printf.printf "created table %s (%d columns)\n" table (List.length cols)))
  in
  Cmd.v (Cmd.info "create-table" ~doc:"Create a base table (use type xml for XML columns).")
    Term.(const run $ db_arg $ table_arg $ columns_arg)

(* --- create-index --- *)

let create_index_cmd =
  let name_arg =
    Arg.(required & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc:"Index name.")
  in
  let path_arg =
    Arg.(
      required & opt (some string) None
      & info [ "path" ] ~docv:"XPATH" ~doc:"Simple XPath expression without predicates.")
  in
  let type_arg =
    Arg.(
      value & opt string "string"
      & info [ "type" ] ~docv:"TYPE" ~doc:"Key type: string|double|decimal|integer|date.")
  in
  let run dir table column name path ty =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let key_type =
              match Rx_xindex.Index_def.key_type_of_string ty with
              | Some kt -> kt
              | None -> invalid_arg (Printf.sprintf "unknown key type %S" ty)
            in
            Database.create_xml_index db ~table ~column ~name ~path ~key_type;
            Printf.printf "created XPath value index %s ON %s AS %s\n" name path ty))
  in
  Cmd.v
    (Cmd.info "create-index"
       ~doc:
         "Create an XPath value index on an XML column (deprecated alias of \
          $(b,rx index build); unlike it, refuses an existing name).")
    Term.(const run $ db_arg $ table_arg $ column_arg $ name_arg $ path_arg $ type_arg)

let drop_index_cmd =
  let name_arg =
    Arg.(required & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc:"Index name.")
  in
  let run dir table column name =
    handle_errors (fun () ->
        with_db dir (fun db ->
            Database.drop_xml_index db ~table ~column ~name;
            Printf.printf "dropped XPath value index %s\n" name))
  in
  Cmd.v
    (Cmd.info "drop-index"
       ~doc:
         "Drop an XPath value index from an XML column (deprecated alias of \
          $(b,rx index drop)).")
    Term.(const run $ db_arg $ table_arg $ column_arg $ name_arg)

(* --- index lifecycle: rx index build/status/rollback/drop/list --- *)

let index_name_arg =
  Arg.(required & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc:"Index name.")

let print_index_info (i : Database.Index.info) =
  let state =
    match i.Database.Index.ix_state with
    | Database.Index.Live -> "live"
    | Database.Index.Building { scanned; total; side_log } ->
        Printf.sprintf "building %d/%d docs (side log %d)" scanned total side_log
    | Database.Index.Failed msg -> "failed: " ^ msg
  in
  Printf.printf "%s ON %s AS %s  gen %d  %s  entries %d  build %d ms%s\n"
    i.ix_name i.ix_path
    (Rx_xindex.Index_def.key_type_to_string i.ix_key_type)
    i.ix_generation state i.ix_entries i.ix_build_ms
    (match i.ix_prior_generation with
    | Some g -> Printf.sprintf "  (prior gen %d retained)" g
    | None -> "")

let index_build_cmd =
  let path_arg =
    Arg.(
      required & opt (some string) None
      & info [ "path" ] ~docv:"XPATH" ~doc:"Simple XPath expression without predicates.")
  in
  let type_arg =
    Arg.(
      value & opt string "string"
      & info [ "type" ] ~docv:"TYPE" ~doc:"Key type: string|double|decimal|integer|date.")
  in
  let run dir parallelism table column name path ty =
    handle_errors (fun () ->
        with_db ?parallelism dir (fun db ->
            let key_type =
              match Rx_xindex.Index_def.key_type_of_string ty with
              | Some kt -> kt
              | None -> invalid_arg (Printf.sprintf "unknown key type %S" ty)
            in
            let h = Database.Index.build db ~table ~column ~name ~path ~key_type in
            print_index_info (Database.Index.await h)))
  in
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Build an XPath value index online — or, when the name is already \
          live, rebuild it as a new generation (the old one is retained for \
          $(b,rx index rollback)). Against a running server the build keeps \
          serving queries and DML from the previous generation.")
    Term.(
      const run $ db_arg $ parallelism_arg $ table_arg $ column_arg
      $ index_name_arg $ path_arg $ type_arg)

let index_status_cmd =
  let run dir table column name =
    handle_errors (fun () ->
        with_db dir (fun db ->
            print_index_info (Database.Index.status db ~table ~column ~name)))
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Show one index's state: generation, entry count, build progress.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ index_name_arg)

let index_rollback_cmd =
  let run dir table column name =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let i = Database.Index.rollback db ~table ~column ~name in
            Printf.printf "rolled back to generation %d\n"
              i.Database.Index.ix_generation;
            print_index_info i))
  in
  Cmd.v
    (Cmd.info "rollback"
       ~doc:
         "Swap the retained prior generation back live, without downtime. A \
          rollback retains the displaced generation in turn, so it can be \
          undone by another rollback.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ index_name_arg)

let index_drop_cmd =
  let run dir table column name =
    handle_errors (fun () ->
        with_db dir (fun db ->
            Database.Index.drop db ~table ~column ~name;
            Printf.printf "dropped XPath value index %s\n" name))
  in
  Cmd.v
    (Cmd.info "drop"
       ~doc:"Drop an XPath value index and any retained prior generation.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ index_name_arg)

let index_list_cmd =
  let run dir table column =
    handle_errors (fun () ->
        with_db dir (fun db ->
            match Database.Index.list db ~table ~column with
            | [] -> print_endline "no indexes"
            | infos -> List.iter print_index_info infos))
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every XPath value index on an XML column.")
    Term.(const run $ db_arg $ table_arg $ column_arg)

let index_cmd =
  Cmd.group
    (Cmd.info "index"
       ~doc:
         "Online index lifecycle: build (generationally), inspect, roll back, \
          drop.")
    [
      index_build_cmd; index_status_cmd; index_rollback_cmd; index_drop_cmd;
      index_list_cmd;
    ]

let create_text_index_cmd =
  let name_arg =
    Arg.(required & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc:"Index name.")
  in
  let run dir table column name =
    handle_errors (fun () ->
        with_db dir (fun db ->
            Database.create_text_index db ~table ~column ~name;
            Printf.printf "created full-text index %s\n" name))
  in
  Cmd.v (Cmd.info "create-text-index" ~doc:"Create a full-text index on an XML column.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ name_arg)

(* --- register/bind schema --- *)

let register_schema_cmd =
  let name_arg =
    Arg.(required & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc:"Schema name.")
  in
  let file_arg =
    Arg.(required & opt (some string) None & info [ "xsd" ] ~docv:"FILE" ~doc:"XSD file.")
  in
  let run dir name file =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let ic = open_in_bin file in
            let xsd = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Database.register_schema db ~name ~xsd;
            Printf.printf "registered schema %s\n" name))
  in
  Cmd.v (Cmd.info "register-schema" ~doc:"Compile and register an XML schema (Figure 4).")
    Term.(const run $ db_arg $ name_arg $ file_arg)

let bind_schema_cmd =
  let schema_arg =
    Arg.(required & opt (some string) None & info [ "schema" ] ~docv:"NAME" ~doc:"Registered schema.")
  in
  let run dir table column schema =
    handle_errors (fun () ->
        with_db dir (fun db ->
            Database.bind_schema db ~table ~column ~schema;
            Printf.printf "bound schema %s to %s.%s\n" schema table column))
  in
  Cmd.v (Cmd.info "bind-schema" ~doc:"Validate a column's documents against a schema.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ schema_arg)

(* --- insert --- *)

let split_kv what s =
  match String.index_opt s '=' with
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> invalid_arg (Printf.sprintf "bad %s %S (want name=value)" what s)

let insert_cmd =
  let value_args =
    Arg.(value & opt_all string [] & info [ "value" ] ~docv:"COL=V" ~doc:"Relational column value (varchar).")
  in
  let xml_args =
    Arg.(value & opt_all string [] & info [ "xml" ] ~docv:"COL=DOC" ~doc:"Inline XML document.")
  in
  let xml_file_args =
    Arg.(value & opt_all string [] & info [ "xml-file" ] ~docv:"COL=FILE" ~doc:"XML document from a file.")
  in
  let run dir table values xmls xml_files =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let values =
              List.map
                (fun s ->
                  let k, v = split_kv "--value" s in
                  (k, Value.Varchar v))
                values
            in
            let xml_inline = List.map (split_kv "--xml") xmls in
            let xml_from_files =
              List.map
                (fun s ->
                  let k, path = split_kv "--xml-file" s in
                  let ic = open_in_bin path in
                  let doc = really_input_string ic (in_channel_length ic) in
                  close_in ic;
                  (k, doc))
                xml_files
            in
            let docid =
              Database.insert db ~table ~values ~xml:(xml_inline @ xml_from_files) ()
            in
            Printf.printf "inserted row with DocID %d\n" docid))
  in
  Cmd.v (Cmd.info "insert" ~doc:"Insert a row with XML column documents.")
    Term.(const run $ db_arg $ table_arg $ value_args $ xml_args $ xml_file_args)

(* --- get / query / search / stats --- *)

let docid_arg =
  Arg.(required & opt (some int) None & info [ "docid" ] ~docv:"N" ~doc:"Row DocID.")

let get_cmd =
  let run dir table column docid =
    handle_errors (fun () ->
        with_db dir (fun db ->
            print_endline (Database.document db ~table ~column ~docid)))
  in
  Cmd.v (Cmd.info "get" ~doc:"Print an XML column value.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ docid_arg)

let query_cmd =
  let xpath_arg =
    Arg.(required & opt (some string) None & info [ "xpath" ] ~docv:"XPATH" ~doc:"Query.")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ] ~doc:"Show the access plan too.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Report the runtime counters the query moved (buffer pool, B+tree, indexes, scan engine).")
  in
  let run dir table column xpath explain profile parallelism =
    handle_errors (fun () ->
        with_db ?parallelism dir (fun db ->
            let r = Database.run db ~table ~column ~xpath in
            if explain then Printf.printf "plan: %s\n" r.Database.plan.Database.description;
            List.iter (fun m -> print_endline (r.Database.serialize m)) r.Database.matches;
            Printf.eprintf "%d match(es)\n" (List.length r.Database.matches);
            if profile then
              List.iter
                (fun (name, delta) -> Printf.eprintf "profile %s %d\n" name delta)
                r.Database.profile))
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate an XPath query over an XML column.")
    Term.(
      const run $ db_arg $ table_arg $ column_arg $ xpath_arg $ explain_arg
      $ profile_arg $ parallelism_arg)

let search_cmd =
  let terms_arg =
    Arg.(required & opt (some string) None & info [ "terms" ] ~docv:"WORDS" ~doc:"Search terms.")
  in
  let any_arg = Arg.(value & flag & info [ "any" ] ~doc:"Match any term instead of all.") in
  let run dir table column terms any =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let mode = if any then `Any else `All in
            let docids = Database.text_search db ~table ~column ~mode terms in
            List.iter (fun d -> Printf.printf "DocID %d\n" d) docids;
            Printf.eprintf "%d document(s)\n" (List.length docids)))
  in
  Cmd.v (Cmd.info "search" ~doc:"Full-text search over an XML column.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ terms_arg $ any_arg)

let xquery_cmd =
  let query_arg =
    Arg.(
      required & opt (some string) None
      & info [ "query" ] ~docv:"FLWOR"
          ~doc:"FLWOR query, e.g. 'for \\$p in collection(\"t.c\") /a/b where \\$p/x > 1 return <r>{\\$p/x}</r>'.")
  in
  let explain_arg =
    Arg.(value & flag & info [ "explain" ] ~doc:"Show the access plan too.")
  in
  let run dir query explain parallelism =
    handle_errors (fun () ->
        with_db ?parallelism dir (fun db ->
            let compiled =
              try Xquery_lite.compile db query
              with Xquery_lite.Error msg -> invalid_arg msg
            in
            if explain then Printf.printf "plan: %s\n" (Xquery_lite.explain compiled);
            let results = Xquery_lite.run_compiled db compiled in
            List.iter print_endline results;
            Printf.eprintf "%d item(s)\n" (List.length results)))
  in
  Cmd.v (Cmd.info "xquery" ~doc:"Evaluate a FLWOR query over a collection.")
    Term.(const run $ db_arg $ query_arg $ explain_arg $ parallelism_arg)

(* --- exec: transactional batch scripts --- *)

(* One statement per line; '#' starts a comment. Keywords are
   case-insensitive:

     BEGIN
     COMMIT
     ROLLBACK
     INSERT <table> <column>=<xml document>     (rest of line is the document)
     DELETE <table> <docid>
     UPDATE-TEXT <table> <column> <docid> <xpath> <new text>
     QUERY <table> <column> <xpath>
     GET <table> <column> <docid>

   Statements between BEGIN and COMMIT run in one transaction: queries see
   the BEGIN-time snapshot plus the script's own writes, and ROLLBACK (or
   end-of-script, or a failing statement) undoes everything staged. *)
let exec_script db ic =
  let txn = ref None in
  let lineno = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "line %d: %s" !lineno msg) in
  let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "") in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then begin
         let keyword, rest =
           match String.index_opt line ' ' with
           | Some i ->
               ( String.lowercase_ascii (String.sub line 0 i),
                 String.trim (String.sub line i (String.length line - i)) )
           | None -> (String.lowercase_ascii line, "")
         in
         match keyword with
         | "begin" ->
             if !txn <> None then fail "transaction already open";
             let tx = Database.begin_txn db in
             txn := Some tx;
             Printf.printf "BEGIN txn %d\n" (Database.txn_id tx)
         | "commit" -> (
             match !txn with
             | None -> fail "no open transaction"
             | Some tx ->
                 Database.commit db tx;
                 txn := None;
                 Printf.printf "COMMIT txn %d\n" (Database.txn_id tx))
         | "rollback" -> (
             match !txn with
             | None -> fail "no open transaction"
             | Some tx ->
                 Database.rollback db tx;
                 txn := None;
                 Printf.printf "ROLLBACK txn %d\n" (Database.txn_id tx))
         | "insert" -> (
             match String.index_opt rest ' ' with
             | None -> fail "usage: INSERT <table> <column>=<xml>"
             | Some i ->
                 let table = String.sub rest 0 i in
                 let kv = String.trim (String.sub rest i (String.length rest - i)) in
                 let column, doc =
                   match String.index_opt kv '=' with
                   | Some j ->
                       ( String.sub kv 0 j,
                         String.sub kv (j + 1) (String.length kv - j - 1) )
                   | None -> fail "usage: INSERT <table> <column>=<xml>"
                 in
                 let docid =
                   Database.insert ?txn:!txn db ~table ~xml:[ (column, doc) ] ()
                 in
                 Printf.printf "inserted DocID %d\n" docid)
         | "delete" -> (
             match words rest with
             | [ table; docid ] ->
                 Database.delete ?txn:!txn db ~table ~docid:(int_of_string docid);
                 Printf.printf "deleted DocID %s\n" docid
             | _ -> fail "usage: DELETE <table> <docid>")
         | "update-text" -> (
             match words rest with
             | table :: column :: docid :: xpath :: (_ :: _ as content) ->
                 let docid = int_of_string docid in
                 let content = String.concat " " content in
                 let r = Database.run ?txn:!txn db ~table ~column ~xpath in
                 let node =
                   match
                     List.filter (fun m -> m.Database.docid = docid) r.Database.matches
                   with
                   | m :: _ -> m.Database.node
                   | [] -> fail (Printf.sprintf "no match for %s in DocID %d" xpath docid)
                 in
                 Database.update_xml_text ?txn:!txn db ~table ~column ~docid node content;
                 Printf.printf "updated DocID %d\n" docid
             | _ -> fail "usage: UPDATE-TEXT <table> <column> <docid> <xpath> <text>")
         | "query" -> (
             match words rest with
             | table :: column :: (_ :: _ as xpath) ->
                 let xpath = String.concat " " xpath in
                 let r = Database.run ?txn:!txn db ~table ~column ~xpath in
                 List.iter
                   (fun m -> print_endline (r.Database.serialize m))
                   r.Database.matches;
                 Printf.printf "%d match(es)\n" (List.length r.Database.matches)
             | _ -> fail "usage: QUERY <table> <column> <xpath>")
         | "get" -> (
             match words rest with
             | [ table; column; docid ] ->
                 print_endline
                   (Database.document ?txn:!txn db ~table ~column
                      ~docid:(int_of_string docid))
             | _ -> fail "usage: GET <table> <column> <docid>")
         | kw -> fail (Printf.sprintf "unknown statement %S" kw)
       end
     done
   with End_of_file -> ());
  match !txn with
  | Some tx ->
      Database.rollback db tx;
      Printf.eprintf "warning: transaction %d open at end of script, rolled back\n"
        (Database.txn_id tx)
  | None -> ()

let exec_cmd =
  let file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "file" ] ~docv:"FILE" ~doc:"Script file (default: stdin).")
  in
  let run dir file =
    handle_errors (fun () ->
        with_db dir (fun db ->
            match file with
            | None -> exec_script db stdin
            | Some path ->
                let ic = open_in path in
                Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
                    exec_script db ic)))
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Run a batch script with BEGIN/COMMIT/ROLLBACK transaction control.")
    Term.(const run $ db_arg $ file_arg)

(* --- load: bulk ingest --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(* a directory loads its .xml files in name order; a plain file is read as
   one XML document per non-blank line *)
let load_docs path =
  if not (Sys.file_exists path) then
    invalid_arg (Printf.sprintf "no such file or directory %S" path)
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xml")
    |> List.sort compare
    |> List.map (fun f -> read_file (Filename.concat path f))
  else
    read_file path |> String.split_on_char '\n'
    |> List.filter (fun line -> String.trim line <> "")

let load_cmd =
  let path_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"PATH"
          ~doc:
            "Directory of .xml files (loaded in name order), or a file with \
             one XML document per line.")
  in
  let run dir table column path parallelism =
    handle_errors (fun () ->
        with_db ?parallelism dir (fun db ->
            let docs = load_docs path in
            let ids = Database.insert_many db ~table ~column docs in
            match ids with
            | [] -> print_endline "loaded 0 documents"
            | first :: _ ->
                let lo = List.fold_left min first ids in
                let hi = List.fold_left max first ids in
                Printf.printf "loaded %d document(s) into %s.%s (DocID %d..%d)\n"
                  (List.length ids) table column lo hi))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Bulk-load XML documents into a column in one transaction: one \
          table-level lock, batched index maintenance, a single WAL flush.")
    Term.(const run $ db_arg $ table_arg $ column_arg $ path_arg $ parallelism_arg)

(* --- checkpoint / verify --- *)

let checkpoint_cmd =
  let run dir =
    handle_errors (fun () ->
        with_db dir (fun db ->
            Database.checkpoint db;
            Printf.printf "checkpoint complete; WAL truncated\n"))
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Force a checkpoint: persist the catalog, flush all dirty pages and \
          truncate the WAL.")
    Term.(const run $ db_arg)

let verify_cmd =
  let run dir =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let r = Database.verify db in
            Printf.printf "pages checked: %d\n" r.Database.pages_checked;
            Printf.printf "corrupt pages: %s\n"
              (match r.Database.corrupt_pages with
              | [] -> "none"
              | ps -> String.concat "," (List.map string_of_int ps));
            Printf.printf "WAL records: %d\n" r.Database.wal_records;
            Printf.printf "WAL torn-tail bytes cut at open: %d\n"
              r.Database.wal_torn_bytes;
            (match Database.last_recovery db with
            | Some rep ->
                Printf.printf "recovery: redone %d, undone %d, losers %s\n"
                  rep.Rx_wal.Recovery.redone rep.Rx_wal.Recovery.undone
                  (match rep.Rx_wal.Recovery.losers with
                  | [] -> "none"
                  | l -> String.concat "," (List.map string_of_int l))
            | None -> ());
            (match Database.health db with
            | `Healthy -> print_endline "health: ok"
            | `Degraded reason ->
                Printf.printf "health: DEGRADED (%s)\n" reason);
            if r.Database.corrupt_pages <> [] || Database.health db <> `Healthy
            then failwith "integrity check failed"))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check every page checksum and report recovery/WAL state; exits \
          non-zero if corruption is found or the database is degraded.")
    Term.(const run $ db_arg)

let restore_cmd =
  let target_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "target" ] ~docv:"DIR"
          ~doc:"Fresh directory to restore into (must not hold a database).")
  in
  let to_lsn_arg =
    Arg.(
      value
      & opt (some int64) None
      & info [ "to-lsn" ] ~docv:"LSN"
          ~doc:
            "Restore the state as of this LSN (exclusive) — a durable LSN \
             observed earlier, e.g. $(b,durable_lsn) from $(b,rx stats \
             --json). Default: the end of the source's history.")
  in
  let run dir target to_lsn =
    handle_errors (fun () ->
        (* offline: replays the source's archive + live WAL, never writes
           to the source *)
        let r = Database.restore ?to_lsn ~source:dir ~target () in
        Printf.printf "restored %s at LSN %Ld into %s\n" dir
          r.Database.rst_stop_lsn target;
        Printf.printf "records replayed: %d\n" r.Database.rst_records;
        Printf.printf "open transactions rolled back at the cut: %s (%d updates)\n"
          (match r.Database.rst_losers with
          | [] -> "none"
          | l -> String.concat "," (List.map string_of_int l))
          r.Database.rst_undone;
        Printf.printf "new WAL base: %Ld\n" r.Database.rst_new_base)
  in
  Cmd.v
    (Cmd.info "restore"
       ~doc:
         "Point-in-time restore: rebuild into a fresh directory the exact \
          state the source database had at a given LSN, from its WAL \
          archive plus live WAL. Requires archiving enabled from the first \
          checkpoint ($(b,rx init --archive)); run against a stopped \
          database or a file-level copy.")
    Term.(const run $ db_arg $ target_arg $ to_lsn_arg)

let stats_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full metrics registry as JSON.")
  in
  let run dir json =
    handle_errors (fun () ->
        with_db dir (fun db ->
            let s = Database.stats db in
            if json then
              (* the canonical stats document, identical to what rxd's
                 Stats operation serves (net.* instruments included) *)
              print_endline (Rx_obs.Json.to_string (Stats_report.json db))
            else
              Printf.printf
                "tables: %d\ndocuments: %d\npacked records: %d\nNodeID index entries: %d\nvalue index entries: %d\ndata pages: %d\nWAL bytes appended: %d\n"
                s.Database.tables s.Database.documents s.Database.xml_records
                s.Database.node_index_entries s.Database.value_index_entries
                s.Database.data_pages s.Database.log_bytes))
  in
  Cmd.v (Cmd.info "stats" ~doc:"Show storage statistics.")
    Term.(const run $ db_arg $ json_arg)

let () =
  let info =
    Cmd.info "rx" ~version:"1.0.0"
      ~doc:"System R/X: a native XML database on relational infrastructure."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            init_cmd; create_table_cmd; index_cmd; create_index_cmd;
            drop_index_cmd; create_text_index_cmd;
            register_schema_cmd; bind_schema_cmd; insert_cmd; load_cmd; get_cmd;
            query_cmd; xquery_cmd; search_cmd; exec_cmd; checkpoint_cmd;
            verify_cmd; restore_cmd; stats_cmd;
          ]))
