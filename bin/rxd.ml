(* rxd — the System R/X network server: one embedded engine, many client
   sessions over the length-prefixed binary wire protocol (see Rx_wire).

     rxd serve --db DIR [--host H] [--port P] [--max-connections N]
               [--max-queue-depth N] [--auth-token SECRET]
               [--commit-window-us USEC] [--parallelism N]

   Runs until SIGINT/SIGTERM or a client's Shutdown request, then drains
   in-flight sessions, checkpoints and exits. Exit codes follow the same
   stable error table as rx (Database.error_code). *)

open Cmdliner
open Systemrx

let handle_errors f =
  try
    f ();
    0
  with e ->
    Printf.eprintf "error: %s\n" (Database.error_message e);
    Database.error_code e

let db_arg =
  let doc = "Database directory (created if absent)." in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value & opt int 7644
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks an ephemeral one).")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-connections" ] ~docv:"N"
        ~doc:"Concurrent sessions; further connects are refused Busy.")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue-depth" ] ~docv:"N"
        ~doc:
          "Requests in service concurrently; excess requests are answered \
           with the Busy status instead of queueing.")

let token_arg =
  Arg.(
    value & opt (some string) None
    & info [ "auth-token" ] ~docv:"SECRET"
        ~doc:"Require this token in the Hello handshake.")

let window_arg =
  Arg.(
    value & opt (some int) None
    & info [ "commit-window-us" ] ~docv:"USEC"
        ~doc:
          "Group-commit gathering window (microseconds); under concurrent \
           committers a few thousand lets one fsync absorb many commits. \
           Default: leave the database's configuration unchanged.")

let parallelism_arg =
  Arg.(
    value & opt (some int) None
    & info [ "parallelism" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel scans and bulk loads: 0 picks one \
           per core, 1 forces sequential execution. Default: the \
           RX_PARALLELISM environment variable, or 0.")

let serve_cmd =
  let run dir host port max_connections max_queue_depth auth_token window
      parallelism =
    handle_errors (fun () ->
        let db = Database.open_dir dir in
        Fun.protect ~finally:(fun () -> Database.close db) @@ fun () ->
        (match window with
        | Some commit_window_us ->
            Database.set_config db { (Database.config db) with commit_window_us }
        | None -> ());
        (match parallelism with
        | Some parallelism ->
            Database.set_config db { (Database.config db) with parallelism }
        | None -> ());
        let config =
          {
            Rx_server.host;
            port;
            max_connections;
            max_queue_depth;
            auth_token;
          }
        in
        let srv = Rx_server.start ~config db in
        Printf.printf "rxd: serving %s on %s:%d\n%!" dir host (Rx_server.port srv);
        let on_signal _ = Rx_server.request_stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        Rx_server.wait srv;
        Rx_server.stop srv;
        Printf.printf "rxd: shut down\n%!")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database directory to network clients until a Shutdown \
          request or SIGINT/SIGTERM.")
    Term.(
      const run $ db_arg $ host_arg $ port_arg $ max_conns_arg $ max_queue_arg
      $ token_arg $ window_arg $ parallelism_arg)

let () =
  let info =
    Cmd.info "rxd" ~version:"1.0.0"
      ~doc:
        "System R/X network server: a session-oriented wire protocol over \
         one native XML database engine."
  in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd ]))
