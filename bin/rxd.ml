(* rxd — the System R/X network server: one embedded engine, many client
   sessions over the length-prefixed binary wire protocol (see Rx_wire).

     rxd serve --db DIR [--host H] [--port P] [--max-connections N]
               [--max-queue-depth N] [--max-pipeline N] [--io-threads N]
               [--idle-timeout S] [--auth-token SECRET]
               [--commit-window-us USEC] [--parallelism N]
               [--replicate-from HOST:PORT [--leader-token SECRET]]
     rxd promote --db DIR

   Runs until SIGINT/SIGTERM or a client's Shutdown request, then drains
   in-flight sessions, checkpoints and exits. Exit codes follow the same
   stable error table as rx (Database.error_code).

   With --replicate-from, the directory opens as a read-only replica: a
   puller thread streams durable WAL frames from the leader (reconnecting
   with backoff if it drops) while the server answers snapshot queries;
   mutating requests get the Read_only status. `rxd promote` then makes a
   cleanly stopped replica directory a writable leader. *)

open Cmdliner
open Systemrx

let handle_errors f =
  try
    f ();
    0
  with e ->
    Printf.eprintf "error: %s\n" (Database.error_message e);
    Database.error_code e

let db_arg =
  let doc = "Database directory (created if absent)." in
  Arg.(required & opt (some string) None & info [ "db" ] ~docv:"DIR" ~doc)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value & opt int 7644
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks an ephemeral one).")

let max_conns_arg =
  Arg.(
    value & opt int 64
    & info [ "max-connections" ] ~docv:"N"
        ~doc:"Concurrent sessions; further connects are refused Busy.")

let max_queue_arg =
  Arg.(
    value & opt int 64
    & info [ "max-queue-depth" ] ~docv:"N"
        ~doc:
          "Requests in service concurrently; excess requests are answered \
           with the Busy status instead of queueing.")

let max_pipeline_arg =
  Arg.(
    value & opt int 32
    & info [ "max-pipeline" ] ~docv:"N"
        ~doc:
          "Requests one connection may pipeline (queued + in service) \
           before the server stops reading it and TCP flow control paces \
           the client.")

let io_threads_arg =
  Arg.(
    value & opt int 0
    & info [ "io-threads" ] ~docv:"N"
        ~doc:
          "Worker threads servicing parsed requests; 0 auto-sizes to the \
           host.")

let idle_timeout_arg =
  Arg.(
    value & opt float 0.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Close a session idle longer than this, rolling back its open \
           transaction and freeing its cursors; 0 disables (the default).")

let token_arg =
  Arg.(
    value & opt (some string) None
    & info [ "auth-token" ] ~docv:"SECRET"
        ~doc:"Require this token in the Hello handshake.")

let window_arg =
  Arg.(
    value & opt (some int) None
    & info [ "commit-window-us" ] ~docv:"USEC"
        ~doc:
          "Group-commit gathering window (microseconds); under concurrent \
           committers a few thousand lets one fsync absorb many commits. \
           Default: leave the database's configuration unchanged.")

let parallelism_arg =
  Arg.(
    value & opt (some int) None
    & info [ "parallelism" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel scans and bulk loads: 0 picks one \
           per core, 1 forces sequential execution. Default: the \
           RX_PARALLELISM environment variable, or 0.")

let replicate_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replicate-from" ] ~docv:"HOST:PORT"
        ~doc:
          "Serve as a read-only replica of the leader rxd at this address: \
           stream its durable WAL, apply continuously, answer snapshot \
           queries; writes are refused Read_only until $(b,rxd promote).")

let leader_token_arg =
  Arg.(
    value & opt string ""
    & info [ "leader-token" ] ~docv:"SECRET"
        ~doc:"Auth token for the leader's Hello handshake (with --replicate-from).")

let parse_addr s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 -> (host, p)
      | _ -> invalid_arg (Printf.sprintf "bad port in %S" s))
  | None -> invalid_arg (Printf.sprintf "expected HOST:PORT, got %S" s)

(* A self-healing leader transport: one long-lived connection, rebuilt on
   the next fetch after an error. The fetch runs outside the engine lock
   (Replica.pull's network phase), so connecting never blocks serving. *)
let leader_fetch ~host ~port ~token =
  let conn = ref None in
  let drop () =
    match !conn with
    | Some c ->
        conn := None;
        (try Rx_client.close c with _ -> ())
    | None -> ()
  in
  let fetch ~from_lsn ~max_bytes =
    try
      let c =
        match !conn with
        | Some c -> c
        | None ->
            let c =
              Rx_client.connect ~host ~token ~client:"rxd-replica" ~port ()
            in
            conn := Some c;
            c
      in
      Rx_client.repl_fetch c ~from_lsn ~max_bytes
    with e ->
      drop ();
      raise e
  in
  (fetch, drop)

let puller repl stop =
  let pulls_since_checkpoint = ref 0 in
  let rec loop backoff =
    if Atomic.get stop then ()
    else
      match Replica.pull repl with
      | report ->
          incr pulls_since_checkpoint;
          (* persist the restart point when idle or every so often while
             streaming: bounds re-fetch after a replica restart *)
          if report.Replica.caught_up || !pulls_since_checkpoint >= 64 then begin
            Replica.checkpoint repl;
            pulls_since_checkpoint := 0
          end;
          if report.Replica.caught_up then Thread.delay 0.05;
          loop 0.1
      | exception e ->
          Printf.eprintf "rxd: replication pull failed: %s (retrying in %.1fs)\n%!"
            (Database.error_message e) backoff;
          let rec wait left =
            if left > 0. && not (Atomic.get stop) then begin
              Thread.delay (Float.min left 0.1);
              wait (left -. 0.1)
            end
          in
          wait backoff;
          loop (Float.min (backoff *. 2.) 5.)
  in
  loop 0.1

let serve_cmd =
  let run dir host port max_connections max_queue_depth max_pipeline io_threads
      idle_timeout auth_token window parallelism replicate_from leader_token =
    handle_errors (fun () ->
        let leader = Option.map parse_addr replicate_from in
        let repl =
          Option.map
            (fun (lh, lp) ->
              let fetch, drop_conn =
                leader_fetch ~host:lh ~port:lp ~token:leader_token
              in
              (* a fresh replica must adopt the leader's page geometry;
                 an existing one re-detects its own from the data file *)
              let page_size =
                if Sys.file_exists (Filename.concat dir "data.rxdb") then None
                else begin
                  let c =
                    Rx_client.connect ~host:lh ~token:leader_token
                      ~client:"rxd-replica" ~port:lp ()
                  in
                  Fun.protect
                    ~finally:(fun () -> Rx_client.close c)
                    (fun () -> Some (Rx_client.repl_state c).Rx_client.page_size)
                end
              in
              (Replica.attach ?page_size ~fetch dir, drop_conn))
            leader
        in
        let db =
          match repl with
          | Some (r, _) -> Replica.db r
          | None -> Database.open_dir dir
        in
        let close () =
          match repl with
          | Some (r, drop_conn) ->
              Replica.close r;
              drop_conn ()
          | None -> Database.close db
        in
        Fun.protect ~finally:close @@ fun () ->
        (match window with
        | Some commit_window_us ->
            Database.set_config db { (Database.config db) with commit_window_us }
        | None -> ());
        (match parallelism with
        | Some parallelism ->
            Database.set_config db { (Database.config db) with parallelism }
        | None -> ());
        let config =
          {
            Rx_server.host;
            port;
            max_connections;
            max_queue_depth;
            auth_token;
            max_pipeline;
            io_threads;
            idle_timeout;
          }
        in
        let srv = Rx_server.start ~config db in
        (match leader with
        | Some (lh, lp) ->
            Printf.printf "rxd: replica of %s:%d serving %s on %s:%d\n%!" lh lp
              dir host (Rx_server.port srv)
        | None ->
            Printf.printf "rxd: serving %s on %s:%d\n%!" dir host
              (Rx_server.port srv));
        let on_signal _ = Rx_server.request_stop srv in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        let stop_pull = Atomic.make false in
        let pull_thread =
          Option.map
            (fun (r, _) -> Thread.create (fun () -> puller r stop_pull) ())
            repl
        in
        Rx_server.wait srv;
        Atomic.set stop_pull true;
        Option.iter Thread.join pull_thread;
        Rx_server.stop srv;
        Printf.printf "rxd: shut down\n%!")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database directory to network clients until a Shutdown \
          request or SIGINT/SIGTERM; with $(b,--replicate-from), serve it \
          as a continuously catching-up read-only replica.")
    Term.(
      const run $ db_arg $ host_arg $ port_arg $ max_conns_arg $ max_queue_arg
      $ max_pipeline_arg $ io_threads_arg $ idle_timeout_arg $ token_arg
      $ window_arg $ parallelism_arg $ replicate_arg $ leader_token_arg)

let promote_cmd =
  let run dir =
    handle_errors (fun () ->
        let repl = Replica.attach ~fetch:Replica.no_fetch dir in
        let lsn = Replica.promote repl in
        Database.close (Replica.db repl);
        Printf.printf "promoted %s: writable leader, WAL resumes at LSN %Ld\n"
          dir lsn)
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Promote a (stopped) replica directory to a writable leader: its \
          WAL timeline resumes where replication left off and the old \
          leader must never ship to it again.")
    Term.(const run $ db_arg)

let () =
  let info =
    Cmd.info "rxd" ~version:"1.0.0"
      ~doc:
        "System R/X network server: a session-oriented wire protocol over \
         one native XML database engine."
  in
  exit (Cmd.eval' (Cmd.group info [ serve_cmd; promote_cmd ]))
