open Rx_xml

(* Synthesized-attribute payload merged bottom-up. Items carry their
   document-order sequence number and, for value-output queries, the string
   value captured when the instance closed. *)
type 'a contribution = {
  mutable c_items : ('a * int * string option) list; (* unordered *)
  mutable c_values : string list;
  mutable c_count : int;
}

let fresh_contribution () = { c_items = []; c_values = []; c_count = 0 }

let merge_into dst src =
  dst.c_items <- List.rev_append src.c_items dst.c_items;
  dst.c_values <- List.rev_append src.c_values dst.c_values;
  dst.c_count <- dst.c_count + src.c_count

type 'a instance = {
  i_qnode : Query.qnode;
  i_depth : int;
  i_item : 'a option;
  i_seq : int;
  i_anchor : 'a instance option; (* previous-step instance matched against *)
  i_up : 'a instance option; (* None = propagate sideways on close *)
  i_buckets : 'a contribution array; (* one per child qnode *)
  i_pass : 'a contribution; (* pass-through: bypasses this node's predicate *)
  i_value : Buffer.t option;
}

type 'a t = {
  query : Query.t;
  parent_qid : int array; (* qid -> parent qid; -1 = virtual root *)
  stacks : 'a instance list ref array; (* by qid *)
  root_inst : 'a instance;
  mutable depth : int;
  mutable seq : int;
  mutable active : int;
  mutable max_active : int;
  mutable events : int;
  (* registry counters are atomic, but one fetch-and-add per SAX event from
     every scan domain would serialize the hot loop on shared cache lines;
     events/predicate evals batch into these engine-local pending tallies
     and flush once per document (finish/reset) *)
  mutable pend_events : int;
  mutable pend_preds : int;
  c_events : Rx_obs.Metrics.counter;
  c_pred_evals : Rx_obs.Metrics.counter;
  c_matches : Rx_obs.Metrics.counter;
  mutable value_insts : 'a instance list; (* open instances accumulating text *)
  elem_qnodes : Query.qnode array; (* ascending tree depth *)
  elem_qnodes_rev : Query.qnode array;
  text_qnodes : Query.qnode array;
  comment_qnodes : Query.qnode array;
  pi_qnodes : Query.qnode array;
  attr_qnodes : Query.qnode array;
}

let make_instance qnode ~depth ~item ~seq ~anchor ~up =
  {
    i_qnode = qnode;
    i_depth = depth;
    i_item = item;
    i_seq = seq;
    i_anchor = anchor;
    i_up = up;
    i_buckets =
      Array.init (List.length qnode.Query.children) (fun _ -> fresh_contribution ());
    i_pass = fresh_contribution ();
    i_value = (if qnode.Query.needs_self_value then Some (Buffer.create 32) else None);
  }

let create ?(metrics = Rx_obs.Metrics.default) query =
  let n = Array.length query.Query.nodes in
  let parent_qid = Array.make n (-1) in
  Array.iter
    (fun (qn : Query.qnode) ->
      List.iter (fun (c : Query.qnode) -> parent_qid.(c.Query.qid) <- qn.Query.qid) qn.Query.children)
    query.Query.nodes;
  let select p =
    Array.of_list (List.filter p (Array.to_list query.Query.by_depth))
  in
  let elem_qnodes =
    select (fun (q : Query.qnode) ->
        (match q.Query.test with
        | Query.Any_element | Query.Element _ | Query.Any_node -> true
        | _ -> false)
        && q.Query.axis <> Query.Attribute)
  in
  let elem_qnodes_rev =
    let a = Array.copy elem_qnodes in
    let n = Array.length a in
    Array.init n (fun i -> a.(n - 1 - i))
  in
  let kind_nodes kind_test =
    select (fun (q : Query.qnode) ->
        (q.Query.test = kind_test || q.Query.test = Query.Any_node)
        && q.Query.axis <> Query.Attribute && q.Query.axis <> Query.Self)
  in
  let root_qnode = query.Query.root in
  let root_inst =
    make_instance root_qnode ~depth:0 ~item:None ~seq:0 ~anchor:None ~up:None
  in
  {
    query;
    parent_qid;
    stacks = Array.init n (fun _ -> ref []);
    root_inst;
    depth = 0;
    seq = 0;
    active = 0;
    max_active = 0;
    events = 0;
    pend_events = 0;
    pend_preds = 0;
    c_events = Rx_obs.Metrics.counter metrics "qxs.events";
    c_pred_evals = Rx_obs.Metrics.counter metrics "qxs.predicate_evals";
    c_matches = Rx_obs.Metrics.counter metrics "qxs.matches";
    value_insts = [];
    elem_qnodes;
    elem_qnodes_rev;
    text_qnodes = kind_nodes Query.Text_node;
    comment_qnodes = kind_nodes Query.Comment_node;
    pi_qnodes = kind_nodes Query.Pi_node;
    attr_qnodes = select (fun (q : Query.qnode) -> q.Query.axis = Query.Attribute);
  }

let parent_top t (q : Query.qnode) =
  let pid = t.parent_qid.(q.Query.qid) in
  if pid < 0 then Some t.root_inst
  else match !(t.stacks.(pid)) with top :: _ -> Some top | [] -> None

(* Deepest previous-step instance strictly above the current node. Only the
   instance created at this very element can be at the current depth, so at
   most one stack entry is skipped — this is still the paper's stack-top
   check. *)
let parent_above t (q : Query.qnode) =
  let pid = t.parent_qid.(q.Query.qid) in
  if pid < 0 then Some t.root_inst
  else
    let rec scan = function
      | top :: rest ->
          if top.i_depth < t.depth then Some top else scan rest
      | [] -> None
    in
    scan !(t.stacks.(pid))

let bucket_for t inst qid =
  inst.i_buckets.(t.query.Query.nodes.(qid).Query.pos_in_parent)

(* --- predicate evaluation --- *)

let number_of_string s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Some f
  | None -> None

let atomic_compare (op : Rx_xpath.Ast.cmp) (l : [ `S of string | `N of float ])
    (r : [ `S of string | `N of float ]) =
  let num_cmp a b =
    match op with
    | Rx_xpath.Ast.Eq -> a = b
    | Rx_xpath.Ast.Neq -> a <> b
    | Rx_xpath.Ast.Lt -> a < b
    | Rx_xpath.Ast.Le -> a <= b
    | Rx_xpath.Ast.Gt -> a > b
    | Rx_xpath.Ast.Ge -> a >= b
  in
  match (l, r) with
  | `N a, `N b -> num_cmp a b
  | (`S _, `N _ | `N _, `S _ | `S _, `S _) -> (
      let as_num = function `N f -> Some f | `S s -> number_of_string s in
      match (op, l, r) with
      | (Rx_xpath.Ast.Eq | Rx_xpath.Ast.Neq), `S a, `S b ->
          (* string = string compares as strings (XPath 1.0) *)
          if op = Rx_xpath.Ast.Eq then String.equal a b else not (String.equal a b)
      | _ -> (
          match (as_num l, as_num r) with
          | Some a, Some b -> num_cmp a b
          | _ -> false))

let operand_atoms t inst = function
  | Query.Self_value -> (
      match inst.i_value with
      | Some buf -> [ `S (Buffer.contents buf) ]
      | None -> [])
  | Query.Branch qid ->
      List.map (fun v -> `S v) (bucket_for t inst qid).c_values
  | Query.Lit_string s -> [ `S s ]
  | Query.Lit_number n -> [ `N n ]

let rec eval_pexpr t inst = function
  | Query.P_exists qid ->
      let b = bucket_for t inst qid in
      b.c_count > 0 || b.c_values <> [] || b.c_items <> []
  | Query.P_compare (op, l, r) ->
      let ls = operand_atoms t inst l and rs = operand_atoms t inst r in
      List.exists (fun a -> List.exists (fun b -> atomic_compare op a b) rs) ls
  | Query.P_and (a, b) -> eval_pexpr t inst a && eval_pexpr t inst b
  | Query.P_or (a, b) -> eval_pexpr t inst a || eval_pexpr t inst b
  | Query.P_not a -> not (eval_pexpr t inst a)

let predicate_passes t inst =
  match inst.i_qnode.Query.pred with
  | None -> true
  | Some pe ->
      t.pend_preds <- t.pend_preds + 1;
      eval_pexpr t inst pe

(* --- instance lifecycle --- *)

let push_instance t (q : Query.qnode) anchor ~depth ~item ~seq =
  let stack = t.stacks.(q.Query.qid) in
  let up =
    match !stack with
    | below :: _ -> (
        (* shares the previous-step matching with its stack neighbour?
           then propagate sideways on close (Table 1) *)
        match below.i_anchor with
        | Some a when a == anchor -> None
        | Some _ | None -> Some anchor)
    | [] -> Some anchor
  in
  let inst = make_instance q ~depth ~item:(Some item) ~seq ~anchor:(Some anchor) ~up in
  stack := inst :: !stack;
  t.active <- t.active + 1;
  if t.active > t.max_active then t.max_active <- t.active;
  if inst.i_value <> None then t.value_insts <- inst :: t.value_insts;
  inst

(* Contribution produced when [inst] closes. *)
let close_out t inst =
  let q = inst.i_qnode in
  let out = fresh_contribution () in
  if predicate_passes t inst then begin
    (* own payload *)
    (match q.Query.role with
    | Query.Main ->
        if q.Query.is_output then begin
          let value = Option.map Buffer.contents inst.i_value in
          out.c_items <- [ (Option.get inst.i_item, inst.i_seq, value) ]
        end
    | Query.Branch_value ->
        if q.Query.is_terminal then begin
          match inst.i_value with
          | Some buf -> out.c_values <- [ Buffer.contents buf ]
          | None -> ()
        end
    | Query.Branch_exists -> if q.Query.is_terminal then out.c_count <- 1);
    (* chain-child payload climbs the path *)
    (match q.Query.children with
    | chain :: _ when chain.Query.role = q.Query.role && not q.Query.is_terminal ->
        merge_into out inst.i_buckets.(0)
    | _ -> ())
  end;
  merge_into out inst.i_pass;
  out

let route_close t inst out =
  let q = inst.i_qnode in
  match inst.i_up with
  | Some parent -> merge_into (bucket_for t parent q.Query.qid) out
  | None -> (
      match !(t.stacks.(q.Query.qid)) with
      | below :: _ ->
          merge_into below.i_pass out;
          (* raw sideways copy for descendant-axis child buckets: this
             instance's subtree is also part of [below]'s subtree *)
          List.iteri
            (fun j (c : Query.qnode) ->
              match c.Query.axis with
              | Query.Descendant | Query.Descendant_or_self ->
                  merge_into below.i_buckets.(j) inst.i_buckets.(j)
              | Query.Child | Query.Attribute | Query.Self -> ())
            q.Query.children
      | [] ->
          (* no sharing partner left: deliver to the anchor *)
          (match inst.i_anchor with
          | Some anchor -> merge_into (bucket_for t anchor q.Query.qid) out
          | None -> ()))

let close_instance t inst =
  t.active <- t.active - 1;
  if inst.i_value <> None then
    t.value_insts <- List.filter (fun i -> i != inst) t.value_insts;
  let out = close_out t inst in
  route_close t inst out

(* An instantaneous match (text, comment, PI, attribute): no children, so
   predicates see empty buckets; the value is the node's own content. *)
let instant_contribution t (q : Query.qnode) anchor ~item ~seq ~value =
  let inst =
    {
      i_qnode = q;
      i_depth = t.depth;
      i_item = Some item;
      i_seq = seq;
      i_anchor = Some anchor;
      i_up = Some anchor;
      i_buckets =
        Array.init (List.length q.Query.children) (fun _ -> fresh_contribution ());
      i_pass = fresh_contribution ();
      i_value =
        (if q.Query.needs_self_value || (q.Query.role = Query.Branch_value && q.Query.is_terminal)
           || (q.Query.role = Query.Main && q.Query.is_output)
         then begin
           let b = Buffer.create (String.length value) in
           Buffer.add_string b value;
           Some b
         end
         else None);
    }
  in
  if predicate_passes t inst then begin
    let out = fresh_contribution () in
    (match q.Query.role with
    | Query.Main ->
        if q.Query.is_output then out.c_items <- [ (item, seq, Some value) ]
    | Query.Branch_value -> if q.Query.is_terminal then out.c_values <- [ value ]
    | Query.Branch_exists -> if q.Query.is_terminal then out.c_count <- 1);
    merge_into (bucket_for t anchor q.Query.qid) out
  end

(* --- events --- *)

let elem_test_matches (test : Query.test) (name : Qname.t) =
  match test with
  | Query.Any_element | Query.Any_node -> true
  | Query.Element { uri; local } -> name.Qname.uri = uri && name.Qname.local = local
  | Query.Any_attribute | Query.Attribute_named _ | Query.Text_node
  | Query.Comment_node | Query.Pi_node ->
      false

let attr_test_matches (test : Query.test) (name : Qname.t) =
  match test with
  | Query.Any_attribute -> true
  | Query.Attribute_named { uri; local } ->
      name.Qname.uri = uri && name.Qname.local = local
  | _ -> false

let start_element t ~name ~attrs ~item ~attr_item =
  t.events <- t.events + 1;
  t.pend_events <- t.pend_events + 1;
  t.depth <- t.depth + 1;
  t.seq <- t.seq + 1;
  let node_seq = t.seq in
  (* match element-selecting query nodes, shallow chain positions first so
     Self / descendant-or-self steps can see instances created this event *)
  Array.iter
    (fun (q : Query.qnode) ->
      if elem_test_matches q.Query.test name then begin
        let anchor =
          match q.Query.axis with
          | Query.Child -> (
              match parent_above t q with
              | Some p when p.i_depth = t.depth - 1 -> Some p
              | _ -> None)
          | Query.Descendant -> parent_above t q
          | Query.Descendant_or_self | Query.Self -> (
              (* prefer the instance at this very node (self); otherwise,
                 for descendant-or-self, any strict ancestor *)
              match parent_top t q with
              | Some p when p.i_depth = t.depth -> Some p
              | _ when q.Query.axis = Query.Descendant_or_self ->
                  parent_above t q
              | _ -> None)
          | Query.Attribute -> None
        in
        match anchor with
        | Some p ->
            (* [item] is forced only here, on an actual qnode match — the
               common no-match element costs no allocation *)
            ignore
              (push_instance t q p ~depth:t.depth ~item:(item ()) ~seq:node_seq)
        | None -> ()
      end)
    t.elem_qnodes;
  (* attributes: instantaneous children of instances created at this node *)
  if attrs <> [] then begin
    let attr_seqs =
      List.mapi
        (fun i (a : Token.attr) ->
          t.seq <- t.seq + 1;
          (i, a, t.seq))
        attrs
    in
    Array.iter
      (fun (q : Query.qnode) ->
        match parent_top t q with
        | Some p when p.i_depth = t.depth && p != t.root_inst ->
            List.iter
              (fun (i, (a : Token.attr), seq) ->
                if attr_test_matches q.Query.test a.Token.name then
                  instant_contribution t q p ~item:(attr_item i) ~seq
                    ~value:a.Token.value)
              attr_seqs
        | _ -> ())
      t.attr_qnodes
  end

let leaf_event t qnodes ~content ~item =
  t.events <- t.events + 1;
  t.pend_events <- t.pend_events + 1;
  t.seq <- t.seq + 1;
  let seq = t.seq in
  (* text accumulation for open value instances happens in [text] only *)
  Array.iter
    (fun (q : Query.qnode) ->
      match parent_top t q with
      | None -> ()
      | Some p ->
          let ok =
            match q.Query.axis with
            | Query.Child -> p.i_depth = t.depth
            | Query.Descendant | Query.Descendant_or_self -> p.i_depth <= t.depth
            | Query.Self | Query.Attribute -> false
          in
          if ok then instant_contribution t q p ~item:(item ()) ~seq ~value:content)
    qnodes

let text t ~content ~item =
  List.iter
    (fun inst ->
      match inst.i_value with
      | Some buf -> Buffer.add_string buf content
      | None -> ())
    t.value_insts;
  leaf_event t t.text_qnodes ~content ~item

let comment t ~content ~item = leaf_event t t.comment_qnodes ~content ~item

let pi t ~target ~data ~item =
  ignore target;
  leaf_event t t.pi_qnodes ~content:data ~item

let end_element t =
  t.events <- t.events + 1;
  t.pend_events <- t.pend_events + 1;
  Array.iter
    (fun (q : Query.qnode) ->
      let stack = t.stacks.(q.Query.qid) in
      match !stack with
      | top :: rest when top.i_depth = t.depth ->
          stack := rest;
          close_instance t top
      | _ -> ())
    t.elem_qnodes_rev;
  t.depth <- t.depth - 1

let flush_counters t =
  if t.pend_events > 0 then begin
    Rx_obs.Metrics.add t.c_events t.pend_events;
    t.pend_events <- 0
  end;
  if t.pend_preds > 0 then begin
    Rx_obs.Metrics.add t.c_pred_evals t.pend_preds;
    t.pend_preds <- 0
  end

let finish_full t =
  if t.depth <> 0 then invalid_arg "Engine.finish: unbalanced stream";
  flush_counters t;
  let results = t.root_inst.i_buckets.(0).c_items in
  let sorted = List.sort (fun (_, a, _) (_, b, _) -> compare a b) results in
  let rec dedup = function
    | (_, a, _) :: ((_, b, _) :: _ as rest) when a = b -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  let out = dedup sorted in
  Rx_obs.Metrics.add t.c_matches (List.length out);
  out

let finish t = List.map (fun (item, _, _) -> item) (finish_full t)
let finish_with_values t = List.map (fun (item, _, v) -> (item, v)) (finish_full t)

let reset_contribution c =
  c.c_items <- [];
  c.c_values <- [];
  c.c_count <- 0

(* Clear per-document state so the compiled machine can be reused for the
   next document without recompiling the query. Cumulative instrumentation
   ([events_processed], [max_active], registry counters) is preserved. *)
let reset t =
  flush_counters t;
  Array.iter (fun stack -> stack := []) t.stacks;
  t.depth <- 0;
  t.seq <- 0;
  t.active <- 0;
  t.value_insts <- [];
  Array.iter reset_contribution t.root_inst.i_buckets;
  reset_contribution t.root_inst.i_pass;
  match t.root_inst.i_value with Some buf -> Buffer.clear buf | None -> ()
let max_active t = t.max_active
let events_processed t = t.events

let feed_tokens t ~item_of tokens =
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element { name; attrs; _ } ->
          let elem_seq = next () in
          let attr_seqs = List.map (fun _ -> next ()) attrs in
          let arr = Array.of_list attr_seqs in
          start_element t ~name ~attrs ~item:(fun () -> item_of elem_seq)
            ~attr_item:(fun i -> item_of arr.(i))
      | Token.End_element -> end_element t
      | Token.Text { content; _ } ->
          let seq = next () in
          text t ~content ~item:(fun () -> item_of seq)
      | Token.Comment content ->
          let seq = next () in
          comment t ~content ~item:(fun () -> item_of seq)
      | Token.Pi { target; data } ->
          let seq = next () in
          pi t ~target ~data ~item:(fun () -> item_of seq))
    tokens

let feed_binary t ~item_of binary =
  let reader = Token_stream.Reader.of_string binary in
  let seq = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let rec loop () =
    match Token_stream.Reader.next reader with
    | None -> ()
    | Some token ->
        (match token with
        | Token.Start_document | Token.End_document -> ()
        | Token.Start_element { name; attrs; _ } ->
            let elem_seq = next () in
            let attr_seqs = Array.of_list (List.map (fun _ -> next ()) attrs) in
            start_element t ~name ~attrs ~item:(fun () -> item_of elem_seq)
              ~attr_item:(fun i -> item_of attr_seqs.(i))
        | Token.End_element -> end_element t
        | Token.Text { content; _ } ->
            let seq = next () in
            text t ~content ~item:(fun () -> item_of seq)
        | Token.Comment content ->
            let seq = next () in
            comment t ~content ~item:(fun () -> item_of seq)
        | Token.Pi { target; data } ->
            let seq = next () in
            pi t ~target ~data ~item:(fun () -> item_of seq));
        loop ()
  in
  loop ()

let eval_tokens query tokens =
  let t = create query in
  feed_tokens t ~item_of:(fun seq -> seq) tokens;
  finish t
