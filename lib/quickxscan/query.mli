(** Compilation of an XPath expression into the query tree of §4.2 /
    Figure 6: one node per step, with predicate operand paths hanging off
    their owning step as branch chains. Name tests are resolved against the
    database name dictionary (a name never interned cannot match any stored
    node). *)

type axis = Child | Descendant | Attribute | Self | Descendant_or_self

type test =
  | Any_element (* '*' on an element-selecting axis *)
  | Element of { uri : int; local : int }
  | Any_attribute
  | Attribute_named of { uri : int; local : int }
  | Text_node
  | Comment_node
  | Pi_node
  | Any_node (* node() *)

type role =
  | Main (* on the main path: carries candidate result items *)
  | Branch_exists (* predicate operand carrying an existence count *)
  | Branch_value (* predicate operand carrying string values *)

type operand =
  | Self_value (* the owning step's own string value ('.') *)
  | Branch of int (* qid of the operand chain's root child *)
  | Lit_string of string
  | Lit_number of float

type pexpr =
  | P_exists of int (* qid of a branch-root child *)
  | P_compare of Rx_xpath.Ast.cmp * operand * operand
  | P_and of pexpr * pexpr
  | P_or of pexpr * pexpr
  | P_not of pexpr

type qnode = {
  qid : int;
  axis : axis;
  test : test;
  role : role;
  is_output : bool;
  is_terminal : bool; (* last step of its (main or branch) chain *)
  needs_self_value : bool; (* its subtree text must be accumulated *)
  children : qnode list; (* next step of the chain plus branch roots *)
  pred : pexpr option;
  pos_in_parent : int; (* index within the parent's [children] *)
  tree_depth : int; (* distance from the virtual root *)
}

type t = {
  root : qnode; (* virtual root; its children are the first step(s) *)
  nodes : qnode array; (* all real query nodes, indexed by qid *)
  by_depth : qnode array; (* real nodes sorted by tree_depth ascending *)
  output_qid : int;
}

val compile :
  ?ns_env:(string * string) list ->
  ?value_output:bool ->
  Rx_xml.Name_dict.t ->
  Rx_xpath.Ast.path ->
  t
(** Applies {!Rx_xpath.Rewrite.simplify} first. [ns_env] binds query
    prefixes to namespace URIs. [value_output] additionally accumulates the
    string value of each result node (for index key extraction).
    @raise Rx_xpath.Rewrite.Unsupported on non-rewritable parent axes
    @raise Invalid_argument on an empty path or unbound prefix *)

val compile_string :
  ?ns_env:(string * string) list ->
  ?value_output:bool ->
  Rx_xml.Name_dict.t ->
  string ->
  t
(** Parse and compile. @raise Rx_xpath.Xpath_parser.Error too. *)

val size : t -> int
(** |Q|: number of real query nodes. *)

val to_string : Rx_xml.Name_dict.t -> t -> string
