(** QuickXScan: the streaming XPath evaluation engine of §4.2.

    One pass over a document event stream evaluates the compiled query
    tree via attribute-grammar propagation: a (horizontal) stack per query
    node keeps matching instances; inherited attributes (matching) are
    decided top-down using only the stack top of the previous step;
    synthesized attributes (candidate result sequences, predicate operand
    values, existence counts) are merged bottom-up when instances are
    popped, with the Table-1 upward/sideways propagation rules. The number
    of live matching instances is O(|Q|·r) where r is the document's
    recursion depth — the property benchmarked in E4.

    The engine is polymorphic in the "item" attached to each node event,
    so the same code evaluates XPath over parsed token streams, packed
    records, and stored documents (the virtual-SAX organization of §4.4).

    Duplicate suppression: an item may travel along several matching paths
    (nested same-name matches); results are deduplicated by their
    document-order sequence number before being returned. *)

type 'a t

val create : ?metrics:Rx_obs.Metrics.t -> Query.t -> 'a t
(** [metrics] receives the [qxs.events] / [qxs.predicate_evals] /
    [qxs.matches] counters (default: the global registry). Event and
    predicate tallies batch engine-locally and flush to the registry at
    [finish]/[reset] time, so parallel scan domains do not contend on the
    shared counters inside the per-event hot loop. *)

val start_element :
  'a t ->
  name:Rx_xml.Qname.t ->
  attrs:Rx_xml.Token.attr list ->
  item:(unit -> 'a) ->
  attr_item:(int -> 'a) ->
  unit
(** Items are supplied lazily: [item ()] is forced only when the node
    actually matches a query-tree node (instances are pushed or an
    instantaneous match fires), so feeding a non-matching node allocates
    nothing — the hot-loop property the packed-record scan relies on. The
    thunk is forced before the call returns (never retained), so it may
    read mutable cursor state. [attr_item i] supplies the item for the
    [i]-th attribute (0-based, in the order of [attrs]) when an attribute
    step selects it. *)

val end_element : 'a t -> unit
val text : 'a t -> content:string -> item:(unit -> 'a) -> unit
val comment : 'a t -> content:string -> item:(unit -> 'a) -> unit
val pi : 'a t -> target:string -> data:string -> item:(unit -> 'a) -> unit

val reset : 'a t -> unit
(** Clears all per-document state (instance stacks, depth, sequence
    numbers, accumulated results) so the compiled machine can be reused for
    another document without recompiling the query — the plan-cache hot
    path. Cumulative instrumentation ({!events_processed}, {!max_active})
    is preserved. *)

val finish : 'a t -> 'a list
(** Result sequence in document order, duplicate-free. The stream must be
    balanced (all elements closed). *)

val finish_with_values : 'a t -> ('a * string option) list
(** Results paired with their string values when the output step required
    value accumulation (used for index key extraction). *)

val max_active : 'a t -> int
(** High-water mark of live matching instances (Figure 7 metric). *)

val events_processed : 'a t -> int

val feed_tokens : 'a t -> item_of:(int -> 'a) -> Rx_xml.Token.t list -> unit
(** Drives the engine over a token list; [item_of seq] builds the item for
    the node whose document-order sequence number is [seq] (elements,
    texts, comments, PIs and attributes all consume sequence numbers, in
    document order, starting at 1). *)

val feed_binary : 'a t -> item_of:(int -> 'a) -> string -> unit
(** Same as {!feed_tokens} over a binary buffered token stream
    ({!Rx_xml.Token_stream}) — the virtual-SAX source matrix of §4.4. *)

val eval_tokens : Query.t -> Rx_xml.Token.t list -> int list
(** Convenience: result sequence numbers over a token stream. *)
