open Rx_xpath

type axis = Child | Descendant | Attribute | Self | Descendant_or_self

type test =
  | Any_element
  | Element of { uri : int; local : int }
  | Any_attribute
  | Attribute_named of { uri : int; local : int }
  | Text_node
  | Comment_node
  | Pi_node
  | Any_node

type role = Main | Branch_exists | Branch_value

type operand =
  | Self_value
  | Branch of int
  | Lit_string of string
  | Lit_number of float

type pexpr =
  | P_exists of int
  | P_compare of Ast.cmp * operand * operand
  | P_and of pexpr * pexpr
  | P_or of pexpr * pexpr
  | P_not of pexpr

type qnode = {
  qid : int;
  axis : axis;
  test : test;
  role : role;
  is_output : bool;
  is_terminal : bool;
  needs_self_value : bool;
  children : qnode list;
  pred : pexpr option;
  pos_in_parent : int;
  tree_depth : int;
}

type t = {
  root : qnode;
  nodes : qnode array;
  by_depth : qnode array;
  output_qid : int;
}

type builder = {
  dict : Rx_xml.Name_dict.t;
  ns_env : (string * string) list;
  value_output : bool;
  mutable next_qid : int;
  mutable collected : qnode list;
}

let fresh_qid b =
  let q = b.next_qid in
  b.next_qid <- q + 1;
  q

let resolve_test b ~attribute (test : Ast.node_test) =
  let name_id s = Rx_xml.Name_dict.intern b.dict s in
  let uri_of_prefix = function
    | None -> 0
    | Some p -> (
        match List.assoc_opt p b.ns_env with
        | Some uri -> name_id uri
        | None -> invalid_arg (Printf.sprintf "Query.compile: unbound prefix '%s'" p))
  in
  if attribute then
    match test with
    | Ast.Name { prefix; local } ->
        Attribute_named { uri = uri_of_prefix prefix; local = name_id local }
    | Ast.Wildcard | Ast.Node_test -> Any_attribute
    | Ast.Text_test | Ast.Comment_test | Ast.Pi_test ->
        invalid_arg "Query.compile: kind test on the attribute axis"
  else
    match test with
    | Ast.Name { prefix; local } ->
        Element { uri = uri_of_prefix prefix; local = name_id local }
    | Ast.Wildcard -> Any_element
    | Ast.Text_test -> Text_node
    | Ast.Comment_test -> Comment_node
    | Ast.Pi_test -> Pi_node
    | Ast.Node_test -> Any_node

let resolve_axis (axis : Ast.axis) =
  match axis with
  | Ast.Child -> Child
  | Ast.Descendant -> Descendant
  | Ast.Attribute -> Attribute
  | Ast.Self -> Self
  | Ast.Descendant_or_self -> Descendant_or_self
  | Ast.Parent -> invalid_arg "Query.compile: parent axis survived rewrite"

let element_ish = function
  | Element _ | Any_element | Any_node -> true
  | Any_attribute | Attribute_named _ | Text_node | Comment_node | Pi_node -> false

(* Build the chain for [steps]; returns the chain-root qnode. *)
let rec build_chain b ~role ~tree_depth ~pos_in_parent (steps : Ast.step list) =
  match steps with
  | [] -> invalid_arg "Query.compile: empty step chain"
  | step :: rest ->
      let axis = resolve_axis step.Ast.axis in
      let test = resolve_test b ~attribute:(axis = Attribute) step.Ast.test in
      let qid = fresh_qid b in
      let next_child =
        match rest with
        | [] -> None
        | _ -> Some (build_chain b ~role ~tree_depth:(tree_depth + 1) ~pos_in_parent:0 rest)
      in
      let branch_children = ref [] in
      let needs_self = ref false in
      let next_pos = ref (match next_child with None -> 0 | Some _ -> 1) in
      let add_branch ~role steps =
        let qn =
          build_chain b ~role ~tree_depth:(tree_depth + 1) ~pos_in_parent:!next_pos steps
        in
        incr next_pos;
        branch_children := qn :: !branch_children;
        qn.qid
      in
      let compile_operand = function
        | Ast.Op_string s -> Lit_string s
        | Ast.Op_number n -> Lit_number n
        | Ast.Op_path { Ast.steps = [ { Ast.axis = Ast.Self; test = Ast.Node_test; preds = [] } ]; absolute = false } ->
            needs_self := true;
            Self_value
        | Ast.Op_path { Ast.steps = []; absolute = false } ->
            needs_self := true;
            Self_value
        | Ast.Op_path { Ast.steps; absolute } ->
            if absolute then
              invalid_arg "Query.compile: absolute paths in predicates are unsupported";
            Branch (add_branch ~role:Branch_value steps)
      in
      let rec compile_pred = function
        | Ast.Exists { Ast.steps; absolute } ->
            if absolute then
              invalid_arg "Query.compile: absolute paths in predicates are unsupported";
            P_exists (add_branch ~role:Branch_exists steps)
        | Ast.Compare (op, a, b') -> P_compare (op, compile_operand a, compile_operand b')
        | Ast.And (x, y) -> P_and (compile_pred x, compile_pred y)
        | Ast.Or (x, y) -> P_or (compile_pred x, compile_pred y)
        | Ast.Not x -> P_not (compile_pred x)
      in
      let pred =
        match step.Ast.preds with
        | [] -> None
        | preds ->
            Some
              (List.fold_left
                 (fun acc p ->
                   match acc with None -> Some (compile_pred p) | Some a -> Some (P_and (a, compile_pred p)))
                 None preds
              |> Option.get)
      in
      let is_terminal = rest = [] in
      let qn =
        {
          qid;
          axis;
          test;
          role;
          is_output = (role = Main && is_terminal);
          is_terminal;
          needs_self_value =
            !needs_self
            || (role = Branch_value && is_terminal && element_ish test && axis <> Attribute)
            || (b.value_output && role = Main && is_terminal && element_ish test
               && axis <> Attribute);
          children =
            (match next_child with
            | Some c -> c :: List.rev !branch_children
            | None -> List.rev !branch_children);
          pred;
          pos_in_parent;
          tree_depth;
        }
      in
      b.collected <- qn :: b.collected;
      qn

let compile ?(ns_env = []) ?(value_output = false) dict path =
  let path = Rewrite.simplify path in
  if path.Ast.steps = [] then invalid_arg "Query.compile: empty path";
  let steps =
    if path.Ast.absolute then path.Ast.steps
    else
      (* relative paths are evaluated against a stream whose single
         top-level node is the context node *)
      { Ast.axis = Ast.Child; test = Ast.Node_test; preds = [] } :: path.Ast.steps
  in
  let b = { dict; ns_env; value_output; next_qid = 0; collected = [] } in
  let first = build_chain b ~role:Main ~tree_depth:1 ~pos_in_parent:0 steps in
  let nodes = Array.make b.next_qid first in
  List.iter (fun qn -> nodes.(qn.qid) <- qn) b.collected;
  let by_depth = Array.copy nodes in
  Array.sort (fun a b -> compare a.tree_depth b.tree_depth) by_depth;
  let output_qid =
    let rec find qn = if qn.is_output then qn.qid else
      match List.find_opt (fun c -> c.role = Main) qn.children with
      | Some c -> find c
      | None -> invalid_arg "Query.compile: no output node"
    in
    find first
  in
  let root =
    {
      qid = -1;
      axis = Self;
      test = Any_node;
      role = Main;
      is_output = false;
      is_terminal = false;
      needs_self_value = false;
      children = [ first ];
      pred = None;
      pos_in_parent = 0;
      tree_depth = 0;
    }
  in
  { root; nodes; by_depth; output_qid }

let compile_string ?ns_env ?value_output dict src =
  compile ?ns_env ?value_output dict (Xpath_parser.parse src)

let size t = Array.length t.nodes

let test_to_string dict = function
  | Any_element -> "*"
  | Element { uri; local } ->
      let l = if local >= 0 then Rx_xml.Name_dict.name dict local else "<unknown>" in
      if uri = 0 then l else Printf.sprintf "{%d}%s" uri l
  | Any_attribute -> "@*"
  | Attribute_named { uri; local } ->
      let l = if local >= 0 then Rx_xml.Name_dict.name dict local else "<unknown>" in
      if uri = 0 then "@" ^ l else Printf.sprintf "@{%d}%s" uri l
  | Text_node -> "text()"
  | Comment_node -> "comment()"
  | Pi_node -> "pi()"
  | Any_node -> "node()"

let axis_to_string = function
  | Child -> "child"
  | Descendant -> "desc"
  | Attribute -> "attr"
  | Self -> "self"
  | Descendant_or_self -> "desc-or-self"

let to_string dict t =
  let buf = Buffer.create 128 in
  let rec pp indent qn =
    Buffer.add_string buf
      (Printf.sprintf "%s#%d %s::%s%s%s%s\n"
         (String.make indent ' ')
         qn.qid (axis_to_string qn.axis)
         (test_to_string dict qn.test)
         (match qn.role with
         | Main -> if qn.is_output then " [output]" else ""
         | Branch_exists -> " [exists]"
         | Branch_value -> " [value]")
         (if qn.pred <> None then " [pred]" else "")
         (if qn.needs_self_value then " [self-value]" else ""));
    List.iter (pp (indent + 2)) qn.children
  in
  List.iter (pp 0) t.root.children;
  Buffer.contents buf
