(** Transaction manager tying together lock manager, WAL and rollback.

    Designed for the simulated-concurrency harness: lock acquisition is
    non-blocking ([`Blocked] tells the scheduler to retry or abort), and
    [commit]/[abort] return the transactions whose queued lock requests
    became grantable. Locking follows the multiple-granularity protocol:
    taking a mode on a granule first takes the corresponding intention mode
    on every ancestor granule. *)

type manager
type t

val create_manager :
  ?log:Rx_wal.Log_manager.t -> ?pool:Rx_storage.Buffer_pool.t -> unit -> manager
(** With [log] and [pool], commits force the log and aborts roll back page
    updates; without them, transactions are lock-only. *)

val lock_manager : manager -> Lock_manager.t

val install_journal : manager -> unit
(** Wires the buffer pool's journal to the log, tagging updates with the
    transaction currently executing under {!run_as}. *)

val begin_txn : manager -> t
val txid : t -> int
val is_active : t -> bool

val run_as : t -> (unit -> 'a) -> 'a
(** Executes [f] with page updates attributed to this transaction. *)

val lock : t -> Resource.t -> Lock_modes.t -> [ `Granted | `Blocked of int list ]
(** Acquires intention locks on ancestors, then the requested mode.
    @raise Invalid_argument if the transaction is no longer active. *)

val commit : t -> int list
(** Forces the log, releases locks; returns transactions whose queued lock
    requests were granted by the release. *)

val abort : t -> int list
(** Rolls back this transaction's page updates (when WAL-backed), releases
    locks; same return as {!commit}. *)

val active_count : manager -> int
