(** Transaction manager tying together lock manager, WAL and rollback.

    Designed for the simulated-concurrency harness: lock acquisition is
    non-blocking ([`Blocked] tells the scheduler to retry or abort), and
    [commit]/[abort] return the transactions whose queued lock requests
    became grantable. Locking follows the multiple-granularity protocol:
    taking a mode on a granule first takes the corresponding intention mode
    on every ancestor granule. *)

type manager
type t

val create_manager :
  ?log:Rx_wal.Log_manager.t -> ?pool:Rx_storage.Buffer_pool.t -> unit -> manager
(** With [log] and [pool], commits force the log and aborts roll back page
    updates; without them, transactions are lock-only. *)

val lock_manager : manager -> Lock_manager.t

val install_journal : manager -> unit
(** Wires the buffer pool's journal to the log, tagging updates with the
    transaction currently executing under {!run_as}. *)

val begin_txn : manager -> t
(** Starts a transaction with a fresh, monotonically increasing txid. *)

val seed_txids : manager -> int -> unit
(** Raises the id floor: subsequent {!begin_txn} calls issue ids strictly
    above [txid] (no-op when already past it). Call after crash recovery
    with the recovered log's highest txid — ids repeating within one WAL
    span would alias distinct transactions and break loser detection at
    the next recovery. *)

val txid : t -> int
(** The transaction's identifier (also its WAL record tag). *)

val is_active : t -> bool
(** [false] once committed or aborted; all lock/run operations then fail. *)

val run_as : t -> (unit -> 'a) -> 'a
(** Executes [f] with page updates attributed to this transaction. *)

val lock : t -> Resource.t -> Lock_modes.t -> [ `Granted | `Blocked of int list ]
(** Acquires intention locks on ancestors, then the requested mode.
    @raise Invalid_argument if the transaction is no longer active. *)

val lock_detect :
  t ->
  Resource.t ->
  Lock_modes.t ->
  [ `Granted | `Blocked of int list | `Deadlock of int * int list ]
(** Like {!lock}, but when blocked also searches the waits-for graph:
    [`Deadlock (victim, cycle)] means this request closed a cycle and
    [victim] (the youngest member) should abort. The blocked request stays
    queued either way; it is cancelled when the transaction finishes. *)

val commit : t -> int list
(** Forces the log (via group commit), releases locks; returns transactions
    whose queued lock requests were granted by the release. Equivalent to
    {!precommit} followed immediately by its durability wait. *)

val precommit : t -> int list * (unit -> unit)
(** First half of {!commit}: appends the Commit record, marks the
    transaction committed and releases its locks, but does {e not} wait
    for durability. Returns the newly grantable transactions plus an
    [await] thunk that blocks until the Commit record is on stable storage
    (one {!Rx_wal.Log_manager.group_commit}, shared with concurrent
    committers). Callers must invoke [await] before reporting the commit
    as durable; releasing locks first is safe because any later flush
    covers this record's LSN. *)

val abort : ?undo:(unit -> unit) -> t -> int list
(** Rolls back, releases locks; same return as {!commit}. Without [undo],
    page updates are rolled back physically from the WAL (when WAL-backed).
    With [undo], the callback runs {e as this transaction} (page updates
    attributed to it) to compensate logically — for stores whose in-memory
    bookkeeping would desync under physical page rollback — and only an
    Abort record is logged. Either way a crash before the Abort record makes
    recovery undo the transaction physically, which nets to the same
    state. *)

val active_count : manager -> int
