type state = Active | Committed | Aborted

type manager = {
  locks : Lock_manager.t;
  log : Rx_wal.Log_manager.t option;
  pool : Rx_storage.Buffer_pool.t option;
  mutable next_txid : int;
  mutable current : int; (* txid attributed to page updates *)
  mutable active : int;
}

type t = { mgr : manager; id : int; mutable state : state }

let create_manager ?log ?pool () =
  (* lock counters land in the pool's registry so the whole database
     instance reports to one place *)
  let metrics =
    match pool with
    | Some pool -> Rx_storage.Buffer_pool.metrics pool
    | None -> Rx_obs.Metrics.default
  in
  { locks = Lock_manager.create ~metrics (); log; pool; next_txid = 0; current = 0; active = 0 }

let lock_manager mgr = mgr.locks

let install_journal mgr =
  match (mgr.log, mgr.pool) with
  | Some log, Some pool ->
      Rx_wal.Journal.install pool log ~current_txid:(fun () -> mgr.current)
  | _ -> invalid_arg "Transaction.install_journal: manager has no log or pool"

let begin_txn mgr =
  mgr.next_txid <- mgr.next_txid + 1;
  mgr.active <- mgr.active + 1;
  { mgr; id = mgr.next_txid; state = Active }

let seed_txids mgr txid = if txid > mgr.next_txid then mgr.next_txid <- txid

let txid t = t.id
let is_active t = t.state = Active

let run_as t f =
  let saved = t.mgr.current in
  t.mgr.current <- t.id;
  Fun.protect ~finally:(fun () -> t.mgr.current <- saved) f

let ensure_active t =
  if t.state <> Active then invalid_arg "Transaction: not active"

let lock t resource mode =
  ensure_active t;
  (* ancestors first, coarsest first *)
  let rec ancestors r acc =
    match Resource.parent r with Some p -> ancestors p (p :: acc) | None -> acc
  in
  let intention = Lock_modes.intention_for mode in
  let rec acquire = function
    | [] -> Lock_manager.request t.mgr.locks ~txid:t.id resource mode
    | anc :: rest -> (
        match Lock_manager.request t.mgr.locks ~txid:t.id anc intention with
        | Lock_manager.Granted -> acquire rest
        | Lock_manager.Blocked blockers -> Lock_manager.Blocked blockers)
  in
  match acquire (ancestors resource []) with
  | Lock_manager.Granted -> `Granted
  | Lock_manager.Blocked blockers -> `Blocked blockers

let lock_detect t resource mode =
  match lock t resource mode with
  | `Granted -> `Granted
  | `Blocked blockers -> (
      (* the blocked request stays queued, so its waits-for edges are part
         of the graph we search *)
      match Lock_manager.find_deadlock_cycle t.mgr.locks with
      | Some (victim, cycle) -> `Deadlock (victim, cycle)
      | None -> `Blocked blockers)

let finish t =
  t.mgr.active <- t.mgr.active - 1;
  Lock_manager.cancel_waits t.mgr.locks ~txid:t.id;
  Lock_manager.release_all t.mgr.locks ~txid:t.id

let precommit t =
  ensure_active t;
  let durability =
    match t.mgr.log with
    | Some log ->
        let lsn =
          Rx_wal.Log_manager.append log
            (Rx_wal.Log_record.Commit { txid = t.id })
        in
        Some (log, lsn)
    | None -> None
  in
  t.state <- Committed;
  let unlocked = finish t in
  (* the wait hint is taken *after* [finish] decremented us: a window is
     only worth holding open when other committers may still arrive *)
  let wait = t.mgr.active > 0 in
  let await () =
    match durability with
    | Some (log, lsn) -> Rx_wal.Log_manager.group_commit log ~wait lsn
    | None -> ()
  in
  (unlocked, await)

let commit t =
  let unlocked, await = precommit t in
  await ();
  unlocked

let abort ?undo t =
  ensure_active t;
  (match undo with
  | Some compensate ->
      (* logical rollback: run compensating actions (attributed to this
         transaction in the WAL) instead of restoring page images — used
         when physical rollback would desync store-level in-memory state *)
      run_as t compensate;
      (match t.mgr.log with
      | Some log ->
          ignore
            (Rx_wal.Log_manager.append log (Rx_wal.Log_record.Abort { txid = t.id }));
          Rx_wal.Log_manager.flush log
      | None -> ())
  | None -> (
      match (t.mgr.log, t.mgr.pool) with
      | Some log, Some pool ->
          ignore (Rx_wal.Recovery.rollback log pool ~txid:t.id);
          ignore
            (Rx_wal.Log_manager.append log (Rx_wal.Log_record.Abort { txid = t.id }))
      | _ -> ()));
  t.state <- Aborted;
  finish t

let active_count mgr = mgr.active
