(** Lock manager extended for XML (§5): classic hash-bucketed lock table
    with FIFO wait queues, lock upgrades via mode suprema, and
    prefix-encoded node-ID resources whose conflicts are subtree overlaps.

    The manager is a synchronous state machine for the simulated-client
    harness: a blocked request is queued and the caller decides whether to
    wait (poll [is_waiting]) or abort; [release_all] reports which queued
    transactions became grantable. Deadlocks are detected from the
    waits-for graph. *)

type t

type outcome =
  | Granted
  | Blocked of int list (** transaction ids currently blocking this one *)

val create : ?metrics:Rx_obs.Metrics.t -> unit -> t
(** [metrics] receives the [lock.acquisitions] / [lock.waits] /
    [lock.upgrades] counters (default: the global registry). *)

val request : t -> txid:int -> Resource.t -> Lock_modes.t -> outcome
(** Acquires or upgrades. On conflict the request stays queued (re-request
    is idempotent). Does {e not} acquire ancestor intention locks — see
    {!Transaction}. *)

val cancel_waits : t -> txid:int -> unit
(** Drops any queued request of the transaction (used on abort). *)

val release_all : t -> txid:int -> int list
(** Releases everything the transaction holds and promotes waiters;
    returns the transactions whose queued request was granted. *)

val holds : t -> txid:int -> Resource.t -> Lock_modes.t option
val locks_held : t -> txid:int -> (Resource.t * Lock_modes.t) list
val is_waiting : t -> txid:int -> bool

val find_deadlock : t -> int option
(** Some transaction on a waits-for cycle (the youngest = largest txid),
    or [None]. *)

val stats : t -> int * int
(** (granted lock entries, waiting requests). *)
