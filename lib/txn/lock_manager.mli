(** Lock manager extended for XML (§5): classic hash-bucketed lock table
    with FIFO wait queues, lock upgrades via mode suprema, and
    prefix-encoded node-ID resources whose conflicts are subtree overlaps.

    The manager is a synchronous state machine for the simulated-client
    harness: a blocked request is queued and the caller decides whether to
    wait (poll [is_waiting]) or abort; [release_all] reports which queued
    transactions became grantable. Deadlocks are detected from the
    waits-for graph. *)

type t

type outcome =
  | Granted
  | Blocked of int list (** transaction ids currently blocking this one *)

exception Deadlock of { victim : int; cycle : int list }
(** Raised by callers (e.g. {!Rx_core.Database}) when a waits-for cycle is
    found: [victim] is the transaction designated to abort (the youngest on
    the cycle), [cycle] the transactions forming it. The lock manager itself
    only {e detects} cycles ({!find_deadlock_cycle}); victim abort is the
    session layer's job. *)

val create : ?metrics:Rx_obs.Metrics.t -> unit -> t
(** [metrics] receives the [lock.acquisitions] / [lock.wait] /
    [lock.upgrades] / [lock.deadlock] counters (default: the global
    registry). *)

val request : t -> txid:int -> Resource.t -> Lock_modes.t -> outcome
(** Acquires or upgrades. On conflict the request stays queued (re-request
    is idempotent). Does {e not} acquire ancestor intention locks — see
    {!Transaction}. *)

val cancel_waits : t -> txid:int -> unit
(** Drops any queued request of the transaction (used on abort). *)

val release_all : t -> txid:int -> int list
(** Releases everything the transaction holds and promotes waiters;
    returns the transactions whose queued request was granted. *)

val holds : t -> txid:int -> Resource.t -> Lock_modes.t option
(** The mode held on exactly this resource, if any (no hierarchy walk). *)

val locks_held : t -> txid:int -> (Resource.t * Lock_modes.t) list
(** Every granted lock of the transaction, in no particular order. *)

val is_waiting : t -> txid:int -> bool
(** Whether the transaction has a queued (not yet granted) request. *)

val find_deadlock : t -> int option
(** Some transaction on a waits-for cycle (the youngest = largest txid),
    or [None]. *)

val find_deadlock_cycle : t -> (int * int list) option
(** Like {!find_deadlock} but also returns the cycle's members
    [(victim, cycle)]. Increments the [lock.deadlock] counter when a cycle
    is found. *)

val stats : t -> int * int
(** (granted lock entries, waiting requests). *)
