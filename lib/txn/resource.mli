(** Lockable resources in the granularity hierarchy of §5: table → document
    → node (a prefix-encoded node ID, so a lock on a node covers its whole
    subtree: "ancestor-descendant relationship can be checked by testing if
    one is a prefix of the other"). *)

type t =
  | Table of int
  | Document of { table : int; docid : int }
  | Node of { table : int; docid : int; node : Rx_xmlstore.Node_id.t }

val parent : t -> t option
(** The next-coarser granule. *)

val overlaps : t -> t -> bool
(** Two resources conflict-check against each other: equal tables,
    equal (table, docid), or node IDs in ancestor-or-self relation within
    the same document. Different granularity levels never overlap directly
    (that is what intention modes are for). *)

val group_key : t -> int * int
(** Hash-table key: node resources of one document share a bucket so the
    prefix test can scan them. *)

val to_string : t -> string
(** Human-readable form for traces and deadlock reports. *)

val compare : t -> t -> int
(** Total order (used to sort lock sets deterministically in tests). *)
