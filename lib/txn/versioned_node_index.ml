open Rx_util

type t = { tree : Rx_btree.Btree.t }

let create pool = { tree = Rx_btree.Btree.create pool }
let attach pool ~meta_page = { tree = Rx_btree.Btree.attach pool ~meta_page }
let meta_page t = Rx_btree.Btree.meta_page t.tree

let max_version = 0x3fff_ffff

(* Key layout: docid | endpoint (length-prefixed so the descending version
   component cannot bleed into it) | complemented ver#. Within one endpoint,
   entries therefore sort newest version first — the paper's "with ver# in
   descending order". *)
let key ~docid ~endpoint ~version =
  if version <= 0 || version > max_version then
    invalid_arg "Versioned_node_index: version out of range";
  let buf = Buffer.create 24 in
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Key_codec.encode_string buf endpoint;
  Key_codec.encode_int64 buf (Int64.of_int (max_version - version));
  Buffer.contents buf

let endpoint_prefix ~docid ~endpoint =
  let buf = Buffer.create 24 in
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Key_codec.encode_string buf endpoint;
  Buffer.contents buf

let decode_key k =
  let docid, pos = Key_codec.decode_int64 k 0 in
  let endpoint, pos = Key_codec.decode_string k pos in
  let inv, _ = Key_codec.decode_int64 k pos in
  (Int64.to_int docid, endpoint, max_version - Int64.to_int inv)

let rid_value rid =
  let w = Bytes_io.Writer.create ~capacity:6 () in
  Rx_storage.Rid.encode w rid;
  Bytes_io.Writer.contents w

let insert t ~docid ~endpoint ~version rid =
  Rx_btree.Btree.insert t.tree ~key:(key ~docid ~endpoint ~version)
    ~value:(rid_value rid)

let remove t ~docid ~endpoint ~version =
  Rx_btree.Btree.delete t.tree (key ~docid ~endpoint ~version)

let seek t ~docid ~node ~snapshot =
  (* Scan from (docid, node, newest). Within one endpoint, versions arrive
     newest-first, so the first entry with version <= snapshot is the
     newest visible one; entries that are too new are simply skipped — if a
     whole endpoint is invisible at this snapshot, the scan falls through
     to the next endpoint, whose (older) interval then covers the node. *)
  let lo = endpoint_prefix ~docid ~endpoint:node in
  let result = ref None in
  Rx_btree.Btree.iter_range t.tree ~lo (fun k v ->
      let entry_docid, endpoint, version = decode_key k in
      if entry_docid <> docid then `Stop
      else if version <= snapshot then begin
        result :=
          Some (endpoint, version, Rx_storage.Rid.decode (Bytes_io.Reader.of_string v));
        `Stop
      end
      else `Continue);
  !result

let versions_at t ~docid ~endpoint =
  let acc = ref [] in
  Rx_btree.Btree.iter_prefix t.tree ~prefix:(endpoint_prefix ~docid ~endpoint)
    (fun k v ->
      let _, _, version = decode_key k in
      acc := (version, Rx_storage.Rid.decode (Bytes_io.Reader.of_string v)) :: !acc;
      `Continue);
  List.rev !acc

let entry_count t = Rx_btree.Btree.entry_count t.tree
