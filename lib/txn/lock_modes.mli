(** Multiple-granularity lock modes (§5.2, after Gray et al.): shared,
    exclusive, update, and the intention modes that let a transaction lock a
    table or document before locking nodes beneath it. *)

type t = IS | IX | S | SIX | U | X

val compatible : t -> t -> bool
(** [compatible held requested]. *)

val supremum : t -> t -> t
(** Least mode at least as strong as both (lock upgrade). *)

val stronger_or_equal : t -> t -> bool

val intention_for : t -> t
(** The ancestor-level intention mode required before taking this mode on a
    finer granule: IS for reads, IX for everything else. *)

val to_string : t -> string
