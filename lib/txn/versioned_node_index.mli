(** The sub-document multi-versioning index layout of §5.2: NodeID-index
    entries extended to [(DocID, NodeID, ver#, RID)] so that record-level
    consistency can combine node-ID locking with versioning. A reader at
    snapshot [s] looking up a logical position finds, among the interval
    endpoints at or after its NodeID, the newest version [<= s] — the paper
    stores [ver#] descending for exactly this seek, which is how it is
    encoded here (version numbers are complemented in the key).

    The paper leaves the full protocol open ("details are omitted here;
    efficient sub-document concurrency control ... remains a research
    area"); this module implements the data structure itself with its seek
    semantics, property-tested against a naive model. *)

type t

val create : Rx_storage.Buffer_pool.t -> t
(** Allocates a fresh (empty) index in the pool. *)

val attach : Rx_storage.Buffer_pool.t -> meta_page:int -> t
(** Re-opens an existing index by its B+tree meta page. *)

val meta_page : t -> int
(** The B+tree meta page — the handle to persist and pass to {!attach}. *)

val insert :
  t ->
  docid:int ->
  endpoint:Rx_xmlstore.Node_id.t ->
  version:int ->
  Rx_storage.Rid.t ->
  unit
(** Registers a record version covering the interval ending at [endpoint].
    Versions are positive and monotonically assigned by the caller. *)

val remove :
  t -> docid:int -> endpoint:Rx_xmlstore.Node_id.t -> version:int -> bool
(** Garbage-collects one version's entry. *)

val seek :
  t ->
  docid:int ->
  node:Rx_xmlstore.Node_id.t ->
  snapshot:int ->
  (Rx_xmlstore.Node_id.t * int * Rx_storage.Rid.t) option
(** The first interval endpoint [>= node] that has a version [<= snapshot]:
    [(endpoint, version, rid)] with the {e newest} qualifying version. *)

val versions_at :
  t -> docid:int -> endpoint:Rx_xmlstore.Node_id.t -> (int * Rx_storage.Rid.t) list
(** All versions recorded for one endpoint, newest first. *)

val entry_count : t -> int
