(** Document-level multi-versioning (§5.1): readers never lock and never
    block — each version of a document keeps its own packed records and
    NodeID-index entries, so "a reader's deferred access is guaranteed to
    be successful".

    As in the paper, the versioned NodeID-index keys sort a document's
    versions newest-first: the physical key is (DocID, ver#, NodeID, RID)
    with the version component inverted, implemented by mapping each
    (docid, version) pair onto an internal document id of the shared
    {!Rx_xmlstore.Doc_store}. XPath value indexes are expected to index only
    the most recent committed version (the paper's scheme); observers fire
    only for current versions.

    Timestamps: a staged version carries timestamp [-1] (invisible to every
    snapshot); committed versions carry the timestamp they were published
    at, where [0] means "visible since forever" (the version predates
    version tracking) and [>= 1] is a real commit timestamp. *)

type t

val create :
  ?record_threshold:int -> Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> t
(** Creates a versioned store over a fresh {!Rx_xmlstore.Doc_store}.
    [record_threshold] is passed through to the underlying store's packing
    policy. *)

val store : t -> Rx_xmlstore.Doc_store.t
(** The underlying document store (for wiring value-index observers). *)

type staged

val stage_write : t -> docid:int -> Rx_xml.Token.t list -> staged
(** Writes a new, not-yet-visible version of [docid] (a fresh insert if the
    document does not exist). Uncommitted versions are invisible to every
    snapshot. *)

val stage_delete : t -> docid:int -> staged

val staged_docid : staged -> int
(** The (external) document id the staged version belongs to. *)

val staged_internal : staged -> int option
(** Internal document id holding the staged content; [None] for a staged
    deletion. Valid until the version is aborted. *)

val commit : ?at:int -> t -> staged list -> int
(** Publishes the staged versions atomically and returns the commit
    timestamp. Without [?at] a fresh timestamp is allocated; [~at:ts]
    publishes at an explicit (past or present) timestamp — used to retain
    the pre-image of a document that existed before version tracking began
    ([~at:0] = visible since forever). Chains stay sorted newest-first.

    @raise Invalid_argument if [at] is negative. *)

val abort : t -> staged list -> unit
(** Discards staged (never-committed) versions and their storage. *)

val snapshot : t -> int
(** Current timestamp; reads at this snapshot see all commits so far. *)

val current_version : t -> docid:int -> int option
(** Internal document id of the latest committed version, if the document
    exists (used by value indexes, which track only current data). *)

val version_at : t -> snapshot:int -> docid:int -> int option

val lookup_at :
  t ->
  snapshot:int ->
  docid:int ->
  [ `Version of int  (** internal docid of the visible version *)
  | `Tombstone  (** deleted as of the snapshot *)
  | `Invisible  (** tracked, but every committed version is newer *)
  | `Untracked  (** no committed version chain for this document *) ]
(** Distinguishes "deleted at this snapshot" from "not tracked here" —
    callers overlaying MVCC on a current-state store fall back to that
    store only on [`Untracked]. *)

val tracked : t -> docid:int -> bool
(** Whether any committed version (or tombstone) chain exists for
    [docid]. *)

val iter_tracked : t -> (int -> unit) -> unit
(** Iterates the docids with a non-empty committed chain (order
    unspecified). *)

val events_at :
  t -> snapshot:int -> docid:int -> (Rx_xmlstore.Doc_store.event -> unit) -> unit
(** @raise Invalid_argument if the document does not exist at the
    snapshot. *)

val serialize_at : t -> snapshot:int -> docid:int -> string

val gc : t -> oldest_snapshot:int -> int
(** Drops versions superseded before the oldest live snapshot; returns the
    number of versions reclaimed. *)

val clear : t -> unit
(** Drops every committed version chain and its storage — used when the
    last reader that could see an old version has ended. Staged versions
    held by callers are unaffected. *)

val version_count : t -> docid:int -> int
