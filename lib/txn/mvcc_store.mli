(** Document-level multi-versioning (§5.1): readers never lock and never
    block — each version of a document keeps its own packed records and
    NodeID-index entries, so "a reader's deferred access is guaranteed to
    be successful".

    As in the paper, the versioned NodeID-index keys sort a document's
    versions newest-first: the physical key is (DocID, ver#, NodeID, RID)
    with the version component inverted, implemented by mapping each
    (docid, version) pair onto an internal document id of the shared
    {!Rx_xmlstore.Doc_store}. XPath value indexes are expected to index only
    the most recent committed version (the paper's scheme); observers fire
    only for current versions. *)

type t

val create :
  ?record_threshold:int -> Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> t

val store : t -> Rx_xmlstore.Doc_store.t
(** The underlying document store (for wiring value-index observers). *)

type staged

val stage_write : t -> docid:int -> Rx_xml.Token.t list -> staged
(** Writes a new, not-yet-visible version of [docid] (a fresh insert if the
    document does not exist). Uncommitted versions are invisible to every
    snapshot. *)

val stage_delete : t -> docid:int -> staged

val commit : t -> staged list -> int
(** Publishes the staged versions atomically and returns the commit
    timestamp. *)

val abort : t -> staged list -> unit
(** Discards staged versions and their storage. *)

val snapshot : t -> int
(** Current timestamp; reads at this snapshot see all commits so far. *)

val current_version : t -> docid:int -> int option
(** Internal document id of the latest committed version, if the document
    exists (used by value indexes, which track only current data). *)

val version_at : t -> snapshot:int -> docid:int -> int option

val events_at :
  t -> snapshot:int -> docid:int -> (Rx_xmlstore.Doc_store.event -> unit) -> unit
(** @raise Invalid_argument if the document does not exist at the
    snapshot. *)

val serialize_at : t -> snapshot:int -> docid:int -> string

val gc : t -> oldest_snapshot:int -> int
(** Drops versions superseded before the oldest live snapshot; returns the
    number of versions reclaimed. *)

val version_count : t -> docid:int -> int
