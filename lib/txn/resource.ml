open Rx_xmlstore

type t =
  | Table of int
  | Document of { table : int; docid : int }
  | Node of { table : int; docid : int; node : Node_id.t }

let parent = function
  | Table _ -> None
  | Document { table; _ } -> Some (Table table)
  | Node { table; docid; _ } -> Some (Document { table; docid })

let overlaps a b =
  match (a, b) with
  | Table x, Table y -> x = y
  | Document x, Document y -> x.table = y.table && x.docid = y.docid
  | Node x, Node y ->
      x.table = y.table && x.docid = y.docid
      && (Node_id.is_ancestor_or_self ~ancestor:x.node y.node
         || Node_id.is_ancestor_or_self ~ancestor:y.node x.node)
  | (Table _ | Document _ | Node _), _ -> false

let group_key = function
  | Table t -> (t, -1)
  | Document { table; docid } -> (table, docid)
  | Node { table; docid; _ } -> (table, docid)

let to_string = function
  | Table t -> Printf.sprintf "table:%d" t
  | Document { table; docid } -> Printf.sprintf "doc:%d/%d" table docid
  | Node { table; docid; node } ->
      Printf.sprintf "node:%d/%d/%s" table docid (Node_id.to_hex node)

let compare = Stdlib.compare
