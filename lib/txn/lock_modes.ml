type t = IS | IX | S | SIX | U | X

(* Standard compatibility matrix; U is compatible with S but not with
   another U (avoids convoy deadlocks on read-modify-write). *)
let compatible held requested =
  match (held, requested) with
  | IS, (IS | IX | S | SIX | U) -> true
  | IX, (IS | IX) -> true
  | S, (IS | S | U) -> true
  | SIX, IS -> true
  | U, (IS | S) -> true
  | X, _ | _, X -> false
  | IX, (S | SIX | U) | S, (IX | SIX) | SIX, (IX | S | SIX | U)
  | U, (IX | SIX | U) ->
      false

(* The supremum is characterized by compatibility: a third transaction's
   mode is compatible with [supremum a b] iff it is compatible with both
   [a] and [b] (verified by a property test). *)
let supremum a b =
  if a = b then a
  else
    match (a, b) with
    | IS, o | o, IS -> o
    | X, _ | _, X -> X
    | S, U | U, S -> U
    | (IX | SIX), (S | SIX | U | IX) | (S | U), (IX | SIX) -> SIX
    | (S | U), (S | U) -> U

let stronger_or_equal a b = supremum a b = a

let intention_for = function IS | S -> IS | IX | SIX | U | X -> IX

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | SIX -> "SIX"
  | U -> "U"
  | X -> "X"


