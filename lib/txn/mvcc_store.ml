open Rx_xmlstore

(* A version record: commit timestamp and the internal docid holding its
   packed records. [ts] is -1 while the version is staged (invisible to
   every snapshot), 0 for versions that predate version tracking ("visible
   since forever"), and >= 1 for versions published at that commit
   timestamp. [None] internal id encodes a committed deletion
   (tombstone). *)
type version = { mutable ts : int; internal : int option }

type t = {
  ds : Doc_store.t;
  mutable next_ts : int;
  mutable next_internal : int;
  versions : (int, version list ref) Hashtbl.t; (* newest (highest ts) first *)
}

type staged = { docid : int; version : version }

let create ?record_threshold pool dict =
  {
    ds = Doc_store.create ?record_threshold pool dict;
    next_ts = 0;
    next_internal = 1;
    versions = Hashtbl.create 32;
  }

let store t = t.ds

let chain t docid =
  match Hashtbl.find_opt t.versions docid with
  | Some c -> c
  | None ->
      let c = ref [] in
      Hashtbl.replace t.versions docid c;
      c

let stage_write t ~docid tokens =
  let internal = t.next_internal in
  t.next_internal <- internal + 1;
  Doc_store.insert_tokens t.ds ~docid:internal tokens;
  { docid; version = { ts = -1; internal = Some internal } }

let stage_delete _t ~docid = { docid; version = { ts = -1; internal = None } }

let staged_docid s = s.docid
let staged_internal s = s.version.internal

(* Insert keeping the chain sorted newest-first; among equal timestamps the
   most recently published version wins (goes first). *)
let insert_sorted c v =
  let rec go = function
    | older :: _ as rest when older.ts <= v.ts -> v :: rest
    | newer :: rest -> newer :: go rest
    | [] -> [ v ]
  in
  c := go !c

let commit ?at t staged =
  let ts =
    match at with
    | None ->
        t.next_ts <- t.next_ts + 1;
        t.next_ts
    | Some ts ->
        if ts < 0 then invalid_arg "Mvcc_store.commit: negative timestamp";
        if ts > t.next_ts then t.next_ts <- ts;
        ts
  in
  List.iter
    (fun s ->
      s.version.ts <- ts;
      insert_sorted (chain t s.docid) s.version)
    staged;
  ts

let abort t staged =
  List.iter
    (fun s ->
      match s.version.internal with
      | Some internal when s.version.ts < 0 ->
          Doc_store.delete_document t.ds ~docid:internal
      | _ -> ())
    staged

let snapshot t = t.next_ts

let version_at t ~snapshot ~docid =
  match Hashtbl.find_opt t.versions docid with
  | None -> None
  | Some c -> (
      match
        List.find_opt (fun v -> v.ts >= 0 && v.ts <= snapshot) !c
      with
      | Some { internal; _ } -> internal
      | None -> None)

let lookup_at t ~snapshot ~docid =
  match Hashtbl.find_opt t.versions docid with
  | None -> `Untracked
  | Some c -> (
      match List.find_opt (fun v -> v.ts >= 0 && v.ts <= snapshot) !c with
      | Some { internal = Some i; _ } -> `Version i
      | Some { internal = None; _ } -> `Tombstone
      | None ->
          if List.exists (fun v -> v.ts >= 0) !c then `Invisible
          else `Untracked)

let tracked t ~docid =
  match Hashtbl.find_opt t.versions docid with
  | None -> false
  | Some c -> List.exists (fun v -> v.ts >= 0) !c

let iter_tracked t f =
  Hashtbl.iter
    (fun docid c -> if List.exists (fun v -> v.ts >= 0) !c then f docid)
    t.versions

let current_version t ~docid = version_at t ~snapshot:t.next_ts ~docid

let events_at t ~snapshot ~docid f =
  match version_at t ~snapshot ~docid with
  | Some internal -> Doc_store.events t.ds ~docid:internal f
  | None ->
      invalid_arg
        (Printf.sprintf "Mvcc_store: document %d not visible at snapshot %d" docid
           snapshot)

let serialize_at t ~snapshot ~docid =
  match version_at t ~snapshot ~docid with
  | Some internal -> Doc_store.serialize t.ds ~docid:internal
  | None ->
      invalid_arg
        (Printf.sprintf "Mvcc_store: document %d not visible at snapshot %d" docid
           snapshot)

let gc t ~oldest_snapshot =
  let reclaimed = ref 0 in
  Hashtbl.iter
    (fun _ c ->
      (* keep every version a snapshot >= oldest could still read: all
         versions newer than the first one visible at [oldest_snapshot] *)
      let rec split kept = function
        | [] -> (List.rev kept, [])
        | v :: rest ->
            if v.ts >= 0 && v.ts <= oldest_snapshot then
              (List.rev (v :: kept), rest)
            else split (v :: kept) rest
      in
      let keep, drop = split [] !c in
      List.iter
        (fun v ->
          match v.internal with
          | Some internal ->
              Doc_store.delete_document t.ds ~docid:internal;
              incr reclaimed
          | None -> incr reclaimed)
        drop;
      c := keep)
    t.versions;
  !reclaimed

let clear t =
  Hashtbl.iter
    (fun _ c ->
      List.iter
        (fun v ->
          match v.internal with
          | Some internal when v.ts >= 0 ->
              Doc_store.delete_document t.ds ~docid:internal
          | _ -> ())
        !c)
    t.versions;
  Hashtbl.reset t.versions

let version_count t ~docid =
  match Hashtbl.find_opt t.versions docid with
  | None -> 0
  | Some c -> List.length (List.filter (fun v -> v.ts >= 0) !c)
