type entry = { txid : int; resource : Resource.t; mutable mode : Lock_modes.t }

type bucket = {
  mutable granted : entry list;
  mutable queue : entry list; (* FIFO: head is the oldest waiter *)
}

type t = {
  buckets : (int * int, bucket) Hashtbl.t;
  c_acquisitions : Rx_obs.Metrics.counter;
  c_waits : Rx_obs.Metrics.counter;
  c_upgrades : Rx_obs.Metrics.counter;
  c_deadlocks : Rx_obs.Metrics.counter;
}

type outcome = Granted | Blocked of int list

exception Deadlock of { victim : int; cycle : int list }

let create ?(metrics = Rx_obs.Metrics.default) () =
  {
    buckets = Hashtbl.create 64;
    c_acquisitions = Rx_obs.Metrics.counter metrics "lock.acquisitions";
    c_waits = Rx_obs.Metrics.counter metrics "lock.wait";
    c_upgrades = Rx_obs.Metrics.counter metrics "lock.upgrades";
    c_deadlocks = Rx_obs.Metrics.counter metrics "lock.deadlock";
  }

let bucket_for t resource =
  let key = Resource.group_key resource in
  match Hashtbl.find_opt t.buckets key with
  | Some b -> b
  | None ->
      let b = { granted = []; queue = [] } in
      Hashtbl.replace t.buckets key b;
      b

(* Conflicts of (txid, resource, mode) against granted entries. An ancestor
   bucket never contains finer-granularity resources of other granules
   because group keys separate them. *)
let conflicts bucket ~txid resource mode =
  List.filter_map
    (fun e ->
      if e.txid <> txid
         && Resource.overlaps e.resource resource
         && not (Lock_modes.compatible e.mode mode)
      then Some e.txid
      else None)
    bucket.granted
  |> List.sort_uniq compare

let own_entry bucket ~txid resource =
  List.find_opt
    (fun e -> e.txid = txid && Resource.compare e.resource resource = 0)
    bucket.granted

let queued_entry bucket ~txid resource =
  List.find_opt
    (fun e -> e.txid = txid && Resource.compare e.resource resource = 0)
    bucket.queue

let request t ~txid resource mode =
  let bucket = bucket_for t resource in
  let target =
    match own_entry bucket ~txid resource with
    | Some e -> Lock_modes.supremum e.mode mode
    | None -> mode
  in
  match conflicts bucket ~txid resource target with
  | [] ->
      Rx_obs.Metrics.incr t.c_acquisitions;
      (match own_entry bucket ~txid resource with
      | Some e ->
          if e.mode <> target then Rx_obs.Metrics.incr t.c_upgrades;
          e.mode <- target
      | None ->
          bucket.granted <- { txid; resource; mode = target } :: bucket.granted);
      (* a grant supersedes any previous queued request *)
      bucket.queue <- List.filter (fun e -> not (e.txid = txid && Resource.compare e.resource resource = 0)) bucket.queue;
      Granted
  | blockers ->
      Rx_obs.Metrics.incr t.c_waits;
      (match queued_entry bucket ~txid resource with
      | Some e -> e.mode <- Lock_modes.supremum e.mode target
      | None -> bucket.queue <- bucket.queue @ [ { txid; resource; mode = target } ]);
      Blocked blockers

let cancel_waits t ~txid =
  Hashtbl.iter
    (fun _ bucket -> bucket.queue <- List.filter (fun e -> e.txid <> txid) bucket.queue)
    t.buckets

let promote_waiters t =
  let newly = ref [] in
  Hashtbl.iter
    (fun _ bucket ->
      let rec scan = function
        | [] -> []
        | e :: rest ->
            if conflicts bucket ~txid:e.txid e.resource e.mode = [] then begin
              Rx_obs.Metrics.incr t.c_acquisitions;
              (match own_entry bucket ~txid:e.txid e.resource with
              | Some g -> g.mode <- Lock_modes.supremum g.mode e.mode
              | None -> bucket.granted <- e :: bucket.granted);
              newly := e.txid :: !newly;
              scan rest
            end
            else e :: scan rest
      in
      bucket.queue <- scan bucket.queue)
    t.buckets;
  List.sort_uniq compare !newly

let release_all t ~txid =
  Hashtbl.iter
    (fun _ bucket ->
      bucket.granted <- List.filter (fun e -> e.txid <> txid) bucket.granted;
      bucket.queue <- List.filter (fun e -> e.txid <> txid) bucket.queue)
    t.buckets;
  let granted = promote_waiters t in
  (* drop empty buckets so the table does not grow with every granule ever
     touched (release_all iterates all buckets) *)
  Hashtbl.filter_map_inplace
    (fun _ bucket ->
      if bucket.granted = [] && bucket.queue = [] then None else Some bucket)
    t.buckets;
  granted

let holds t ~txid resource =
  match Hashtbl.find_opt t.buckets (Resource.group_key resource) with
  | None -> None
  | Some bucket -> Option.map (fun e -> e.mode) (own_entry bucket ~txid resource)

let locks_held t ~txid =
  Hashtbl.fold
    (fun _ bucket acc ->
      List.fold_left
        (fun acc e -> if e.txid = txid then (e.resource, e.mode) :: acc else acc)
        acc bucket.granted)
    t.buckets []

let is_waiting t ~txid =
  Hashtbl.fold
    (fun _ bucket acc -> acc || List.exists (fun e -> e.txid = txid) bucket.queue)
    t.buckets false

let waits_for_edges t =
  Hashtbl.fold
    (fun _ bucket acc ->
      List.fold_left
        (fun acc e ->
          List.fold_left
            (fun acc blocker -> (e.txid, blocker) :: acc)
            acc
            (conflicts bucket ~txid:e.txid e.resource e.mode))
        acc bucket.queue)
    t.buckets []

let find_deadlock_cycle t =
  let edges = waits_for_edges t in
  let adj = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a)))
    edges;
  (* DFS cycle detection; victim = the youngest transaction on the cycle *)
  let color = Hashtbl.create 16 in
  let cycle = ref None in
  let rec dfs path v =
    match Hashtbl.find_opt color v with
    | Some `Done -> ()
    | Some `Active ->
        (* found a cycle: the suffix of the path from v *)
        let rec suffix = function
          | x :: rest -> if x = v then x :: rest else suffix rest
          | [] -> []
        in
        let members = suffix (List.rev (v :: path)) in
        let victim = List.fold_left max v members in
        if !cycle = None then cycle := Some (victim, members)
    | None ->
        Hashtbl.replace color v `Active;
        List.iter (dfs (v :: path)) (Option.value ~default:[] (Hashtbl.find_opt adj v));
        Hashtbl.replace color v `Done
  in
  Hashtbl.iter (fun v _ -> if !cycle = None then dfs [] v) adj;
  (match !cycle with Some _ -> Rx_obs.Metrics.incr t.c_deadlocks | None -> ());
  !cycle

let find_deadlock t = Option.map fst (find_deadlock_cycle t)

let stats t =
  Hashtbl.fold
    (fun _ bucket (g, w) ->
      (g + List.length bucket.granted, w + List.length bucket.queue))
    t.buckets (0, 0)
