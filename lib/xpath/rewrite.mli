(** Query rewrite (§4.2): the parent axis is supported "based on query
    rewrite" — [p/q/..] becomes [p[q]] — and
    [descendant-or-self::node()/child::x] collapses to [descendant::x], so
    the streaming engine only ever sees the five forward axes. *)

exception Unsupported of string
(** Raised for parent-axis uses outside the rewritable pattern (e.g. a
    leading [..] or [..] after a descendant step). *)

val simplify : Ast.path -> Ast.path
(** Idempotent; also rewrites paths inside predicates. *)
