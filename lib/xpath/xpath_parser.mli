(** XPath parser for the §4.2 subset. The paper generates its parser with
    LALR(1) and a simplified mode-less lexical scanner; this is the
    equivalent hand-written recursive-descent parser over the same grammar.

    Supported syntax:
    - absolute and relative paths, [/], [//], [.], [..], [@attr], [*],
      [prefix:name], [text()], [comment()], [node()],
      [processing-instruction()], explicit [axis::test] for the five
      forward axes and [parent];
    - predicates: relative paths (existence), comparisons between paths and
      string/number literals, [and], [or], [not(...)], parentheses. *)

exception Error of { pos : int; msg : string }

val parse : string -> Ast.path
(** @raise Error on malformed input. *)

val parse_opt : string -> (Ast.path, string) result
