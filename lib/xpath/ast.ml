type axis = Child | Descendant | Attribute | Self | Descendant_or_self | Parent

type node_test =
  | Name of { prefix : string option; local : string }
  | Wildcard
  | Text_test
  | Comment_test
  | Pi_test
  | Node_test

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path = { absolute : bool; steps : step list }

and step = { axis : axis; test : node_test; preds : pred list }

and pred =
  | Exists of path
  | Compare of cmp * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and operand = Op_path of path | Op_string of string | Op_number of float

let step ?(preds = []) axis test = { axis; test; preds }
let named local = Name { prefix = None; local }

let is_linear { steps; _ } =
  let rec check = function
    | [] -> true
    | s :: _ when s.preds <> [] -> false
    | { axis = Child | Descendant | Attribute; _ } :: rest -> check rest
    | { axis = Descendant_or_self; test = Node_test; _ }
      :: ({ axis = Attribute; _ } :: _ as rest) ->
        (* the '//@attr' shape: descendant-or-self::node()/@attr *)
        check rest
    | { axis = Self | Descendant_or_self | Parent; _ } :: _ -> false
  in
  check steps

let cmp_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let flip_cmp = function
  | Eq -> Eq
  | Neq -> Neq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let test_to_string = function
  | Name { prefix = Some p; local } -> p ^ ":" ^ local
  | Name { prefix = None; local } -> local
  | Wildcard -> "*"
  | Text_test -> "text()"
  | Comment_test -> "comment()"
  | Pi_test -> "processing-instruction()"
  | Node_test -> "node()"

let rec to_string { absolute; steps } =
  match steps with
  | [] -> if absolute then "/" else "."
  | _ ->
      let step_str i s =
        let sep =
          match s.axis with
          | Descendant -> if i = 0 && not absolute then ".//" else "//"
          | _ ->
              if i = 0 then (if absolute then "/" else "")
              else "/"
        in
        let body =
          match (s.axis, s.test) with
          | Self, Node_test -> "."
          | Parent, Node_test -> ".."
          | Self, t -> "self::" ^ test_to_string t
          | Parent, t -> "parent::" ^ test_to_string t
          | Attribute, t -> "@" ^ test_to_string t
          | Descendant_or_self, t -> "descendant-or-self::" ^ test_to_string t
          | (Child | Descendant), t -> test_to_string t
        in
        sep ^ body ^ String.concat "" (List.map pred_to_string s.preds)
      in
      String.concat "" (List.mapi step_str steps)

and pred_to_string p = "[" ^ expr_to_string p ^ "]"

and expr_to_string = function
  | Exists path -> to_string path
  | Compare (op, a, b) ->
      operand_to_string a ^ " " ^ cmp_to_string op ^ " " ^ operand_to_string b
  | And (a, b) -> expr_to_string a ^ " and " ^ expr_to_string b
  | Or (a, b) -> "(" ^ expr_to_string a ^ " or " ^ expr_to_string b ^ ")"
  | Not a -> "not(" ^ expr_to_string a ^ ")"

and operand_to_string = function
  | Op_path p -> to_string p
  | Op_string s -> "\"" ^ s ^ "\""
  | Op_number f ->
      if Float.is_integer f then string_of_int (int_of_float f)
      else string_of_float f

let equal a b = a = b
