(** Abstract syntax for the XPath subset of §4.2: the five forward axes
    (child, attribute, descendant, self, descendant-or-self) plus the parent
    axis, which {!Rewrite} eliminates before evaluation. Predicates combine
    relative-path existence tests and value comparisons with [and]/[or]/
    [not]. *)

type axis = Child | Descendant | Attribute | Self | Descendant_or_self | Parent

type node_test =
  | Name of { prefix : string option; local : string }
  | Wildcard
  | Text_test
  | Comment_test
  | Pi_test
  | Node_test (* node() *)

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type path = { absolute : bool; steps : step list }

and step = { axis : axis; test : node_test; preds : pred list }

and pred =
  | Exists of path (* relative path: true iff non-empty *)
  | Compare of cmp * operand * operand
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

and operand =
  | Op_path of path (* relative *)
  | Op_string of string
  | Op_number of float

val step : ?preds:pred list -> axis -> node_test -> step
val named : string -> node_test

val is_linear : path -> bool
(** No predicates anywhere, axes restricted to child/descendant/attribute —
    the shape accepted for XPath value-index definitions (§3.3). *)

val to_string : path -> string
val cmp_to_string : cmp -> string
val flip_cmp : cmp -> cmp
(** [a op b] ≡ [b (flip_cmp op) a]. *)

val equal : path -> path -> bool
