exception Unsupported of string

let rec simplify_steps steps =
  let steps = List.map simplify_step steps in
  (* descendant-or-self::node()/child::x  ==>  descendant::x *)
  let rec collapse = function
    | ({ Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; preds = [] } as _dos)
      :: ({ Ast.axis = Ast.Child; _ } as next)
      :: rest ->
        collapse ({ next with Ast.axis = Ast.Descendant } :: rest)
    | s :: rest -> s :: collapse rest
    | [] -> []
  in
  let steps = collapse steps in
  (* a non-final self::node() step with no predicates is the identity:
     ./x == x, so .//t becomes descendant::t *)
  let rec drop_identity = function
    | { Ast.axis = Ast.Self; test = Ast.Node_test; preds = [] } :: (_ :: _ as rest)
      ->
        drop_identity rest
    | s :: rest -> s :: drop_identity rest
    | [] -> []
  in
  let steps = drop_identity steps in
  (* p / q / ..  ==>  p[q]  (q on the child or attribute axis) *)
  let rec eliminate_parents acc = function
    | [] -> List.rev acc
    | { Ast.axis = Ast.Parent; test; preds } :: rest -> (
        (match test with
        | Ast.Node_test | Ast.Wildcard -> ()
        | _ -> raise (Unsupported "parent axis with a name test"));
        if preds <> [] then raise (Unsupported "predicate on a parent step");
        match acc with
        | q :: p :: acc' -> (
            match q.Ast.axis with
            | Ast.Child | Ast.Attribute ->
                let p' =
                  {
                    p with
                    Ast.preds =
                      p.Ast.preds
                      @ [ Ast.Exists { Ast.absolute = false; steps = [ q ] } ];
                  }
                in
                eliminate_parents (p' :: acc') rest
            | Ast.Descendant | Ast.Self | Ast.Descendant_or_self | Ast.Parent ->
                raise (Unsupported "parent axis after a non-child step"))
        | [ q ] -> (
            (* the path starts p/.. relative to the context: selects the
               context itself when it has such a child *)
            match q.Ast.axis with
            | Ast.Child | Ast.Attribute ->
                eliminate_parents
                  [
                    {
                      Ast.axis = Ast.Self;
                      test = Ast.Node_test;
                      preds = [ Ast.Exists { Ast.absolute = false; steps = [ q ] } ];
                    };
                  ]
                  rest
            | _ -> raise (Unsupported "parent axis after a non-child step"))
        | [] -> raise (Unsupported "leading parent axis"))
    | s :: rest -> eliminate_parents (s :: acc) rest
  in
  eliminate_parents [] steps

and simplify_step s = { s with Ast.preds = List.map simplify_pred s.Ast.preds }

and simplify_pred = function
  | Ast.Exists p -> Ast.Exists (simplify p)
  | Ast.Compare (op, a, b) -> Ast.Compare (op, simplify_operand a, simplify_operand b)
  | Ast.And (a, b) -> Ast.And (simplify_pred a, simplify_pred b)
  | Ast.Or (a, b) -> Ast.Or (simplify_pred a, simplify_pred b)
  | Ast.Not a -> Ast.Not (simplify_pred a)

and simplify_operand = function
  | Ast.Op_path p -> Ast.Op_path (simplify p)
  | (Ast.Op_string _ | Ast.Op_number _) as o -> o

and simplify path = { path with Ast.steps = simplify_steps path.Ast.steps }
