exception Error of { pos : int; msg : string }

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error { pos; msg })) fmt

type state = { src : string; mutable pos : int }

let at_eof st = st.pos >= String.length st.src
let peek st = if at_eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st n = st.pos <- st.pos + n

let skip_ws st =
  while
    (not (at_eof st))
    && (peek st = ' ' || peek st = '\t' || peek st = '\n' || peek st = '\r')
  do
    advance st 1
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let eat st s =
  if looking_at st s then begin
    advance st (String.length s);
    true
  end
  else false

let expect st s = if not (eat st s) then error st.pos "expected %S" s

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || Char.code c >= 0x80

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let read_ncname st =
  let start = st.pos in
  if at_eof st || not (is_name_start (peek st)) then error st.pos "expected a name";
  while (not (at_eof st)) && is_name_char (peek st) do
    advance st 1
  done;
  String.sub st.src start (st.pos - start)

(* a name test, possibly prefixed or one of the kind tests *)
let read_node_test st =
  if eat st "*" then Ast.Wildcard
  else begin
    let first = read_ncname st in
    if looking_at st "::" then error st.pos "unexpected axis specifier"
    else if eat st "(" then begin
      skip_ws st;
      expect st ")";
      match first with
      | "text" -> Ast.Text_test
      | "comment" -> Ast.Comment_test
      | "node" -> Ast.Node_test
      | "processing-instruction" -> Ast.Pi_test
      | _ -> error st.pos "unknown kind test %s()" first
    end
    else if peek st = ':' && peek2 st <> ':' && is_name_start (peek2 st) then begin
      advance st 1;
      let local = read_ncname st in
      Ast.Name { prefix = Some first; local }
    end
    else Ast.Name { prefix = None; local = first }
  end

let read_number st =
  let start = st.pos in
  while (not (at_eof st)) && (peek st >= '0' && peek st <= '9') do
    advance st 1
  done;
  if peek st = '.' then begin
    advance st 1;
    while (not (at_eof st)) && (peek st >= '0' && peek st <= '9') do
      advance st 1
    done
  end;
  if st.pos = start then error st.pos "expected a number";
  float_of_string (String.sub st.src start (st.pos - start))

let read_string_literal st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then error st.pos "expected a string literal";
  advance st 1;
  let start = st.pos in
  while (not (at_eof st)) && peek st <> quote do
    advance st 1
  done;
  if at_eof st then error st.pos "unterminated string literal";
  let s = String.sub st.src start (st.pos - start) in
  advance st 1;
  s

(* one step after its leading axis has been determined *)
let rec read_step st ~axis =
  skip_ws st;
  let axis, test =
    if eat st ".." then (Ast.Parent, Ast.Node_test)
    else if peek st = '.' && peek2 st <> '.' then begin
      advance st 1;
      (Ast.Self, Ast.Node_test)
    end
    else if eat st "@" then (Ast.Attribute, read_node_test st)
    else begin
      (* explicit axis::? *)
      let saved = st.pos in
      if is_name_start (peek st) then begin
        let word = read_ncname st in
        if eat st "::" then begin
          let a =
            match word with
            | "child" -> Ast.Child
            | "descendant" -> Ast.Descendant
            | "attribute" -> Ast.Attribute
            | "self" -> Ast.Self
            | "descendant-or-self" -> Ast.Descendant_or_self
            | "parent" -> Ast.Parent
            | other -> error saved "unsupported axis '%s'" other
          in
          (* // before an explicit axis is not meaningful in our subset *)
          let a = if axis = Ast.Descendant && a = Ast.Child then Ast.Descendant else a in
          (a, read_node_test st)
        end
        else begin
          st.pos <- saved;
          (axis, read_node_test st)
        end
      end
      else (axis, read_node_test st)
    end
  in
  let preds = ref [] in
  skip_ws st;
  while eat st "[" do
    let p = read_or_expr st in
    skip_ws st;
    expect st "]";
    preds := p :: !preds;
    skip_ws st
  done;
  { Ast.axis; test; preds = List.rev !preds }

and read_relative_path st ~first_axis =
  (* '//' before '@' or '.' needs an explicit descendant-or-self::node()
     step, since the attribute/self axes carry no depth themselves *)
  let steps_for ~axis =
    let s = read_step st ~axis in
    if axis = Ast.Descendant && s.Ast.axis = Ast.Attribute then
      [ s; { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; preds = [] } ]
    else if axis = Ast.Descendant && s.Ast.axis = Ast.Self then
      [ { s with Ast.axis = Ast.Descendant_or_self } ]
    else [ s ]
  in
  let steps = ref (steps_for ~axis:first_axis) in
  let rec loop () =
    skip_ws st;
    if eat st "//" then begin
      steps := steps_for ~axis:Ast.Descendant @ !steps;
      loop ()
    end
    else if eat st "/" then begin
      steps := steps_for ~axis:Ast.Child @ !steps;
      loop ()
    end
  in
  loop ();
  List.rev !steps

and read_path st =
  skip_ws st;
  if eat st "//" then { Ast.absolute = true; steps = read_relative_path st ~first_axis:Ast.Descendant }
  else if looking_at st "/" then begin
    advance st 1;
    skip_ws st;
    if at_eof st || peek st = ']' || peek st = ')' then { Ast.absolute = true; steps = [] }
    else { Ast.absolute = true; steps = read_relative_path st ~first_axis:Ast.Child }
  end
  else { Ast.absolute = false; steps = read_relative_path st ~first_axis:Ast.Child }

and read_or_expr st =
  let left = read_and_expr st in
  skip_ws st;
  if looking_at st "or" && not (is_name_char (if st.pos + 2 < String.length st.src then st.src.[st.pos + 2] else ' ')) then begin
    advance st 2;
    Ast.Or (left, read_or_expr st)
  end
  else left

and read_and_expr st =
  let left = read_comparison st in
  skip_ws st;
  if looking_at st "and" && not (is_name_char (if st.pos + 3 < String.length st.src then st.src.[st.pos + 3] else ' ')) then begin
    advance st 3;
    Ast.And (left, read_and_expr st)
  end
  else left

and read_comparison st =
  skip_ws st;
  if looking_at st "not" then begin
    let saved = st.pos in
    advance st 3;
    skip_ws st;
    if eat st "(" then begin
      let inner = read_or_expr st in
      skip_ws st;
      expect st ")";
      Ast.Not inner
    end
    else begin
      st.pos <- saved;
      read_comparison_tail st
    end
  end
  else if eat st "(" then begin
    let inner = read_or_expr st in
    skip_ws st;
    expect st ")";
    inner
  end
  else read_comparison_tail st

and read_comparison_tail st =
  let left = read_operand st in
  skip_ws st;
  let op =
    if eat st "!=" then Some Ast.Neq
    else if eat st "<=" then Some Ast.Le
    else if eat st ">=" then Some Ast.Ge
    else if eat st "=" then Some Ast.Eq
    else if eat st "<" then Some Ast.Lt
    else if eat st ">" then Some Ast.Gt
    else None
  in
  match op with
  | None -> (
      match left with
      | Ast.Op_path p -> Ast.Exists p
      | Ast.Op_string _ | Ast.Op_number _ ->
          error st.pos "literal cannot stand alone as a predicate")
  | Some op ->
      let right = read_operand st in
      Ast.Compare (op, left, right)

and read_operand st =
  skip_ws st;
  if peek st = '"' || peek st = '\'' then Ast.Op_string (read_string_literal st)
  else if (peek st >= '0' && peek st <= '9') || (peek st = '.' && peek2 st >= '0' && peek2 st <= '9')
  then Ast.Op_number (read_number st)
  else Ast.Op_path (read_path st)

let parse src =
  let st = { src; pos = 0 } in
  let path = read_path st in
  skip_ws st;
  if not (at_eof st) then error st.pos "trailing input";
  path

let parse_opt src =
  match parse src with
  | path -> Ok path
  | exception Error { pos; msg } ->
      Result.Error (Printf.sprintf "XPath error at %d: %s" pos msg)
