(* A linear path denotes a language of label sequences ending either at an
   element or at an attribute: a child step is one forced label, a descendant
   step is "any element labels, then this one". We check inclusion
   L(query) ⊆ L(index) with a memoized simulation; the OR over "absorb within
   a descendant gap" vs "match here" makes the test sound but not complete
   (classic for this fragment, and sufficient for an index advisor). *)

type lstep = { gap : bool; test : Ast.node_test; attr : bool }

let to_linear_steps p =
  if not (Ast.is_linear p) then invalid_arg "Containment: path is not linear";
  if not p.Ast.absolute then invalid_arg "Containment: path is not absolute";
  let rec conv = function
    | [] -> []
    | { Ast.axis = Ast.Descendant_or_self; test = Ast.Node_test; _ }
      :: { Ast.axis = Ast.Attribute; test; _ }
      :: rest ->
        { gap = true; test; attr = true } :: conv rest
    | { Ast.axis = Ast.Child; test; _ } :: rest ->
        { gap = false; test; attr = false } :: conv rest
    | { Ast.axis = Ast.Descendant; test; _ } :: rest ->
        { gap = true; test; attr = false } :: conv rest
    | { Ast.axis = Ast.Attribute; test; _ } :: rest ->
        { gap = false; test; attr = true } :: conv rest
    | _ -> invalid_arg "Containment: path is not linear"
  in
  Array.of_list (conv p.Ast.steps)

let test_covers (pt : Ast.node_test) (qt : Ast.node_test) =
  match (pt, qt) with
  | Ast.Wildcard, (Ast.Name _ | Ast.Wildcard) -> true
  | Ast.Name { prefix = pa; local = la }, Ast.Name { prefix = pb; local = lb } ->
      pa = pb && la = lb
  | _ -> pt = qt

let contains p q =
  let ps = to_linear_steps p and qs = to_linear_steps q in
  let np = Array.length ps and nq = Array.length qs in
  let memo = Hashtbl.create 64 in
  (* c i j: does ps.(i..) accept every label sequence of qs.(j..)? *)
  let rec c i j =
    match Hashtbl.find_opt memo (i, j) with
    | Some v -> v
    | None ->
        let v = compute i j in
        Hashtbl.replace memo (i, j) v;
        v
  and compute i j =
    if j = nq then i = np
    else if i = np then false
    else begin
      let pstep = ps.(i) and qstep = qs.(j) in
      let match_here =
        pstep.attr = qstep.attr
        && test_covers pstep.test qstep.test
        && c (i + 1) (j + 1)
      in
      (* a descendant gap in P can absorb one forced element label of Q;
         attribute labels are never absorbed *)
      let absorb = pstep.gap && (not qstep.attr) && c i (j + 1) in
      if qstep.gap && not pstep.gap then false
      else match_here || absorb
    end
  in
  c 0 0

let equal_paths (a : Ast.path) (b : Ast.path) = a = b
