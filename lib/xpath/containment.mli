(** Containment test between linear paths, used by the index advisor
    (§4.3): when the query path is {e equal} to an index's path the index
    gives an exact DocID/NodeID list; when the index path merely {e
    contains} the query path (e.g. [//Discount] contains
    [/Catalog/Categories/Product/Discount]) the index can still be used for
    filtering, with re-evaluation on the fetched documents.

    The test is sound but conservative: [contains p q = true] guarantees
    that every node selected by [q] is selected by [p] in any document;
    [false] may occasionally be a missed opportunity. Only linear paths
    ({!Ast.is_linear}) are accepted. *)

val contains : Ast.path -> Ast.path -> bool
(** [contains index_path query_path].
    @raise Invalid_argument if either path is not linear or not absolute. *)

val equal_paths : Ast.path -> Ast.path -> bool
(** Structural equality modulo nothing — exact-match test for list access. *)
