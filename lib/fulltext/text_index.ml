open Rx_util
open Rx_xml
open Rx_xmlstore

type t = { tree : Rx_btree.Btree.t }

type posting = {
  term : string;
  docid : int;
  node : Node_id.t;
  rid : Rx_storage.Rid.t;
}

let min_term_len = 2

let tokenize s =
  let terms = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf >= min_term_len then
      terms := String.lowercase_ascii (Buffer.contents buf) :: !terms;
    Buffer.clear buf
  in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Buffer.add_char buf c
      | _ -> flush ())
    s;
  flush ();
  List.rev !terms

let create pool = { tree = Rx_btree.Btree.create pool }
let attach pool ~meta_page = { tree = Rx_btree.Btree.attach pool ~meta_page }
let meta_page t = Rx_btree.Btree.meta_page t.tree

(* key: escaped term, docid, raw node id; value: rid + occurrence count *)
let posting_key term ~docid ~node =
  let buf = Buffer.create 24 in
  Key_codec.encode_string buf term;
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Buffer.add_string buf node;
  Buffer.contents buf

let decode_posting key value =
  let term, pos = Key_codec.decode_string key 0 in
  let docid, pos = Key_codec.decode_int64 key pos in
  let node = String.sub key pos (String.length key - pos) in
  let r = Bytes_io.Reader.of_string value in
  let rid = Rx_storage.Rid.decode r in
  let count = Bytes_io.Reader.varint r in
  ({ term; docid = Int64.to_int docid; node; rid }, count)

let posting_value rid count =
  let w = Bytes_io.Writer.create ~capacity:8 () in
  Rx_storage.Rid.encode w rid;
  Bytes_io.Writer.varint w count;
  Bytes_io.Writer.contents w

(* per-record term extraction: (term, text-or-element node id, count) *)
let record_terms ~record =
  let counts = Hashtbl.create 16 in
  let bump term node =
    let key = (term, node) in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  let header, first = Record_format.decode_header record in
  let rec walk base off limit =
    if off < limit then begin
      let entry, next = Record_format.decode_entry record off in
      let abs = Node_id.append base (Record_format.entry_rel entry) in
      (match entry with
      | Record_format.Element { attrs; children_off; children_len; _ } ->
          List.iter
            (fun (a : Token.attr) ->
              List.iter (fun term -> bump term abs) (tokenize a.Token.value))
            attrs;
          walk abs children_off (children_off + children_len)
      | Record_format.Text { content; _ } ->
          List.iter (fun term -> bump term abs) (tokenize content)
      | Record_format.Comment _ | Record_format.Pi _ | Record_format.Proxy _ -> ());
      walk base next limit
    end
  in
  walk header.Record_format.context first (String.length record);
  Hashtbl.fold (fun (term, node) count acc -> (term, node, count) :: acc) counts []

let index_record t ~docid ~rid ~record =
  List.iter
    (fun (term, node, count) ->
      Rx_btree.Btree.insert t.tree
        ~key:(posting_key term ~docid ~node)
        ~value:(posting_value rid count))
    (record_terms ~record)

let unindex_record t ~docid ~record =
  List.iter
    (fun (term, node, _) ->
      ignore (Rx_btree.Btree.delete t.tree (posting_key term ~docid ~node)))
    (record_terms ~record)

let hook t store =
  ignore
    (Doc_store.add_record_observer store (fun ~docid ~rid ~record ->
         index_record t ~docid ~rid ~record));
  ignore
    (Doc_store.add_delete_observer store (fun ~docid ~rid:_ ~record ->
         unindex_record t ~docid ~record))

let term_prefix term =
  let buf = Buffer.create 16 in
  Key_codec.encode_string buf (String.lowercase_ascii term);
  Buffer.contents buf

let postings t ~term =
  let acc = ref [] in
  Rx_btree.Btree.iter_prefix t.tree ~prefix:(term_prefix term) (fun key value ->
      acc := fst (decode_posting key value) :: !acc;
      `Continue);
  List.rev !acc

let docs_with_term t ~term =
  let acc = ref [] in
  Rx_btree.Btree.iter_prefix t.tree ~prefix:(term_prefix term) (fun key value ->
      let p, _ = decode_posting key value in
      (match !acc with
      | d :: _ when d = p.docid -> ()
      | _ -> acc := p.docid :: !acc);
      `Continue);
  List.rev !acc

let rec merge_and a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: xs, y :: ys ->
      if x = y then x :: merge_and xs ys
      else if x < y then merge_and xs (y :: ys)
      else merge_and (x :: xs) ys

let rec merge_or a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
      if x = y then x :: merge_or xs ys
      else if x < y then x :: merge_or xs (y :: ys)
      else y :: merge_or (x :: xs) ys

let docs_with_all t ~terms =
  match List.map (fun term -> docs_with_term t ~term) terms with
  | [] -> []
  | first :: rest -> List.fold_left merge_and first rest

let docs_with_any t ~terms =
  List.fold_left (fun acc term -> merge_or acc (docs_with_term t ~term)) [] terms

let doc_term_count t ~term ~docid =
  let prefix =
    let buf = Buffer.create 24 in
    Key_codec.encode_string buf (String.lowercase_ascii term);
    Key_codec.encode_int64 buf (Int64.of_int docid);
    Buffer.contents buf
  in
  let total = ref 0 in
  Rx_btree.Btree.iter_prefix t.tree ~prefix (fun key value ->
      let _, count = decode_posting key value in
      total := !total + count;
      `Continue);
  !total

let entry_count t = Rx_btree.Btree.entry_count t.tree
