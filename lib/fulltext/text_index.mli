(** Full-text indexing over the stored XQuery data model — the §6 future
    work ("more complete XQuery and full-text search"), built the same way
    as XPath value indexes: a B+tree of [(term, DocID, NodeID) → RID]
    postings maintained per packed record through the document store's
    observers. Text nodes are always inline in their record, so per-record
    maintenance is exact.

    Terms are lowercased maximal alphanumeric runs; short terms (< 2
    characters) are skipped. *)

type t

type posting = {
  term : string;
  docid : int;
  node : Rx_xmlstore.Node_id.t; (** the text node *)
  rid : Rx_storage.Rid.t;
}

val tokenize : string -> string list
(** Normalized terms in order (duplicates preserved). *)

val create : Rx_storage.Buffer_pool.t -> t
val attach : Rx_storage.Buffer_pool.t -> meta_page:int -> t
val meta_page : t -> int

val hook : t -> Rx_xmlstore.Doc_store.t -> unit
(** Registers insert/delete observers; documents inserted earlier are not
    indexed (use {!index_record} to backfill). *)

val index_record :
  t -> docid:int -> rid:Rx_storage.Rid.t -> record:string -> unit

val postings : t -> term:string -> posting list
(** All postings of a term, ordered by (docid, node). *)

val docs_with_term : t -> term:string -> int list
(** Sorted, duplicate-free. *)

val docs_with_all : t -> terms:string list -> int list
(** Conjunctive document-level search. Empty input selects nothing. *)

val docs_with_any : t -> terms:string list -> int list

val doc_term_count : t -> term:string -> docid:int -> int
(** Occurrences of the term in the document (a simple tf score). *)

val entry_count : t -> int
