(** Synthetic XML workload generators for the benchmarks and examples.

    The paper evaluates on an (unpublished) product testbed; these
    generators produce the document shapes its examples imply — a product
    catalog with prices/discounts (§4.3's queries), plus parameterized
    trees for the storage and streaming experiments: wide/deep documents
    with controllable node counts and the recursive [a/a/a...] nesting that
    drives the Figure 7 state-count comparison. All generation is seeded
    and deterministic. *)

type t

val create : seed:int -> t

val catalog_document :
  t -> categories:int -> products_per_category:int -> string
(** [/Catalog/Categories(@category)/Product/(RegPrice|Discount|ProductName|
    Stock)] — RegPrice uniform in [5, 500), Discount in [0, 0.5). *)

val catalog_product_count : categories:int -> products_per_category:int -> int

val balanced_document :
  t -> depth:int -> fanout:int -> ?payload:int -> unit -> string
(** A complete [fanout]-ary element tree of the given depth with [payload]
    bytes of text at the leaves (default 16). *)

val balanced_node_count : depth:int -> fanout:int -> int
(** Element + text nodes of {!balanced_document}. *)

val recursive_document : t -> nesting:int -> ?siblings:int -> unit -> string
(** [<r><a><a>...<b/>...</a></a></r>]: [nesting] levels of self-nested [a]
    elements, each also carrying [siblings] leaf [b] children — the worst
    case for instance-tracking streaming matchers. *)

val text_heavy_document : t -> paragraphs:int -> words:int -> string
(** Document-ish content for parser/serializer benchmarks. *)

val random_price : t -> float
val word : t -> string
