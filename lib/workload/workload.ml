open Rx_util

type t = { rng : Prng.t }

let create ~seed = { rng = Prng.create ~seed }

let random_price t = 5.0 +. Prng.float t.rng 495.0
let word t = Prng.word t.rng ()

let catalog_document t ~categories ~products_per_category =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<Catalog>";
  for c = 1 to categories do
    Buffer.add_string buf (Printf.sprintf "<Categories category=\"cat-%02d\">" c);
    for _ = 1 to products_per_category do
      let price = random_price t in
      let discount = Prng.float t.rng 0.5 in
      Buffer.add_string buf
        (Printf.sprintf
           "<Product><RegPrice>%.2f</RegPrice><Discount>%.2f</Discount><ProductName>%s-%s</ProductName><Stock>%d</Stock></Product>"
           price discount (word t) (word t)
           (Prng.int t.rng 1000))
    done;
    Buffer.add_string buf "</Categories>"
  done;
  Buffer.add_string buf "</Catalog>";
  Buffer.contents buf

let catalog_product_count ~categories ~products_per_category =
  categories * products_per_category

let balanced_document t ~depth ~fanout ?(payload = 16) () =
  let buf = Buffer.create 4096 in
  let rec emit level =
    if level = depth then begin
      Buffer.add_string buf "<leaf>";
      Buffer.add_string buf (String.make payload (Char.chr (97 + Prng.int t.rng 26)));
      Buffer.add_string buf "</leaf>"
    end
    else begin
      Buffer.add_string buf (Printf.sprintf "<n%d>" level);
      for _ = 1 to fanout do
        emit (level + 1)
      done;
      Buffer.add_string buf (Printf.sprintf "</n%d>" level)
    end
  in
  Buffer.add_string buf "<root>";
  emit 0;
  Buffer.add_string buf "</root>";
  Buffer.contents buf

let balanced_node_count ~depth ~fanout =
  (* root + internal <nL> elements at levels 0..depth-1 + <leaf> elements
     and their text nodes at the bottom *)
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let internals = ref 0 in
  for l = 0 to depth - 1 do
    internals := !internals + pow fanout l
  done;
  1 + !internals + (2 * pow fanout depth)

let recursive_document t ~nesting ?(siblings = 1) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to nesting do
    Buffer.add_string buf "<a>";
    for _ = 1 to siblings do
      Buffer.add_string buf (Printf.sprintf "<b>%d</b>" (Prng.int t.rng 100))
    done
  done;
  for _ = 1 to nesting do
    Buffer.add_string buf "</a>"
  done;
  Buffer.add_string buf "</r>";
  Buffer.contents buf

let text_heavy_document t ~paragraphs ~words =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<article>";
  for _ = 1 to paragraphs do
    Buffer.add_string buf "<para>";
    for i = 1 to words do
      if i > 1 then Buffer.add_char buf ' ';
      Buffer.add_string buf (word t)
    done;
    Buffer.add_string buf "</para>"
  done;
  Buffer.add_string buf "</article>";
  Buffer.contents buf
