open Rx_storage

type report = { redone : int; undone : int; losers : int list; max_txid : int }

let apply_image pool ~page_no ~lsn ~off ~image =
  Buffer_pool.modify_unlogged pool page_no (fun page ->
      Bytes.blit_string image 0 page off (String.length image);
      Page.set_lsn page lsn)

(* Undo one transaction's updates, newest first, writing CLRs. [records] must
   be newest-first. *)
let undo_updates log pool ~txid records =
  let undone = ref 0 in
  List.iter
    (fun (_, record) ->
      match record with
      | Log_record.Update { txid = t; page_no; off; before; _ } when t = txid ->
          let clr_lsn =
            Log_manager.append log
              (Log_record.Clr { txid; page_no; off; after = before })
          in
          apply_image pool ~page_no ~lsn:clr_lsn ~off ~image:before;
          incr undone
      | _ -> ())
    records;
  !undone

let run log pool =
  (* Analysis + redo in one pass: repeat history for every Update/Clr whose
     LSN is at least the page LSN (after-image application is idempotent). *)
  let committed = Hashtbl.create 16 in
  let ended = Hashtbl.create 16 in
  let seen = Hashtbl.create 16 in
  let redone = ref 0 in
  Log_manager.iter log (fun lsn record ->
      (match Log_record.txid record with
      | Some t -> Hashtbl.replace seen t ()
      | None -> ());
      match record with
      | Log_record.Update { page_no; off; after; _ }
      | Log_record.Clr { page_no; off; after; _ } ->
          let page_lsn =
            Buffer_pool.with_page pool page_no Page.get_lsn
          in
          if Int64.compare lsn page_lsn >= 0 then begin
            apply_image pool ~page_no ~lsn ~off ~image:after;
            incr redone
          end
      | Log_record.Commit { txid } ->
          Hashtbl.replace committed txid ();
          Hashtbl.replace ended txid ()
      | Log_record.Abort { txid } -> Hashtbl.replace ended txid ()
      | Log_record.Checkpoint -> ());
  (* Loser transactions: seen but never committed nor fully aborted. An
     [Abort] record is only written after online rollback completes, so a
     crash mid-rollback leaves the transaction a loser and the CLRs already
     applied are simply extended here. *)
  let losers =
    Hashtbl.fold
      (fun t () acc -> if Hashtbl.mem ended t then acc else t :: acc)
      seen []
    |> List.sort compare
  in
  let records = Log_manager.records_rev log in
  (* Skip updates already compensated: count CLRs per loser and skip that
     many of its newest updates. *)
  let clr_counts = Hashtbl.create 8 in
  List.iter
    (fun (_, r) ->
      match r with
      | Log_record.Clr { txid; _ } ->
          Hashtbl.replace clr_counts txid
            (1 + Option.value ~default:0 (Hashtbl.find_opt clr_counts txid))
      | _ -> ())
    records;
  let undone = ref 0 in
  List.iter
    (fun txid ->
      let to_skip = ref (Option.value ~default:0 (Hashtbl.find_opt clr_counts txid)) in
      let remaining =
        List.filter
          (fun (_, r) ->
            match r with
            | Log_record.Update { txid = t; _ } when t = txid ->
                if !to_skip > 0 then begin
                  decr to_skip;
                  false
                end
                else true
            | _ -> false)
          records
      in
      undone := !undone + undo_updates log pool ~txid remaining;
      ignore (Log_manager.append log (Log_record.Abort { txid })))
    losers;
  Log_manager.flush log;
  Buffer_pool.flush_all pool;
  let max_txid = Hashtbl.fold (fun t () m -> max t m) seen 0 in
  { redone = !redone; undone = !undone; losers; max_txid }

let checkpoint ?archive log pool =
  Log_manager.flush log;
  Buffer_pool.flush_all pool;
  ignore (Log_manager.append log Log_record.Checkpoint);
  Log_manager.flush log;
  (* Capture the whole durable span (including the Checkpoint record just
     flushed) before truncation destroys it: archive generations + the live
     log then cover every frame since LSN 0. *)
  (match archive with
  | Some dir -> Archive.capture ~dir log
  | None -> ());
  Log_manager.truncate log

let rollback log pool ~txid =
  let records = Log_manager.records_rev log in
  undo_updates log pool ~txid records
