(** Glue between the buffer pool's logging hooks and the log manager. *)

val make :
  Log_manager.t -> current_txid:(unit -> int) -> Rx_storage.Buffer_pool.journal
(** Builds a journal that appends an [Update] record per page change (tagged
    with the transaction id supplied by [current_txid]) and enforces the WAL
    rule on page write-back. *)

val install :
  Rx_storage.Buffer_pool.t -> Log_manager.t -> current_txid:(unit -> int) -> unit
