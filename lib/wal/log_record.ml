open Rx_util

type t =
  | Update of {
      txid : int;
      page_no : int;
      off : int;
      before : string;
      after : string;
    }
  | Clr of { txid : int; page_no : int; off : int; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint

let txid = function
  | Update { txid; _ } | Clr { txid; _ } | Commit { txid } | Abort { txid } ->
      Some txid
  | Checkpoint -> None

let encode t =
  let w = Bytes_io.Writer.create () in
  (match t with
  | Update { txid; page_no; off; before; after } ->
      Bytes_io.Writer.u8 w 1;
      Bytes_io.Writer.varint w txid;
      Bytes_io.Writer.varint w page_no;
      Bytes_io.Writer.varint w off;
      Bytes_io.Writer.lstring w before;
      Bytes_io.Writer.lstring w after
  | Clr { txid; page_no; off; after } ->
      Bytes_io.Writer.u8 w 2;
      Bytes_io.Writer.varint w txid;
      Bytes_io.Writer.varint w page_no;
      Bytes_io.Writer.varint w off;
      Bytes_io.Writer.lstring w after
  | Commit { txid } ->
      Bytes_io.Writer.u8 w 3;
      Bytes_io.Writer.varint w txid
  | Abort { txid } ->
      Bytes_io.Writer.u8 w 4;
      Bytes_io.Writer.varint w txid
  | Checkpoint -> Bytes_io.Writer.u8 w 5);
  Bytes_io.Writer.contents w

let decode s =
  let r = Bytes_io.Reader.of_string s in
  match Bytes_io.Reader.u8 r with
  | 1 ->
      let txid = Bytes_io.Reader.varint r in
      let page_no = Bytes_io.Reader.varint r in
      let off = Bytes_io.Reader.varint r in
      let before = Bytes_io.Reader.lstring r in
      let after = Bytes_io.Reader.lstring r in
      Update { txid; page_no; off; before; after }
  | 2 ->
      let txid = Bytes_io.Reader.varint r in
      let page_no = Bytes_io.Reader.varint r in
      let off = Bytes_io.Reader.varint r in
      let after = Bytes_io.Reader.lstring r in
      Clr { txid; page_no; off; after }
  | 3 -> Commit { txid = Bytes_io.Reader.varint r }
  | 4 -> Abort { txid = Bytes_io.Reader.varint r }
  | 5 -> Checkpoint
  | n -> invalid_arg (Printf.sprintf "Log_record.decode: tag %d" n)

let pp fmt = function
  | Update { txid; page_no; off; before; after } ->
      Format.fprintf fmt "Update{tx=%d page=%d off=%d len=%d/%d}" txid page_no
        off (String.length before) (String.length after)
  | Clr { txid; page_no; off; after } ->
      Format.fprintf fmt "Clr{tx=%d page=%d off=%d len=%d}" txid page_no off
        (String.length after)
  | Commit { txid } -> Format.fprintf fmt "Commit{tx=%d}" txid
  | Abort { txid } -> Format.fprintf fmt "Abort{tx=%d}" txid
  | Checkpoint -> Format.fprintf fmt "Checkpoint"
