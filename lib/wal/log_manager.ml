(* Record framing on the wire: u32 length then payload. The in-memory image
   [contents] always mirrors everything appended; for the file backend,
   [durable] tracks how much of it has been written + fsynced. *)

type backend = Memory | File of Unix.file_descr

type t = {
  backend : backend;
  mutable contents : Buffer.t;
  mutable durable : int64;
  mutable appended : int;
  c_records : Rx_obs.Metrics.counter;
  c_bytes : Rx_obs.Metrics.counter;
  c_syncs : Rx_obs.Metrics.counter;
}

let counters metrics =
  Rx_obs.Metrics.
    ( counter metrics "wal.records",
      counter metrics "wal.bytes_appended",
      counter metrics "wal.forced_syncs" )

let create_in_memory ?(metrics = Rx_obs.Metrics.default) () =
  let c_records, c_bytes, c_syncs = counters metrics in
  {
    backend = Memory;
    contents = Buffer.create 4096;
    durable = 0L;
    appended = 0;
    c_records;
    c_bytes;
    c_syncs;
  }

let open_file ?(metrics = Rx_obs.Metrics.default) path =
  let c_records, c_bytes, c_syncs = counters metrics in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let contents = Buffer.create (max 4096 size) in
  if size > 0 then begin
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let buf = Bytes.create size in
    let rec fill pos =
      if pos < size then begin
        let n = Unix.read fd buf pos (size - pos) in
        if n = 0 then failwith "Log_manager.open_file: short read";
        fill (pos + n)
      end
    in
    fill 0;
    Buffer.add_bytes contents buf
  end;
  (* pre-existing bytes count as appended, mirroring [appended_bytes] *)
  Rx_obs.Metrics.add c_bytes size;
  {
    backend = File fd;
    contents;
    durable = Int64.of_int size;
    appended = size;
    c_records;
    c_bytes;
    c_syncs;
  }

let frame record =
  let payload = Log_record.encode record in
  let w = Rx_util.Bytes_io.Writer.create ~capacity:(String.length payload + 4) () in
  Rx_util.Bytes_io.Writer.u32 w (String.length payload);
  Rx_util.Bytes_io.Writer.bytes w payload;
  Rx_util.Bytes_io.Writer.contents w

let append t record =
  let lsn = Int64.of_int (Buffer.length t.contents) in
  let framed = frame record in
  Buffer.add_string t.contents framed;
  t.appended <- t.appended + String.length framed;
  Rx_obs.Metrics.incr t.c_records;
  Rx_obs.Metrics.add t.c_bytes (String.length framed);
  lsn

let tail_lsn t = Int64.of_int (Buffer.length t.contents)
let durable_lsn t = t.durable

let flush t =
  if Int64.compare (tail_lsn t) t.durable > 0 then Rx_obs.Metrics.incr t.c_syncs;
  match t.backend with
  | Memory -> t.durable <- tail_lsn t
  | File fd ->
      let total = Buffer.length t.contents in
      let from = Int64.to_int t.durable in
      if total > from then begin
        ignore (Unix.lseek fd from Unix.SEEK_SET);
        let chunk = Buffer.sub t.contents from (total - from) in
        let bytes = Bytes.of_string chunk in
        let rec write pos =
          if pos < Bytes.length bytes then
            write (pos + Unix.write fd bytes pos (Bytes.length bytes - pos))
        in
        write 0;
        Unix.fsync fd;
        t.durable <- Int64.of_int total
      end

let flush_to t lsn = if Int64.compare t.durable lsn < 0 then flush t

let iter t ?(from = 0L) f =
  let s = Buffer.contents t.contents in
  let len = String.length s in
  let rec loop pos =
    if pos + 4 <= len then begin
      let r = Rx_util.Bytes_io.Reader.of_string ~pos s in
      let rec_len = Rx_util.Bytes_io.Reader.u32 r in
      if pos + 4 + rec_len <= len then begin
        let payload = String.sub s (pos + 4) rec_len in
        f (Int64.of_int pos) (Log_record.decode payload);
        loop (pos + 4 + rec_len)
      end
    end
  in
  loop (Int64.to_int from)

let records_rev t =
  let acc = ref [] in
  iter t (fun lsn record -> acc := (lsn, record) :: !acc);
  !acc

let truncate t =
  Buffer.clear t.contents;
  t.durable <- 0L;
  match t.backend with
  | Memory -> ()
  | File fd -> Unix.ftruncate fd 0

let appended_bytes t = t.appended
