(* Record framing on the wire: u32 payload length, u32 CRC-32 of the
   payload, then the payload. The in-memory image [contents] always mirrors
   every frame appended since the last truncation; for the file backend,
   [written] tracks how much of it has reached the fd and [durable] how
   much of *that* has been fsynced ([durable <= written <= length]).

   The file starts with a 16-byte header: the magic "RXWAL001" followed by
   the 8-byte base LSN. LSNs are [base + offset-in-log]; truncation
   advances the base to the old tail instead of resetting to zero, so LSNs
   stay monotonic across checkpoints and page LSNs stamped before a
   truncation can never alias a post-truncation record.

   Concurrency: appends are serialized by the engine's write path, but
   [flush] / [flush_to] / [group_commit] may be called from concurrent
   committers. All state lives under [lock]; the physical write + fsync
   happen with the lock released and [flushing] set, so exactly one leader
   owns the fd at a time while followers wait on [flushed]. *)

type backend = Memory | File of Unix.file_descr

let magic = "RXWAL001"
let header_size = 16
let frame_overhead = 8
let default_buffer_limit = 256 * 1024

exception Corrupt_record of { lsn : int64 }

let () =
  Printexc.register_printer (function
    | Corrupt_record { lsn } ->
        Some (Printf.sprintf "Log_manager.Corrupt_record(lsn %Ld)" lsn)
    | _ -> None)

type t = {
  backend : backend;
  mutable contents : Buffer.t;
  mutable base : int64; (* LSN of the first byte of [contents] *)
  mutable durable : int; (* bytes of [contents] written + fsynced *)
  mutable written : int; (* bytes of [contents] written to the fd *)
  mutable appended : int;
  mutable records : int; (* frames currently in [contents] *)
  mutable torn_tail : int; (* bytes discarded as a torn tail at open *)
  mutable buffer_limit : int; (* staged bytes beyond which append spills *)
  mutable commit_window_us : int; (* group-commit leader wait *)
  mutable flushing : bool; (* a leader owns the write+fsync path *)
  lock : Mutex.t;
  flushed : Condition.t; (* broadcast when a leader finishes (or fails) *)
  mutable fault : Rx_storage.Fault.t option;
  c_records : Rx_obs.Metrics.counter;
  c_bytes : Rx_obs.Metrics.counter;
  c_syncs : Rx_obs.Metrics.counter;
  c_torn : Rx_obs.Metrics.counter;
  c_gc_groups : Rx_obs.Metrics.counter;
  c_gc_absorbed : Rx_obs.Metrics.counter;
  c_gc_syncs : Rx_obs.Metrics.counter;
}

let counters metrics =
  Rx_obs.Metrics.
    ( counter metrics "wal.records",
      counter metrics "wal.bytes_appended",
      counter metrics "wal.forced_syncs",
      counter metrics "wal.torn_tail_bytes",
      counter metrics "wal.group_commit.groups",
      counter metrics "wal.group_commit.absorbed",
      counter metrics "wal.group_commit.fsyncs" )

let create_in_memory ?(metrics = Rx_obs.Metrics.default) () =
  let c_records, c_bytes, c_syncs, c_torn, c_gc_groups, c_gc_absorbed, c_gc_syncs
      =
    counters metrics
  in
  {
    backend = Memory;
    contents = Buffer.create 4096;
    base = 0L;
    durable = 0;
    written = 0;
    appended = 0;
    records = 0;
    torn_tail = 0;
    buffer_limit = default_buffer_limit;
    commit_window_us = 0;
    flushing = false;
    lock = Mutex.create ();
    flushed = Condition.create ();
    fault = None;
    c_records;
    c_bytes;
    c_syncs;
    c_torn;
    c_gc_groups;
    c_gc_absorbed;
    c_gc_syncs;
  }

let crc_of_payload s = Int32.to_int (Rx_util.Crc32.of_string s) land 0xFFFFFFFF

(* Length of the prefix of [s] (a frame stream) that consists of complete,
   CRC-valid frames, plus the number of frames in it. Anything past that
   point is a torn tail: a crash interrupted the last flush mid-frame. *)
let valid_prefix s =
  let len = String.length s in
  let rec loop pos nrec =
    if pos + frame_overhead > len then (pos, nrec)
    else begin
      let r = Rx_util.Bytes_io.Reader.of_string ~pos s in
      let rec_len = Rx_util.Bytes_io.Reader.u32 r in
      let crc = Rx_util.Bytes_io.Reader.u32 r in
      if rec_len < 0 || pos + frame_overhead + rec_len > len then (pos, nrec)
      else
        let payload = String.sub s (pos + frame_overhead) rec_len in
        if crc_of_payload payload <> crc then (pos, nrec)
        else loop (pos + frame_overhead + rec_len) (nrec + 1)
    end
  in
  loop 0 0

let write_header fd base =
  let hdr = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 hdr 0 8;
  Bytes.set_int64_be hdr 8 base;
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let rec w pos =
    if pos < header_size then w (pos + Unix.write fd hdr pos (header_size - pos))
  in
  w 0

let open_file ?(metrics = Rx_obs.Metrics.default) path =
  let c_records, c_bytes, c_syncs, c_torn, c_gc_groups, c_gc_absorbed, c_gc_syncs
      =
    counters metrics
  in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let contents = Buffer.create (max 4096 size) in
  let base = ref 0L in
  let records = ref 0 in
  let torn_tail = ref 0 in
  if size < header_size then begin
    (* fresh (or hopelessly short) log: lay down a clean header *)
    Unix.ftruncate fd 0;
    write_header fd 0L
  end
  else begin
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let buf = Bytes.create size in
    let rec fill pos =
      if pos < size then begin
        let n = Unix.read fd buf pos (size - pos) in
        if n = 0 then failwith "Log_manager.open_file: short read";
        fill (pos + n)
      end
    in
    fill 0;
    if Bytes.sub_string buf 0 8 <> magic then
      failwith "Log_manager.open_file: bad magic";
    base := Bytes.get_int64_be buf 8;
    let body = Bytes.sub_string buf header_size (size - header_size) in
    let valid, nrec = valid_prefix body in
    records := nrec;
    torn_tail := String.length body - valid;
    if !torn_tail > 0 then begin
      (* torn tail: a crash interrupted the last append(s); the valid
         prefix is the whole log *)
      Unix.ftruncate fd (header_size + valid);
      Rx_obs.Metrics.add c_torn !torn_tail
    end;
    Buffer.add_string contents (String.sub body 0 valid)
  end;
  (* pre-existing bytes count as appended, mirroring [appended_bytes] *)
  Rx_obs.Metrics.add c_bytes (Buffer.length contents);
  {
    backend = File fd;
    contents;
    base = !base;
    durable = Buffer.length contents;
    written = Buffer.length contents;
    appended = Buffer.length contents;
    records = !records;
    torn_tail = !torn_tail;
    buffer_limit = default_buffer_limit;
    commit_window_us = 0;
    flushing = false;
    lock = Mutex.create ();
    flushed = Condition.create ();
    fault = None;
    c_records;
    c_bytes;
    c_syncs;
    c_torn;
    c_gc_groups;
    c_gc_absorbed;
    c_gc_syncs;
  }

let set_fault t fault = t.fault <- fault

let set_commit_window t us =
  Mutex.protect t.lock (fun () -> t.commit_window_us <- max 0 us)

let set_buffer_limit t bytes =
  Mutex.protect t.lock (fun () -> t.buffer_limit <- max 0 bytes)

let frame record =
  let payload = Log_record.encode record in
  let w =
    Rx_util.Bytes_io.Writer.create ~capacity:(String.length payload + frame_overhead) ()
  in
  Rx_util.Bytes_io.Writer.u32 w (String.length payload);
  Rx_util.Bytes_io.Writer.u32 w (crc_of_payload payload);
  Rx_util.Bytes_io.Writer.bytes w payload;
  Rx_util.Bytes_io.Writer.contents w

let tail_lsn_u t = Int64.add t.base (Int64.of_int (Buffer.length t.contents))
let durable_lsn_u t = Int64.add t.base (Int64.of_int t.durable)
let tail_lsn t = Mutex.protect t.lock (fun () -> tail_lsn_u t)
let durable_lsn t = Mutex.protect t.lock (fun () -> durable_lsn_u t)
let base_lsn t = Mutex.protect t.lock (fun () -> t.base)

(* Raw durable frames from [from] onward, cut at a frame boundary no more
   than [max_bytes] past the start (the first frame is always included, so a
   caller polling with a small budget still makes progress). Only fsynced
   bytes ship: [durable] never regresses across a crash (an fsynced frame is
   by definition inside the CRC-valid prefix that reopen keeps), so a frame
   returned here can never later disappear from the log. [from] must be a
   frame boundary previously handed out by this module (an append LSN, the
   base, or a batch end); values below [base] clamp to the base — the caller
   detects the gap via the returned start LSN and consults the archive. *)
let raw_since t ?(max_bytes = max_int) from =
  Mutex.protect t.lock (fun () ->
      let from_off = max 0 (Int64.to_int (Int64.sub from t.base)) in
      let from_off = min from_off t.durable in
      let start = Int64.add t.base (Int64.of_int from_off) in
      let s = Buffer.contents t.contents in
      let rec until pos =
        if pos + frame_overhead > t.durable then pos
        else begin
          let r = Rx_util.Bytes_io.Reader.of_string ~pos s in
          let rec_len = Rx_util.Bytes_io.Reader.u32 r in
          let next = pos + frame_overhead + rec_len in
          if next > t.durable then pos
          else if pos > from_off && next - from_off > max_bytes then pos
          else until next
        end
      in
      let stop = until from_off in
      (start, String.sub s from_off (stop - from_off)))

(* Move the base LSN of an *empty* log. Used at replica promotion, where
   the local log (never appended to while replicating) must restart at the
   replication cursor so new records continue the leader's LSN timeline and
   stay above every replicated page LSN. *)
let reset_base t base =
  Mutex.protect t.lock (fun () ->
      if Buffer.length t.contents > 0 then
        invalid_arg "Log_manager.reset_base: log not empty";
      t.base <- base;
      match t.backend with
      | Memory -> ()
      | File fd ->
          write_header fd base;
          Unix.fsync fd)

(* Write [chunk] (which is [contents[from, from+len)]) at its file offset.
   No locking here: the caller either holds [lock] (append spill) or owns
   [flushing] (leader flush), so no one else touches the fd. *)
let write_file t fd ~from chunk =
  let bytes = Bytes.of_string chunk in
  Rx_storage.Fault.wrap_write t.fault ~op:"wal.write" ~len:(Bytes.length bytes)
    ~write:(fun n ->
      ignore (Unix.lseek fd (header_size + from) Unix.SEEK_SET);
      let rec write pos =
        if pos < n then write (pos + Unix.write fd bytes pos (n - pos))
      in
      write 0)

let append t record =
  Mutex.protect t.lock (fun () ->
      let lsn = tail_lsn_u t in
      let framed = frame record in
      Buffer.add_string t.contents framed;
      t.appended <- t.appended + String.length framed;
      t.records <- t.records + 1;
      Rx_obs.Metrics.incr t.c_records;
      Rx_obs.Metrics.add t.c_bytes (String.length framed);
      (match t.backend with
       | File fd
         when (not t.flushing)
              && Buffer.length t.contents - t.written > t.buffer_limit ->
           (* spill: batch-write every staged frame, no fsync. Bounds the
              write the next flush performs without claiming durability —
              if the process dies first the spilled frames heal as a torn
              (or merely unreferenced) tail. Skipped while a leader owns
              the fd. *)
           let until = Buffer.length t.contents in
           write_file t fd ~from:t.written
             (Buffer.sub t.contents t.written (until - t.written));
           t.written <- until
       | _ -> ());
      lsn)

(* Flush everything appended so far; caller holds [lock]. If a leader is
   already writing, wait for it and re-check — it may have snapshotted a
   shorter tail than we need. *)
let rec flush_locked t =
  let target = Buffer.length t.contents in
  if t.durable < target then
    if t.flushing then begin
      Condition.wait t.flushed t.lock;
      flush_locked t
    end
    else begin
      Rx_obs.Metrics.incr t.c_syncs;
      match t.backend with
      | Memory ->
          t.written <- target;
          t.durable <- target
      | File fd ->
          t.flushing <- true;
          let from = t.written in
          let chunk =
            if target > from then Buffer.sub t.contents from (target - from)
            else ""
          in
          Mutex.unlock t.lock;
          let outcome =
            try
              if chunk <> "" then write_file t fd ~from chunk;
              Rx_storage.Fault.wrap_fsync t.fault ~op:"wal.fsync"
                ~sync:(fun () -> Unix.fsync fd);
              None
            with e -> Some e
          in
          Mutex.lock t.lock;
          t.flushing <- false;
          Condition.broadcast t.flushed;
          (match outcome with
          | None ->
              if target > t.written then t.written <- target;
              if target > t.durable then t.durable <- target
          | Some e -> raise e)
    end

let flush t = Mutex.protect t.lock (fun () -> flush_locked t)

let flush_to t lsn =
  Mutex.protect t.lock (fun () ->
      if Int64.compare (durable_lsn_u t) lsn < 0 then flush_locked t)

let group_commit t ?(wait = true) lsn =
  Mutex.protect t.lock (fun () ->
      let pending () = Int64.compare (durable_lsn_u t) lsn < 0 in
      let led = ref false in
      let rec loop () =
        if pending () then
          if t.flushing then begin
            (* follower: a leader's flush is in flight; wait for its
               broadcast — it usually covers our LSN too *)
            Condition.wait t.flushed t.lock;
            loop ()
          end
          else begin
            led := true;
            (match t.backend with
            | File _ when wait && t.commit_window_us > 0 ->
                (* leader: hold the window open (reserving leadership so
                   no one else fsyncs early) so concurrent committers can
                   append their commit records and share this fsync *)
                t.flushing <- true;
                Mutex.unlock t.lock;
                Unix.sleepf (float_of_int t.commit_window_us /. 1e6);
                Mutex.lock t.lock;
                t.flushing <- false
            | _ -> ());
            Rx_obs.Metrics.incr t.c_gc_groups;
            Rx_obs.Metrics.incr t.c_gc_syncs;
            flush_locked t;
            loop ()
          end
      in
      loop ();
      if not !led then Rx_obs.Metrics.incr t.c_gc_absorbed)

let iter t ?(from = 0L) f =
  let s = Buffer.contents t.contents in
  let len = String.length s in
  let rec loop pos =
    if pos + frame_overhead <= len then begin
      let r = Rx_util.Bytes_io.Reader.of_string ~pos s in
      let rec_len = Rx_util.Bytes_io.Reader.u32 r in
      let crc = Rx_util.Bytes_io.Reader.u32 r in
      if pos + frame_overhead + rec_len <= len then begin
        let lsn = Int64.add t.base (Int64.of_int pos) in
        let payload = String.sub s (pos + frame_overhead) rec_len in
        if crc_of_payload payload <> crc then
          (* cannot happen for frames loaded by [open_file] (the torn tail
             was cut there), but protects in-process readers *)
          raise (Corrupt_record { lsn });
        let record =
          try Log_record.decode payload
          with _ -> raise (Corrupt_record { lsn })
        in
        f lsn record;
        loop (pos + frame_overhead + rec_len)
      end
    end
  in
  let from_off = Int64.to_int (Int64.sub from t.base) in
  loop (max 0 from_off)

(* Strict decode of a raw frame stream (as produced by [raw_since] or
   stored in an archive generation): every byte must belong to a complete,
   CRC-valid frame. Unlike [open_file]'s torn-tail healing, any defect
   raises — these streams are never legitimately torn (network frames are
   length-checked by the wire layer; archive generations are written
   whole). *)
let decode_frames ~base s =
  let len = String.length s in
  let rec loop pos acc =
    let lsn = Int64.add base (Int64.of_int pos) in
    if pos = len then List.rev acc
    else if pos + frame_overhead > len then raise (Corrupt_record { lsn })
    else begin
      let r = Rx_util.Bytes_io.Reader.of_string ~pos s in
      let rec_len = Rx_util.Bytes_io.Reader.u32 r in
      let crc = Rx_util.Bytes_io.Reader.u32 r in
      if rec_len < 0 || pos + frame_overhead + rec_len > len then
        raise (Corrupt_record { lsn });
      let payload = String.sub s (pos + frame_overhead) rec_len in
      if crc_of_payload payload <> crc then raise (Corrupt_record { lsn });
      let record =
        try Log_record.decode payload with _ -> raise (Corrupt_record { lsn })
      in
      loop (pos + frame_overhead + rec_len) ((lsn, record) :: acc)
    end
  in
  loop 0 []

let records_rev t =
  let acc = ref [] in
  iter t (fun lsn record -> acc := (lsn, record) :: !acc);
  !acc

let truncate t =
  Mutex.protect t.lock (fun () ->
      while t.flushing do
        Condition.wait t.flushed t.lock
      done;
      t.base <- tail_lsn_u t;
      Buffer.clear t.contents;
      t.durable <- 0;
      t.written <- 0;
      t.records <- 0;
      match t.backend with
      | Memory -> ()
      | File fd ->
          Unix.ftruncate fd header_size;
          write_header fd t.base;
          Unix.fsync fd)

let appended_bytes t = t.appended
let record_count t = t.records
let torn_tail_bytes t = t.torn_tail

let close t =
  match t.backend with Memory -> () | File fd -> Unix.close fd
