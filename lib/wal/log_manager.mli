(** Append-only write-ahead log. LSNs are byte offsets of record starts
    (strictly increasing), so "durable up to LSN" is a single comparison. *)

type t

val create_in_memory : ?metrics:Rx_obs.Metrics.t -> unit -> t
val open_file : ?metrics:Rx_obs.Metrics.t -> string -> t
(** [metrics] receives the [wal.records] / [wal.bytes_appended] /
    [wal.forced_syncs] counters (default: the global registry). *)

val append : t -> Log_record.t -> int64
(** Appends and returns the record's LSN; does not force to disk. *)

val flush : t -> unit
val flush_to : t -> int64 -> unit
(** No-op if the LSN is already durable. *)

val durable_lsn : t -> int64
val tail_lsn : t -> int64
(** LSN one past the last record. *)

val iter : t -> ?from:int64 -> (int64 -> Log_record.t -> unit) -> unit
(** Iterates durable-and-buffered records in order. *)

val records_rev : t -> (int64 * Log_record.t) list
(** All records, newest first (for the undo pass). *)

val truncate : t -> unit
(** Discards the log contents (only valid right after a checkpoint with no
    active transactions). *)

val appended_bytes : t -> int
(** Total bytes ever appended — log-volume accounting for benchmarks. *)
