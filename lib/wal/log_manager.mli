(** Append-only write-ahead log. LSNs are strictly increasing byte
    positions ([base + offset]), so "durable up to LSN" is a single
    comparison. The base persists in the file header and advances at
    {!truncate}, keeping LSNs monotonic across checkpoints — a page LSN
    stamped before a truncation can never alias a later record.

    Integrity: each record is framed as [u32 length | u32 CRC-32 | payload].
    On {!open_file}, the longest prefix of complete, CRC-valid frames is
    the log; anything after it is a torn tail from a crash mid-flush and is
    silently truncated (counted in [wal.torn_tail_bytes]). A CRC-valid
    frame that fails to decode mid-file is real corruption and raises
    {!Corrupt_record}.

    Durability: {!append} only stages the frame in the write buffer; a
    record is durable once {!flush} / {!flush_to} / {!group_commit} (write
    + fsync) has covered its LSN. Once the staged-but-unwritten span
    exceeds {!set_buffer_limit} bytes, [append] batch-writes it to the fd
    {e without} fsyncing — that bounds the write the next flush performs
    while claiming no durability (spilled frames a crash strands are healed
    like any torn tail).

    Concurrency: {!append}, {!truncate}, {!iter} and {!records_rev} must be
    externally serialized (the engine's write path holds its own lock
    around them). {!flush}, {!flush_to} and {!group_commit} are
    thread-safe: concurrent callers elect one leader that performs the
    single write + fsync while the rest wait and absorb the result. *)

type t

exception Corrupt_record of { lsn : int64 }
(** A CRC-valid frame whose payload does not decode — mid-file corruption
    (distinct from a torn tail, which is healed silently at open). *)

val create_in_memory : ?metrics:Rx_obs.Metrics.t -> unit -> t
(** A log with no backing file: flushes mark records durable without any
    I/O. For tests and in-memory databases. *)

val open_file : ?metrics:Rx_obs.Metrics.t -> string -> t
(** Opens (creating if absent) a file-backed log, truncating any torn
    tail. [metrics] receives the [wal.records] / [wal.bytes_appended] /
    [wal.forced_syncs] / [wal.torn_tail_bytes] and
    [wal.group_commit.{groups,absorbed,fsyncs}] counters (default: the
    global registry).
    @raise Failure on a bad magic. *)

val append : t -> Log_record.t -> int64
(** Appends and returns the record's LSN; does not force to disk (but may
    spill staged frames to the fd, unfsynced, past the buffer limit). *)

val flush : t -> unit
(** Forces all appended records to stable storage (write + fsync). *)

val flush_to : t -> int64 -> unit
(** No-op if the LSN is already durable, otherwise {!flush}. *)

val group_commit : t -> ?wait:bool -> int64 -> unit
(** [group_commit t lsn] makes the log durable at least up to [lsn],
    sharing the fsync among concurrent committers: if a leader's flush is
    already in flight the call waits for it (and usually returns without
    any I/O of its own — counted in [wal.group_commit.absorbed]);
    otherwise the caller becomes the leader, optionally holds the commit
    window open (see {!set_commit_window}) so later committers can join
    the group, then performs one write + fsync covering every record
    appended so far ([wal.group_commit.groups] / [.fsyncs]). [wait]
    (default [true]) is a hint that other committers are active and the
    window is worth holding open; pass [false] when the caller is alone so
    an uncontended commit pays no latency. *)

val set_commit_window : t -> int -> unit
(** Microseconds a group-commit leader holds its window open before
    flushing (clamped at 0 = flush immediately, the default). Only
    consulted when [group_commit ~wait:true] elects a leader on a
    file-backed log. *)

val set_buffer_limit : t -> int -> unit
(** Staged-but-unwritten bytes beyond which {!append} spills the write
    buffer to the fd (no fsync). Default 256 KiB; 0 writes frames through
    on every append (still without fsync). *)

val durable_lsn : t -> int64
(** LSN up to which the log is on stable storage. *)

val tail_lsn : t -> int64
(** LSN one past the last record. *)

val base_lsn : t -> int64
(** LSN of the first byte of the current log contents (the persistent base
    written in the file header; advances at every {!truncate}). *)

val raw_since : t -> ?max_bytes:int -> int64 -> int64 * string
(** [raw_since t ~max_bytes from] returns [(start, frames)]: the raw frame
    bytes of the {e durable} log from LSN [from] onward, cut at a frame
    boundary no more than [max_bytes] past the start (the first frame is
    always included so a caller with a small budget still makes progress;
    default unlimited). Only fsynced bytes are returned — the durable
    prefix never regresses across a crash, so a frame shipped from here can
    never later disappear. [from] must be a frame-boundary LSN previously
    produced by this log (an {!append} result, {!base_lsn}, or
    [start + String.length frames] of a prior call); a [from] below the
    base clamps to the base, which the caller detects as [start > from] and
    resolves from the {!Archive}. A [from] at or past the durable tail
    returns empty [frames]. *)

val reset_base : t -> int64 -> unit
(** Moves the base LSN of an {e empty} log (contents fully truncated),
    rewriting and fsyncing the file header. Used at replica promotion: the
    replica's local log was never appended to, and must restart at the
    replication cursor so post-promotion records continue the leader's LSN
    timeline above every replicated page LSN.
    @raise Invalid_argument if the log is not empty. *)

val decode_frames : base:int64 -> string -> (int64 * Log_record.t) list
(** Strictly decodes a raw frame stream as produced by {!raw_since} (or
    stored in an archive generation) into [(lsn, record)] pairs, where
    [base] is the LSN of the stream's first byte. Every byte must belong to
    a complete, CRC-valid, decodable frame — unlike {!open_file}, nothing
    is healed, because these streams are never legitimately torn.
    @raise Corrupt_record on any defect, carrying the offending LSN. *)

val iter : t -> ?from:int64 -> (int64 -> Log_record.t -> unit) -> unit
(** Iterates durable-and-buffered records in order.
    @raise Corrupt_record on a frame that fails its CRC or does not
    decode. *)

val records_rev : t -> (int64 * Log_record.t) list
(** All records, newest first (for the undo pass). *)

val truncate : t -> unit
(** Discards the log contents and advances the persistent LSN base to the
    old tail (only valid right after a checkpoint with no active
    transactions). The emptied log + new header are fsynced before
    returning. *)

val appended_bytes : t -> int
(** Total bytes ever appended — log-volume accounting for benchmarks and
    the auto-checkpoint trigger. *)

val record_count : t -> int
(** Number of records currently in the log (since the last truncation). *)

val torn_tail_bytes : t -> int
(** Bytes discarded as a torn tail when this handle was opened; [0] for a
    clean log or the in-memory backend. *)

val set_fault : t -> Rx_storage.Fault.t option -> unit
(** Installs (or clears) a fault-injection handle consulted by every
    physical write (flush and append-spill) and fsync. Testing only. *)

val close : t -> unit
(** Releases the backing file descriptor without flushing buffered
    records — callers flush first (or deliberately don't, to simulate a
    crash). *)
