(** WAL archive: generational retention of truncated log spans.

    Checkpoint truncation destroys log history; when an archive directory
    exists, {!capture} copies the about-to-be-truncated span into a
    {e generation} file first, so the generations plus the live log hold
    every CRC-framed record since LSN 0. That complete history is what a
    lagging replica (fetching below the live base) and point-in-time
    restore ([rx restore --to-lsn]) replay.

    A generation file is [gen-<16 hex digits>.rxarc] (the digits are the
    start LSN), laid out as a 16-byte header (magic ["RXARC001"] + 8-byte
    big-endian start LSN) followed by raw frames exactly as they appeared
    in the log. Files are written to a temp name, fsynced and renamed, so a
    crash mid-capture never leaves a torn generation. *)

exception Corrupt_generation of string
(** A generation file with a bad magic, a header LSN that disagrees with
    its name, or a truncated header. The payload carries the file path;
    frame-level corruption inside a generation surfaces later as
    {!Log_manager.Corrupt_record} when the frames are decoded. *)

val enabled : string -> bool
(** Whether [dir] exists as a directory — archiving is switched on simply
    by creating the archive directory ([<db>/archive]; see
    [rx init --archive]). *)

val generations : string -> (int64 * string) list
(** The archive's generation files as [(start_lsn, path)] pairs in LSN
    order. Empty if the directory does not exist or holds none. *)

val load : int64 * string -> string
(** [load (start_lsn, path)] returns a generation's raw frame bytes,
    validating the header against [start_lsn].
    @raise Corrupt_generation on a damaged header. *)

val append : dir:string -> start_lsn:int64 -> string -> unit
(** Writes raw frame bytes as a new generation starting at [start_lsn]
    (no-op on empty data). Write + fsync + rename, then the directory is
    fsynced, so the generation is durable before the caller truncates the
    live log. *)

val capture : dir:string -> Log_manager.t -> unit
(** Archives the live log's entire current contents (base to durable tail)
    as one generation. Called by {!Recovery.checkpoint} immediately after
    the checkpoint flush — at that point the whole log is durable — and
    immediately before truncation destroys it. *)

(** Result of {!read_from}. *)
type lookup =
  | Frames of string  (** raw frames starting exactly at the asked LSN *)
  | Not_archived  (** the LSN is past the archive's end: use the live log *)
  | Missing_history
      (** the LSN predates the archive (or falls in a gap between
          generations): the history was never captured *)

val read_from : dir:string -> lsn:int64 -> lookup
(** Locates [lsn] in the archive and returns every archived frame from it
    to the end of its generation (callers fetch generation-at-a-time and
    come back for more). [lsn] must be a frame boundary, as with
    {!Log_manager.raw_since}. *)

val end_lsn : string -> int64 option
(** One past the last archived frame, or [None] for an empty archive. In a
    healthy archive this equals the live log's base LSN. *)
