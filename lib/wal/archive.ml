(* WAL archive: one generation file per checkpoint truncation, capturing
   the log span the truncation is about to destroy. Together the
   generations plus the live log hold every frame since LSN 0, which is
   what both a lagging replica (fetching below the live base) and
   point-in-time restore need.

   Generation file layout mirrors the WAL itself: a 16-byte header (magic
   "RXARC001" + 8-byte big-endian start LSN) followed by raw CRC-framed
   records exactly as they appeared in the log. The file name encodes the
   start LSN too ([gen-<16 hex digits>.rxarc]) so the directory can be
   scanned and ordered without opening anything.

   Generations are written to a temp name, fsynced, then renamed into
   place, so a crash mid-capture leaves either no generation or a complete
   one — never a torn file (readers still CRC-check every frame). *)

let magic = "RXARC001"
let header_size = 16

exception Corrupt_generation of string

let () =
  Printexc.register_printer (function
    | Corrupt_generation path ->
        Some (Printf.sprintf "Archive.Corrupt_generation(%s)" path)
    | _ -> None)

let generation_name start_lsn = Printf.sprintf "gen-%016Lx.rxarc" start_lsn

let parse_name name =
  if
    String.length name = 26
    && String.sub name 0 4 = "gen-"
    && Filename.check_suffix name ".rxarc"
  then Int64.of_string_opt ("0x" ^ String.sub name 4 16)
  else None

let enabled dir = Sys.file_exists dir && Sys.is_directory dir

let generations dir =
  if not (enabled dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match parse_name name with
           | Some lsn -> Some (lsn, Filename.concat dir name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

(* Read a generation's frame bytes, validating header magic and that the
   header LSN agrees with the file name. *)
let load (start_lsn, path) =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      if size < header_size then raise (Corrupt_generation path);
      let hdr = really_input_string ic header_size in
      if String.sub hdr 0 8 <> magic then raise (Corrupt_generation path);
      let hdr_lsn = String.get_int64_be hdr 8 in
      if hdr_lsn <> start_lsn then raise (Corrupt_generation path);
      really_input_string ic (size - header_size))

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let append ~dir ~start_lsn data =
  if data <> "" then begin
    let name = generation_name start_lsn in
    let final = Filename.concat dir name in
    let tmp = final ^ ".tmp" in
    let fd =
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let hdr = Bytes.make header_size '\000' in
        Bytes.blit_string magic 0 hdr 0 8;
        Bytes.set_int64_be hdr 8 start_lsn;
        let payload = Bytes.cat hdr (Bytes.of_string data) in
        let len = Bytes.length payload in
        let rec w pos =
          if pos < len then w (pos + Unix.write fd payload pos (len - pos))
        in
        w 0;
        Unix.fsync fd);
    Sys.rename tmp final;
    fsync_dir dir
  end

type lookup =
  | Frames of string  (** raw frames starting exactly at the asked LSN *)
  | Not_archived  (** the LSN is past the archive's end: use the live log *)
  | Missing_history
      (** the LSN predates the archive (or falls in a gap between
          generations): the history was never captured *)

(* End LSN from the file size alone, so scans don't read contents. *)
let gen_end (start, path) =
  let size = (Unix.stat path).Unix.st_size in
  Int64.add start (Int64.of_int (max 0 (size - header_size)))

let read_from ~dir ~lsn =
  let gens = generations dir in
  let rec find = function
    | [] -> if gens = [] then Not_archived else Missing_history
    | ((start, _path) as gen) :: rest ->
        if Int64.compare lsn start < 0 then Missing_history
        else if Int64.compare lsn (gen_end gen) < 0 then
          let frames = load gen in
          let off = Int64.to_int (Int64.sub lsn start) in
          Frames (String.sub frames off (String.length frames - off))
        else if rest = [] then Not_archived
        else find rest
  in
  find gens

let end_lsn dir =
  match List.rev (generations dir) with
  | [] -> None
  | gen :: _ -> Some (gen_end gen)

let capture ~dir log =
  let base = Log_manager.base_lsn log in
  let _start, data = Log_manager.raw_since log base in
  append ~dir ~start_lsn:base data
