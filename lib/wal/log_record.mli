(** Physiological log records. [Update] carries before/after images of the
    changed byte range of one page (redo + undo); [Clr] is a redo-only
    compensation record written while rolling back. *)

type t =
  | Update of {
      txid : int;
      page_no : int;
      off : int;
      before : string;
      after : string;
    }
  | Clr of { txid : int; page_no : int; off : int; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint

val txid : t -> int option
(** Owning transaction, if any ([Checkpoint] records have none). *)

val encode : t -> string
(** Serializes to the WAL frame payload. Frame-level integrity (length +
    CRC-32) is added by {!Log_manager}, not here. *)

val decode : string -> t
(** Inverse of {!encode}.
    @raise Failure on an unknown tag or malformed payload — {!Log_manager}
    maps this to [Corrupt_record] during replay. *)

val pp : Format.formatter -> t -> unit
(** Debug printer (payload bytes elided). *)
