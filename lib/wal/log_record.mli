(** Physiological log records. [Update] carries before/after images of the
    changed byte range of one page (redo + undo); [Clr] is a redo-only
    compensation record written while rolling back. *)

type t =
  | Update of {
      txid : int;
      page_no : int;
      off : int;
      before : string;
      after : string;
    }
  | Clr of { txid : int; page_no : int; off : int; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint

val txid : t -> int option
val encode : t -> string
val decode : string -> t
val pp : Format.formatter -> t -> unit
