let make log ~current_txid =
  {
    Rx_storage.Buffer_pool.log_update =
      (fun ~page_no ~off ~before ~after ->
        Log_manager.append log
          (Log_record.Update { txid = current_txid (); page_no; off; before; after }));
    ensure_durable = (fun lsn -> Log_manager.flush_to log (Int64.add lsn 1L));
  }

let install pool log ~current_txid =
  Rx_storage.Buffer_pool.set_journal pool (Some (make log ~current_txid))
