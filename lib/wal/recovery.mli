(** ARIES-style crash recovery over the physiological log: a redo pass that
    repeats history (idempotent via page LSNs), then an undo pass that rolls
    back loser transactions, writing compensation records. *)

type report = {
  redone : int; (** records whose after-image was applied *)
  undone : int; (** updates rolled back for loser transactions *)
  losers : int list; (** transaction ids rolled back *)
  max_txid : int;
      (** highest transaction id appearing anywhere in the log. Loser
          detection keys on txids, so ids must never repeat within one
          log span: a process that appends to a recovered log must issue
          ids strictly above this. *)
}

val run : Log_manager.t -> Rx_storage.Buffer_pool.t -> report
(** Recovers the database in [pool] from [log], then flushes and
    checkpoints. *)

val checkpoint :
  ?archive:string -> Log_manager.t -> Rx_storage.Buffer_pool.t -> unit
(** Flushes all dirty pages, forces the log, appends a checkpoint record and
    truncates the log. Must be called with no transaction in flight.
    [archive] names a WAL archive directory: when present, the whole
    durable log span (checkpoint record included) is captured there as a
    new generation ({!Archive.capture}) before truncation destroys it. *)

val apply_image :
  Rx_storage.Buffer_pool.t ->
  page_no:int ->
  lsn:int64 ->
  off:int ->
  image:string ->
  unit
(** Applies one logged image to a page and stamps the page LSN — the single
    redo primitive shared by recovery, replica WAL apply and restore.
    Bypasses the journal ([Buffer_pool.modify_unlogged]): the change is
    already logged. *)

val rollback : Log_manager.t -> Rx_storage.Buffer_pool.t -> txid:int -> int
(** Online rollback of one live transaction: applies before-images of its
    updates newest-first, writing CLRs; returns the number of updates
    undone. The caller appends the [Abort] record. *)
