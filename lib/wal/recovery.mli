(** ARIES-style crash recovery over the physiological log: a redo pass that
    repeats history (idempotent via page LSNs), then an undo pass that rolls
    back loser transactions, writing compensation records. *)

type report = {
  redone : int; (** records whose after-image was applied *)
  undone : int; (** updates rolled back for loser transactions *)
  losers : int list; (** transaction ids rolled back *)
}

val run : Log_manager.t -> Rx_storage.Buffer_pool.t -> report
(** Recovers the database in [pool] from [log], then flushes and
    checkpoints. *)

val checkpoint : Log_manager.t -> Rx_storage.Buffer_pool.t -> unit
(** Flushes all dirty pages, forces the log, appends a checkpoint record and
    truncates the log. Must be called with no transaction in flight. *)

val rollback : Log_manager.t -> Rx_storage.Buffer_pool.t -> txid:int -> int
(** Online rollback of one live transaction: applies before-images of its
    updates newest-first, writing CLRs; returns the number of updates
    undone. The caller appends the [Abort] record. *)
