(** A FLWOR subset over stored collections — the "more complete XQuery" of
    the paper's future work (§6), built entirely from the engine's existing
    parts: the [for]/[where] clauses are rewritten into one XPath expression
    (so the Table-2 planner and value indexes apply unchanged, the paper's
    §4.2 rewrite philosophy), [order by] sorts matches on a key evaluated
    with QuickXScan over each match's subtree, and [return] constructors
    compile to the tagging templates of §4.1 with node-sequence holes.

    Grammar (one [for] clause):

    {v
    for $v in collection("table.column") <xpath>
    [where <cond on $v>]
    [order by $v/<relpath> [descending]]
    return <constructor>
    v}

    where [<cond>] is any predicate the XPath subset supports, written with
    [$v]-rooted paths (e.g. [$v/RegPrice > 100 and $v/Discount > 0.1]), and
    a constructor is literal XML with [{$v}] / [{$v/relpath}] holes —
    element-content holes splice the matched nodes, attribute-value holes
    take their string value. *)

exception Error of string

type compiled

val compile : Database.t -> string -> compiled
(** @raise Error on syntax or binding problems. *)

val explain : compiled -> string
(** The access plan of the rewritten XPath (the folded [for]+[where]). *)

val run : Database.t -> string -> string list
(** One serialized XML string per result item, in [order by] (or document)
    order. *)

val run_compiled : Database.t -> compiled -> string list
