let net_ops =
  [
    "hello"; "query"; "prepare"; "run_prepared"; "begin"; "commit";
    "rollback"; "insert"; "insert_many"; "delete"; "get"; "stats";
    "shutdown"; "repl_state"; "repl_fetch"; "open_cursor"; "fetch";
    "close_cursor"; "index_build"; "index_status"; "index_rollback";
    "index_drop"; "index_list";
  ]

let ensure_net_instruments m =
  let open Rx_obs.Metrics in
  List.iter (fun n -> ignore (gauge m n)) [ "net.conns"; "net.cursors" ];
  List.iter
    (fun n -> ignore (counter m n))
    [
      "net.conns.accepted"; "net.requests"; "net.errors"; "net.rejected";
      "net.bytes_in"; "net.bytes_out"; "net.idle_timeouts";
      "net.pipeline.batches"; "net.pipeline.requests";
    ];
  List.iter (fun op -> ignore (histogram m ("net.latency." ^ op))) net_ops

let json db =
  let s = Database.stats db in
  ensure_net_instruments (Database.metrics db);
  let num n = Rx_obs.Json.Num (float_of_int n) in
  Rx_obs.Json.Obj
    [
      ("tables", num s.Database.tables);
      ("documents", num s.Database.documents);
      ("xml_records", num s.Database.xml_records);
      ("node_index_entries", num s.Database.node_index_entries);
      ("value_index_entries", num s.Database.value_index_entries);
      ("data_pages", num s.Database.data_pages);
      ("log_bytes", num s.Database.log_bytes);
      ( "role",
        Rx_obs.Json.Str (if Database.is_replica db then "replica" else "leader")
      );
      ( "wal",
        let st = Database.repl_state db in
        Rx_obs.Json.Obj
          [
            ("base_lsn", Rx_obs.Json.Num (Int64.to_float st.Database.r_base_lsn));
            ( "durable_lsn",
              Rx_obs.Json.Num (Int64.to_float st.Database.r_durable_lsn) );
            ("archive_generations", num st.Database.r_generations);
          ] );
      ( "health",
        Rx_obs.Json.Str
          (match Database.health db with
          | `Healthy -> "ok"
          | `Degraded reason -> "degraded: " ^ reason) );
      ( "recovery",
        match Database.last_recovery db with
        | None -> Rx_obs.Json.Null
        | Some rep ->
            Rx_obs.Json.Obj
              [
                ("redone", num rep.Rx_wal.Recovery.redone);
                ("undone", num rep.Rx_wal.Recovery.undone);
                ("losers", num (List.length rep.Rx_wal.Recovery.losers));
              ] );
      ("counters", Rx_obs.Metrics.to_json (Database.metrics db));
    ]
