open Rx_xml
open Rx_xmlstore

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

(* --- constructor AST: literal XML with {$v/...} holes --- *)

type hole = { rel : Rx_xpath.Ast.path option (* None = the node itself *) }

type attr_piece = A_lit of string | A_hole of hole

type citem =
  | C_elem of { name : string; attrs : (string * attr_piece list) list; children : citem list }
  | C_text of string
  | C_hole of hole

type query = {
  var : string;
  table : string;
  column : string;
  path : Rx_xpath.Ast.path; (* for-path with the where clause folded in *)
  order : (Rx_xpath.Ast.path option * bool (* descending *)) option;
  construct : citem list;
}

type compiled = { q : query; plan : Database.plan_info }

(* --- surface parsing --- *)

type cursor = { src : string; mutable pos : int }

let at_eof c = c.pos >= String.length c.src
let peek c = if at_eof c then '\000' else c.src.[c.pos]

let skip_ws c =
  while (not (at_eof c)) && (peek c = ' ' || peek c = '\n' || peek c = '\t' || peek c = '\r') do
    c.pos <- c.pos + 1
  done

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let eat c s =
  if looking_at c s then begin
    c.pos <- c.pos + String.length s;
    true
  end
  else false

let expect c s = if not (eat c s) then error "expected %S at offset %d" s c.pos

let keyword c s =
  skip_ws c;
  expect c s;
  skip_ws c

let is_name_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.'

let read_name c =
  let start = c.pos in
  while (not (at_eof c)) && is_name_char (peek c) do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error "expected a name at offset %d" start;
  String.sub c.src start (c.pos - start)

let read_string_lit c =
  skip_ws c;
  let quote = peek c in
  if quote <> '"' && quote <> '\'' then error "expected a string literal";
  c.pos <- c.pos + 1;
  let start = c.pos in
  while (not (at_eof c)) && peek c <> quote do
    c.pos <- c.pos + 1
  done;
  if at_eof c then error "unterminated string literal";
  let s = String.sub c.src start (c.pos - start) in
  c.pos <- c.pos + 1;
  s

(* a $var(/relpath)? reference; returns the optional relative path text *)
let read_var_ref c ~var =
  expect c "$";
  let v = read_name c in
  if v <> var then error "unbound variable $%s (only $%s is in scope)" v var;
  if peek c = '/' then begin
    let start = c.pos + 1 in
    (* the path extends while path-ish characters continue *)
    let is_path_char ch =
      is_name_char ch || ch = '/' || ch = '@' || ch = '*' || ch = ':' || ch = '(' || ch = ')'
    in
    c.pos <- start;
    while (not (at_eof c)) && is_path_char (peek c) do
      c.pos <- c.pos + 1
    done;
    Some (String.sub c.src start (c.pos - start))
  end
  else None

let parse_rel_path text =
  match Rx_xpath.Xpath_parser.parse text with
  | p ->
      if p.Rx_xpath.Ast.absolute then error "expected a relative path, got %s" text;
      p
  | exception Rx_xpath.Xpath_parser.Error { pos; msg } ->
      error "bad path %S (at %d: %s)" text pos msg

let read_hole c ~var =
  (* positioned after '{' *)
  skip_ws c;
  let rel = Option.map parse_rel_path (read_var_ref c ~var) in
  skip_ws c;
  expect c "}";
  { rel }

(* attribute value: quoted text where {..} is a hole *)
let read_attr_value c ~var =
  skip_ws c;
  expect c "=";
  skip_ws c;
  let quote = peek c in
  if quote <> '"' && quote <> '\'' then error "expected an attribute value";
  c.pos <- c.pos + 1;
  let pieces = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      pieces := A_lit (Buffer.contents buf) :: !pieces;
      Buffer.clear buf
    end
  in
  let rec loop () =
    if at_eof c then error "unterminated attribute value"
    else if peek c = quote then c.pos <- c.pos + 1
    else if peek c = '{' then begin
      c.pos <- c.pos + 1;
      flush ();
      pieces := A_hole (read_hole c ~var) :: !pieces;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek c);
      c.pos <- c.pos + 1;
      loop ()
    end
  in
  loop ();
  flush ();
  List.rev !pieces

let rec read_citem c ~var =
  (* no leading skip_ws: whitespace between items is significant text *)
  if eat c "{" then Some (C_hole (read_hole c ~var))
  else if looking_at c "</" then None
  else if eat c "<" then begin
    let name = read_name c in
    let attrs = ref [] in
    let rec read_attrs () =
      skip_ws c;
      if eat c "/>" then true
      else if eat c ">" then false
      else begin
        let aname = read_name c in
        let value = read_attr_value c ~var in
        attrs := (aname, value) :: !attrs;
        read_attrs ()
      end
    in
    let self_closing = read_attrs () in
    let children = ref [] in
    if not self_closing then begin
      let rec read_children () =
        match read_citem c ~var with
        | Some item ->
            children := item :: !children;
            read_children ()
        | None -> ()
      in
      read_children ();
      expect c "</";
      let close = read_name c in
      if close <> name then error "mismatched </%s>, expected </%s>" close name;
      skip_ws c;
      expect c ">"
    end;
    Some
      (C_elem { name; attrs = List.rev !attrs; children = List.rev !children })
  end
  else begin
    (* literal text until '<' or '{' *)
    let buf = Buffer.create 16 in
    while (not (at_eof c)) && peek c <> '<' && peek c <> '{' do
      Buffer.add_char buf (peek c);
      c.pos <- c.pos + 1
    done;
    let text = Buffer.contents buf in
    if String.trim text = "" && (at_eof c || looking_at c "</") then None
    else Some (C_text text)
  end

let read_constructors c ~var =
  let items = ref [] in
  let rec loop () =
    skip_ws c;
    if not (at_eof c) then begin
      match read_citem c ~var with
      | Some item ->
          items := item :: !items;
          loop ()
      | None -> error "unexpected %S" (String.sub c.src c.pos (min 10 (String.length c.src - c.pos)))
    end
  in
  loop ();
  List.rev !items

let parse_query text =
  let c = { src = text; pos = 0 } in
  keyword c "for";
  expect c "$";
  let var = read_name c in
  keyword c "in";
  keyword c "collection";
  expect c "(";
  let coll = read_string_lit c in
  skip_ws c;
  expect c ")";
  let table, column =
    match String.split_on_char '.' coll with
    | [ t; col ] -> (t, col)
    | _ -> error "collection name must be \"table.column\", got %S" coll
  in
  (* the for-path runs to the 'where'/'order'/'return' keyword *)
  let path_start = c.pos in
  let next_kw = ref None in
  let rec scan i =
    if i >= String.length text then ()
    else if
      List.exists
        (fun kw ->
          i + String.length kw <= String.length text
          && String.sub text i (String.length kw) = kw)
        [ " where "; "\nwhere "; " order "; "\norder "; " return "; "\nreturn " ]
    then next_kw := Some i
    else scan (i + 1)
  in
  scan path_start;
  let path_end = match !next_kw with Some i -> i | None -> error "missing return clause" in
  let for_path_text = String.trim (String.sub text path_start (path_end - path_start)) in
  let for_path =
    match Rx_xpath.Xpath_parser.parse for_path_text with
    | p ->
        if not p.Rx_xpath.Ast.absolute then error "the for-path must be absolute";
        p
    | exception Rx_xpath.Xpath_parser.Error { pos; msg } ->
        error "bad for-path %S (at %d: %s)" for_path_text pos msg
  in
  c.pos <- path_end;
  skip_ws c;
  (* optional where: fold into the last step's predicates *)
  let path =
    if eat c "where" then begin
      skip_ws c;
      let where_start = c.pos in
      let wnext = ref None in
      let rec scan2 i =
        if i >= String.length text then ()
        else if
          List.exists
            (fun kw ->
              i + String.length kw <= String.length text
              && String.sub text i (String.length kw) = kw)
            [ " order "; "\norder "; " return "; "\nreturn " ]
        then wnext := Some i
        else scan2 (i + 1)
      in
      scan2 where_start;
      let where_end = match !wnext with Some i -> i | None -> error "missing return clause" in
      let cond = String.trim (String.sub text where_start (where_end - where_start)) in
      c.pos <- where_end;
      skip_ws c;
      (* rewrite $var-rooted operands into relative paths, then parse the
         condition through the XPath predicate grammar *)
      let cond =
        let b = Buffer.create (String.length cond) in
        let n = String.length cond in
        let i = ref 0 in
        while !i < n do
          if cond.[!i] = '$' then begin
            let j = ref (!i + 1) in
            while !j < n && is_name_char cond.[!j] do
              incr j
            done;
            let v = String.sub cond (!i + 1) (!j - !i - 1) in
            if v <> var then error "unbound variable $%s in where clause" v;
            if !j < n && cond.[!j] = '/' then i := !j + 1 (* drop "$v/" *)
            else begin
              Buffer.add_char b '.';
              i := !j
            end
          end
          else begin
            Buffer.add_char b cond.[!i];
            incr i
          end
        done;
        Buffer.contents b
      in
      let pred_path =
        match Rx_xpath.Xpath_parser.parse (Printf.sprintf "*[%s]" cond) with
        | p -> p
        | exception Rx_xpath.Xpath_parser.Error { pos; msg } ->
            error "bad where clause (at %d: %s)" pos msg
      in
      let preds =
        match pred_path.Rx_xpath.Ast.steps with
        | [ { Rx_xpath.Ast.preds; _ } ] -> preds
        | _ -> error "bad where clause"
      in
      match List.rev for_path.Rx_xpath.Ast.steps with
      | last :: rev_prefix ->
          {
            for_path with
            Rx_xpath.Ast.steps =
              List.rev ({ last with Rx_xpath.Ast.preds = last.Rx_xpath.Ast.preds @ preds } :: rev_prefix);
          }
      | [] -> error "empty for-path"
    end
    else for_path
  in
  (* optional order by *)
  let order =
    if eat c "order" then begin
      skip_ws c;
      expect c "by";
      skip_ws c;
      let rel = Option.map parse_rel_path (read_var_ref c ~var) in
      skip_ws c;
      let descending = eat c "descending" in
      skip_ws c;
      Some (rel, descending)
    end
    else None
  in
  keyword c "return";
  let construct = read_constructors c ~var in
  { var; table; column; path; order; construct }

(* --- evaluation --- *)

let dict_of db = Database.dict db

(* Evaluate a relative path against one matched node's subtree. Returns
   (node id, captured value): attribute results carry their value (the node
   id is the owning element's). *)
let eval_rel db ~table ~column ~docid ~node rel =
  let store = Database.column_store db ~table ~column in
  let query = Rx_quickxscan.Query.compile (dict_of db) rel in
  let engine = Rx_quickxscan.Engine.create query in
  Doc_store.subtree_events store ~docid node (fun e ->
      match (e.Doc_store.id, e.Doc_store.token) with
      | Some id, Token.Start_element { name; attrs; _ } ->
          Rx_quickxscan.Engine.start_element engine ~name ~attrs
            ~item:(fun () -> id)
            ~attr_item:(fun _ -> id)
      | None, Token.End_element -> Rx_quickxscan.Engine.end_element engine
      | Some id, Token.Text { content; _ } ->
          Rx_quickxscan.Engine.text engine ~content ~item:(fun () -> id)
      | Some id, Token.Comment content ->
          Rx_quickxscan.Engine.comment engine ~content ~item:(fun () -> id)
      | Some id, Token.Pi { target; data } ->
          Rx_quickxscan.Engine.pi engine ~target ~data ~item:(fun () -> id)
      | _ -> ());
  Rx_quickxscan.Engine.finish_with_values engine

let subtree_tokens db ~table ~column ~docid node =
  let store = Database.column_store db ~table ~column in
  let acc = ref [] in
  Doc_store.subtree_events store ~docid node (fun e ->
      acc := e.Doc_store.token :: !acc);
  List.rev !acc

let string_value tokens =
  let buf = Buffer.create 32 in
  List.iter
    (fun t -> match t with Token.Text { content; _ } -> Buffer.add_string buf content | _ -> ())
    tokens;
  Buffer.contents buf

let hole_entries db q ~docid ~node (h : hole) =
  match h.rel with
  | None -> [ (node, None) ]
  | Some rel -> eval_rel db ~table:q.table ~column:q.column ~docid ~node rel

let rec emit_citem db q ~docid ~node sink item =
  match item with
  | C_text s -> sink (Token.text s)
  | C_hole h ->
      List.iter
        (fun (n, value) ->
          match value with
          | Some v ->
              (* an attribute (or text) result: splice its string value *)
              sink (Token.text v)
          | None ->
              List.iter sink
                (subtree_tokens db ~table:q.table ~column:q.column ~docid n))
        (hole_entries db q ~docid ~node h)
  | C_elem { name; attrs; children } ->
      let dict = dict_of db in
      let attrs =
        List.map
          (fun (aname, pieces) ->
            let buf = Buffer.create 16 in
            List.iter
              (fun piece ->
                match piece with
                | A_lit s -> Buffer.add_string buf s
                | A_hole h ->
                    List.iter
                      (fun (n, value) ->
                        match value with
                        | Some v -> Buffer.add_string buf v
                        | None ->
                            Buffer.add_string buf
                              (string_value
                                 (subtree_tokens db ~table:q.table ~column:q.column
                                    ~docid n)))
                      (hole_entries db q ~docid ~node h))
              pieces;
            Token.attr (Qname.make (Name_dict.intern dict aname)) (Buffer.contents buf))
          attrs
      in
      sink
        (Token.Start_element
           { name = Qname.make (Name_dict.intern dict name); attrs; ns_decls = [] });
      List.iter (emit_citem db q ~docid ~node sink) children;
      sink Token.End_element

let compile db text =
  let q = parse_query text in
  let plan =
    Database.explain db ~table:q.table ~column:q.column
      ~xpath:(Rx_xpath.Ast.to_string q.path)
  in
  { q; plan }

let explain compiled = compiled.plan.Database.description

let run_compiled db { q; _ } =
  let matches =
    (Database.run db ~table:q.table ~column:q.column
       ~xpath:(Rx_xpath.Ast.to_string q.path))
      .Database.matches
  in
  let matches =
    match q.order with
    | None -> matches
    | Some (rel, descending) ->
        let keyed =
          List.map
            (fun (m : Database.match_) ->
              let entries =
                match rel with
                | None -> [ (m.Database.node, None) ]
                | Some rel ->
                    eval_rel db ~table:q.table ~column:q.column ~docid:m.Database.docid
                      ~node:m.Database.node rel
              in
              let key =
                match entries with
                | (_, Some v) :: _ -> v
                | (n, None) :: _ ->
                    string_value
                      (subtree_tokens db ~table:q.table ~column:q.column
                         ~docid:m.Database.docid n)
                | [] -> ""
              in
              (key, m))
            matches
        in
        let numeric =
          keyed <> []
          && List.for_all (fun (k, _) -> float_of_string_opt (String.trim k) <> None) keyed
        in
        let cmp (a, _) (b, _) =
          let c =
            if numeric then compare (float_of_string a) (float_of_string b)
            else String.compare a b
          in
          if descending then -c else c
        in
        List.map snd (List.stable_sort cmp keyed)
  in
  List.map
    (fun (m : Database.match_) ->
      let buf = Buffer.create 128 in
      let sink = Serializer.make_sink (dict_of db) buf in
      List.iter
        (emit_citem db q ~docid:m.Database.docid ~node:m.Database.node sink)
        q.construct;
      Buffer.contents buf)
    matches

let run db text = run_compiled db (compile db text)
