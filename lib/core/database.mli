(** System R/X database facade: base tables with XML columns stored
    natively (Figure 2), schema registration and validation at insert,
    XPath value indexes, and XPath queries with Table-2 access-path
    selection. All manipulation goes through this API, mirroring the
    paper's "all the manipulation and querying of XML data are through SQL
    and SQL/XML" — the SQL surface itself is out of scope (§2).

    Sessions: every mutating call without an explicit transaction runs as
    its own WAL-backed auto-commit transaction, exactly as before. An
    explicit transaction ({!begin_txn} / {!commit} / {!rollback}, passed as
    [?txn] to DML and queries) gives multi-statement atomicity with
    snapshot-isolated reads: reads see the database as of [begin_txn]
    (plus the transaction's own writes) and never block; writes acquire
    document-level — and, for sub-document updates, NodeID-subtree —
    locks through the multiple-granularity protocol and are staged in a
    versioned side store until commit, when they are replayed (and
    indexed) against the current state. [checkpoint] makes state durable
    and truncatable; a database opened on existing files recovers —
    discarding transactions that never committed — and reloads the
    catalog. *)

type t
type table

type txn
(** An explicit transaction (session) on one database handle. *)

exception Busy of { txid : int; blockers : int list }
(** A lock request conflicted with locks held by other live transactions
    and no deadlock was found: the statement did not execute; the
    transaction stays open (retry, or {!rollback}). Deadlocks raise
    {!Rx_txn.Lock_manager.Deadlock} instead, after rolling the victim
    back. Also raised — with [txid = 0] and no blockers — when a query
    cannot pin a page because every buffer-pool frame is pinned
    ({!Rx_storage.Buffer_pool.Pool_exhausted}): retryable backpressure,
    not data damage. *)

exception Read_only of { reason : string }
(** Raised by every mutating call (DDL, DML, {!begin_txn}, {!checkpoint})
    on a handle that opened in degraded read-only mode after detecting
    corruption — see {!health}. *)

type match_ = { docid : int; node : Rx_xmlstore.Node_id.t }

type plan_info = {
  description : string; (** e.g. "NODEID-ANDING(i1,i2)+FILTER" *)
  uses_index : bool;
  exact : bool;
}

type result = {
  matches : match_ list;
      (** matching nodes across all documents of the column, in (DocID,
          document order) *)
  plan : plan_info;  (** the access path that was executed *)
  serialize : match_ -> string;
      (** lazy per-match subtree serialization (no work until called) *)
  profile : (string * int) list;
      (** runtime-counter deltas attributable to this query: what the
          buffer pool, B+trees, indexes, QuickXScan and executor did while
          it ran, as [(counter name, delta)] pairs sorted by name *)
}

type config = {
  auto_checkpoint : bool;  (** fire checkpoints automatically (default on) *)
  checkpoint_wal_bytes : int;
      (** checkpoint once this many WAL bytes accumulate since the last one *)
  checkpoint_wal_records : int;
      (** ... or this many WAL records, whichever comes first *)
  readahead : int;
      (** sequential-readahead window (pages per batched read) on every XML
          column store — heap-chain scans and node-index leaf walks
          prefetch upcoming pages in one pager read. [<= 1] disables;
          default 8. Effectiveness shows in the
          [bufpool.readahead.{batches,pages,wasted}] counters. *)
  plan_cache_capacity : int;
      (** entries in the LRU prepared-plan cache (default 128); see
          {!prepare}. Changing it via {!set_config} recreates the cache,
          dropping cached plans. *)
  commit_window_us : int;
      (** microseconds a group-commit leader holds its window open so
          concurrent committers can share its fsync (default 0 = flush
          immediately); see {!commit}. Only consulted when other
          transactions are active. *)
  wal_buffer_bytes : int;
      (** staged-but-unwritten WAL bytes beyond which an append spills the
          write buffer to the file, without fsync (default 256 KiB) —
          bounds the size of the write a commit's flush performs. *)
  parallelism : int;
      (** worker domains for parallel operators — partitioned QuickXScan,
          bulk-load parse+validate, index-build key extraction. [0] (the
          default) means auto: one per core
          ([Domain.recommended_domain_count]); [1] forces sequential
          execution. The [RX_PARALLELISM] environment variable seeds
          {!default_config}'s value. *)
  parallel_scan_min_pages : int;
      (** a query fans out across domains only when its column store holds
          at least this many heap data pages (default 64) — below that the
          per-domain setup costs more than the scan. *)
}
(** Engine tuning in one record: automatic-checkpoint policy, the read
    path's readahead and plan-cache knobs, the write path's
    group-commit and WAL-buffer knobs, and the parallel-execution knobs. The checkpoint trigger is evaluated
    after every auto-commit operation and every explicit {!commit}; it
    fires only when no transaction is in flight (checkpointing truncates
    the log, so in-flight transactions must not have records there).
    Checkpoints are counted in the [ckpt.auto] / [ckpt.manual] metrics and
    traced as [db.checkpoint] spans. *)

val default_config : config
(** [auto_checkpoint = true], 4 MiB, 50k records; [readahead = 8],
    [plan_cache_capacity = 128], [commit_window_us = 0],
    [wal_buffer_bytes = 256 KiB]; [parallelism] from [RX_PARALLELISM] or 0
    (auto), [parallel_scan_min_pages = 64]. *)

val config : t -> config
(** The handle's current configuration (starts as the [?config] passed at
    open, or {!default_config}). *)

val set_config : t -> config -> unit
(** Replaces the configuration and pushes the tuning knobs down to the
    layers that own them (column stores, WAL). Takes effect immediately;
    not thread-safe with concurrent operations. *)

val create_in_memory :
  ?page_size:int ->
  ?record_threshold:int ->
  ?config:config ->
  unit ->
  t
(** A database on an in-memory pager and WAL (nothing survives the
    process); [config] defaults to {!default_config}. *)

val open_dir :
  ?page_size:int ->
  ?record_threshold:int ->
  ?config:config ->
  string ->
  t
(** Opens (creating if needed) a database in a directory: [data.rxdb] pages
    and [wal.rxlog]. Runs crash recovery — replaying committed work,
    rolling back losers, and treating a checksum-invalid WAL tail as a torn
    write (replay stops at the last intact record) — then reloads the
    catalog. If mid-file corruption is detected (a page or WAL record whose
    checksum fails), the handle opens {e degraded}: intact data stays
    readable, every mutating call raises {!Read_only}, and {!health} /
    {!verify} expose the damage. *)

val checkpoint : t -> unit
(** Persists the catalog, flushes all dirty pages, forces the log, and
    truncates it. Durable state is complete as of the call; must not run
    concurrently with an explicit transaction.
    @raise Read_only on a degraded handle. *)

val health : t -> [ `Healthy | `Degraded of string ]
(** [`Degraded reason] when corruption was detected while opening: the
    handle serves reads from intact data but refuses all mutations. *)

type verify_report = {
  pages_checked : int;
  corrupt_pages : int list;  (** page numbers whose checksum fails *)
  wal_records : int;  (** records in the log since the last truncation *)
  wal_torn_bytes : int;
      (** bytes cut from the WAL tail as a torn write at open *)
}

val verify : t -> verify_report
(** Reads every physical page directly from the pager (bypassing cached
    copies) and checks its checksum; never raises on corruption — damaged
    pages are listed in the report. *)

val last_recovery : t -> Rx_wal.Recovery.report option
(** What crash recovery did when this handle was opened; [None] for a
    fresh database or an in-memory one. *)

val close : t -> unit
(** Rolls back any still-open transaction, checkpoints (skipped on a
    degraded handle: its partial in-memory view must not overwrite durable
    state), and closes the pager and log. *)

val crash : t -> unit
(** Hard-stops the handle as if the process died: closes the file
    descriptors with no rollback, no checkpoint and no flush. The next
    {!open_dir} runs recovery. Crash-testing only. *)

val set_fault : ?scope:[ `All | `Wal_only ] -> t -> Rx_storage.Fault.t option -> unit
(** Installs a fault-injection handle on the pager and WAL ([`All]) or the
    WAL alone ([`Wal_only] — used for torn-write faults, which only the
    log tolerates by design). Crash-testing only. *)

val dict : t -> Rx_xml.Name_dict.t

(** {1 Replication & point-in-time restore}

    A leader ships durable WAL frames ({!repl_fetch}); a replica opened
    with {!open_replica} applies them through the redo path
    ({!apply_redo}) while serving read-only snapshot queries, and can be
    promoted to a writable leader ({!promote_replica}). The higher-level
    pull/apply/cursor machinery lives in {!Replica}; these are the
    engine primitives it builds on. {!restore} rebuilds a past state
    from the WAL archive. *)

val open_replica :
  ?page_size:int ->
  ?record_threshold:int ->
  ?config:config ->
  string ->
  t
(** Opens a directory as a {e replica}: no bootstrap is performed on a
    fresh directory (the catalog and every page arrive by replication,
    preserving the leader's LSNs exactly), recovery replays any pages
    flushed before the last cursor write, auto-checkpointing is off, and
    every mutating call raises {!Read_only} until {!promote_replica}.
    Use {!Replica.attach} rather than calling this directly. *)

val is_replica : t -> bool

val replica_cursor_path : string -> string
(** [dir/replica.lsn] — where a replica persists its resume position.
    Its presence marks the directory as a replica: a plain {!open_dir}
    of such a directory opens degraded (the pages may be mid-apply;
    only [rxd promote] makes it a writable database again). *)

val archive_path : string -> string
(** [dir/archive] — the WAL archive directory. Creating it (e.g.
    [rx init --archive]) turns on archiving: every checkpoint captures
    the WAL span it is about to truncate as a generation file, so the
    archive plus the live WAL cover the full history from LSN 0 —
    what replication catch-up from any LSN and {!restore} require. *)

val refresh_replica : t -> unit
(** Re-reads the catalog heap from the replicated pages and rebuilds the
    logical layer (tables, indexes, schemas, name dictionary) from it.
    Call after applying a batch that may have included DDL or a
    checkpoint; cheap when nothing changed structurally. *)

val durable_lsn : t -> int64
(** The LSN up to which this handle's WAL is known fsynced — the ship
    horizon: a leader never sends bytes that could vanish in its own
    crash. *)

val wal_base_lsn : t -> int64
(** Where the live WAL starts; frames below it are only in the archive. *)

type repl_state = {
  r_base_lsn : int64;
  r_durable_lsn : int64;
  r_generations : int;  (** archived WAL generations available *)
  r_page_size : int;
      (** physical page images only make sense at the leader's geometry:
          a fresh replica must be created with this page size *)
}

val repl_state : t -> repl_state
(** Where this leader's history starts and ends right now — what a
    replica (or [rxd serve --replicate-from]) needs to decide where to
    fetch from and whether it can catch up at all. *)

val repl_fetch : t -> from_lsn:int64 -> max_bytes:int -> int64 * string * int64
(** [(start_lsn, frames, durable_lsn)]: raw CRC-framed WAL bytes from
    [from_lsn] (a frame-boundary LSN), cut at a frame boundary within
    [max_bytes] (the first frame always ships whole). Positions below
    the live base are served from the archive.
    @raise Failure if the history at [from_lsn] is gone (no archive):
    the replica must be rebuilt from scratch. *)

val apply_redo :
  t -> page_no:int -> lsn:int64 -> off:int -> image:string -> bool
(** Applies one logged after-image on a replica, allocating pages as
    needed and honouring the page-LSN idempotence rule ([false] when the
    page is already at or past [lsn]). Caller must hold {!exclusively}. *)

val promote_replica : t -> lsn:int64 -> int64
(** Makes a replica writable: flushes everything it applied, resets the
    (empty) local WAL's base to the maximum of [lsn] — the apply horizon
    — and every page LSN on disk (pages may have been flushed past the
    cursor before a replica crash), and removes the cursor file. Returns
    the base chosen, where the new timeline begins. Irreversible; the
    old leader must never ship to this directory again. *)

type restore_report = {
  rst_records : int;  (** records replayed (LSN below the cut) *)
  rst_undone : int;  (** loser updates rolled back at the cut *)
  rst_losers : int list;  (** transactions still open at the cut *)
  rst_stop_lsn : int64;  (** the requested cut *)
  rst_new_base : int64;  (** the restored database's WAL base *)
}

val restore :
  ?page_size:int ->
  ?to_lsn:int64 ->
  source:string ->
  target:string ->
  unit ->
  restore_report
(** Point-in-time restore: rebuilds into fresh directory [target] the
    exact state [source] had at [to_lsn] (exclusive; default: the end of
    its history) by replaying archived WAL generations plus the live WAL
    through normal recovery — transactions still open at the cut are
    rolled back, exactly as a crash there would have. Requires an
    unbroken archive chain from LSN 0 ([rx init --archive]). Offline
    operation: [source] must be a stopped database or a file-level copy.
    @raise Failure on incomplete history, a bad [to_lsn], or a non-empty
    [target]. *)

(** {1 Transactions}

    Writers follow strict two-phase locking from the moment a statement is
    staged; readers run against the begin-time snapshot without locking.
    Conflicting writes by a transaction that committed after this
    transaction began are refused (first-updater-wins,
    [Failure "... write-write conflict ..."]). *)

val begin_txn : t -> txn
(** Starts a transaction whose reads see the database as of now. *)

val commit : t -> txn -> unit
(** Atomically applies the transaction's staged statements to the current
    state (value/text indexes are maintained here — index maintenance is
    deferred to commit), releases locks, and waits for the Commit record to
    reach stable storage. The durability wait goes through the WAL's group
    commit: concurrent [commit] calls share one fsync (a leader flushes for
    the group, optionally holding the window open for
    [config.commit_window_us]), so N committers cost ~1 fsync instead of N.
    [commit] is the {e only} operation on a handle that may be called bare
    from multiple threads concurrently; everything else must be externally
    serialized — {!exclusively} is that serialization, and the rxd server
    wraps every session request in it.
    @raise Invalid_argument if the transaction is not open. *)

val exclusively : t -> (unit -> 'a) -> 'a
(** Runs [f] holding the handle's engine lock — the same lock {!commit}
    takes for its apply phase. A multi-threaded host (one thread per
    client session, say) that wraps every handle operation in
    [exclusively] may issue them from any thread: sessions serialize
    against each other {e and} against concurrent commits. Not reentrant:
    [f] must not call [exclusively], {!commit} or {!with_txn} on the same
    handle (use {!commit_async} inside the critical section instead). *)

val commit_async : t -> txn -> unit -> unit
(** The apply phase of {!commit} — staged statements replayed, Commit
    record appended, locks released — returning the durability wait as a
    thunk instead of performing it. Must be called under {!exclusively}
    (or on the only thread using the handle); call the thunk {e after}
    leaving the critical section, from any thread, so concurrent
    committers overlap their waits and share group-commit fsyncs.
    [commit t txn] is [exclusively t (fun () -> commit_async t txn) ()].
    @raise Invalid_argument if the transaction is not open. *)

val with_txn : t -> (txn -> 'a) -> 'a
(** [with_txn t f] begins a transaction, runs [f], commits on normal
    return and rolls back (then re-raises) if [f] raises. Thread-safe
    like {!commit}: the begin/stage/apply runs under the engine lock with
    the commit's durability wait outside it, so concurrent [with_txn]
    callers — the rxd server wraps every auto-commit client request in
    one — serialize their statements but share commit fsyncs. [f] runs
    inside the critical section: keep it engine work only, and never call
    {!exclusively}, {!commit} or a nested [with_txn] from it. *)

val rollback : t -> txn -> unit
(** Discards every staged statement — stats, value indexes and query
    results are exactly as before the transaction began — and releases
    locks. No-op on an already-finished transaction. *)

val txn_id : txn -> int
val txn_active : txn -> bool

(** {1 DDL} *)

val create_table :
  t -> name:string -> columns:(string * Rx_relational.Value.col_type) list -> table
(** @raise Invalid_argument if the table exists or no column is given. *)

val table : t -> string -> table option
val list_tables : t -> string list
(** Table names in creation order. *)

val register_schema : t -> name:string -> xsd:string -> unit
(** Compiles the XSD to its binary form and stores it in the catalog
    (Figure 4). @raise Rx_schema.Schema_model.Schema_error *)

val bind_schema : t -> table:string -> column:string -> schema:string -> unit
(** Documents inserted into the column are validated (and type-annotated)
    from then on. *)

exception
  Unknown_index of { kind : [ `Table | `Column | `Index ]; name : string }
(** An index-lifecycle operation named a table, XML column or index that
    does not exist. Maps to the stable application-error code (1) in the
    exit-code/wire table, but with a recognizable shape so callers can
    distinguish "no such index" from arbitrary argument errors. *)

(** Online, generational XPath value-index lifecycle.

    {!Index.build} constructs an index {e without} stopping the world: a
    side log (registered before the snapshot is taken) absorbs concurrent
    DML while the table is scanned in short slices, each slice its own
    critical section and micro-transaction, so queries and writers keep
    running against the current generation throughout. At a short quiesce
    point the side log is drained and the new generation is atomically
    swapped into planning (cached plans recompile via the DDL epoch); the
    WAL-logged catalog save makes the swap durable — a crash mid-build
    recovers to the old generation and the half-built tree's pages are
    unreferenced orphans (page reclamation is lazy engine-wide).

    Rebuilding an existing name bumps the generation and {e retains} the
    displaced generation, still observer-maintained, so {!Index.rollback}
    can swap it back in without downtime — and without serving stale
    entries. *)
module Index : sig
  (** Where an index (or an in-flight build) stands. *)
  type state =
    | Building of { scanned : int; total : int; side_log : int }
        (** scan progress in documents, plus the side-log backlog *)
    | Live  (** serving queries *)
    | Failed of string  (** the build died; the target is untouched *)

  type info = {
    ix_name : string;
    ix_path : string;  (** the indexed XPath, normalized *)
    ix_key_type : Rx_xindex.Index_def.key_type;
    ix_generation : int;  (** 1 for a first build; rebuilds increment *)
    ix_state : state;
    ix_entries : int;  (** key count (0 while building) *)
    ix_build_ms : int;  (** duration of the last completed build *)
    ix_prior_generation : int option;
        (** retained generation a {!rollback} would restore *)
  }
  (** Typed description of one index — what {!list} and {!status} return
      instead of bare names. *)

  type handle
  (** A running build, returned by {!build}; join it with {!await}. *)

  val build :
    ?on_slice:(int -> unit) ->
    t ->
    table:string ->
    column:string ->
    name:string ->
    path:string ->
    key_type:Rx_xindex.Index_def.key_type ->
    handle
  (** Starts an online build (or, if [name] is already live, an online
      generational rebuild) on a background thread and returns
      immediately. Progress is visible through {!status}; the engine stays
      fully available while it runs. [?on_slice] is called after each scan
      slice, outside the engine lock — a test/throttling hook.
      @raise Unknown_index on an unknown table or column.
      @raise Invalid_argument on an invalid path or if the same name is
      already being built.
      @raise Read_only on replicas and degraded handles. *)

  val await : handle -> info
  (** Blocks until the build finishes and returns the live generation's
      info; re-raises the build's failure if it died. *)

  val status : t -> table:string -> column:string -> name:string -> info
  (** The index's current state: an in-flight build reports
      [Building {scanned; total; side_log}], a dead one reports [Failed]
      until the next successful rebuild, otherwise the live generation.
      @raise Unknown_index if nothing by that name exists. *)

  val rollback : t -> table:string -> column:string -> name:string -> info
  (** Swaps the retained prior generation back into planning, atomically
      and without downtime, and retains the displaced generation in turn
      (so a rollback can be undone by another rollback). Both generations
      were observer-maintained while retained, so the restored index is
      current, not stale.
      @raise Unknown_index if no index by that name is live.
      @raise Invalid_argument if there is no prior generation, or the name
      is mid-build. *)

  val drop : ?txn:txn -> t -> table:string -> column:string -> name:string -> unit
  (** Drops an index and its retained prior generation: detaches their
      maintenance observers, removes the name from planning, invalidates
      cached plans (B+tree pages are not reclaimed — deletion is lazy
      engine-wide). With [?txn] the drop is staged and becomes effective
      (and durable) at {!commit}; until then other sessions keep planning
      with the index, while the staging transaction's own queries refuse
      plans that use it.
      @raise Unknown_index if the index does not exist. *)

  val list : t -> table:string -> column:string -> info list
  (** Every live index on the column, plus in-flight first builds (a
      rebuild is listed as its live generation; see {!status} for its
      progress).
      @raise Unknown_index on an unknown table or column. *)
end

val create_xml_index :
  t ->
  table:string ->
  column:string ->
  name:string ->
  path:string ->
  key_type:Rx_xindex.Index_def.key_type ->
  unit
(** @deprecated Alias for {!Index.build} + {!Index.await} (the build is
    online now, but this call still blocks until it completes). Unlike
    {!Index.build} it refuses a [name] that already exists, preserving the
    old contract. *)

val list_xml_indexes : t -> table:string -> column:string -> string list
(** @deprecated Live index names — {!Index.list} without the typed
    {!Index.info}. *)

val drop_xml_index :
  ?txn:txn -> t -> table:string -> column:string -> name:string -> unit
(** @deprecated Alias for {!Index.drop}. *)

val create_text_index : t -> table:string -> column:string -> name:string -> unit
(** Full-text inverted index over the column's text and attribute values
    (the §6 future-work extension); backfills existing documents. *)

val text_search :
  t ->
  table:string ->
  column:string ->
  ?mode:[ `All | `Any ] ->
  string ->
  int list
(** DocIDs whose documents contain all (default) or any of the query's
    terms. *)

val text_score : t -> table:string -> column:string -> docid:int -> string -> int
(** Total occurrences of the query's terms in the document. *)

(** {1 DML} *)

val insert :
  ?txn:txn ->
  t ->
  table:string ->
  ?values:(string * Rx_relational.Value.t) list ->
  ?xml:(string * string) list ->
  unit ->
  int
(** Inserts a row; returns its DocID. XML documents are parsed (validated
    when a schema is bound), packed and indexed. With [?txn] the row is
    staged (invisible to other sessions) until {!commit}.
    @raise Rx_xml.Parser.Parse_error / Rx_schema.Validator.Validation_error *)

val insert_many :
  ?docids:int list -> t -> table:string -> column:string -> string list -> int list
(** Bulk load: inserts every document into [column] (one row each) as a
    {e single} auto-committed transaction — all documents become visible
    and durable together, or none do. The batch takes one table-level X
    lock instead of a lock per document, places records through the heap
    file's batch path (free-space map probed per page, not per record),
    runs value/text index maintenance batched per index, and pays one WAL
    flush (one fsync) at commit. Every document is parsed (and validated,
    when a schema is bound) before anything is written, so a bad document
    or a duplicate [docids] entry rejects the whole batch with the
    database unchanged. DocIDs are allocated consecutively unless [docids]
    provides them (same length as the batch, all unused). Returns the
    batch's DocIDs in order. Concurrent snapshots opened before the call
    do not see the batch.
    @raise Invalid_argument on a docid collision or length mismatch.
    @raise Rx_xml.Parser.Parse_error / Rx_schema.Validator.Validation_error *)

val delete : ?txn:txn -> t -> table:string -> docid:int -> unit
(** Deletes the row (and its XML documents, with pre-images retained for
    live snapshots). With [?txn] the delete is staged until {!commit}. *)

val fetch_row : t -> table:string -> docid:int -> Rx_relational.Value.t array option
(** The base-table row for a DocID, if present. *)

val row_count : t -> table:string -> int
(** Rows currently in the table's base table. *)

val document : ?txn:txn -> t -> table:string -> column:string -> docid:int -> string
(** Serialized XML column value (at the transaction's snapshot when [?txn]
    is given). *)

(** {2 Sub-document updates}

    Node IDs come from {!query} results; existing IDs are stable across
    these operations (§3.1) and all indexes are maintained. Updates on a
    schema-bound column are {e not} re-validated (matching the paper's
    sub-document update story, where validation happens at full-document
    insertion). *)

val update_xml_text :
  ?txn:txn ->
  t -> table:string -> column:string -> docid:int -> Rx_xmlstore.Node_id.t ->
  string -> unit
(** Replaces the content of a text node. The node may also be an element
    (e.g. straight from a query match), in which case its first text-node
    child is updated. *)

val insert_xml_fragment :
  ?txn:txn ->
  t ->
  table:string ->
  column:string ->
  docid:int ->
  Rx_xmlstore.Doc_store.position ->
  string ->
  Rx_xmlstore.Node_id.t list
(** The string is a balanced XML fragment (possibly several top-level
    nodes). *)

val delete_xml_node :
  ?txn:txn ->
  t -> table:string -> column:string -> docid:int -> Rx_xmlstore.Node_id.t -> unit

val xml_handle :
  t -> table:string -> column:string -> docid:int -> Rx_xqueryrt.Xml_handle.t
(** Deferred-fetch handle (§4.4). *)

(** {1 Queries} *)

val explain :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> plan_info

type prepared
(** A query compiled once — parsed, rewritten, planned, and its QuickXScan
    machine built — and reusable across executions. A handle never goes
    stale: it remembers the catalog epoch it was compiled under and
    transparently recompiles if DDL has happened since. *)

module Prepared : sig
  val table : prepared -> string
  val column : prepared -> string
  val xpath : prepared -> string

  val ns_env : prepared -> (string * string) list
  (** Canonical form: first binding per prefix kept, sorted. *)

  val plan : prepared -> plan_info
  (** The access path chosen at preparation time. *)
end

val prepare :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> prepared
(** Compiles (or fetches from the plan cache) the query. Results are
    cached in a per-database LRU keyed by
    [(table, column, xpath, canonical ns_env)] and invalidated by any DDL
    — {!run} consults the same cache, so repeated ad-hoc queries skip
    compilation too. Cache traffic shows up in the [plancache.hits] /
    [plancache.misses] / [plancache.invalidations] counters and
    compilations are traced as [db.prepare] spans.
    @raise Invalid_argument on an unknown table or column. *)

val run_prepared : ?txn:txn -> t -> prepared -> result
(** Executes a prepared query: {!run} minus parsing, planning and
    QuickXScan construction. With [?txn] it behaves exactly like {!run}
    with [?txn] (snapshot scan; the stored plan is not used). *)

val invalidate_plans : t -> unit
(** Drops every cached plan (bumps the catalog epoch). DDL does this
    automatically; explicit use is for benchmarks and tests. *)

val run :
  ?ns_env:(string * string) list ->
  ?txn:txn ->
  t -> table:string -> column:string -> xpath:string -> result
(** Plans and executes an XPath query, returning matches, the executed
    plan and a per-query runtime-counter profile in one bundle. [ns_env]
    binds the query's namespace prefixes to URIs. With [?txn] the query
    evaluates against the transaction's begin-time snapshot plus its own
    staged writes; since value indexes describe the current committed
    state, such reads always scan ([plan.description] =
    ["SNAPSHOT-SCAN(QuickXScan)"]). *)

(** {2 Streamed result cursors}

    A cursor is the lazy half of a {!result} kept alive across calls: the
    match list (docid + node id per match — small) is computed eagerly by
    the underlying query, but serialization — the part that turns a match
    into an arbitrarily large XML string — is deferred and paid chunk by
    chunk. A result set whose serialized form is hundreds of megabytes
    therefore crosses any consumer (the rxd wire protocol's
    [Open_cursor]/[Fetch] opcodes in particular) in bounded-memory chunks
    instead of materializing at once. A cursor is as thread-safe as the
    handle operations it wraps: callers serialize {!cursor_next} under
    {!exclusively}, as the rxd server does. *)

type cursor
(** An open streamed-result handle; see {!open_cursor}. *)

val open_cursor :
  ?ns_env:(string * string) list ->
  ?txn:txn ->
  t -> table:string -> column:string -> xpath:string -> cursor
(** Plans and executes the query exactly like {!run} (same plan choice,
    same [?txn] snapshot semantics) but returns a cursor over the result
    instead of the result itself. With [?txn], the cursor is only valid
    while that transaction stays open. *)

val cursor_of_result : result -> cursor
(** Wraps an already-executed {!result} as a cursor — {!run} callers can
    stream a result they already hold without re-executing. *)

val cursor_plan : cursor -> plan_info
(** The access path the cursor's query executed. *)

val cursor_next : ?max_bytes:int -> cursor -> (int * string) list
(** The next chunk of [(docid, serialized subtree)] rows in (DocID,
    document order): matches are serialized until the chunk reaches
    [max_bytes] (default 256 KiB) — always at least one row, so a single
    oversized document still streams as a chunk of its own size, but a
    {e later} row that would overshoot the budget is carried (already
    serialized) to the next chunk, so only a chunk's {e first} row can
    ever exceed [max_bytes]. An empty list means the cursor is exhausted.
    Serialization reads pages, so the usual {!Busy} backpressure applies.
    @raise Invalid_argument on a closed cursor or [max_bytes <= 0]. *)

val cursor_remaining : cursor -> int
(** Matches not yet served by {!cursor_next}. *)

val cursor_served : cursor -> int
(** Rows already handed out — with {!cursor_remaining}, progress
    reporting for long streams. *)

val cursor_close : cursor -> unit
(** Releases the cursor's remaining matches; further {!cursor_next} calls
    raise. Idempotent — closing an exhausted or never-read cursor is
    fine. *)

(** {1 Introspection} *)

type stats = {
  tables : int;
  documents : int;
  xml_records : int;
  node_index_entries : int;
  value_index_entries : int;
  data_pages : int;
  log_bytes : int;
}

val stats : t -> stats
(** Structural totals across all tables (documents, records, index
    entries, pages, log bytes); also mirrored as [db.*] registry gauges. *)

val error_to_string : exn -> string option
(** One-line rendering of the engine's public failure exceptions —
    {!Busy}, {!Read_only}, {!Rx_txn.Lock_manager.Deadlock},
    {!Rx_storage.Pager.Corrupt_page} and
    {!Rx_wal.Log_manager.Corrupt_record} — or [None] for any other
    exception. The stable surface CLIs map to exit codes; see the
    DESIGN.md error table. *)

val error_code : exn -> int
(** The stable error table (DESIGN.md) in one place, shared by the [rx]
    exit codes and the rxd wire-protocol status codes: 3 {!Busy},
    4 deadlock, 5 {!Read_only}, 6 corruption (page checksum or WAL CRC),
    1 application error ([Invalid_argument], [Failure], XML parse or
    schema validation), 2 anything else. *)

val error_message : exn -> string
(** Total one-line rendering: {!error_to_string} when it applies, the
    parser/validator message for XML errors, the payload of
    [Invalid_argument]/[Failure], [Printexc.to_string] otherwise. *)

val column_store : t -> table:string -> column:string -> Rx_xmlstore.Doc_store.t
(** Direct access to a column's document store (benchmarks). *)

val buffer_pool : t -> Rx_storage.Buffer_pool.t

val metrics : t -> Rx_obs.Metrics.t
(** This database's private registry: every layer underneath (pager,
    buffer pool, WAL, locks, B+trees, QuickXScan, planner, executor)
    reports here, isolated from other database instances. *)

val tracer : t -> Rx_obs.Trace.t
(** Trace spans recorded around query execution. *)
