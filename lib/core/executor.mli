(** Query execution over stored documents: drives QuickXScan with the
    virtual-SAX events of the document store (§4.4), yielding logical node
    IDs as result items. *)

val eval_stored :
  Rx_quickxscan.Query.t ->
  Rx_xmlstore.Doc_store.t ->
  docid:int ->
  Rx_xmlstore.Node_id.t list
(** Result nodes in document order. Attribute results are represented by
    their owning element's node ID. *)

val eval_stored_count : Rx_quickxscan.Query.t -> Rx_xmlstore.Doc_store.t -> docid:int -> int

val feed_store_events :
  'a Rx_quickxscan.Engine.t ->
  item_of:(Rx_xmlstore.Node_id.t -> 'a) ->
  Rx_xmlstore.Doc_store.t ->
  docid:int ->
  unit
