(** Query execution over stored documents: drives QuickXScan with the
    allocation-free packed-record scan of the document store (§4.4),
    yielding logical node IDs as result items. *)

type evaluator
(** A compiled query machine bound to one document store, reusable across
    documents — the execution half of a cached plan. Not thread-safe. *)

val evaluator : Rx_xmlstore.Doc_store.t -> Rx_quickxscan.Query.t -> evaluator
(** Compiles the QuickXScan machine once; reuse it with {!eval_with} for
    every document the plan touches. *)

val eval_with : evaluator -> docid:int -> Rx_xmlstore.Node_id.t list
(** Result nodes in document order. Attribute results are represented by
    their owning element's node ID. Resets the machine between documents. *)

val eval_stored :
  Rx_quickxscan.Query.t ->
  Rx_xmlstore.Doc_store.t ->
  docid:int ->
  Rx_xmlstore.Node_id.t list
(** One-shot convenience: [eval_with (evaluator store query) ~docid]. *)
