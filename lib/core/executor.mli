(** Query execution over stored documents: drives QuickXScan with the
    allocation-free packed-record scan of the document store (§4.4),
    yielding logical node IDs as result items. *)

type evaluator
(** A compiled query machine bound to one document store, reusable across
    documents — the execution half of a cached plan. Not thread-safe. *)

val evaluator : Rx_xmlstore.Doc_store.t -> Rx_quickxscan.Query.t -> evaluator
(** Compiles the QuickXScan machine once; reuse it with {!eval_with} for
    every document the plan touches. *)

val eval_with : evaluator -> docid:int -> Rx_xmlstore.Node_id.t list
(** Result nodes in document order. Attribute results are represented by
    their owning element's node ID. Resets the machine between documents. *)

val eval_stored :
  Rx_quickxscan.Query.t ->
  Rx_xmlstore.Doc_store.t ->
  docid:int ->
  Rx_xmlstore.Node_id.t list
(** One-shot convenience: [eval_with (evaluator store query) ~docid]. *)

val eval_partitioned :
  pool:Rx_util.Domain_pool.t ->
  parallelism:int ->
  Rx_quickxscan.Query.t ->
  (Rx_xmlstore.Doc_store.t * int) array ->
  Rx_xmlstore.Node_id.t list array
(** [eval_partitioned ~pool ~parallelism query docs] evaluates [query]
    over every [(store, docid)] pair, splitting the array into at most
    [parallelism] contiguous chunks that run concurrently on the domain
    pool. Each chunk builds its own evaluator(s), so the shared buffer
    pool is the only cross-domain state. [results.(i)] are the document-
    order result nodes of [docs.(i)] — callers get global document order
    by concatenating slots front to back. Exceptions from any chunk
    (e.g. [Buffer_pool.Pool_exhausted]) are re-raised on the caller. *)
