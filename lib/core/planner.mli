(** Access path selection (§4.3, Table 2). For a query whose final step
    carries value predicates, the planner matches each conjunct against the
    available XPath value indexes:

    - exact path match + faithful literal conversion → list access;
    - index path merely {e contains} the predicate path → filtering (a
      candidate superset that must be re-evaluated);
    - several usable conjuncts → DocID or NodeID ANDing;
    - no usable index → full QuickXScan.

    NodeID-level access requires a fixed anchor level (all main-path steps
    on the child axis); otherwise the planner falls back to DocID
    granularity. Unlike the paper's most aggressive rule, ANDing an exact
    list with containment-filtered lists is treated as filtering (the
    combination is only guaranteed to be a superset), so answers are always
    exact after re-evaluation. *)

type granularity = Docid_level | Nodeid_level of int (** anchor level *)

type index_use = {
  index_name : string;
  match_kind : [ `Exact | `Containing ];
  range : Rx_xindex.Access.range;
}

type t =
  | Full_scan
  | Index_access of {
      granularity : granularity;
      uses : index_use list; (** one per usable conjunct; ≥ 1 *)
      exact : bool; (** true: candidates are the answer, no re-evaluation *)
    }

val plan :
  indexes:Rx_xindex.Value_index.t list -> query:Rx_xpath.Ast.path -> t
(** [query] must already be simplified. *)

val describe : t -> string
(** For EXPLAIN output and the E2 tables, e.g.
    ["NODEID-ANDING(regprice,discount)+FILTER"]. *)

val execute_candidates :
  indexes:Rx_xindex.Value_index.t list ->
  t ->
  [ `All
  | `Docids of int list
  | `Anchors of (int * Rx_xmlstore.Node_id.t) list ]
(** Runs the index scans and combines the lists. Indexes are resolved by
    name against [indexes] at execution time, so a plan follows an online
    generation swap transparently; if a named index is no longer live
    (dropped, or rolled back under a concurrent execution), the plan
    degrades to [`All] rather than failing — the DDL epoch bump recompiles
    it for the next fetch. *)
