open Rx_xmlstore
module E = Rx_quickxscan.Engine

type evaluator = {
  engine : Node_id.t E.t;
  store : Doc_store.t;
  c_docs : Rx_obs.Metrics.counter;
  mutable used : bool;
}

let evaluator store query =
  let metrics = Doc_store.metrics store in
  {
    engine = E.create ~metrics query;
    store;
    c_docs = Rx_obs.Metrics.counter metrics "exec.docs_scanned";
    used = false;
  }

let eval_with ev ~docid =
  Rx_obs.Metrics.incr ev.c_docs;
  if ev.used then E.reset ev.engine;
  ev.used <- true;
  let engine = ev.engine in
  Doc_store.scan ev.store ~docid ~make_sink:(fun ~current ->
      (* one closure set per scan; the engine forces [current] only on
         matches, so non-matching nodes allocate nothing here *)
      let attr_item _ = current () in
      {
        Doc_store.scan_start_element =
          (fun ~name ~attrs ->
            E.start_element engine ~name ~attrs ~item:current ~attr_item);
        scan_end_element = (fun () -> E.end_element engine);
        scan_text = (fun ~content -> E.text engine ~content ~item:current);
        scan_comment = (fun ~content -> E.comment engine ~content ~item:current);
        scan_pi =
          (fun ~target ~data -> E.pi engine ~target ~data ~item:current);
      });
  E.finish engine

let eval_stored query store ~docid = eval_with (evaluator store query) ~docid

(* Partitioned scan driver: split [docs] into [parallelism] contiguous
   chunks and run one compiled QuickXScan machine per chunk in its own
   domain against the shared (latch-striped) buffer pool. Results land in
   per-document slots, so the merge that preserves document order is just
   reading the array front to back — the chunks are contiguous ranges of
   an already-ordered docid list. *)
let eval_partitioned ~pool ~parallelism query docs =
  let n = Array.length docs in
  let k = max 1 (min parallelism n) in
  let results = Array.make n [] in
  let chunk c () =
    let lo = c * n / k and hi = (c + 1) * n / k in
    (* chunk-local evaluators, one per distinct store: snapshot scans mix
       the main store with per-column MVCC side stores *)
    let evs = ref [] in
    let ev_for store =
      match List.find_opt (fun (s, _) -> s == store) !evs with
      | Some (_, ev) -> ev
      | None ->
          let ev = evaluator store query in
          evs := (store, ev) :: !evs;
          ev
    in
    for i = lo to hi - 1 do
      let store, docid = docs.(i) in
      results.(i) <- eval_with (ev_for store) ~docid
    done
  in
  ignore (Rx_util.Domain_pool.run pool ~parallelism:k (Array.init k chunk));
  results
