open Rx_xml
open Rx_xmlstore
module E = Rx_quickxscan.Engine

let feed_store_events engine ~item_of store ~docid =
  Doc_store.events store ~docid (fun event ->
      match (event.Doc_store.id, event.Doc_store.token) with
      | _, Token.Start_document | _, Token.End_document -> ()
      | Some id, Token.Start_element { name; attrs; _ } ->
          E.start_element engine ~name ~attrs ~item:(item_of id)
            ~attr_item:(fun _ -> item_of id)
      | None, Token.End_element -> E.end_element engine
      | Some id, Token.Text { content; _ } ->
          E.text engine ~content ~item:(item_of id)
      | Some id, Token.Comment content -> E.comment engine ~content ~item:(item_of id)
      | Some id, Token.Pi { target; data } -> E.pi engine ~target ~data ~item:(item_of id)
      | _ -> invalid_arg "Executor: malformed event stream")

let eval_stored query store ~docid =
  let metrics = Doc_store.metrics store in
  Rx_obs.Metrics.(incr (counter metrics "exec.docs_scanned"));
  let engine = E.create ~metrics query in
  feed_store_events engine ~item_of:(fun id -> id) store ~docid;
  E.finish engine

let eval_stored_count query store ~docid =
  List.length (eval_stored query store ~docid)
