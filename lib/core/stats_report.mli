(** The canonical JSON stats document, shared by [rx stats --json] and the
    rxd wire protocol's [Stats] operation so operators see one schema in
    embedded and networked modes: structural totals, health, what recovery
    did at open, and the full metrics registry (every [net.*] instrument
    included — pre-registered at zero when no server has run). *)

val net_ops : string list
(** Wire-protocol operation names, one per request opcode; the server
    records a [net.latency.<op>] histogram (microseconds per request) for
    each. *)

val ensure_net_instruments : Rx_obs.Metrics.t -> unit
(** Idempotently registers the network server's instruments — the
    [net.conns] / [net.cursors] gauges (live sessions, open server-side
    cursors), the [net.conns.accepted] / [net.requests] / [net.errors] /
    [net.rejected] / [net.bytes_in] / [net.bytes_out] /
    [net.idle_timeouts] / [net.pipeline.batches] /
    [net.pipeline.requests] counters and a [net.latency.<op>] histogram
    per {!net_ops} entry — so a registry dump carries the same [net.*]
    keys whether or not a server is attached. The rxd server resolves its
    handles through this same function. *)

val json : Database.t -> Rx_obs.Json.t
(** The stats document for one database handle. Not thread-safe with
    concurrent handle operations: a server serializes it under
    {!Database.exclusively} like any other engine call. *)
