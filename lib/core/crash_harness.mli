(** Deterministic crash-loop harness: repeatedly run a mixed
    insert/update/delete workload against an on-disk database with a
    randomly armed {!Rx_storage.Fault}, "kill the process" when it fires,
    reopen (running crash recovery), and check every durability invariant —
    committed documents survive byte-for-byte, losers leave no trace,
    indexes agree with the heap, every page checksums clean.

    The single operation in flight at the crash has either-outcome
    semantics (auto-commit DML is durable exactly when the call returned),
    and the harness accepts both; anything else is reported as a
    violation. Runs are reproducible from the seed alone. *)

type outcome = {
  iterations : int;
  crashes : int;  (** iterations where the armed fault actually fired *)
  injected : (string * int) list;  (** fault kind -> times fired *)
  torn_tail_bytes : int;  (** WAL bytes healed as torn tails across reopens *)
  replayed : int;  (** redo records applied across all recoveries *)
  undone : int;  (** loser updates rolled back across all recoveries *)
  auto_checkpoints : int;  (** automatic checkpoints observed *)
  survivors : int;  (** committed documents alive at the end *)
  final_ops : int;  (** operations that committed over the whole run *)
  violations : string list;  (** empty = every invariant held *)
}

val run :
  ?iters:int ->
  ?seed:int ->
  ?ops_per_iter:int ->
  ?parallelism:int ->
  ?on_cycle:
    (db:Database.t ->
    committed:(int * string) list ->
    violation:(string -> unit) ->
    unit) ->
  dir:string ->
  unit ->
  outcome
(** [run ~dir ()] executes [iters] (default 200) crash/reopen cycles in
    [dir] (which must be fresh) with the given [seed] (default 42).
    Auto-checkpointing runs with tiny thresholds so checkpoints land mid-
    workload; a quarter of crash-free iterations end with an explicit
    checkpoint immediately followed by a hard crash. [parallelism]
    (default 1) opens every reopened database with that many worker
    domains and forces the partitioned scan path on, so fault injection
    exercises the sharded buffer pool's concurrent read paths.

    [on_cycle] is called once per iteration (and once after the final
    clean reopen), immediately after the invariant check: [db] is the
    freshly recovered, fault-free handle, [committed] the exact
    committed documents [(docid, serialized)], and [violation] records a
    failure into the outcome. The replication bench drives a replica's
    pull/verify cycle from it — the leader crashes between calls, never
    during one. *)
