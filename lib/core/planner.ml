open Rx_xpath
open Rx_xindex

type granularity = Docid_level | Nodeid_level of int

type index_use = {
  index_name : string;
  match_kind : [ `Exact | `Containing ];
  range : Access.range;
}

type t =
  | Full_scan
  | Index_access of {
      granularity : granularity;
      uses : index_use list;
      exact : bool;
    }

(* Split a predicate into its top-level conjuncts, or None when the shape
   (disjunction/negation at the top) prevents per-conjunct index use. *)
let rec conjuncts = function
  | Ast.And (a, b) -> (
      match (conjuncts a, conjuncts b) with
      | Some xs, Some ys -> Some (xs @ ys)
      | _ -> None)
  | (Ast.Compare _ | Ast.Exists _) as leaf -> Some [ leaf ]
  | Ast.Or _ | Ast.Not _ -> None

(* Absolute, predicate-free value path for a comparison's operand path. *)
let absolute_value_path ~main_steps (p : Ast.path) =
  if p.Ast.absolute then None
  else
    let stripped = List.map (fun s -> { s with Ast.preds = [] }) main_steps in
    let candidate = { Ast.absolute = true; steps = stripped @ p.Ast.steps } in
    if Ast.is_linear candidate then Some candidate else None

(* Convert the literal into the index key type; [`Exact] means an index hit
   set equals the predicate's satisfying set for this conjunct. String
   indexes only support equality (order comparisons are numeric in XPath);
   numeric indexes accept numeric literals and numeric-looking strings. *)
let literal_range (kt : Index_def.key_type) (op : Ast.cmp) literal =
  let open Rx_xml.Typed_value in
  let numericize = function
    | `Num f -> Some f
    | `Str s -> float_of_string_opt (String.trim s)
  in
  match kt with
  | Index_def.K_string -> (
      match (op, literal) with
      | Ast.Eq, `Str s ->
          Option.map (fun r -> (r, `Exact)) (Access.range_of_compare op (String s))
      | _ -> None)
  | Index_def.K_double -> (
      match numericize literal with
      | Some f ->
          Option.map (fun r -> (r, `Exact)) (Access.range_of_compare op (Double f))
      | None -> None)
  | Index_def.K_integer -> (
      match numericize literal with
      | Some f when Float.is_integer f ->
          Option.map
            (fun r -> (r, `Exact))
            (Access.range_of_compare op (Integer (int_of_float f)))
      | Some f -> (
          (* non-integral bound: round to the enclosing integer range *)
          match op with
          | Ast.Gt | Ast.Ge ->
              Option.map
                (fun r -> (r, `Exact))
                (Access.range_of_compare Ast.Ge (Integer (int_of_float (Float.ceil f))))
          | Ast.Lt | Ast.Le ->
              Option.map
                (fun r -> (r, `Exact))
                (Access.range_of_compare Ast.Le (Integer (int_of_float (Float.floor f))))
          | Ast.Eq | Ast.Neq -> None)
      | None -> None)
  | Index_def.K_decimal -> (
      match literal with
      | `Num f ->
          Option.map
            (fun r -> (r, `Exact))
            (Access.range_of_compare op (Decimal (Rx_util.Decimal.of_float f)))
      | `Str s ->
          Option.bind (Rx_util.Decimal.of_string s) (fun d ->
              Option.map (fun r -> (r, `Exact)) (Access.range_of_compare op (Decimal d))))
  | Index_def.K_date -> (
      match literal with
      | `Str s ->
          Option.bind
            (Rx_xml.Typed_value.of_string `Date s)
            (fun d -> Option.map (fun r -> (r, `Exact)) (Access.range_of_compare op d))
      | `Num _ -> None)

(* Find an index serving one conjunct. Prefers exact path matches. *)
let index_for_conjunct ~indexes ~main_steps conjunct =
  let comparison =
    match conjunct with
    | Ast.Compare (op, Ast.Op_path p, Ast.Op_string s) -> Some (op, p, `Str s)
    | Ast.Compare (op, Ast.Op_path p, Ast.Op_number n) -> Some (op, p, `Num n)
    | Ast.Compare (op, Ast.Op_string s, Ast.Op_path p) ->
        Some (Ast.flip_cmp op, p, `Str s)
    | Ast.Compare (op, Ast.Op_number n, Ast.Op_path p) ->
        Some (Ast.flip_cmp op, p, `Num n)
    | _ -> None
  in
  match comparison with
  | None -> None
  | Some (op, p, literal) -> (
      match absolute_value_path ~main_steps p with
      | None -> None
      | Some value_path ->
          let usable =
            List.filter_map
              (fun idx ->
                let def = Value_index.def idx in
                let kind =
                  if Containment.equal_paths def.Index_def.path value_path then
                    Some `Exact
                  else if Containment.contains def.Index_def.path value_path then
                    Some `Containing
                  else None
                in
                match kind with
                | None -> None
                | Some kind -> (
                    match literal_range def.Index_def.key_type op literal with
                    | None -> None
                    | Some (range, conv) ->
                        let exact = kind = `Exact && conv = `Exact in
                        Some
                          ( {
                              index_name = def.Index_def.name;
                              match_kind = kind;
                              range;
                            },
                            exact )))
              indexes
          in
          (* prefer an exact match *)
          List.find_opt (fun (_, exact) -> exact) usable
          |> fun best ->
          (match best with Some _ as b -> b | None -> (
             match usable with u :: _ -> Some u | [] -> None)))

let all_child_steps steps =
  List.for_all (fun s -> s.Ast.axis = Ast.Child) steps

let plan ~indexes ~query =
  if not query.Ast.absolute then Full_scan
  else begin
    (* the anchor step: the last step carrying predicates; steps before it
       must be predicate-free, steps after it are the projection tail *)
    let rec split_at_anchor acc = function
      | [] -> None
      | s :: rest ->
          if s.Ast.preds <> [] && List.for_all (fun r -> r.Ast.preds = []) rest
          then Some (List.rev acc, s, rest)
          else split_at_anchor (s :: acc) rest
    in
    match split_at_anchor [] query.Ast.steps with
    | None -> Full_scan
    | Some (prefix, anchor, tail) ->
        if List.exists (fun s -> s.Ast.preds <> []) prefix then Full_scan
        else begin
          let main_steps = prefix @ [ { anchor with Ast.preds = [] } ] in
          let conjs =
            match
              List.fold_left
                (fun acc p ->
                  match (acc, conjuncts p) with
                  | Some xs, Some ys -> Some (xs @ ys)
                  | _ -> None)
                (Some []) anchor.Ast.preds
            with
            | Some cs -> cs
            | None -> []
          in
          if conjs = [] then Full_scan
          else begin
            let resolved =
              List.map (index_for_conjunct ~indexes ~main_steps) conjs
            in
            let usable = List.filter_map Fun.id resolved in
            if usable = [] then Full_scan
            else begin
              let granularity =
                if all_child_steps main_steps then
                  Nodeid_level (List.length main_steps)
                else Docid_level
              in
              (* exact only when the anchor is the result step, every
                 conjunct has an exact index, and we can answer at node
                 granularity *)
              let all_covered = List.for_all Option.is_some resolved in
              let exact =
                tail = []
                && all_covered
                && List.for_all (fun (_, e) -> e) usable
                && granularity <> Docid_level
              in
              Index_access
                { granularity; uses = List.map fst usable; exact }
            end
          end
        end
  end

let describe = function
  | Full_scan -> "FULL-SCAN(QuickXScan)"
  | Index_access { granularity; uses; exact } ->
      let names = String.concat "," (List.map (fun u -> u.index_name) uses) in
      let g =
        match granularity with
        | Docid_level -> "DOCID"
        | Nodeid_level _ -> "NODEID"
      in
      let m = if List.length uses > 1 then "-ANDING" else "-LIST" in
      Printf.sprintf "%s%s(%s)%s" g m names (if exact then "" else "+FILTER")

(* Plans bind indexes by *name*, resolved against the live index list at
   execution time: an online rebuild that swapped a new generation in under
   the same name is picked up transparently. A plan whose index was dropped
   (or rolled past) between compilation and execution degrades to a full
   scan — the plan-cache epoch will recompile it on the next fetch, but the
   in-flight execution must not fail. *)
exception Stale_index

let execute_candidates ~indexes plan =
  match plan with
  | Full_scan -> `All
  | Index_access { granularity; uses; _ } -> (
      let find_index name =
        match
          List.find_opt
            (fun idx -> (Value_index.def idx).Index_def.name = name)
            indexes
        with
        | Some idx -> idx
        | None -> raise Stale_index
      in
      try
      match granularity with
      | Docid_level ->
          let lists =
            List.map (fun u -> Access.docid_list (find_index u.index_name) u.range) uses
          in
          `Docids
            (match lists with
            | [] -> []
            | first :: rest -> List.fold_left Access.and_docids first rest)
      | Nodeid_level level ->
          let lists =
            List.map
              (fun u ->
                Access.anchored_nodeid_list (find_index u.index_name) u.range ~level)
              uses
          in
          `Anchors
            (match lists with
            | [] -> []
            | first :: rest -> List.fold_left Access.and_nodeids first rest)
      with Stale_index -> `All)
