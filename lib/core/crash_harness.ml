(* Deterministic crash-loop harness over a real on-disk database.

   Each iteration opens the database, checks every invariant against an
   in-process model of the committed state, then runs a mixed
   insert/update/delete workload with a randomly armed fault on the
   physical I/O path. When the fault fires the process "dies"
   (Fault.Injected propagates out of the DML call and the file descriptors
   are dropped with no flush); the next iteration reopens, which runs
   crash recovery, and the invariants are checked again.

   The one operation in flight at the crash has either-outcome semantics:
   auto-commit DML is durable exactly when the call returned, so a crashed
   call may or may not have committed. The model tracks that single
   pending operation and accepts either outcome — anything else (a lost
   committed document, a surviving loser, a mismatched serialization, a
   checksum failure) is a violation. *)

open Rx_storage

type outcome = {
  iterations : int;
  crashes : int;
  injected : (string * int) list; (* fault kind -> times fired *)
  torn_tail_bytes : int; (* WAL bytes healed across all reopens *)
  replayed : int; (* redo records applied across all recoveries *)
  undone : int; (* loser updates rolled back across all recoveries *)
  auto_checkpoints : int;
  survivors : int; (* committed documents alive at the end *)
  final_ops : int; (* committed operations applied over the run *)
  violations : string list; (* empty = every invariant held *)
}

type pending =
  | P_none
  | P_insert of { key : string; xml : string }
  | P_update of { docid : int; old_xml : string; new_xml : string }
  | P_delete of { docid : int }

type state = {
  rng : Rx_util.Prng.t;
  dir : string;
  parallelism : int; (* worker domains for the reopened database *)
  model : (int, string) Hashtbl.t; (* docid -> exact serialized document *)
  mutable pending : pending;
  mutable next_key : int; (* unique content marker for inserts *)
  mutable max_docid_bound : int; (* docids never exceed this *)
  mutable violations : string list;
}

let table = "t"
let column = "doc"

let violation st fmt =
  Printf.ksprintf
    (fun msg -> if List.length st.violations < 20 then st.violations <- msg :: st.violations)
    fmt

let doc_xml ~key ~value = Printf.sprintf "<d><k>%s</k><v>%s</v></d>" key value

(* replace the <v>...</v> payload in a model document *)
let splice_value xml value =
  match (String.index_opt xml 'v', String.rindex_opt xml 'v') with
  | Some _, Some _ -> (
      let open_tag = "<v>" and close_tag = "</v>" in
      let find sub =
        let n = String.length sub in
        let rec go i =
          if i + n > String.length xml then None
          else if String.sub xml i n = sub then Some i
          else go (i + 1)
        in
        go 0
      in
      match (find open_tag, find close_tag) with
      | Some o, Some c ->
          String.sub xml 0 (o + String.length open_tag)
          ^ value
          ^ String.sub xml c (String.length xml - c)
      | _ -> xml)
  | _ -> xml

(* documents are always <d><k>KEY</k>...; extract KEY *)
let key_of_doc xml =
  let find sub =
    let n = String.length sub in
    let rec go i =
      if i + n > String.length xml then None
      else if String.sub xml i n = sub then Some i
      else go (i + 1)
    in
    go 0
  in
  match (find "<k>", find "</k>") with
  | Some o, Some c when c > o -> String.sub xml (o + 3) (c - o - 3)
  | _ -> ""

let open_db st =
  let db = Database.open_dir ~page_size:1024 st.dir in
  Database.set_config db
    {
      Database.default_config with
      auto_checkpoint = true;
      checkpoint_wal_bytes = 2048;
      checkpoint_wal_records = 48;
      commit_window_us = 100;
      wal_buffer_bytes = 512;
      parallelism = st.parallelism;
      (* the workload's documents are tiny, so force the partitioned scan
         path on when the harness runs with extra domains *)
      parallel_scan_min_pages = (if st.parallelism > 1 then 1 else 64);
    };
  if Database.table db table = None then begin
    ignore
      (Database.create_table db ~name:table
         ~columns:[ ("doc", Rx_relational.Value.T_xml) ]);
    match Rx_xindex.Index_def.key_type_of_string "string" with
    | Some kt ->
        ignore
          (Database.Index.await
             (Database.Index.build db ~table ~column ~name:"idx_k"
                ~path:"/d/k" ~key_type:kt))
    | None -> ()
  end;
  db

(* scan the heap for every live document, via the docid index *)
let present_docs db st =
  let acc = ref [] in
  for docid = 1 to st.max_docid_bound do
    match Database.fetch_row db ~table ~docid with
    | Some _ -> acc := (docid, Database.document db ~table ~column ~docid) :: !acc
    | None -> ()
  done;
  List.rev !acc

(* Reconcile reality with the model: committed documents must survive
   byte-for-byte, losers must be gone, and the single pending operation
   may have gone either way. *)
let check_invariants db st =
  let present = present_docs db st in
  (* resolve the in-flight operation first, against what actually survived *)
  (match st.pending with
  | P_none -> ()
  | P_insert { key; xml = _ } -> (
      let extra =
        List.find_opt (fun (d, _) -> not (Hashtbl.mem st.model d)) present
      in
      match extra with
      | Some (docid, xml) ->
          if key_of_doc xml = key then Hashtbl.replace st.model docid xml
          else
            violation st
              "pending insert: surviving extra doc %d has key %S, expected %S"
              docid (key_of_doc xml) key
      | None -> (* the insert died before commit: fine *) ())
  | P_update { docid; old_xml; new_xml } -> (
      match List.assoc_opt docid present with
      | Some xml when xml = old_xml -> ()
      | Some xml when xml = new_xml -> Hashtbl.replace st.model docid xml
      | Some xml ->
          violation st
            "pending update of doc %d resolved to neither old nor new image: %S"
            docid xml
      | None -> violation st "pending update: doc %d vanished entirely" docid)
  | P_delete { docid } ->
      if not (List.mem_assoc docid present) then Hashtbl.remove st.model docid);
  st.pending <- P_none;
  (* every committed document survives, exactly *)
  Hashtbl.iter
    (fun docid expected ->
      match List.assoc_opt docid present with
      | Some xml when xml = expected -> ()
      | Some xml ->
          violation st "doc %d corrupted: expected %S, got %S" docid expected xml
      | None -> violation st "committed doc %d lost" docid)
    st.model;
  (* nothing extra survives *)
  List.iter
    (fun (docid, xml) ->
      if not (Hashtbl.mem st.model docid) then
        violation st "loser doc %d survived recovery: %S" docid xml)
    present;
  (* heap and row count agree *)
  let rc = Database.row_count db ~table in
  if rc <> Hashtbl.length st.model then
    violation st "row_count %d but model has %d docs" rc (Hashtbl.length st.model);
  (* the node index agrees with the heap: one <k> element per live doc *)
  let r = Database.run db ~table ~column ~xpath:"/d/k" in
  let matched = List.sort_uniq compare (List.map (fun m -> m.Database.docid) r.Database.matches) in
  if List.length matched <> Hashtbl.length st.model then
    violation st "query /d/k sees %d docs, model has %d" (List.length matched)
      (Hashtbl.length st.model);
  List.iter
    (fun d ->
      if not (Hashtbl.mem st.model d) then
        violation st "query /d/k returned unknown doc %d" d)
    matched;
  (* every physical page checksums clean and the handle is healthy *)
  let report = Database.verify db in
  (match report.Database.corrupt_pages with
  | [] -> ()
  | ps ->
      violation st "corrupt pages after recovery: %s"
        (String.concat "," (List.map string_of_int ps)));
  match Database.health db with
  | `Healthy -> ()
  | `Degraded reason -> violation st "database degraded: %s" reason

(* one workload operation; returns [true] if the fault fired (crash) *)
let run_op db st =
  let committed = Hashtbl.fold (fun d _ acc -> d :: acc) st.model [] in
  let pick_committed () =
    List.nth committed (Rx_util.Prng.int st.rng (List.length committed))
  in
  let choice =
    if committed = [] then 0 else Rx_util.Prng.int st.rng 10 (* 0-4 insert, 5-7 update, 8-9 delete *)
  in
  try
    if choice <= 4 then begin
      let key = Printf.sprintf "k%d" st.next_key in
      st.next_key <- st.next_key + 1;
      st.max_docid_bound <- st.max_docid_bound + 1;
      let xml = doc_xml ~key ~value:(Rx_util.Prng.word st.rng ()) in
      st.pending <- P_insert { key; xml };
      let docid = Database.insert db ~table ~xml:[ (column, xml) ] () in
      (* read back the canonical serialization; later opens must preserve it *)
      Hashtbl.replace st.model docid (Database.document db ~table ~column ~docid);
      st.max_docid_bound <- max st.max_docid_bound docid;
      st.pending <- P_none
    end
    else if choice <= 7 then begin
      let docid = pick_committed () in
      let old_xml = Hashtbl.find st.model docid in
      let value = Rx_util.Prng.word st.rng () in
      let new_xml = splice_value old_xml value in
      (* locate this document's <v> element through the query path *)
      let r = Database.run db ~table ~column ~xpath:"/d/v" in
      match
        List.find_opt (fun m -> m.Database.docid = docid) r.Database.matches
      with
      | None -> violation st "doc %d has no /d/v node to update" docid
      | Some m ->
          st.pending <- P_update { docid; old_xml; new_xml };
          Database.update_xml_text db ~table ~column ~docid m.Database.node value;
          Hashtbl.replace st.model docid
            (Database.document db ~table ~column ~docid);
          st.pending <- P_none
    end
    else begin
      let docid = pick_committed () in
      st.pending <- P_delete { docid };
      Database.delete db ~table ~docid;
      Hashtbl.remove st.model docid;
      st.pending <- P_none
    end;
    false
  with Fault.Injected _ -> true

let run ?(iters = 200) ?(seed = 42) ?(ops_per_iter = 14) ?(parallelism = 1)
    ?on_cycle ~dir () =
  let st =
    {
      rng = Rx_util.Prng.create ~seed;
      dir;
      parallelism;
      model = Hashtbl.create 64;
      pending = P_none;
      next_key = 0;
      max_docid_bound = 0;
      violations = [];
    }
  in
  let crashes = ref 0 in
  let injected = Hashtbl.create 4 in
  let torn = ref 0 in
  let replayed = ref 0 in
  let undone = ref 0 in
  let auto_ckpts = ref 0 in
  let final_ops = ref 0 in
  let max_ops = ref 60 in
  for i = 1 to iters do
    let db = open_db st in
    let r = Database.verify db in
    torn := !torn + r.Database.wal_torn_bytes;
    (match Database.last_recovery db with
    | Some rep ->
        replayed := !replayed + rep.Rx_wal.Recovery.redone;
        undone := !undone + rep.Rx_wal.Recovery.undone
    | None -> ());
    check_invariants db st;
    (* observer hook: the database is open, recovered and fault-free here *)
    (match on_cycle with
    | Some f ->
        f ~db
          ~committed:(Hashtbl.fold (fun d x acc -> (d, x) :: acc) st.model [])
          ~violation:(fun msg -> violation st "%s" msg)
    | None -> ());
    (* arm a fresh fault for this iteration, seeded from the run PRNG *)
    let fault = Fault.create () in
    let kind = Fault.arm_random fault st.rng ~max_ops:!max_ops in
    let scope =
      (* torn data pages are unrecoverable by design (the WAL carries
         byte-range images, not full pages), so torn writes are armed on
         the WAL device only — where the torn-tail rule heals them *)
      match kind with Fault.Torn_write _ -> `Wal_only | _ -> `All
    in
    Database.set_fault ~scope db (Some fault);
    let ops = if i = 1 then ops_per_iter * 2 else ops_per_iter in
    let crashed = ref false in
    (try
       for _ = 1 to ops do
         if not !crashed then
           if run_op db st then crashed := true else incr final_ops
       done
     with Fault.Injected _ -> crashed := true);
    auto_ckpts :=
      !auto_ckpts
      + Rx_obs.Metrics.(value (counter (Database.metrics db) "ckpt.auto"));
    (* size the next window to the I/O volume actually observed, with
       headroom so a fair share of iterations completes crash-free *)
    max_ops := max 40 (min 1000 (3 * Fault.ops_seen fault));
    if !crashed then begin
      incr crashes;
      let k = Fault.kind_to_string kind in
      Hashtbl.replace injected k (1 + Option.value ~default:0 (Hashtbl.find_opt injected k));
      Database.crash db
    end
    else begin
      Database.set_fault db None;
      if Rx_util.Prng.int st.rng 4 = 0 then begin
        (* checkpoint-then-crash: everything must survive via pages alone *)
        Database.checkpoint db;
        Database.crash db
      end
      else Database.close db
    end
  done;
  (* final clean pass: reopen once more and verify everything *)
  let db = open_db st in
  let r = Database.verify db in
  torn := !torn + r.Database.wal_torn_bytes;
  (match Database.last_recovery db with
  | Some rep ->
      replayed := !replayed + rep.Rx_wal.Recovery.redone;
      undone := !undone + rep.Rx_wal.Recovery.undone
  | None -> ());
  check_invariants db st;
  (match on_cycle with
  | Some f ->
      f ~db
        ~committed:(Hashtbl.fold (fun d x acc -> (d, x) :: acc) st.model [])
        ~violation:(fun msg -> violation st "%s" msg)
  | None -> ());
  let survivors = Hashtbl.length st.model in
  Database.close db;
  {
    iterations = iters;
    crashes = !crashes;
    injected = Hashtbl.fold (fun k v acc -> (k, v) :: acc) injected [];
    torn_tail_bytes = !torn;
    replayed = !replayed;
    undone = !undone;
    auto_checkpoints = !auto_ckpts;
    survivors;
    final_ops = !final_ops;
    violations = List.rev st.violations;
  }
