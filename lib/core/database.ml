open Rx_storage
open Rx_xml
open Rx_xmlstore
open Rx_relational
open Rx_xindex

(* Generational metadata for one named value index. The prior generation
   is retained after an online rebuild: it stays hooked to the store's
   observers (so it keeps absorbing DML and a later [Index.rollback]
   restores a *correct* index) but leaves [indexes], so the planner never
   sees it. Dropped priors leak their pages — reclamation is lazy
   engine-wide, same as [drop]. *)
type gen_state = {
  mutable g_build_ms : int; (* wall-clock of the last completed build *)
  mutable g_prior : Value_index.t option;
}

type xml_column = {
  store : Doc_store.t;
  mutable indexes : Value_index.t list;
  mutable gens : (string * gen_state) list; (* per index name *)
  mutable side_logs : (string * Index_build.t) list; (* in-flight builds *)
  mutable text_indexes : (string * Rx_fulltext.Text_index.t) list;
  mutable schema : Rx_schema.Compiled.t option;
  mutable schema_name : string option;
  (* MVCC overlay: [store] always holds the current committed version;
     [mvcc] stages uncommitted writes and retains pre-images for active
     snapshots; [created] maps docid -> commit timestamp at which the
     current version in [store] became current (absent = "since forever").
     Both are populated only while explicit transactions are active and
     purged when the last one ends. *)
  mutable mvcc : Rx_txn.Mvcc_store.t option;
  created : (int, int) Hashtbl.t;
}

type table = {
  tname : string;
  tid : int; (* lock-resource table id, stable for this process *)
  base : Base_table.t;
  xml_columns : (string * xml_column) list;
  mutable next_docid : int;
}

(* a transaction's private view of one (table, column, docid) *)
type local_state =
  | L_staged of {
      m : Rx_txn.Mvcc_store.t;
      s : Rx_txn.Mvcc_store.staged;
      replay : bool; (* working copy of an existing doc: replay ops at commit *)
    }
  | L_deleted

type pending =
  | P_insert of {
      p_table : string;
      p_docid : int;
      p_row : Value.t array;
      p_xml : (string * Rx_txn.Mvcc_store.staged) list;
    }
  | P_delete of { p_table : string; p_docid : int }
  | P_update_text of {
      p_table : string;
      p_column : string;
      p_docid : int;
      p_node : Node_id.t;
      p_content : string;
    }
  | P_insert_fragment of {
      p_table : string;
      p_column : string;
      p_docid : int;
      p_pos : Doc_store.position;
      p_tokens : Token.t list;
    }
  | P_delete_node of {
      p_table : string;
      p_column : string;
      p_docid : int;
      p_node : Node_id.t;
    }
  | P_drop_index of { p_table : string; p_column : string; p_name : string }

type txn = {
  tx : Rx_txn.Transaction.t;
  snapshot : int; (* commit timestamp visible to this transaction's reads *)
  mutable pending : pending list; (* newest first; replayed in order at commit *)
  locals : (string * string * int, local_state) Hashtbl.t;
  mutable txn_open : bool;
}

exception Busy of { txid : int; blockers : int list }
exception Read_only of { reason : string }

exception
  Unknown_index of { kind : [ `Table | `Column | `Index ]; name : string }

let () =
  Printexc.register_printer (function
    | Read_only { reason } ->
        Some (Printf.sprintf "Database.Read_only(%s)" reason)
    | Unknown_index { kind; name } ->
        let k =
          match kind with
          | `Table -> "table"
          | `Column -> "column"
          | `Index -> "index"
        in
        Some (Printf.sprintf "Database.Unknown_index(%s %s)" k name)
    | _ -> None)

(* progress of one in-flight online index build (see [Index]); successful
   builds remove their entry, failed ones leave it for [Index.status] *)
type build_progress = {
  b_table : string;
  b_column : string;
  b_name : string;
  b_path : string;
  b_key_type : Index_def.key_type;
  mutable b_generation : int; (* the generation under construction *)
  mutable b_total : int;
  mutable b_scanned : int;
  mutable b_pending : int; (* side-log backlog at the last slice *)
  mutable b_state : [ `Scanning | `Live | `Failed of string ];
}

type config = {
  auto_checkpoint : bool;
  checkpoint_wal_bytes : int;
  checkpoint_wal_records : int;
  readahead : int;
  plan_cache_capacity : int;
  commit_window_us : int;
  wal_buffer_bytes : int;
  parallelism : int;
  parallel_scan_min_pages : int;
}

let default_config =
  {
    auto_checkpoint = true;
    checkpoint_wal_bytes = 4 * 1024 * 1024;
    checkpoint_wal_records = 50_000;
    readahead = 8;
    plan_cache_capacity = 128;
    commit_window_us = 0;
    wal_buffer_bytes = 256 * 1024;
    (* 0 = auto (one worker per core); RX_PARALLELISM seeds the default so
       test/CI runs can force multi-domain execution engine-wide *)
    parallelism =
      (match Sys.getenv_opt "RX_PARALLELISM" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 0 -> n
          | _ -> 0)
      | None -> 0);
    parallel_scan_min_pages = 64;
  }

type plan_info = { description : string; uses_index : bool; exact : bool }

(* a compiled query bound to the catalog state that compiled it; [p_epoch]
   must match the database's [ddl_epoch] for the plan to be servable *)
type prepared = {
  p_table : string;
  p_column : string;
  p_xpath : string;
  p_ns_env : (string * string) list; (* canonical: deduped, sorted *)
  p_query : Rx_quickxscan.Query.t;
  p_plan : Planner.t;
  p_info : plan_info;
  p_epoch : int;
  (* the QuickXScan machine, built once and reset between documents; lives
     on the handle so repeated executions skip engine construction *)
  mutable p_ev : Executor.evaluator option;
}

type t = {
  pool : Buffer_pool.t;
  log : Rx_wal.Log_manager.t;
  mutable dict : Name_dict.t; (* swapped on replica refresh *)
  txn_mgr : Rx_txn.Transaction.manager;
  mutable catalog : Catalog.t; (* re-attached on replica refresh *)
  dir : string option; (* on-disk home; None for in-memory *)
  mutable replica : bool; (* applying a leader's WAL: reads only *)
  record_threshold : int;
  metrics : Rx_obs.Metrics.t;
  tracer : Rx_obs.Trace.t;
  mutable tables : (string * table) list;
  mutable schemas : (string * Rx_schema.Compiled.t) list;
  mutable commit_ts : int; (* advances on every versioned commit *)
  mutable active_txns : txn list;
  mutable config : config;
  mutable checkpointing : bool; (* re-entrancy guard: checkpoint runs in_txn *)
  mutable ckpt_mark : int; (* appended_bytes at the last checkpoint *)
  mutable degraded : string option; (* corruption found at open: read-only *)
  mutable last_recovery : Rx_wal.Recovery.report option;
  mutable ddl_epoch : int; (* bumped on any DDL; stale plans recompile *)
  mutable dict_persisted : int; (* dict size at the last catalog save *)
  mutable plan_cache :
    (string * string * string * (string * string) list, prepared) Rx_util.Lru.t;
  mutable builds : build_progress list; (* in-flight/failed online builds *)
  (* serializes the in-memory half of [commit] across threads; the
     durability wait happens outside it so committers group their fsyncs *)
  write_lock : Mutex.t;
}

type match_ = { docid : int; node : Node_id.t }

type result = {
  matches : match_ list;
  plan : plan_info;
  serialize : match_ -> string;
  profile : (string * int) list;
}

(* --- lifecycle --- *)

let install_txn pool log =
  let mgr = Rx_txn.Transaction.create_manager ~log ~pool () in
  Rx_txn.Transaction.install_journal mgr;
  (* register session counters eagerly so they are visible in [rx stats]
     even before the first explicit transaction *)
  let metrics = Buffer_pool.metrics pool in
  List.iter
    (fun n -> ignore (Rx_obs.Metrics.counter metrics n))
    [
      "txn.begin";
      "txn.commit";
      "txn.abort";
      "plancache.hits";
      "plancache.misses";
      "plancache.invalidations";
      "exec.parallel_scans";
      "exec.parallel_chunks";
      "exec.parallel_parses";
      "repl.fetches";
      "repl.bytes_shipped";
    ];
  mgr

(* push the config's tuning knobs down to the layers that own them: scan
   readahead to every column store, the commit window and write-buffer
   limit to the WAL *)
let apply_config t =
  List.iter
    (fun (_, tbl) ->
      List.iter
        (fun (_, xc) -> Doc_store.set_readahead xc.store t.config.readahead)
        tbl.xml_columns)
    t.tables;
  Rx_wal.Log_manager.set_commit_window t.log t.config.commit_window_us;
  Rx_wal.Log_manager.set_buffer_limit t.log t.config.wal_buffer_bytes

let config t = t.config

(* resolved worker count for parallel operators: the explicit knob, or one
   per core when the knob is 0 (auto) *)
let effective_parallelism t =
  match t.config.parallelism with
  | 0 -> Domain.recommended_domain_count ()
  | n -> max 1 n

let set_config t config =
  let resize = config.plan_cache_capacity <> t.config.plan_cache_capacity in
  t.config <- config;
  (* the LRU has no resize: recreate it (dropping cached plans) when the
     capacity actually changed *)
  if resize then
    t.plan_cache <- Rx_util.Lru.create ~capacity:config.plan_cache_capacity;
  apply_config t

let create_in_memory ?page_size ?(record_threshold = 2048)
    ?(config = default_config) () =
  let metrics = Rx_obs.Metrics.create () in
  let pool =
    Buffer_pool.create ~metrics ~capacity:2048
      (Pager.create_in_memory ~metrics ?page_size ())
  in
  let log = Rx_wal.Log_manager.create_in_memory ~metrics () in
  let txn_mgr = install_txn pool log in
  let catalog = Catalog.create pool in
  let t =
    {
      pool;
      log;
      dict = Name_dict.create ();
      txn_mgr;
      catalog;
      dir = None;
      replica = false;
      record_threshold;
      metrics;
      tracer = Rx_obs.Trace.create ();
      tables = [];
      schemas = [];
      commit_ts = 0;
      active_txns = [];
      config;
      checkpointing = false;
      ckpt_mark = 0;
      degraded = None;
      last_recovery = None;
      ddl_epoch = 0;
      dict_persisted = 0;
      plan_cache = Rx_util.Lru.create ~capacity:config.plan_cache_capacity;
      builds = [];
      write_lock = Mutex.create ();
    }
  in
  apply_config t;
  t

(* forward reference: the auto-checkpoint policy lives with [checkpoint]
   below, but fires from the auto-commit wrapper defined here *)
let auto_checkpoint_trigger : (t -> unit) ref = ref (fun _ -> ())

(* forward reference too: persists the name dictionary when an
   auto-committed operation grew it (the implementation needs
   [save_catalog], defined below) *)
let dict_persist_trigger : (t -> unit) ref = ref (fun _ -> ())

let in_txn_as t f =
  let txn = Rx_txn.Transaction.begin_txn t.txn_mgr in
  match Rx_txn.Transaction.run_as txn (fun () -> f txn) with
  | result ->
      ignore (Rx_txn.Transaction.commit txn);
      !dict_persist_trigger t;
      !auto_checkpoint_trigger t;
      result
  | exception e ->
      ignore (Rx_txn.Transaction.abort txn);
      raise e

let in_txn t f = in_txn_as t (fun _ -> f ())

let ensure_writable t =
  if t.replica then
    raise
      (Read_only
         { reason = "replica: serving snapshots (promote to enable writes)" });
  match t.degraded with
  | Some reason -> raise (Read_only { reason })
  | None -> ()

let health t =
  match t.degraded with None -> `Healthy | Some reason -> `Degraded reason

let last_recovery t = t.last_recovery
let is_replica t = t.replica
let replica_cursor_path dir = Filename.concat dir "replica.lsn"

(* WAL archiving is switched on by the presence of the archive directory
   next to the data files ([rx init --archive], or a mkdir at any time);
   consulted at every checkpoint, so enabling it needs no reopen. *)
let archive_path dir = Filename.concat dir "archive"

let archive_dir t =
  match t.dir with
  | Some dir ->
      let a = archive_path dir in
      if Rx_wal.Archive.enabled a then Some a else None
  | None -> None

let dict t = t.dict
let buffer_pool t = t.pool
let metrics t = t.metrics
let tracer t = t.tracer

let find_table t name = List.assoc_opt name t.tables

let table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Database: no table %s" name)

let xml_column_exn tbl column =
  match List.assoc_opt column tbl.xml_columns with
  | Some xc -> xc
  | None ->
      invalid_arg (Printf.sprintf "Database: %s has no XML column %s" tbl.tname column)

(* --- catalog persistence --- *)

let catalog_entries t =
  let dict_entry = Catalog.Dictionary (Name_dict.to_list t.dict) in
  let table_entries =
    List.concat_map
      (fun (name, tbl) ->
        Catalog.Table
          {
            name;
            columns = Array.to_list (Base_table.columns tbl.base);
            heap_header = Base_table.heap_header tbl.base;
            docid_index_meta = Base_table.docid_index_meta tbl.base;
            next_docid = tbl.next_docid;
          }
        :: List.concat_map
             (fun (cname, xc) ->
               Catalog.Xml_column
                 {
                   table = name;
                   column = cname;
                   heap_header = Doc_store.heap_header xc.store;
                   node_index_meta = Doc_store.index_meta xc.store;
                 }
               :: (match xc.schema_name with
                  | Some schema ->
                      [ Catalog.Schema_binding { table = name; column = cname; schema } ]
                  | None -> [])
               @ List.map
                   (fun idx ->
                     let def = Value_index.def idx in
                     Catalog.Xml_index
                       {
                         table = name;
                         column = cname;
                         name = def.Index_def.name;
                         path = Rx_xpath.Ast.to_string def.Index_def.path;
                         key_type =
                           Index_def.key_type_to_string def.Index_def.key_type;
                         tree_meta = Value_index.meta_page idx;
                       })
                   xc.indexes
               @ List.map
                   (fun (iname, ti) ->
                     Catalog.Text_index
                       {
                         table = name;
                         column = cname;
                         name = iname;
                         tree_meta = Rx_fulltext.Text_index.meta_page ti;
                       })
                   xc.text_indexes
               (* generation metadata rides after the [Xml_index] entries
                  it annotates ([attach_logical] is one ordered pass) *)
               @ List.filter_map
                   (fun idx ->
                     let iname = (Value_index.def idx).Index_def.name in
                     match List.assoc_opt iname xc.gens with
                     | None -> None
                     | Some gs ->
                         Some
                           (Catalog.Index_generation
                              {
                                table = name;
                                column = cname;
                                name = iname;
                                generation = Value_index.generation idx;
                                build_ms = gs.g_build_ms;
                                prior =
                                  Option.map
                                    (fun p ->
                                      ( Value_index.generation p,
                                        Value_index.meta_page p ))
                                    gs.g_prior;
                              }))
                   xc.indexes)
             tbl.xml_columns)
      t.tables
  in
  let schema_entries =
    List.map
      (fun (name, compiled) ->
        Catalog.Schema { name; binary = Rx_schema.Compiled.encode compiled })
      t.schemas
  in
  (dict_entry :: schema_entries) @ table_entries

let save_catalog t =
  (* set the mark first: the save itself runs [in_txn], whose post-commit
     dictionary check must not re-enter here *)
  t.dict_persisted <- Name_dict.size t.dict;
  in_txn t (fun () -> Catalog.save t.catalog (catalog_entries t))

(* A transaction that interned new element/attribute names leaves
   documents on disk whose qname ids only the in-memory dictionary can
   resolve; persist the catalog right after such a commit, or a crash —
   or a replica applying that very commit — holds unreadable documents.
   Interning happens once per distinct name over the database's
   lifetime, so steady-state commits skip this. *)
let () =
  dict_persist_trigger :=
    fun t ->
      if Name_dict.size t.dict > t.dict_persisted then save_catalog t

(* every DDL change goes through here: cached plans compiled before the
   bump no longer match [ddl_epoch] and recompile on next use *)
let invalidate_plans t = t.ddl_epoch <- t.ddl_epoch + 1

let do_checkpoint t ~counter_name =
  t.checkpointing <- true;
  Fun.protect
    ~finally:(fun () -> t.checkpointing <- false)
    (fun () ->
      Rx_obs.Trace.with_span t.tracer "db.checkpoint" (fun () ->
          save_catalog t;
          Rx_wal.Recovery.checkpoint ?archive:(archive_dir t) t.log t.pool;
          t.ckpt_mark <- Rx_wal.Log_manager.appended_bytes t.log;
          Rx_obs.Metrics.(incr (counter t.metrics counter_name))))

let checkpoint t =
  ensure_writable t;
  do_checkpoint t ~counter_name:"ckpt.manual"

(* Fires after every auto-commit operation and explicit commit: checkpoint
   once the log has grown past the configured thresholds, provided no
   transaction is in flight (a checkpoint truncates the log, so losers
   must not have live records there). *)
let maybe_auto_checkpoint t =
  if
    t.config.auto_checkpoint && (not t.checkpointing) && t.degraded = None
    && (not t.replica)
    && t.active_txns = []
    && (Rx_wal.Log_manager.appended_bytes t.log - t.ckpt_mark
        >= t.config.checkpoint_wal_bytes
       || Rx_wal.Log_manager.record_count t.log >= t.config.checkpoint_wal_records
       )
  then do_checkpoint t ~counter_name:"ckpt.auto"

let () = auto_checkpoint_trigger := maybe_auto_checkpoint

(* [close] lives below the session machinery: it rolls back any
   transaction still open *)

(* (Re)build the in-memory logical state — dictionary, schemas, tables,
   value/text indexes, schema bindings and the next_docid high-water —
   from the persistent catalog entries. Shared by the non-fresh open path
   and by replica refresh after applied WAL batches. Corruption goes to
   [degrade]; a damaged table is skipped so the rest stays readable. *)
let attach_logical t ~degrade ~healthy entries =
  let record_threshold = t.record_threshold in
  t.dict <-
    (match
       List.find_map
         (function Catalog.Dictionary d -> Some d | _ -> None)
         entries
     with
    | Some d -> Name_dict.restore d
    | None -> Name_dict.create ());
  t.dict_persisted <- Name_dict.size t.dict;
  t.schemas <-
    List.filter_map
      (function
        | Catalog.Schema { name; binary } ->
            Some (name, Rx_schema.Compiled.decode binary)
        | _ -> None)
      entries;
  let dict = t.dict in
  let pool = t.pool in
  (* rebuild tables *)
  let next_tid = ref 0 in
  let tables =
    List.filter_map
      (function
        | Catalog.Table { name; columns; heap_header; docid_index_meta; next_docid }
          -> (
          try
            let base =
              Base_table.attach pool ~columns:(Array.of_list columns) ~heap_header
                ~docid_index_meta
            in
            let xml_columns =
              List.filter_map
                (function
                  | Catalog.Xml_column
                      { table; column; heap_header; node_index_meta }
                    when table = name ->
                      let store =
                        Doc_store.attach ~record_threshold pool dict
                          ~heap_header ~index_meta:node_index_meta
                      in
                      Some
                        ( column,
                          {
                            store;
                            indexes = [];
                            gens = [];
                            side_logs = [];
                            text_indexes = [];
                            schema = None;
                            schema_name = None;
                            mvcc = None;
                            created = Hashtbl.create 16;
                          } )
                  | _ -> None)
                entries
            in
            incr next_tid;
            Some (name, { tname = name; tid = !next_tid; base; xml_columns; next_docid })
          with
          | (Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e ->
              (* skip the damaged table; the rest of the catalog stays
                 readable through the degraded handle *)
              degrade e;
              None)
        | _ -> None)
      entries
  in
  t.tables <- tables;
  (* value indexes and schema bindings *)
  List.iter
    (fun entry ->
      try
        match entry with
      | Catalog.Xml_index { table; column; name; path; key_type; tree_meta } -> (
          match find_table t table with
          | Some tbl ->
              let xc = xml_column_exn tbl column in
              let key_type =
                match Index_def.key_type_of_string key_type with
                | Some kt -> kt
                | None -> invalid_arg "Database: bad key type in catalog"
              in
              let def = Index_def.make ~name ~path ~key_type in
              let idx = Value_index.attach pool dict def ~meta_page:tree_meta in
              Value_index.hook idx xc.store;
              xc.indexes <- xc.indexes @ [ idx ]
          | None -> ())
      | Catalog.Index_generation { table; column; name; generation; build_ms; prior }
        -> (
          match find_table t table with
          | Some tbl -> (
              let xc = xml_column_exn tbl column in
              match
                List.find_opt
                  (fun idx -> (Value_index.def idx).Index_def.name = name)
                  xc.indexes
              with
              | Some idx ->
                  Value_index.set_generation idx generation;
                  let g_prior =
                    match prior with
                    | None -> None
                    | Some (pg, meta) ->
                        (* the retained prior stays hooked so it keeps
                           absorbing DML while rollback is possible *)
                        let p =
                          Value_index.attach pool dict (Value_index.def idx)
                            ~meta_page:meta
                        in
                        Value_index.set_generation p pg;
                        Value_index.hook p xc.store;
                        Some p
                  in
                  xc.gens <-
                    (name, { g_build_ms = build_ms; g_prior })
                    :: List.remove_assoc name xc.gens
              | None -> ())
          | None -> ())
      | Catalog.Text_index { table; column; name; tree_meta } -> (
          match find_table t table with
          | Some tbl ->
              let xc = xml_column_exn tbl column in
              let ti = Rx_fulltext.Text_index.attach pool ~meta_page:tree_meta in
              Rx_fulltext.Text_index.hook ti xc.store;
              xc.text_indexes <- xc.text_indexes @ [ (name, ti) ]
          | None -> ())
      | Catalog.Schema_binding { table; column; schema } -> (
          match (find_table t table, List.assoc_opt schema t.schemas) with
          | Some tbl, Some compiled ->
              let xc = xml_column_exn tbl column in
              xc.schema <- Some compiled;
              xc.schema_name <- Some schema
          | _ -> ())
      | _ -> ()
      with (Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e ->
        degrade e)
    entries;
  (* [next_docid] is only persisted at checkpoints, so after a crash the
     catalog copy may lag behind docids already durable in base tables;
     reissuing one would alias two documents. Re-derive the high-water
     mark from the data itself. *)
  if healthy () then
    try
      List.iter
        (fun (_, tbl) ->
          let maxd = ref 0 in
          Base_table.iter
            (fun docid _ -> if docid > !maxd then maxd := docid)
            tbl.base;
          if !maxd + 1 > tbl.next_docid then tbl.next_docid <- !maxd + 1)
        t.tables
    with (Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e ->
      degrade e

(* throwaway in-memory catalog for handles whose real catalog is
   unreadable (corrupt) or does not exist yet (fresh replica) *)
let placeholder_catalog () =
  Catalog.create (Buffer_pool.create ~capacity:4 (Pager.create_in_memory ()))

let open_dir_impl ~replica ?page_size ?(record_threshold = 2048)
    ?(config = default_config) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let data = Filename.concat dir "data.rxdb" in
  let wal = Filename.concat dir "wal.rxlog" in
  let fresh = not (Sys.file_exists data) in
  (* an unspecified page size adopts an existing file's geometry rather
     than failing on a mismatch with the default — a database created at
     1024 (or restored/replicated at the source's size) reopens plainly *)
  let page_size =
    match page_size with
    | Some _ -> page_size
    | None -> if fresh then None else Some (Pager.stored_page_size data)
  in
  let metrics = Rx_obs.Metrics.create () in
  let tracer = Rx_obs.Trace.create () in
  let pool =
    Buffer_pool.create ~metrics ~capacity:2048 (Pager.open_file ~metrics ?page_size data)
  in
  let log = Rx_wal.Log_manager.open_file ~metrics wal in
  (* corruption found anywhere below degrades the handle to read-only
     instead of failing the open: the data is damaged, but the surviving
     parts stay readable and [verify] can localize the problem *)
  let degraded = ref None in
  let last_recovery = ref None in
  let degrade e =
    if !degraded = None then degraded := Some (Printexc.to_string e)
  in
  (if not fresh then
     match Rx_wal.Recovery.run log pool with
     | report -> last_recovery := Some report
     | exception ((Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e)
       ->
         degrade e;
         (* partial redo may sit in the cache; reads must see the disk
            truth, not a half-recovered image *)
         (try Buffer_pool.drop_cache pool with _ -> ()));
  let txn_mgr = install_txn pool log in
  (* the surviving WAL span may already contain transactions (recovery
     keys loser detection on txids) — new ids must not collide with them *)
  (match !last_recovery with
  | Some r -> Rx_txn.Transaction.seed_txids txn_mgr r.Rx_wal.Recovery.max_txid
  | None -> ());
  if fresh && replica then begin
    (* a fresh replica starts truly empty: the catalog (page 1) and every
       other page arrive through the leader's WAL stream; a local bootstrap
       would stamp pages with home-grown LSNs that alias the leader's *)
    let t =
      {
        pool;
        log;
        dict = Name_dict.create ();
        txn_mgr;
        catalog = placeholder_catalog ();
        dir = Some dir;
        replica = true;
        record_threshold;
        metrics;
        tracer;
        tables = [];
        schemas = [];
        commit_ts = 0;
        active_txns = [];
        config;
        checkpointing = false;
        ckpt_mark = 0;
        degraded = None;
        last_recovery = None;
        ddl_epoch = 0;
        dict_persisted = 0;
        plan_cache = Rx_util.Lru.create ~capacity:config.plan_cache_capacity;
        builds = [];
      write_lock = Mutex.create ();
      }
    in
    apply_config t;
    t
  end
  else if fresh then begin
    (* bootstrap inside a committed transaction: the catalog heap's pages
       must not look like loser updates (txid 0) to a later recovery *)
    let catalog =
      let tx = Rx_txn.Transaction.begin_txn txn_mgr in
      match Rx_txn.Transaction.run_as tx (fun () -> Catalog.create pool) with
      | c ->
          ignore (Rx_txn.Transaction.commit tx);
          c
      | exception e ->
          ignore (Rx_txn.Transaction.abort tx);
          raise e
    in
    let t =
      {
        pool;
        log;
        dict = Name_dict.create ();
        txn_mgr;
        catalog;
        dir = Some dir;
        replica = false;
        record_threshold;
        metrics;
        tracer;
        tables = [];
        schemas = [];
        commit_ts = 0;
        active_txns = [];
        config;
        checkpointing = false;
        ckpt_mark = 0;
        degraded = None;
        last_recovery = None;
        ddl_epoch = 0;
        dict_persisted = 0;
        plan_cache = Rx_util.Lru.create ~capacity:config.plan_cache_capacity;
        builds = [];
      write_lock = Mutex.create ();
      }
    in
    apply_config t;
    t
  end
  else begin
    (* the catalog heap is always the first structure created: its header
       page is page 1. A replica reopened before its first applied batch
       ever flushed may not have a page 1 yet — its catalog arrives from
       the leader later, via [refresh_replica]. *)
    let have_catalog =
      (not replica) || Pager.page_count (Buffer_pool.pager pool) > 1
    in
    let catalog, entries =
      match
        if have_catalog then
          let c = Catalog.attach pool ~header_page:1 in
          (c, Catalog.entries c)
        else (placeholder_catalog (), [])
      with
      | pair -> pair
      | exception ((Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e)
        ->
          degrade e;
          (* throwaway in-memory catalog: the real one is unreadable and a
             degraded handle never saves, so nothing is lost *)
          (placeholder_catalog (), [])
    in
    let t =
      {
        pool;
        log;
        dict = Name_dict.create ();
        txn_mgr;
        catalog;
        dir = Some dir;
        replica;
        record_threshold;
        metrics;
        tracer;
        tables = [];
        schemas = [];
        commit_ts = 0;
        active_txns = [];
        config;
        checkpointing = false;
        ckpt_mark = 0;
        degraded = None;
        last_recovery = None;
        ddl_epoch = 0;
        dict_persisted = 0;
        plan_cache = Rx_util.Lru.create ~capacity:config.plan_cache_capacity;
        builds = [];
      write_lock = Mutex.create ();
      }
    in
    attach_logical t ~degrade ~healthy:(fun () -> !degraded = None) entries;
    t.degraded <- !degraded;
    t.last_recovery <- !last_recovery;
    apply_config t;
    t
  end

let open_dir ?page_size ?record_threshold ?config dir =
  let t = open_dir_impl ~replica:false ?page_size ?record_threshold ?config dir in
  (* a directory with a replication cursor belongs to a replica: writing to
     it would fork the timeline the cursor points into. [rxd promote]
     removes the cursor and makes the directory a normal database. *)
  if Sys.file_exists (replica_cursor_path dir) && t.degraded = None then
    t.degraded <-
      Some "replica directory (run [rxd promote] to make it writable)";
  t

let open_replica ?page_size ?record_threshold ?config dir =
  open_dir_impl ~replica:true ?page_size ?record_threshold ?config dir

(* Re-read the physically-replicated catalog and swap the in-memory
   logical state under it. Called (with the engine lock held) after a
   replica applies a batch: any DDL or checkpoint the leader performed
   lives in the replicated catalog pages. *)
let refresh_replica t =
  if not t.replica then invalid_arg "Database.refresh_replica: not a replica";
  let degrade e =
    if t.degraded = None then t.degraded <- Some (Printexc.to_string e)
  in
  if Pager.page_count (Buffer_pool.pager t.pool) > 1 then begin
    match
      let c = Catalog.attach t.pool ~header_page:1 in
      (c, Catalog.entries c)
    with
    | c, entries ->
        t.catalog <- c;
        attach_logical t ~degrade ~healthy:(fun () -> t.degraded = None) entries;
        invalidate_plans t;
        apply_config t
    | exception ((Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _) as e)
      ->
        degrade e
  end

(* --- DDL --- *)

let create_table t ~name ~columns =
  ensure_writable t;
  if find_table t name <> None then
    invalid_arg (Printf.sprintf "Database: table %s already exists" name);
  if columns = [] then invalid_arg "Database: a table needs at least one column";
  in_txn t (fun () ->
      let base = Base_table.create t.pool ~columns:(Array.of_list columns) in
      let xml_columns =
        List.filter_map
          (fun (cname, ty) ->
            if ty = Value.T_xml then
              Some
                ( cname,
                  {
                    store =
                      Doc_store.create ~record_threshold:t.record_threshold t.pool
                        t.dict;
                    indexes = [];
                    gens = [];
                    side_logs = [];
                    text_indexes = [];
                    schema = None;
                    schema_name = None;
                    mvcc = None;
                    created = Hashtbl.create 16;
                  } )
            else None)
          columns
      in
      let tbl =
        { tname = name; tid = List.length t.tables + 1; base; xml_columns; next_docid = 1 }
      in
      List.iter
        (fun (_, xc) -> Doc_store.set_readahead xc.store t.config.readahead)
        xml_columns;
      t.tables <- t.tables @ [ (name, tbl) ];
      tbl)
  |> fun tbl ->
  invalidate_plans t;
  (* DDL is durable immediately: the catalog rewrite is WAL-logged, so a
     crash before the next checkpoint still replays the new table *)
  save_catalog t;
  tbl

let table = find_table
let list_tables t = List.map fst t.tables

let register_schema t ~name ~xsd =
  ensure_writable t;
  let model = Rx_schema.Schema_model.parse_xsd t.dict xsd in
  let compiled = Rx_schema.Compiled.compile t.dict model in
  t.schemas <- (name, compiled) :: List.remove_assoc name t.schemas;
  invalidate_plans t;
  save_catalog t

let bind_schema t ~table ~column ~schema =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  match List.assoc_opt schema t.schemas with
  | Some compiled ->
      xc.schema <- Some compiled;
      xc.schema_name <- Some schema;
      invalidate_plans t;
      save_catalog t
  | None -> invalid_arg (Printf.sprintf "Database: no schema %s" schema)

(* XPath value-index DDL lives in the [Index] lifecycle module below the
   session machinery: every build is online (side-log absorbed, swapped in
   at a quiesce point) and generational. [create_xml_index] /
   [list_xml_indexes] / [drop_xml_index] survive as thin deprecated
   aliases next to it. *)

let create_text_index t ~table ~column ~name =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  if List.mem_assoc name xc.text_indexes then
    invalid_arg (Printf.sprintf "Database: text index %s already exists" name);
  in_txn t (fun () ->
      let ti = Rx_fulltext.Text_index.create t.pool in
      Base_table.iter
        (fun docid _ ->
          if Doc_store.mem xc.store ~docid then
            Doc_store.iter_records xc.store ~docid (fun ~rid ~record ->
                Rx_fulltext.Text_index.index_record ti ~docid ~rid ~record))
        tbl.base;
      Rx_fulltext.Text_index.hook ti xc.store;
      xc.text_indexes <- xc.text_indexes @ [ (name, ti) ]);
  invalidate_plans t;
  save_catalog t

let text_index_exn xc =
  match xc.text_indexes with
  | (_, ti) :: _ -> ti
  | [] -> invalid_arg "Database: column has no text index"

let text_search t ~table ~column ?(mode = `All) query =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let ti = text_index_exn xc in
  let terms = Rx_fulltext.Text_index.tokenize query in
  match mode with
  | `All -> Rx_fulltext.Text_index.docs_with_all ti ~terms
  | `Any -> Rx_fulltext.Text_index.docs_with_any ti ~terms

let text_score t ~table ~column ~docid query =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let ti = text_index_exn xc in
  List.fold_left
    (fun acc term -> acc + Rx_fulltext.Text_index.doc_term_count ti ~term ~docid)
    0
    (List.sort_uniq compare (Rx_fulltext.Text_index.tokenize query))

(* --- sessions, locking and the MVCC overlay --- *)

let doc_resource tbl docid = Rx_txn.Resource.Document { table = tbl.tid; docid }

let node_resource tbl docid node =
  Rx_txn.Resource.Node { table = tbl.tid; docid; node }

let ensure_mvcc t xc =
  match xc.mvcc with
  | Some m -> m
  | None ->
      (* created under its own (immediately committed) transaction so the
         staging store's header pages never belong to an explicit
         transaction's rollback *)
      let m =
        in_txn t (fun () ->
            Rx_txn.Mvcc_store.create ~record_threshold:t.record_threshold t.pool
              t.dict)
      in
      xc.mvcc <- Some m;
      m

let find_active t txid =
  List.find_opt (fun x -> Rx_txn.Transaction.txid x.tx = txid) t.active_txns

(* once the last explicit transaction ends nothing can read an old
   version anymore: drop retained versions and creation timestamps *)
let maybe_purge t =
  if t.active_txns = [] then
    List.iter
      (fun (_, tbl) ->
        List.iter
          (fun (_, xc) ->
            (match xc.mvcc with
            | Some m -> Rx_txn.Mvcc_store.clear m
            | None -> ());
            Hashtbl.reset xc.created)
          tbl.xml_columns)
      t.tables

let begin_txn t =
  ensure_writable t;
  let tx = Rx_txn.Transaction.begin_txn t.txn_mgr in
  let txn =
    { tx; snapshot = t.commit_ts; pending = []; locals = Hashtbl.create 16; txn_open = true }
  in
  t.active_txns <- txn :: t.active_txns;
  Rx_obs.Metrics.(incr (counter t.metrics "txn.begin"));
  txn

let txn_id txn = Rx_txn.Transaction.txid txn.tx
let txn_active txn = txn.txn_open

let ensure_txn_open txn =
  if not txn.txn_open then invalid_arg "Database: transaction is not open"

(* --- DROP XML INDEX --- *)

let has_index xc name =
  List.exists (fun idx -> (Value_index.def idx).Index_def.name = name) xc.indexes

let do_drop_index t xc name =
  let dropped, kept =
    List.partition
      (fun idx -> (Value_index.def idx).Index_def.name = name)
      xc.indexes
  in
  (* detach maintenance observers; B+tree pages are not reclaimed
     (deletion is lazy engine-wide) *)
  List.iter (fun idx -> Value_index.unhook idx xc.store) dropped;
  (* a retained prior generation goes with its name *)
  (match List.assoc_opt name xc.gens with
  | Some { g_prior = Some p; _ } -> Value_index.unhook p xc.store
  | _ -> ());
  xc.gens <- List.remove_assoc name xc.gens;
  xc.indexes <- kept;
  invalidate_plans t

(* [drop_xml_index] is an alias of [Index.drop], defined with the
   lifecycle module below *)

(* does [txn] hold a staged index drop for (table, column)? *)
let txn_staged_drop txn ~table ~column =
  List.exists
    (function
      | P_drop_index { p_table; p_column; _ } ->
          p_table = table && p_column = column
      | _ -> false)
    txn.pending

let rollback t txn =
  if txn.txn_open then begin
    txn.txn_open <- false;
    t.active_txns <- List.filter (fun x -> x != txn) t.active_txns;
    (* logical rollback: staged versions live only in the staging store, so
       compensating deletes (attributed to this transaction in the WAL)
       restore the exact pre-transaction state without desyncing any
       store's in-memory bookkeeping *)
    ignore
      (Rx_txn.Transaction.abort
         ~undo:(fun () ->
           Hashtbl.iter
             (fun _ st ->
               match st with
               | L_staged { m; s; _ } -> Rx_txn.Mvcc_store.abort m [ s ]
               | L_deleted -> ())
             txn.locals)
         txn.tx);
    Rx_obs.Metrics.(incr (counter t.metrics "txn.abort"));
    maybe_purge t
  end

(* Acquire [mode] on [resource] for [tx]. A blocked request stays queued
   (its waits-for edges feed deadlock detection) and surfaces as [Busy];
   a waits-for cycle designates a victim: another session transaction is
   wounded (rolled back) and the request retried, otherwise the requester
   itself must abort ([on_self]) and the deadlock is re-raised. *)
let rec acquire_resource t ~on_self tx resource mode =
  match Rx_txn.Transaction.lock_detect tx resource mode with
  | `Granted -> ()
  | `Blocked blockers ->
      raise (Busy { txid = Rx_txn.Transaction.txid tx; blockers })
  | `Deadlock (victim, cycle) ->
      let self = Rx_txn.Transaction.txid tx in
      let wounded =
        victim <> self
        &&
        match find_active t victim with
        | Some v ->
            rollback t v;
            true
        | None -> false
      in
      if wounded then acquire_resource t ~on_self tx resource mode
      else begin
        on_self ();
        raise (Rx_txn.Lock_manager.Deadlock { victim = self; cycle })
      end

let acquire t txn resource mode =
  acquire_resource t ~on_self:(fun () -> rollback t txn) txn.tx resource mode

(* Before the current committed version of [docid] is overwritten or
   deleted at timestamp [new_ts], retain a copy readable by the snapshots
   that could still need it. Published at the timestamp the current
   version became current, so visibility is unchanged for every older
   snapshot. *)
let retain_before_change t xc ~docid ~new_ts =
  if
    t.active_txns <> []
    && Doc_store.mem xc.store ~docid
    && Hashtbl.find_opt xc.created docid <> Some new_ts
  then begin
    let m = ensure_mvcc t xc in
    let old_ts = Option.value ~default:0 (Hashtbl.find_opt xc.created docid) in
    let tokens = Doc_store.tokens xc.store ~docid in
    ignore
      (Rx_txn.Mvcc_store.commit ~at:old_ts m
         [ Rx_txn.Mvcc_store.stage_write m ~docid tokens ])
  end

(* after a delete: older snapshots may still read a retained version, so a
   non-empty chain needs an explicit tombstone at the deletion timestamp *)
let tombstone_after_delete xc ~docid ~ts =
  match xc.mvcc with
  | Some m when Rx_txn.Mvcc_store.tracked m ~docid ->
      ignore
        (Rx_txn.Mvcc_store.commit ~at:ts m [ Rx_txn.Mvcc_store.stage_delete m ~docid ])
  | _ -> ()

let parse_column_doc t xc src =
  match xc.schema with
  | Some compiled -> Rx_schema.Validator.validate_document compiled t.dict src
  | None -> Parser.parse t.dict src

let build_row tbl ~values ~xml docid =
  Array.map
    (fun (cname, ty) ->
      if ty = Value.T_xml then
        if List.mem_assoc cname xml then Value.Xml_ref docid else Value.Null
      else
        match List.assoc_opt cname values with
        | Some v -> v
        | None -> Value.Null)
    (Base_table.columns tbl.base)

(* delete of the committed document [d] in column [cname]: retain the
   pre-image for live snapshots, drop the current version, tombstone the
   chain *)
let delete_column_doc t tbl cname ~d ~ts ~versioned =
  let xc = xml_column_exn tbl cname in
  if versioned then retain_before_change t xc ~docid:d ~new_ts:ts;
  Doc_store.delete_document xc.store ~docid:d;
  Hashtbl.remove xc.created d;
  if versioned then tombstone_after_delete xc ~docid:d ~ts

let delete_row t tbl ~docid ~ts ~versioned =
  match Base_table.fetch_by_docid tbl.base docid with
  | None -> invalid_arg (Printf.sprintf "Database: no row with DocID %d" docid)
  | Some row ->
      Array.iteri
        (fun i v ->
          match v with
          | Value.Xml_ref d ->
              let cname, _ = (Base_table.columns tbl.base).(i) in
              delete_column_doc t tbl cname ~d ~ts ~versioned
          | _ -> ())
        row;
      ignore (Base_table.delete_by_docid tbl.base docid)

(* [update_xml_text] accepts the text node itself or an element node; for
   an element the update targets its first text-node child. Resolution
   happens against the store actually being written (main or staged
   working copy), where the node ids coincide. *)
let text_target ds ~docid node =
  match Doc_store.Cursor.find ds ~docid node with
  | None -> node (* let Doc_store report the missing node *)
  | Some c -> (
      match Doc_store.Cursor.entry c with
      | Record_format.Text _ -> node
      | _ ->
          let rec scan = function
            | None -> node
            | Some ch -> (
                match Doc_store.Cursor.entry ch with
                | Record_format.Text _ -> Doc_store.Cursor.node_id ch
                | _ -> scan (Doc_store.Cursor.next_sibling ds ch))
          in
          scan (Doc_store.Cursor.first_child ds c))

(* replay one staged statement against the current committed state; runs
   inside the committing transaction, so index/full-text observers fire
   here — index maintenance is deferred to commit *)
let apply_pending t ts op =
  let versioned = t.active_txns <> [] in
  match op with
  | P_insert { p_table; p_docid; p_row; p_xml } ->
      let tbl = table_exn t p_table in
      List.iter
        (fun (column, s) ->
          let xc = xml_column_exn tbl column in
          (match (Rx_txn.Mvcc_store.staged_internal s, xc.mvcc) with
          | Some internal, Some m ->
              let tokens =
                Doc_store.tokens (Rx_txn.Mvcc_store.store m) ~docid:internal
              in
              Doc_store.insert_tokens xc.store ~docid:p_docid tokens
          | _ -> ());
          if versioned then Hashtbl.replace xc.created p_docid ts)
        p_xml;
      ignore (Base_table.insert tbl.base ~docid:p_docid p_row)
  | P_delete { p_table; p_docid } ->
      let tbl = table_exn t p_table in
      delete_row t tbl ~docid:p_docid ~ts ~versioned
  | P_update_text { p_table; p_column; p_docid; p_node; p_content } ->
      let tbl = table_exn t p_table in
      let xc = xml_column_exn tbl p_column in
      if versioned then retain_before_change t xc ~docid:p_docid ~new_ts:ts;
      Doc_store.update_text xc.store ~docid:p_docid
        (text_target xc.store ~docid:p_docid p_node)
        p_content;
      if versioned then Hashtbl.replace xc.created p_docid ts
  | P_insert_fragment { p_table; p_column; p_docid; p_pos; p_tokens } ->
      let tbl = table_exn t p_table in
      let xc = xml_column_exn tbl p_column in
      if versioned then retain_before_change t xc ~docid:p_docid ~new_ts:ts;
      ignore (Doc_store.insert_fragment xc.store ~docid:p_docid p_pos p_tokens);
      if versioned then Hashtbl.replace xc.created p_docid ts
  | P_delete_node { p_table; p_column; p_docid; p_node } ->
      let tbl = table_exn t p_table in
      let xc = xml_column_exn tbl p_column in
      if versioned then retain_before_change t xc ~docid:p_docid ~new_ts:ts;
      Doc_store.delete_subtree xc.store ~docid:p_docid p_node;
      if versioned then Hashtbl.replace xc.created p_docid ts
  | P_drop_index { p_table; p_column; p_name } ->
      let tbl = table_exn t p_table in
      let xc = xml_column_exn tbl p_column in
      (* tolerate a concurrent immediate drop between staging and commit *)
      if has_index xc p_name then do_drop_index t xc p_name

(* Commit runs in two phases. Phase 1, under the engine lock
   [write_lock]: replay the staged statements, append the Commit record
   and release locks — the only part that touches shared in-memory
   state, so concurrent [Database.commit] calls are safe. Phase 2,
   outside the lock: wait for the Commit record to reach stable storage
   via the WAL's group commit — N committers in flight share ~1 fsync
   instead of paying one each. Releasing locks before the durability
   wait is sound because any later flush covers this record's LSN (no
   one can observe a state the log cannot reproduce).

   [commit_async] is phase 1 alone: it assumes the caller already holds
   the engine lock (see [exclusively]) and returns the phase-2 await
   thunk, so a multi-threaded host can serialize the apply under its own
   critical section and still let concurrent committers share fsyncs. *)
let commit_async t txn =
  ensure_txn_open txn;
  txn.txn_open <- false;
  t.active_txns <- List.filter (fun x -> x != txn) t.active_txns;
  let ops = List.rev txn.pending in
  match
    Rx_txn.Transaction.run_as txn.tx (fun () ->
        let ts = t.commit_ts + 1 in
        List.iter (apply_pending t ts) ops;
        (* reclaim staged working storage: every staged handle in
           [locals] is either a consumed insert image or a private
           working copy *)
        Hashtbl.iter
          (fun _ st ->
            match st with
            | L_staged { m; s; _ } -> Rx_txn.Mvcc_store.abort m [ s ]
            | L_deleted -> ())
          txn.locals;
        t.commit_ts <- ts)
  with
  | () ->
      let _, await = Rx_txn.Transaction.precommit txn.tx in
      Rx_obs.Metrics.(incr (counter t.metrics "txn.commit"));
      (* staged DDL became effective above; make it durable like
         immediate DDL. Likewise a dictionary that grew while this
         transaction's documents were parsed: names live only in the
         catalog, so without a save here a crash — or a replica applying
         this very commit — would hold documents whose qname ids nothing
         can resolve. Interning is once-per-distinct-name over the
         database's lifetime, so steady-state commits skip this. *)
      if
        List.exists (function P_drop_index _ -> true | _ -> false) ops
        || Name_dict.size t.dict > t.dict_persisted
      then save_catalog t;
      maybe_purge t;
      await
  | exception e ->
      (* commit replay failed: physically roll back this transaction's
         page updates; the durable state is consistent after reopen
         (recovery treats it as a loser), but this in-memory handle may
         be stale *)
      ignore (Rx_txn.Transaction.abort txn.tx);
      Rx_obs.Metrics.(incr (counter t.metrics "txn.abort"));
      maybe_purge t;
      raise e

let exclusively t f = Mutex.protect t.write_lock f

let commit t txn = (exclusively t (fun () -> commit_async t txn)) ()

let with_txn t f =
  let v, await =
    exclusively t (fun () ->
        let txn = begin_txn t in
        match f txn with
        | v -> (v, commit_async t txn)
        | exception e ->
            rollback t txn;
            raise e)
  in
  await ();
  v

(* --- online, generational index lifecycle --- *)

(* index DDL resolves names through typed errors (the "small fix" of the
   stable error table: unknown targets are application errors with a
   recognizable shape, not generic failures) *)
let index_table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> raise (Unknown_index { kind = `Table; name })

let index_column_exn tbl column =
  match List.assoc_opt column tbl.xml_columns with
  | Some xc -> xc
  | None -> raise (Unknown_index { kind = `Column; name = column })

let find_value_index xc name =
  List.find_opt
    (fun idx -> (Value_index.def idx).Index_def.name = name)
    xc.indexes

let gen_state_of xc name =
  match List.assoc_opt name xc.gens with
  | Some gs -> gs
  | None ->
      let gs = { g_build_ms = 0; g_prior = None } in
      xc.gens <- xc.gens @ [ (name, gs) ];
      gs

let find_build t ~table ~column ~name =
  List.find_opt
    (fun b -> b.b_table = table && b.b_column = column && b.b_name = name)
    t.builds

let build_in_flight t ~table ~column ~name =
  match find_build t ~table ~column ~name with
  | Some { b_state = `Scanning; _ } -> true
  | _ -> false

module Index = struct
  type state =
    | Building of { scanned : int; total : int; side_log : int }
    | Live
    | Failed of string

  type info = {
    ix_name : string;
    ix_path : string;
    ix_key_type : Index_def.key_type;
    ix_generation : int;
    ix_state : state;
    ix_entries : int;
    ix_build_ms : int;
    ix_prior_generation : int option;
  }

  type handle = {
    h_progress : build_progress;
    h_result : (info, exn) Stdlib.result option ref;
        (* parked by the build thread *)
    h_thread : Thread.t;
  }

  let live_info xc idx =
    let def = Value_index.def idx in
    let iname = def.Index_def.name in
    let gs = List.assoc_opt iname xc.gens in
    {
      ix_name = iname;
      ix_path = Rx_xpath.Ast.to_string def.Index_def.path;
      ix_key_type = def.Index_def.key_type;
      ix_generation = Value_index.generation idx;
      ix_state = Live;
      ix_entries = Value_index.entry_count idx;
      ix_build_ms = (match gs with Some g -> g.g_build_ms | None -> 0);
      ix_prior_generation =
        (match gs with
        | Some { g_prior = Some p; _ } -> Some (Value_index.generation p)
        | _ -> None);
    }

  let progress_info xc bp =
    {
      ix_name = bp.b_name;
      ix_path = bp.b_path;
      ix_key_type = bp.b_key_type;
      ix_generation = bp.b_generation;
      ix_state =
        (match bp.b_state with
        | `Scanning ->
            Building
              {
                scanned = bp.b_scanned;
                total = bp.b_total;
                side_log = bp.b_pending;
              }
        | `Failed msg -> Failed msg
        | `Live -> Live);
      ix_entries = 0;
      ix_build_ms = 0;
      (* for a rebuild, the generation that will become prior at swap *)
      ix_prior_generation =
        Option.map Value_index.generation (find_value_index xc bp.b_name);
    }

  (* The build proper; runs on its own thread. Three phases:
     1. registration (one short critical section): create the new
        generation's empty tree, hook the side log, capture the docid
        snapshot — the side log is live *before* the snapshot is taken, so
        no DML can fall between them;
     2. scan: slices of up to 256 records, each its own critical section
        and micro-transaction — extract keys in parallel on the domain
        pool, insert serially, drain whatever DML the side log absorbed
        meanwhile. Between slices the engine is free: concurrent queries
        and writers proceed against the old generation;
     3. quiesce (one short critical section): final drain, stop the log,
        swap the new generation into the planner's view, retire the old
        one for rollback, bump the DDL epoch and save the catalog — the
        WAL-logged save is the swap's durability point, so a crash at any
        earlier moment recovers to the old generation and the new tree's
        pages are mere orphans (reclamation is lazy engine-wide). *)
  let run_build ?on_slice t tbl xc ~name ~def bp started =
    let idx, side_log, docids =
      exclusively t (fun () ->
          in_txn t (fun () ->
              let idx = Value_index.create t.pool t.dict def in
              Value_index.set_generation idx bp.b_generation;
              let sl = Index_build.start idx xc.store in
              xc.side_logs <- xc.side_logs @ [ (name, sl) ];
              let docids = ref [] in
              Base_table.iter
                (fun docid _ ->
                  if Doc_store.mem xc.store ~docid then
                    docids := docid :: !docids)
                tbl.base;
              (idx, sl, List.rev !docids)))
    in
    bp.b_total <- List.length docids;
    let par = effective_parallelism t in
    let dpool = Rx_util.Domain_pool.shared () in
    let slice_no = ref 0 in
    let process_slice ids =
      exclusively t (fun () ->
          in_txn t (fun () ->
              let triples = ref [] in
              List.iter
                (fun docid ->
                  (* deleted since the snapshot: the side log recorded it *)
                  if Doc_store.mem xc.store ~docid then
                    Doc_store.iter_records xc.store ~docid
                      (fun ~rid ~record ->
                        triples := (docid, rid, record) :: !triples))
                ids;
              let arr = Array.of_list (List.rev !triples) in
              let nb = Array.length arr in
              if nb > 0 then begin
                let keys = Array.make nb [] in
                let k = min par nb in
                if k <= 1 then
                  Array.iteri
                    (fun i (docid, _, record) ->
                      keys.(i) <-
                        Value_index.extract_keys idx ~docid ~record
                          ~store:(Some xc.store))
                    arr
                else
                  ignore
                    (Rx_util.Domain_pool.run dpool ~parallelism:par
                       (Array.init k (fun c () ->
                            let lo = c * nb / k and hi = (c + 1) * nb / k in
                            for i = lo to hi - 1 do
                              let docid, _, record = arr.(i) in
                              keys.(i) <-
                                Value_index.extract_keys idx ~docid ~record
                                  ~store:(Some xc.store)
                            done)));
                Array.iteri
                  (fun i (docid, rid, _) ->
                    Value_index.insert_keys idx ~docid ~rid keys.(i))
                  arr
              end;
              (* absorb DML that landed since the previous slice; replays
                 are idempotent, so overlap with the scan is harmless *)
              ignore (Index_build.drain side_log);
              bp.b_scanned <- bp.b_scanned + List.length ids;
              bp.b_pending <- Index_build.pending side_log));
      (match on_slice with Some f -> f !slice_no | None -> ());
      incr slice_no
    in
    let rec slices = function
      | [] -> ()
      | ids ->
          let rec take n acc = function
            | rest when n = 0 -> (List.rev acc, rest)
            | [] -> (List.rev acc, [])
            | d :: rest -> take (n - 1) (d :: acc) rest
          in
          let slice, rest = take 256 [] ids in
          process_slice slice;
          slices rest
    in
    slices docids;
    (* quiesce: the swap itself *)
    exclusively t (fun () ->
        in_txn t (fun () -> ignore (Index_build.drain side_log));
        Index_build.stop side_log;
        xc.side_logs <- List.filter (fun (n, _) -> n <> name) xc.side_logs;
        bp.b_pending <- 0;
        let gs = gen_state_of xc name in
        (match find_value_index xc name with
        | Some old ->
            (* retire the old generation: it stays hooked (so DML keeps it
               correct for rollback) but leaves the planner's view; the
               generation it displaces leaks its pages, like a drop *)
            (match gs.g_prior with
            | Some dead -> Value_index.unhook dead xc.store
            | None -> ());
            gs.g_prior <- Some old;
            xc.indexes <-
              List.map (fun i -> if i == old then idx else i) xc.indexes
        | None -> xc.indexes <- xc.indexes @ [ idx ]);
        Value_index.hook idx xc.store;
        gs.g_build_ms <-
          int_of_float ((Unix.gettimeofday () -. started) *. 1000.);
        bp.b_state <- `Live;
        t.builds <- List.filter (fun b -> b != bp) t.builds;
        invalidate_plans t;
        (* the WAL-logged catalog save is the durability point of the swap *)
        save_catalog t;
        live_info xc idx)

  let build ?on_slice t ~table ~column ~name ~path ~key_type =
    ensure_writable t;
    let tbl = index_table_exn t table in
    let xc = index_column_exn tbl column in
    let def = Index_def.make ~name ~path ~key_type in
    let bp =
      {
        b_table = table;
        b_column = column;
        b_name = name;
        b_path = Rx_xpath.Ast.to_string def.Index_def.path;
        b_key_type = key_type;
        b_generation = 1;
        b_total = 0;
        b_scanned = 0;
        b_pending = 0;
        b_state = `Scanning;
      }
    in
    exclusively t (fun () ->
        if build_in_flight t ~table ~column ~name then
          invalid_arg
            (Printf.sprintf "Database: index %s is already being built" name);
        bp.b_generation <-
          (match find_value_index xc name with
          | Some live -> Value_index.generation live + 1
          | None -> 1);
        (* replace a stale failed entry for the same name *)
        t.builds <-
          bp
          :: List.filter
               (fun b ->
                 not
                   (b.b_table = table && b.b_column = column
                  && b.b_name = name))
               t.builds);
    let started = Unix.gettimeofday () in
    let result = ref None in
    let thread =
      Thread.create
        (fun () ->
          match run_build ?on_slice t tbl xc ~name ~def bp started with
          | info -> result := Some (Ok info)
          | exception e ->
              bp.b_state <- `Failed (Printexc.to_string e);
              (* detach the orphan generation's side log; its tree pages
                 are unreferenced and reclaim lazily *)
              (try
                 exclusively t (fun () ->
                     match List.assoc_opt name xc.side_logs with
                     | Some sl ->
                         Index_build.stop sl;
                         xc.side_logs <-
                           List.filter (fun (n, _) -> n <> name) xc.side_logs
                     | None -> ())
               with _ -> ());
              result := Some (Error e))
        ()
    in
    { h_progress = bp; h_result = result; h_thread = thread }

  let await h =
    Thread.join h.h_thread;
    match !(h.h_result) with
    | Some (Ok info) -> info
    | Some (Error e) -> raise e
    | None -> failwith "Database.Index.await: build thread left no result"

  let status t ~table ~column ~name =
    let tbl = index_table_exn t table in
    let xc = index_column_exn tbl column in
    match find_build t ~table ~column ~name with
    | Some ({ b_state = `Scanning | `Failed _; _ } as bp) ->
        progress_info xc bp
    | _ -> (
        match find_value_index xc name with
        | Some idx -> live_info xc idx
        | None -> raise (Unknown_index { kind = `Index; name }))

  let list t ~table ~column =
    let tbl = index_table_exn t table in
    let xc = index_column_exn tbl column in
    let live = List.map (live_info xc) xc.indexes in
    let pending =
      List.filter_map
        (fun bp ->
          if
            bp.b_table = table && bp.b_column = column
            && not (List.exists (fun i -> i.ix_name = bp.b_name) live)
          then Some (progress_info xc bp)
          else None)
        t.builds
    in
    live @ pending

  let rollback t ~table ~column ~name =
    ensure_writable t;
    let tbl = index_table_exn t table in
    let xc = index_column_exn tbl column in
    if build_in_flight t ~table ~column ~name then
      invalid_arg
        (Printf.sprintf "Database: index %s is being built (rollback later)"
           name);
    exclusively t (fun () ->
        match find_value_index xc name with
        | None -> raise (Unknown_index { kind = `Index; name })
        | Some live -> (
            match List.assoc_opt name xc.gens with
            | Some ({ g_prior = Some prior; _ } as gs) ->
                (* symmetric swap — the rolled-back generation is retained
                   in turn, so a rollback can itself be rolled back; both
                   trees are hooked throughout, so neither goes stale *)
                gs.g_prior <- Some live;
                xc.indexes <-
                  List.map (fun i -> if i == live then prior else i) xc.indexes;
                invalidate_plans t;
                save_catalog t;
                live_info xc prior
            | _ ->
                invalid_arg
                  (Printf.sprintf
                     "Database: index %s has no prior generation to roll back \
                      to"
                     name)))

  let drop ?txn t ~table ~column ~name =
    ensure_writable t;
    let tbl = index_table_exn t table in
    let xc = index_column_exn tbl column in
    if build_in_flight t ~table ~column ~name then
      invalid_arg
        (Printf.sprintf "Database: index %s is being built (drop later)" name);
    if not (has_index xc name) then
      raise (Unknown_index { kind = `Index; name });
    match txn with
    | Some txn ->
        ensure_txn_open txn;
        (* staged DDL: applied at commit; until then the index keeps
           maintaining itself, but this transaction's own queries must not
           plan against it (see [txn_staged_drop]) *)
        txn.pending <-
          P_drop_index { p_table = table; p_column = column; p_name = name }
          :: txn.pending
    | None ->
        (* immediate drop: self-locking, like [rollback] — callers must
           not already hold the engine lock *)
        exclusively t (fun () ->
            do_drop_index t xc name;
            save_catalog t)
end

(* --- deprecated aliases (one release): the pre-lifecycle index DDL --- *)

let create_xml_index t ~table ~column ~name ~path ~key_type =
  let tbl = index_table_exn t table in
  let xc = index_column_exn tbl column in
  if has_index xc name then
    invalid_arg (Printf.sprintf "Database: index %s already exists" name);
  ignore (Index.await (Index.build t ~table ~column ~name ~path ~key_type))

let list_xml_indexes t ~table ~column =
  List.map
    (fun i -> i.Index.ix_name)
    (List.filter (fun i -> i.Index.ix_state = Index.Live)
       (Index.list t ~table ~column))

let drop_xml_index = Index.drop

let close t =
  (* a handle abandoned mid-transaction rolls back, like a dropped session *)
  List.iter (rollback t) t.active_txns;
  (* a degraded handle must not checkpoint: saving the catalog would
     overwrite durable state with a partial in-memory view. A replica must
     not either — its durable state is exactly the leader's pages, and its
     restart point is persisted by [Replica.close] instead. *)
  (match t.degraded with
  | None when not t.replica -> do_checkpoint t ~counter_name:"ckpt.manual"
  | _ -> ());
  Pager.close (Buffer_pool.pager t.pool);
  Rx_wal.Log_manager.close t.log

(* simulate the process dying: release the file descriptors with no
   rollback, no checkpoint and no flush — recovery runs at the next open *)
let crash t =
  Pager.close (Buffer_pool.pager t.pool);
  Rx_wal.Log_manager.close t.log

let set_fault ?(scope = `All) t fault =
  Rx_wal.Log_manager.set_fault t.log fault;
  match scope with
  | `All -> Pager.set_fault (Buffer_pool.pager t.pool) fault
  | `Wal_only -> Pager.set_fault (Buffer_pool.pager t.pool) None

type verify_report = {
  pages_checked : int;
  corrupt_pages : int list;
  wal_records : int;
  wal_torn_bytes : int;
}

(* Offline-style integrity sweep over the physical pages (bypassing the
   buffer pool, so cached copies cannot mask on-disk damage) plus the WAL
   bookkeeping gathered at open. *)
let verify t =
  let pager = Buffer_pool.pager t.pool in
  let buf = Bytes.create (Pager.page_size pager) in
  let corrupt = ref [] in
  let count = Pager.page_count pager in
  for page_no = 1 to count - 1 do
    match Pager.read pager page_no buf with
    | () -> ()
    | exception Pager.Corrupt_page _ -> corrupt := page_no :: !corrupt
  done;
  {
    pages_checked = max 0 (count - 1);
    corrupt_pages = List.rev !corrupt;
    wal_records = Rx_wal.Log_manager.record_count t.log;
    wal_torn_bytes = Rx_wal.Log_manager.torn_tail_bytes t.log;
  }

(* --- replication (leader side) --- *)

let durable_lsn t = Rx_wal.Log_manager.durable_lsn t.log
let wal_base_lsn t = Rx_wal.Log_manager.base_lsn t.log

type repl_state = {
  r_base_lsn : int64;
  r_durable_lsn : int64;
  r_generations : int;
  r_page_size : int;
}

let repl_state t =
  {
    r_base_lsn = wal_base_lsn t;
    r_durable_lsn = durable_lsn t;
    r_generations =
      (match archive_dir t with
      | Some dir -> List.length (Rx_wal.Archive.generations dir)
      | None -> 0);
    r_page_size = Pager.page_size (Buffer_pool.pager t.pool);
  }

(* One replication pull: durable frames from [from_lsn], served from the
   live log when the position is still inside it, from the archive when a
   checkpoint has truncated past it. Returns (start, frames, durable) —
   [start] always equals [from_lsn] unless the history below it is gone
   (no archive), which is unrecoverable without rebuilding the replica. *)
let repl_fetch t ~from_lsn ~max_bytes =
  let missing () =
    failwith
      (Printf.sprintf
         "replication: WAL history before LSN %Ld is gone — enable \
          archiving (create %s) before the first checkpoint, or rebuild \
          the replica from scratch"
         from_lsn
         (match t.dir with
         | Some dir -> archive_path dir
         | None -> "<dir>/archive"))
  in
  let start, frames = Rx_wal.Log_manager.raw_since t.log ~max_bytes from_lsn in
  let start, frames =
    if Int64.compare start from_lsn <= 0 then (from_lsn, frames)
    else
      (* the position fell below the live base: a checkpoint truncated it
         away. Serve the span from the archive instead. *)
      match archive_dir t with
      | None -> missing ()
      | Some dir -> (
          match Rx_wal.Archive.read_from ~dir ~lsn:from_lsn with
          | Rx_wal.Archive.Frames frames -> (from_lsn, frames)
          | Rx_wal.Archive.Not_archived | Rx_wal.Archive.Missing_history ->
              missing ())
  in
  Rx_obs.Metrics.(incr (counter t.metrics "repl.fetches"));
  Rx_obs.Metrics.(add (counter t.metrics "repl.bytes_shipped") (String.length frames));
  (start, frames, durable_lsn t)

(* --- replication (replica side): physical redo + promotion --- *)

(* Replicated updates may touch pages this replica has never materialized
   (the leader allocated them after the replica's last page); extend the
   data file with stamped zero pages so redo can pin them. *)
let grow_pages t page_no =
  let pager = Buffer_pool.pager t.pool in
  while Pager.page_count pager <= page_no do
    ignore (Pager.alloc pager)
  done

(* Apply one replicated after-image through the shared redo primitive,
   honouring page-LSN idempotence (a page flushed past the restart cursor
   skips records it already carries — exactly ARIES repeat-history). *)
let apply_redo t ~page_no ~lsn ~off ~image =
  grow_pages t page_no;
  let page_lsn = Buffer_pool.with_page t.pool page_no Page.get_lsn in
  if Int64.compare lsn page_lsn >= 0 then begin
    Rx_wal.Recovery.apply_image t.pool ~page_no ~lsn ~off ~image;
    true
  end
  else false

(* Promotion: the replica stops applying and becomes a writable primary.
   All applied state is flushed, then the (empty, never-appended-to) local
   WAL restarts at [lsn] — the applied horizon — so new records continue
   the leader's LSN timeline above every replicated page LSN. *)
let promote_replica t ~lsn =
  if not t.replica then invalid_arg "Database.promote_replica: not a replica";
  Buffer_pool.flush_all t.pool;
  (* belt and braces for promotion after a replica crash: the disk may
     hold pages flushed past the persisted cursor, so start the new
     timeline above every page LSN actually present, not just [lsn] —
     otherwise a future record could be skipped by a stale page LSN *)
  let pager = Buffer_pool.pager t.pool in
  let base = ref lsn in
  for p = 1 to Pager.page_count pager - 1 do
    let plsn = Buffer_pool.with_page t.pool p Page.get_lsn in
    if Int64.compare plsn !base > 0 then base := plsn
  done;
  Rx_wal.Log_manager.truncate t.log;
  Rx_wal.Log_manager.reset_base t.log !base;
  t.replica <- false;
  (match t.dir with
  | Some dir ->
      let cursor = replica_cursor_path dir in
      if Sys.file_exists cursor then Sys.remove cursor
  | None -> ());
  Rx_obs.Metrics.(incr (counter t.metrics "repl.promotions"));
  !base

(* --- point-in-time restore --- *)

type restore_report = {
  rst_records : int; (* records replayed (LSN below the cut) *)
  rst_undone : int; (* loser updates rolled back at the cut *)
  rst_losers : int list; (* transactions still open at the cut *)
  rst_stop_lsn : int64; (* the requested cut *)
  rst_new_base : int64; (* the restored database's WAL base *)
}

(* Rebuild the database state as of [to_lsn] (exclusive — pass a durable
   LSN observed earlier; the full history end is the default) into a fresh
   [target] directory, from [source]'s archive generations plus its live
   WAL. The stream is replayed through the normal recovery path, so
   transactions still open at the cut are rolled back exactly as a crash
   at that moment would have. Offline: run against a stopped database (or
   a file-level copy of one). *)
let restore ?page_size ?to_lsn ~source ~target () =
  let source_wal = Filename.concat source "wal.rxlog" in
  if not (Sys.file_exists source_wal) then
    failwith (Printf.sprintf "restore: %s has no WAL" source);
  let metrics = Rx_obs.Metrics.create () in
  let log = Rx_wal.Log_manager.open_file ~metrics source_wal in
  let live_base = Rx_wal.Log_manager.base_lsn log in
  let live_tail = Rx_wal.Log_manager.tail_lsn log in
  let live_records = List.rev (Rx_wal.Log_manager.records_rev log) in
  Rx_wal.Log_manager.close log;
  let to_lsn = Option.value to_lsn ~default:live_tail in
  if Int64.compare to_lsn 0L < 0 || Int64.compare to_lsn live_tail > 0 then
    failwith
      (Printf.sprintf "restore: --to-lsn %Ld is outside the history [0, %Ld]"
         to_lsn live_tail);
  (* stitch the archived generations: they must chain contiguously from
     LSN 0 up to the live WAL's base, or part of the history is gone *)
  let gens = Rx_wal.Archive.generations (archive_path source) in
  let chain =
    List.map (fun (start, path) -> (start, Rx_wal.Archive.load (start, path))) gens
  in
  let archive_end =
    List.fold_left
      (fun at (start, frames) ->
        if Int64.compare start at <> 0 then
          failwith
            (Printf.sprintf
               "restore: archive gap — history ends at LSN %Ld but the next \
                generation starts at %Ld"
               at start);
        Int64.add at (Int64.of_int (String.length frames)))
      0L chain
  in
  if Int64.compare archive_end live_base <> 0 then
    failwith
      (Printf.sprintf
         "restore: incomplete history — the archive ends at LSN %Ld but the \
          live WAL starts at %Ld (was archiving enabled before the first \
          checkpoint?)"
         archive_end live_base);
  let records =
    List.concat_map
      (fun (start, frames) -> Rx_wal.Log_manager.decode_frames ~base:start frames)
      chain
    @ live_records
  in
  let cut = List.filter (fun (lsn, _) -> Int64.compare lsn to_lsn < 0) records in
  (* fresh target: pages materialize from the replayed history alone *)
  let page_size =
    match page_size with
    | Some ps -> ps
    | None ->
        let src_data = Filename.concat source "data.rxdb" in
        if Sys.file_exists src_data then Pager.stored_page_size src_data
        else Pager.default_page_size
  in
  if not (Sys.file_exists target) then Unix.mkdir target 0o755;
  let tgt_data = Filename.concat target "data.rxdb" in
  if Sys.file_exists tgt_data then
    failwith (Printf.sprintf "restore: %s already holds a database" target);
  let tmetrics = Rx_obs.Metrics.create () in
  let pool =
    Buffer_pool.create ~metrics:tmetrics ~capacity:2048
      (Pager.open_file ~metrics:tmetrics ~page_size tgt_data)
  in
  let pager = Buffer_pool.pager pool in
  let max_page =
    List.fold_left
      (fun acc (_, r) ->
        match r with
        | Rx_wal.Log_record.Update { page_no; _ }
        | Rx_wal.Log_record.Clr { page_no; _ } ->
            max acc page_no
        | _ -> acc)
      0 cut
  in
  while Pager.page_count pager <= max_page do
    ignore (Pager.alloc pager)
  done;
  (* Rebuild the history in an in-memory log: the genesis base is 0 and
     LSNs are byte offsets, so re-appending the same records reproduces the
     original LSNs exactly; [Recovery.run] then redoes committed history
     and undoes the transactions the cut left open, exactly as if the
     process had crashed at [to_lsn]. *)
  let mem = Rx_wal.Log_manager.create_in_memory ~metrics:tmetrics () in
  List.iter
    (fun (lsn, r) ->
      let rebuilt = Rx_wal.Log_manager.append mem r in
      if Int64.compare rebuilt lsn <> 0 then
        failwith
          (Printf.sprintf
             "restore: LSN drift at %Ld (rebuilt as %Ld) — frame stream is \
              not the original history"
             lsn rebuilt))
    cut;
  let report = Rx_wal.Recovery.run mem pool in
  Buffer_pool.flush_all pool;
  (* the undo pass appended CLRs/Aborts past the cut, stamping pages with
     LSNs above [to_lsn]; the restored timeline must start above them all
     so future records can never be skipped by a stale page LSN *)
  let new_base = Rx_wal.Log_manager.tail_lsn mem in
  let tgt_log =
    Rx_wal.Log_manager.open_file ~metrics:tmetrics (Filename.concat target "wal.rxlog")
  in
  Rx_wal.Log_manager.reset_base tgt_log new_base;
  Rx_wal.Log_manager.close tgt_log;
  Pager.close pager;
  {
    rst_records = List.length cut;
    rst_undone = report.Rx_wal.Recovery.undone;
    rst_losers = report.Rx_wal.Recovery.losers;
    rst_stop_lsn = to_lsn;
    rst_new_base = new_base;
  }

(* visibility of (table, column, docid) for an optional transaction:
   own staged state first, then the created-timestamp / version-chain
   rule. Returns where to read the document from. *)
let resolve t txn_opt tbl xc ~column ~docid =
  let local =
    match txn_opt with
    | Some txn -> Hashtbl.find_opt txn.locals (tbl.tname, column, docid)
    | None -> None
  in
  match local with
  | Some L_deleted -> `Absent
  | Some (L_staged { m; s; _ }) -> (
      match Rx_txn.Mvcc_store.staged_internal s with
      | Some i -> `Internal (Rx_txn.Mvcc_store.store m, i)
      | None -> `Absent)
  | None -> (
      let snapshot =
        match txn_opt with Some txn -> txn.snapshot | None -> t.commit_ts
      in
      let current_visible =
        Doc_store.mem xc.store ~docid
        &&
        match Hashtbl.find_opt xc.created docid with
        | Some ts -> ts <= snapshot
        | None -> true
      in
      if current_visible then `Main
      else
        match xc.mvcc with
        | None -> `Absent
        | Some m -> (
            match Rx_txn.Mvcc_store.lookup_at m ~snapshot ~docid with
            | `Version i -> `Internal (Rx_txn.Mvcc_store.store m, i)
            | `Tombstone | `Invisible | `Untracked -> `Absent))

(* --- DML --- *)

let insert ?txn t ~table ?(values = []) ?(xml = []) () =
  ensure_writable t;
  let tbl = table_exn t table in
  match txn with
  | None ->
      in_txn t (fun () ->
          let docid = tbl.next_docid in
          tbl.next_docid <- docid + 1;
          (* store the XML column documents first (validated if bound) *)
          List.iter
            (fun (column, src) ->
              let xc = xml_column_exn tbl column in
              Doc_store.insert_tokens xc.store ~docid (parse_column_doc t xc src))
            xml;
          ignore (Base_table.insert tbl.base ~docid (build_row tbl ~values ~xml docid));
          (* a fresh docid cannot conflict with any lock, but concurrent
             snapshots must not see it *)
          if t.active_txns <> [] then begin
            let ts = t.commit_ts + 1 in
            List.iter
              (fun (column, _) ->
                Hashtbl.replace (xml_column_exn tbl column).created docid ts)
              xml;
            t.commit_ts <- ts
          end;
          docid)
  | Some txn ->
      ensure_txn_open txn;
      Rx_txn.Transaction.run_as txn.tx (fun () ->
          let docid = tbl.next_docid in
          tbl.next_docid <- docid + 1;
          acquire t txn (doc_resource tbl docid) Rx_txn.Lock_modes.X;
          let staged_cols =
            List.map
              (fun (column, src) ->
                let xc = xml_column_exn tbl column in
                let tokens = parse_column_doc t xc src in
                let m = ensure_mvcc t xc in
                let s = Rx_txn.Mvcc_store.stage_write m ~docid tokens in
                Hashtbl.replace txn.locals (table, column, docid)
                  (L_staged { m; s; replay = false });
                (column, s))
              xml
          in
          txn.pending <-
            P_insert
              {
                p_table = table;
                p_docid = docid;
                p_row = build_row tbl ~values ~xml docid;
                p_xml = staged_cols;
              }
            :: txn.pending;
          docid)

(* Bulk load: one auto-committed transaction for the whole batch. Cost
   model vs a per-[insert] loop: one table-level X lock instead of one
   document lock each, heap placement that probes the free-space map per
   page instead of per record, index maintenance batched per index, and a
   single WAL flush (one fsync) at commit. *)
let insert_many ?docids t ~table ~column docs =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  match docs with
  | [] -> []
  | _ ->
      let n = List.length docs in
      (* parse (and validate, when a schema is bound) every document before
         any write, so bad input rejects the batch with nothing staged; the
         phase is embarrassingly parallel — each document parses
         independently against the (mutex-interning) shared dictionary —
         and the domain pool raises the lowest-index failure, matching the
         error a sequential pass would report *)
      let parsed =
        let par = effective_parallelism t in
        if par > 1 && n >= 4 then begin
          let arr = Array.of_list docs in
          let out = Array.make n [] in
          let k = min par n in
          Rx_obs.Metrics.add
            (Rx_obs.Metrics.counter t.metrics "exec.parallel_parses") n;
          ignore
            (Rx_util.Domain_pool.run
               (Rx_util.Domain_pool.shared ())
               ~parallelism:par
               (Array.init k (fun c () ->
                    let lo = c * n / k and hi = (c + 1) * n / k in
                    for i = lo to hi - 1 do
                      out.(i) <- parse_column_doc t xc arr.(i)
                    done)));
          Array.to_list out
        end
        else List.map (fun src -> parse_column_doc t xc src) docs
      in
      let ids =
        match docids with
        | None -> List.init n (fun i -> tbl.next_docid + i)
        | Some ids ->
            if List.length ids <> n then
              invalid_arg
                "Database.insert_many: docids/documents length mismatch";
            let seen = Hashtbl.create n in
            List.iter
              (fun d ->
                if Hashtbl.mem seen d then
                  invalid_arg
                    (Printf.sprintf "Database.insert_many: duplicate DocID %d"
                       d);
                Hashtbl.add seen d ();
                if
                  Base_table.fetch_by_docid tbl.base d <> None
                  || Doc_store.mem xc.store ~docid:d
                then
                  invalid_arg
                    (Printf.sprintf
                       "Database.insert_many: DocID %d already exists" d))
              ids;
            ids
      in
      in_txn_as t (fun atx ->
          (* one lock escalation: table-level X instead of per-document *)
          acquire_resource t ~on_self:ignore atx (Rx_txn.Resource.Table tbl.tid)
            Rx_txn.Lock_modes.X;
          let triples =
            Doc_store.insert_tokens_bulk xc.store (List.combine ids parsed)
          in
          (* maintenance batched per index (observers were not fired) *)
          List.iter
            (fun idx ->
              List.iter
                (fun (docid, rid, record) ->
                  Value_index.index_record idx ~docid ~rid ~record
                    ~store:(Some xc.store))
                triples)
            xc.indexes;
          (* retained prior generations stay maintained while a rollback
             to them is possible *)
          List.iter
            (fun (_, gs) ->
              match gs.g_prior with
              | None -> ()
              | Some p ->
                  List.iter
                    (fun (docid, rid, record) ->
                      Value_index.index_record p ~docid ~rid ~record
                        ~store:(Some xc.store))
                    triples)
            xc.gens;
          (* in-flight online builds absorb the batch via their side logs *)
          List.iter
            (fun (_, sl) ->
              List.iter
                (fun (docid, rid, record) ->
                  Index_build.absorb sl ~docid ~rid ~record)
                triples)
            xc.side_logs;
          List.iter
            (fun (_, ti) ->
              List.iter
                (fun (docid, rid, record) ->
                  Rx_fulltext.Text_index.index_record ti ~docid ~rid ~record)
                triples)
            xc.text_indexes;
          ignore
            (Base_table.insert_many tbl.base
               (List.map
                  (fun docid ->
                    (docid, build_row tbl ~values:[] ~xml:[ (column, "") ] docid))
                  ids));
          let maxid = List.fold_left max 0 ids in
          if maxid + 1 > tbl.next_docid then tbl.next_docid <- maxid + 1;
          (* concurrent snapshots must not see the batch *)
          if t.active_txns <> [] then begin
            let ts = t.commit_ts + 1 in
            List.iter (fun docid -> Hashtbl.replace xc.created docid ts) ids;
            t.commit_ts <- ts
          end;
          ids)

let delete ?txn t ~table ~docid =
  ensure_writable t;
  let tbl = table_exn t table in
  match txn with
  | None ->
      in_txn_as t (fun atx ->
          let versioned = t.active_txns <> [] in
          let ts = t.commit_ts + 1 in
          if versioned then
            acquire_resource t ~on_self:ignore atx (doc_resource tbl docid)
              Rx_txn.Lock_modes.X;
          delete_row t tbl ~docid ~ts ~versioned;
          if versioned then t.commit_ts <- ts)
  | Some txn ->
      ensure_txn_open txn;
      Rx_txn.Transaction.run_as txn.tx (fun () ->
          acquire t txn (doc_resource tbl docid) Rx_txn.Lock_modes.X;
          (* deleting a document inserted by this same transaction just
             cancels the staged insert *)
          let own_insert =
            List.exists
              (function
                | P_insert { p_docid; p_table; _ } ->
                    p_docid = docid && p_table = table
                | _ -> false)
              txn.pending
          in
          if own_insert then begin
            txn.pending <-
              List.filter
                (function
                  | P_insert { p_docid; p_table; _ } ->
                      not (p_docid = docid && p_table = table)
                  | _ -> true)
                txn.pending;
            Hashtbl.iter
              (fun (tb, _, d) st ->
                if tb = table && d = docid then
                  match st with
                  | L_staged { m; s; _ } -> Rx_txn.Mvcc_store.abort m [ s ]
                  | L_deleted -> ())
              txn.locals;
            List.iter
              (fun (cname, _) ->
                Hashtbl.replace txn.locals (table, cname, docid) L_deleted)
              tbl.xml_columns
          end
          else begin
            if Base_table.fetch_by_docid tbl.base docid = None then
              invalid_arg (Printf.sprintf "Database: no row with DocID %d" docid);
            (* first-updater-wins: the row's documents must not have been
               replaced since this transaction's snapshot *)
            List.iter
              (fun (_, xc) ->
                match Hashtbl.find_opt xc.created docid with
                | Some ts when ts > txn.snapshot ->
                    failwith
                      (Printf.sprintf
                         "Database: write-write conflict on DocID %d (updated \
                          since transaction began)"
                         docid)
                | _ -> ())
              tbl.xml_columns;
            txn.pending <- P_delete { p_table = table; p_docid = docid } :: txn.pending;
            List.iter
              (fun (cname, _) ->
                Hashtbl.replace txn.locals (table, cname, docid) L_deleted)
              tbl.xml_columns
          end)

let fetch_row t ~table ~docid =
  Base_table.fetch_by_docid (table_exn t table).base docid

let row_count t ~table = Base_table.row_count (table_exn t table).base

let document ?txn t ~table ~column ~docid =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  (match txn with Some txn -> ensure_txn_open txn | None -> ());
  match resolve t txn tbl xc ~column ~docid with
  | `Main -> Doc_store.serialize xc.store ~docid
  | `Internal (ds, i) -> Doc_store.serialize ds ~docid:i
  | `Absent ->
      invalid_arg (Printf.sprintf "Database: no document %d in %s.%s" docid table column)

(* Stage a sub-document statement: lock the node's subtree (which takes IX
   on the document and table), then apply the statement to this
   transaction's private working copy — creating it from the current
   committed version on first touch — and remember it for replay at
   commit. Statements against a document inserted by this same transaction
   edit the staged insert image directly; no replay needed. *)
let stage_subdoc t txn tbl ~table ~column ~docid ~lock_node ~op apply =
  ensure_txn_open txn;
  Rx_txn.Transaction.run_as txn.tx (fun () ->
      let xc = xml_column_exn tbl column in
      acquire t txn (node_resource tbl docid lock_node) Rx_txn.Lock_modes.X;
      match Hashtbl.find_opt txn.locals (table, column, docid) with
      | Some L_deleted ->
          invalid_arg
            (Printf.sprintf "Database: document %d deleted in this transaction" docid)
      | Some (L_staged { m; s; replay }) ->
          let internal =
            match Rx_txn.Mvcc_store.staged_internal s with
            | Some i -> i
            | None -> assert false
          in
          let result = apply (Rx_txn.Mvcc_store.store m) internal in
          if replay then txn.pending <- op :: txn.pending;
          result
      | None ->
          if not (Doc_store.mem xc.store ~docid) then
            invalid_arg
              (Printf.sprintf "Database: no document %d in %s.%s" docid table column);
          (* first-updater-wins: refuse to edit a document whose current
             version postdates this transaction's snapshot *)
          (match Hashtbl.find_opt xc.created docid with
          | Some ts when ts > txn.snapshot ->
              failwith
                (Printf.sprintf
                   "Database: write-write conflict on DocID %d (updated since \
                    transaction began)"
                   docid)
          | _ -> ());
          let m = ensure_mvcc t xc in
          let s =
            Rx_txn.Mvcc_store.stage_write m ~docid (Doc_store.tokens xc.store ~docid)
          in
          Hashtbl.replace txn.locals (table, column, docid)
            (L_staged { m; s; replay = true });
          let internal =
            match Rx_txn.Mvcc_store.staged_internal s with
            | Some i -> i
            | None -> assert false
          in
          let result = apply (Rx_txn.Mvcc_store.store m) internal in
          txn.pending <- op :: txn.pending;
          result)

let subdoc_auto t tbl xc ~docid ~lock_node apply =
  in_txn_as t (fun atx ->
      let versioned = t.active_txns <> [] in
      let ts = t.commit_ts + 1 in
      if versioned then begin
        acquire_resource t ~on_self:ignore atx (node_resource tbl docid lock_node)
          Rx_txn.Lock_modes.X;
        retain_before_change t xc ~docid ~new_ts:ts
      end;
      let result = apply xc.store docid in
      if versioned then begin
        Hashtbl.replace xc.created docid ts;
        t.commit_ts <- ts
      end;
      result)

let update_xml_text ?txn t ~table ~column ~docid node content =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  match txn with
  | None ->
      subdoc_auto t tbl xc ~docid ~lock_node:node (fun ds d ->
          Doc_store.update_text ds ~docid:d (text_target ds ~docid:d node) content)
  | Some txn ->
      stage_subdoc t txn tbl ~table ~column ~docid ~lock_node:node
        ~op:
          (P_update_text
             {
               p_table = table;
               p_column = column;
               p_docid = docid;
               p_node = node;
               p_content = content;
             })
        (fun ds d ->
          Doc_store.update_text ds ~docid:d (text_target ds ~docid:d node) content)

let parse_fragment t fragment =
  (* parse the fragment with a synthetic wrapper, then strip it *)
  let tokens = Parser.parse t.dict ("<rx-fragment>" ^ fragment ^ "</rx-fragment>") in
  match tokens with
  | Token.Start_document :: Token.Start_element _ :: rest ->
      let rec strip acc = function
        | [ Token.End_element; Token.End_document ] -> List.rev acc
        | tok :: rest -> strip (tok :: acc) rest
        | [] -> invalid_arg "Database.insert_xml_fragment: bad fragment"
      in
      strip [] rest
  | _ -> invalid_arg "Database.insert_xml_fragment: bad fragment"

let position_anchor = function
  | Doc_store.Before n | Doc_store.After n | Doc_store.Last_child_of n -> n

let insert_xml_fragment ?txn t ~table ~column ~docid position fragment =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let inner = parse_fragment t fragment in
  match txn with
  | None ->
      subdoc_auto t tbl xc ~docid ~lock_node:(position_anchor position)
        (fun ds d -> Doc_store.insert_fragment ds ~docid:d position inner)
  | Some txn ->
      stage_subdoc t txn tbl ~table ~column ~docid
        ~lock_node:(position_anchor position)
        ~op:
          (P_insert_fragment
             {
               p_table = table;
               p_column = column;
               p_docid = docid;
               p_pos = position;
               p_tokens = inner;
             })
        (fun ds d -> Doc_store.insert_fragment ds ~docid:d position inner)

let delete_xml_node ?txn t ~table ~column ~docid node =
  ensure_writable t;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  match txn with
  | None ->
      subdoc_auto t tbl xc ~docid ~lock_node:node (fun ds d ->
          Doc_store.delete_subtree ds ~docid:d node)
  | Some txn ->
      stage_subdoc t txn tbl ~table ~column ~docid ~lock_node:node
        ~op:
          (P_delete_node
             { p_table = table; p_column = column; p_docid = docid; p_node = node })
        (fun ds d -> Doc_store.delete_subtree ds ~docid:d node)

let xml_handle t ~table ~column ~docid =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  Rx_xqueryrt.Xml_handle.of_stored xc.store ~docid

(* --- queries --- *)

let compile_query ?ns_env t xpath =
  let path = Rx_xpath.Rewrite.simplify (Rx_xpath.Xpath_parser.parse xpath) in
  let query = Rx_quickxscan.Query.compile ?ns_env t.dict path in
  (path, query)

let plan_for ?ns_env t xc xpath =
  let path, query = compile_query ?ns_env t xpath in
  let plan = Planner.plan ~indexes:xc.indexes ~query:path in
  let kind =
    match plan with
    | Planner.Full_scan -> "planner.plans_fullscan"
    | Planner.Index_access { granularity = Planner.Docid_level; _ } ->
        "planner.plans_docid"
    | Planner.Index_access { granularity = Planner.Nodeid_level _; _ } ->
        "planner.plans_nodeid"
  in
  Rx_obs.Metrics.(incr (counter t.metrics kind));
  (path, query, plan)

let plan_info_of plan =
  {
    description = Planner.describe plan;
    uses_index = (match plan with Planner.Full_scan -> false | _ -> true);
    exact = (match plan with Planner.Index_access { exact; _ } -> exact | _ -> false);
  }

let explain ?ns_env t ~table ~column ~xpath =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let _, _, plan = plan_for ?ns_env t xc xpath in
  plan_info_of plan

(* --- prepared queries and the plan cache --- *)

(* cache keys must not depend on binding order or shadowed (repeated)
   prefixes: keep the first binding of each prefix, then sort *)
let canonical_ns ns_env =
  let seen = Hashtbl.create 8 in
  List.sort compare
    (List.filter
       (fun (prefix, _) ->
         if Hashtbl.mem seen prefix then false
         else begin
           Hashtbl.add seen prefix ();
           true
         end)
       ns_env)

let prepare ?(ns_env = []) t ~table ~column ~xpath =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let ns = canonical_ns ns_env in
  let key = (table, column, xpath, ns) in
  match Rx_util.Lru.find t.plan_cache key with
  | Some p when p.p_epoch = t.ddl_epoch ->
      Rx_obs.Metrics.(incr (counter t.metrics "plancache.hits"));
      p
  | found ->
      Rx_obs.Metrics.(
        incr
          (counter t.metrics
             (match found with
             | None -> "plancache.misses"
             | Some _ -> "plancache.invalidations")));
      Rx_obs.Trace.with_span t.tracer "db.prepare"
        ~attrs:[ ("table", table); ("column", column); ("xpath", xpath) ]
        (fun () ->
          let _, query, plan = plan_for ~ns_env:ns t xc xpath in
          let p =
            {
              p_table = table;
              p_column = column;
              p_xpath = xpath;
              p_ns_env = ns;
              p_query = query;
              p_plan = plan;
              p_info = plan_info_of plan;
              p_epoch = t.ddl_epoch;
              p_ev = None;
            }
          in
          ignore (Rx_util.Lru.put t.plan_cache key p);
          p)

module Prepared = struct
  let table p = p.p_table
  let column p = p.p_column
  let xpath p = p.p_xpath
  let ns_env p = p.p_ns_env
  let plan p = p.p_info
end

let column_docids tbl column =
  let ci =
    match Base_table.column_index tbl.base column with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Database: no column %s" column)
  in
  let acc = ref [] in
  Base_table.iter
    (fun _ row ->
      match row.(ci) with Value.Xml_ref d -> acc := d :: !acc | _ -> ())
    tbl.base;
  List.rev !acc

let serialize_from t ds ~docid node =
  let tokens = ref [] in
  Doc_store.subtree_events ds ~docid node (fun e ->
      tokens := e.Doc_store.token :: !tokens);
  Serializer.to_string t.dict (List.rev !tokens)

let serialize_match t xc m = serialize_from t xc.store ~docid:m.docid m.node

(* candidate docids for a snapshot read: current rows, version-tracked
   documents (which may be deleted from the base table but still visible
   to this snapshot), and this transaction's own staged writes *)
let txn_candidate_docids txn tbl ~column xc =
  let seen = Hashtbl.create 64 in
  let add d = if not (Hashtbl.mem seen d) then Hashtbl.replace seen d () in
  let ci = Base_table.column_index tbl.base column in
  (match ci with
  | None -> invalid_arg (Printf.sprintf "Database: no column %s" column)
  | Some ci ->
      Base_table.iter
        (fun _ row ->
          match row.(ci) with Value.Xml_ref d -> add d | _ -> ())
        tbl.base);
  (match xc.mvcc with
  | Some m -> Rx_txn.Mvcc_store.iter_tracked m add
  | None -> ());
  Hashtbl.iter
    (fun (tb, col, d) _ -> if tb = tbl.tname && col = column then add d)
    txn.locals;
  List.sort compare (Hashtbl.fold (fun d () acc -> d :: acc) seen [])

(* a transaction's reads bypass the planner: value indexes describe the
   current committed state, not this snapshot, so every query scans the
   snapshot-visible document set with QuickXScan *)
let run_in_txn ?ns_env t txn ~table ~column ~xpath =
  ensure_txn_open txn;
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let before = Rx_obs.Metrics.snapshot t.metrics in
  let query =
    (* the plan cache only holds the compiled query here (snapshot reads
       never use indexes), but a plan compiled while a staged [DROP XML
       INDEX] is pending in this very transaction must not be cached or
       served: compile fresh instead *)
    if txn_staged_drop txn ~table ~column then snd (compile_query ?ns_env t xpath)
    else (prepare ?ns_env t ~table ~column ~xpath).p_query
  in
  let matches =
    Rx_obs.Trace.with_span t.tracer "db.query"
      ~attrs:[ ("table", table); ("column", column); ("xpath", xpath) ]
      (fun () ->
        (* snapshot resolution touches txn-local state (staged writes, MVCC
           chains), so it happens here on the caller; only the pure
           QuickXScan evaluation fans out to domains *)
        let resolved =
          List.filter_map
            (fun docid ->
              match resolve t (Some txn) tbl xc ~column ~docid with
              | `Main -> Some (docid, xc.store, docid)
              | `Internal (ds, i) -> Some (docid, ds, i)
              | `Absent -> None)
            (txn_candidate_docids txn tbl ~column xc)
        in
        let par = effective_parallelism t in
        if
          par > 1
          && List.length resolved > 1
          && Doc_store.data_page_count xc.store
             >= t.config.parallel_scan_min_pages
        then begin
          let arr = Array.of_list resolved in
          let k = min par (Array.length arr) in
          Rx_obs.Metrics.incr
            (Rx_obs.Metrics.counter t.metrics "exec.parallel_scans");
          Rx_obs.Metrics.add
            (Rx_obs.Metrics.counter t.metrics "exec.parallel_chunks") k;
          let per_doc =
            Executor.eval_partitioned
              ~pool:(Rx_util.Domain_pool.shared ())
              ~parallelism:par query
              (Array.map (fun (_, store, d) -> (store, d)) arr)
          in
          List.concat
            (Array.to_list
               (Array.mapi
                  (fun i nodes ->
                    let docid, _, _ = arr.(i) in
                    List.map (fun node -> { docid; node }) nodes)
                  per_doc))
        end
        else
          List.concat_map
            (fun (docid, store, scan_docid) ->
              List.map
                (fun node -> { docid; node })
                (Executor.eval_stored query store ~docid:scan_docid))
            resolved)
  in
  let after = Rx_obs.Metrics.snapshot t.metrics in
  {
    matches;
    plan =
      { description = "SNAPSHOT-SCAN(QuickXScan)"; uses_index = false; exact = false };
    serialize =
      (fun m ->
        match resolve t (Some txn) tbl xc ~column ~docid:m.docid with
        | `Main -> serialize_match t xc m
        | `Internal (ds, i) -> serialize_from t ds ~docid:i m.node
        | `Absent ->
            invalid_arg
              (Printf.sprintf "Database: no document %d in %s.%s" m.docid table column));
    profile = Rx_obs.Metrics.diff ~before ~after;
  }

(* execute a prepared query's stored plan; the QuickXScan machine is built
   once and reset between documents, so the scan loop allocates per match,
   not per node *)
let exec_prepared t (p : prepared) =
  let table = p.p_table and column = p.p_column in
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let before = Rx_obs.Metrics.snapshot t.metrics in
  let plan = p.p_plan in
  let c_candidates = Rx_obs.Metrics.counter t.metrics "exec.index_candidates" in
  let c_filtered = Rx_obs.Metrics.counter t.metrics "exec.reeval_filtered" in
  let ev =
    match p.p_ev with
    | Some ev -> ev
    | None ->
        let ev = Executor.evaluator xc.store p.p_query in
        p.p_ev <- Some ev;
        ev
  in
  let par = effective_parallelism t in
  let scan_docs docids =
    match docids with
    | [] -> []
    | [ docid ] ->
        List.map (fun node -> { docid; node }) (Executor.eval_with ev ~docid)
    | _
      when par > 1
           && Doc_store.data_page_count xc.store
              >= t.config.parallel_scan_min_pages ->
        (* table is big enough to pay for domains: partition the docid list
           into contiguous chunks and splice the per-document results back
           in order (chunks are contiguous, so this IS document order) *)
        let arr = Array.of_list docids in
        let k = min par (Array.length arr) in
        Rx_obs.Metrics.incr
          (Rx_obs.Metrics.counter t.metrics "exec.parallel_scans");
        Rx_obs.Metrics.add
          (Rx_obs.Metrics.counter t.metrics "exec.parallel_chunks") k;
        let per_doc =
          Executor.eval_partitioned
            ~pool:(Rx_util.Domain_pool.shared ())
            ~parallelism:par p.p_query
            (Array.map (fun d -> (xc.store, d)) arr)
        in
        List.concat
          (Array.to_list
             (Array.mapi
                (fun i nodes ->
                  List.map (fun node -> { docid = arr.(i); node }) nodes)
                per_doc))
    | _ ->
        List.concat_map
          (fun docid ->
            List.map (fun node -> { docid; node }) (Executor.eval_with ev ~docid))
          docids
  in
  let matches =
    Rx_obs.Trace.with_span t.tracer "db.query"
      ~attrs:[ ("table", table); ("column", column); ("xpath", p.p_xpath) ]
      (fun () ->
        match plan with
        | Planner.Full_scan -> scan_docs (column_docids tbl column)
        | Planner.Index_access { exact; _ } -> (
            match Planner.execute_candidates ~indexes:xc.indexes plan with
            | `All -> scan_docs (column_docids tbl column)
            | `Docids docids ->
                Rx_obs.Metrics.add c_candidates (List.length docids);
                let ms = scan_docs docids in
                let surviving =
                  List.sort_uniq compare (List.map (fun m -> m.docid) ms)
                in
                Rx_obs.Metrics.add c_filtered
                  (max 0 (List.length docids - List.length surviving));
                ms
            | `Anchors anchors ->
                Rx_obs.Metrics.add c_candidates (List.length anchors);
                if exact then
                  List.map (fun (docid, node) -> { docid; node }) anchors
                else begin
                  let ms =
                    scan_docs
                      (List.sort_uniq compare (List.map fst anchors))
                  in
                  Rx_obs.Metrics.add c_filtered
                    (max 0 (List.length anchors - List.length ms));
                  ms
                end))
  in
  let after = Rx_obs.Metrics.snapshot t.metrics in
  {
    matches;
    plan = p.p_info;
    serialize = serialize_match t xc;
    profile = Rx_obs.Metrics.diff ~before ~after;
  }

(* a read that exhausts the buffer pool (every frame pinned) surfaces as
   [Busy] — retryable backpressure, not an engine failure *)
let pool_guard f =
  try f ()
  with Buffer_pool.Pool_exhausted _ -> raise (Busy { txid = 0; blockers = [] })

let run ?ns_env ?txn t ~table ~column ~xpath =
  pool_guard (fun () ->
      match txn with
      | Some txn -> run_in_txn ?ns_env t txn ~table ~column ~xpath
      | None -> exec_prepared t (prepare ?ns_env t ~table ~column ~xpath))

let run_prepared ?txn t p =
  pool_guard (fun () ->
      match txn with
      | Some txn ->
          run_in_txn ~ns_env:p.p_ns_env t txn ~table:p.p_table ~column:p.p_column
            ~xpath:p.p_xpath
      | None ->
          (* a handle compiled before a DDL change transparently re-prepares
             (cheap when the cache already holds the recompiled plan) *)
          let p =
            if p.p_epoch = t.ddl_epoch then p
            else
              prepare ~ns_env:p.p_ns_env t ~table:p.p_table ~column:p.p_column
                ~xpath:p.p_xpath
          in
          exec_prepared t p)

(* --- streamed result cursors --- *)

(* A cursor is the lazy half of a [result] kept alive across calls: the
   match list (docid + node id per match — small) is computed eagerly by
   the underlying query, but serialization — the part that turns a match
   into an arbitrarily large XML string — is deferred and paid chunk by
   chunk in [cursor_next]. A result set whose serialized form is hundreds
   of megabytes therefore crosses any consumer (the rxd wire protocol in
   particular) in bounded-memory chunks. *)
type cursor = {
  cur_plan : plan_info;
  cur_serialize : match_ -> string;
  mutable cur_rest : match_ list;
  mutable cur_peek : (int * string) option;
      (* a serialized row that did not fit its chunk's budget, carried
         over so it is not serialized twice *)
  mutable cur_served : int;
  mutable cur_open : bool;
}

let cursor_of_result (r : result) =
  {
    cur_plan = r.plan;
    cur_serialize = r.serialize;
    cur_rest = r.matches;
    cur_peek = None;
    cur_served = 0;
    cur_open = true;
  }

let open_cursor ?ns_env ?txn t ~table ~column ~xpath =
  cursor_of_result (run ?ns_env ?txn t ~table ~column ~xpath)

let cursor_plan c = c.cur_plan

let cursor_remaining c =
  List.length c.cur_rest + match c.cur_peek with Some _ -> 1 | None -> 0

let cursor_served c = c.cur_served

let cursor_next ?(max_bytes = 256 * 1024) c =
  if not c.cur_open then invalid_arg "Database: cursor is closed";
  if max_bytes <= 0 then invalid_arg "Database: cursor max_bytes must be positive";
  pool_guard (fun () ->
      let next_row () =
        match c.cur_peek with
        | Some row ->
            c.cur_peek <- None;
            Some row
        | None -> (
            match c.cur_rest with
            | [] -> None
            | m :: rest ->
                c.cur_rest <- rest;
                Some (m.docid, c.cur_serialize m))
      in
      (* at least one row per chunk — a single oversized document still
         streams, as one chunk of its own size — but a later row that
         would overshoot the budget is carried to the next chunk, so a
         chunk never exceeds [max_bytes] by more than its last in-budget
         row's slack *)
      let rec take acc bytes =
        match next_row () with
        | None -> List.rev acc
        | Some ((_, s) as row) ->
            let bytes = bytes + String.length s + 16 in
            if acc <> [] && bytes > max_bytes then begin
              c.cur_peek <- Some row;
              List.rev acc
            end
            else if bytes >= max_bytes then List.rev (row :: acc)
            else take (row :: acc) bytes
      in
      let chunk = take [] 0 in
      c.cur_served <- c.cur_served + List.length chunk;
      chunk)

let cursor_close c =
  c.cur_open <- false;
  c.cur_peek <- None;
  c.cur_rest <- []

(* --- error surface --- *)

let error_to_string = function
  | Busy { txid; blockers } ->
      Some
        (Printf.sprintf "busy: transaction %d blocked by [%s]" txid
           (String.concat "; " (List.map string_of_int blockers)))
  | Read_only { reason } -> Some (Printf.sprintf "read-only: %s" reason)
  | Unknown_index { kind; name } ->
      Some
        (Printf.sprintf "unknown %s: %s"
           (match kind with
           | `Table -> "table"
           | `Column -> "column"
           | `Index -> "index")
           name)
  | Rx_txn.Lock_manager.Deadlock { victim; cycle } ->
      Some
        (Printf.sprintf "deadlock: victim %d in cycle [%s]" victim
           (String.concat " -> " (List.map string_of_int cycle)))
  | Pager.Corrupt_page { page_no; _ } ->
      Some (Printf.sprintf "corrupt page %d (checksum mismatch)" page_no)
  | Rx_wal.Log_manager.Corrupt_record { lsn } ->
      Some (Printf.sprintf "corrupt WAL record at LSN %Ld" lsn)
  | _ -> None

(* One classification shared by the [rx] exit codes and the rxd wire
   status codes (the stable error table in DESIGN.md):
     1 application error  2 unexpected  3 busy  4 deadlock
     5 read-only          6 corruption *)
let error_code = function
  | Busy _ -> 3
  | Rx_txn.Lock_manager.Deadlock _ -> 4
  | Read_only _ -> 5
  | Pager.Corrupt_page _ | Rx_wal.Log_manager.Corrupt_record _ -> 6
  | Invalid_argument _ | Failure _ | Unknown_index _ -> 1
  | Rx_xml.Parser.Parse_error _ | Rx_schema.Validator.Validation_error _ -> 1
  | _ -> 2

let error_message e =
  match error_to_string e with
  | Some msg -> msg
  | None -> (
      match e with
      | Invalid_argument msg | Failure msg -> msg
      | Rx_xml.Parser.Parse_error _ ->
          Option.get (Rx_xml.Parser.error_message e)
      | Rx_schema.Validator.Validation_error _ ->
          Option.get (Rx_schema.Validator.error_message e)
      | e -> Printexc.to_string e)

(* --- stats --- *)

type stats = {
  tables : int;
  documents : int;
  xml_records : int;
  node_index_entries : int;
  value_index_entries : int;
  data_pages : int;
  log_bytes : int;
}

let stats (t : t) =
  let documents = ref 0
  and xml_records = ref 0
  and node_entries = ref 0
  and value_entries = ref 0
  and data_pages = ref 0 in
  List.iter
    (fun (_, tbl) ->
      List.iter
        (fun (_, xc) ->
          let s = Doc_store.stats xc.store in
          documents := !documents + s.Doc_store.documents;
          xml_records := !xml_records + s.Doc_store.records;
          node_entries := !node_entries + s.Doc_store.index_entries;
          data_pages := !data_pages + s.Doc_store.data_pages;
          List.iter
            (fun idx -> value_entries := !value_entries + Value_index.entry_count idx)
            xc.indexes)
        tbl.xml_columns)
    t.tables;
  let s =
    {
      tables = List.length t.tables;
      documents = !documents;
      xml_records = !xml_records;
      node_index_entries = !node_entries;
      value_index_entries = !value_entries;
      data_pages = !data_pages;
      log_bytes = Rx_wal.Log_manager.appended_bytes t.log;
    }
  in
  (* mirror the structural numbers as registry gauges so [rx stats] and the
     JSON renderer expose one unified surface *)
  let g name v = Rx_obs.Metrics.(set (gauge t.metrics name) v) in
  g "db.tables" s.tables;
  g "db.documents" s.documents;
  g "db.xml_records" s.xml_records;
  g "db.node_index_entries" s.node_index_entries;
  g "db.value_index_entries" s.value_index_entries;
  g "db.data_pages" s.data_pages;
  g "db.log_bytes" s.log_bytes;
  s

let column_store t ~table ~column =
  (xml_column_exn (table_exn t table) column).store
