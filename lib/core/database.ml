open Rx_storage
open Rx_xml
open Rx_xmlstore
open Rx_relational
open Rx_xindex

type xml_column = {
  store : Doc_store.t;
  mutable indexes : Value_index.t list;
  mutable text_indexes : (string * Rx_fulltext.Text_index.t) list;
  mutable schema : Rx_schema.Compiled.t option;
  mutable schema_name : string option;
}

type table = {
  tname : string;
  base : Base_table.t;
  xml_columns : (string * xml_column) list;
  mutable next_docid : int;
}

type t = {
  pool : Buffer_pool.t;
  log : Rx_wal.Log_manager.t;
  dict : Name_dict.t;
  txn_mgr : Rx_txn.Transaction.manager;
  catalog : Catalog.t;
  record_threshold : int;
  metrics : Rx_obs.Metrics.t;
  tracer : Rx_obs.Trace.t;
  mutable tables : (string * table) list;
  mutable schemas : (string * Rx_schema.Compiled.t) list;
}

type match_ = { docid : int; node : Node_id.t }

type plan_info = { description : string; uses_index : bool; exact : bool }

type result = {
  matches : match_ list;
  plan : plan_info;
  serialize : match_ -> string;
  profile : (string * int) list;
}

(* --- lifecycle --- *)

let install_txn pool log =
  let mgr = Rx_txn.Transaction.create_manager ~log ~pool () in
  Rx_txn.Transaction.install_journal mgr;
  mgr

let create_in_memory ?page_size ?(record_threshold = 2048) () =
  let metrics = Rx_obs.Metrics.create () in
  let pool =
    Buffer_pool.create ~metrics ~capacity:2048
      (Pager.create_in_memory ~metrics ?page_size ())
  in
  let log = Rx_wal.Log_manager.create_in_memory ~metrics () in
  let txn_mgr = install_txn pool log in
  let catalog = Catalog.create pool in
  {
    pool;
    log;
    dict = Name_dict.create ();
    txn_mgr;
    catalog;
    record_threshold;
    metrics;
    tracer = Rx_obs.Trace.create ();
    tables = [];
    schemas = [];
  }

let in_txn t f =
  let txn = Rx_txn.Transaction.begin_txn t.txn_mgr in
  match Rx_txn.Transaction.run_as txn f with
  | result ->
      ignore (Rx_txn.Transaction.commit txn);
      result
  | exception e ->
      ignore (Rx_txn.Transaction.abort txn);
      raise e

let dict t = t.dict
let buffer_pool t = t.pool
let metrics t = t.metrics
let tracer t = t.tracer

let find_table t name = List.assoc_opt name t.tables

let table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Database: no table %s" name)

let xml_column_exn tbl column =
  match List.assoc_opt column tbl.xml_columns with
  | Some xc -> xc
  | None ->
      invalid_arg (Printf.sprintf "Database: %s has no XML column %s" tbl.tname column)

(* --- catalog persistence --- *)

let catalog_entries t =
  let dict_entry = Catalog.Dictionary (Name_dict.to_list t.dict) in
  let table_entries =
    List.concat_map
      (fun (name, tbl) ->
        Catalog.Table
          {
            name;
            columns = Array.to_list (Base_table.columns tbl.base);
            heap_header = Base_table.heap_header tbl.base;
            docid_index_meta = Base_table.docid_index_meta tbl.base;
            next_docid = tbl.next_docid;
          }
        :: List.concat_map
             (fun (cname, xc) ->
               Catalog.Xml_column
                 {
                   table = name;
                   column = cname;
                   heap_header = Doc_store.heap_header xc.store;
                   node_index_meta = Doc_store.index_meta xc.store;
                 }
               :: (match xc.schema_name with
                  | Some schema ->
                      [ Catalog.Schema_binding { table = name; column = cname; schema } ]
                  | None -> [])
               @ List.map
                   (fun idx ->
                     let def = Value_index.def idx in
                     Catalog.Xml_index
                       {
                         table = name;
                         column = cname;
                         name = def.Index_def.name;
                         path = Rx_xpath.Ast.to_string def.Index_def.path;
                         key_type =
                           Index_def.key_type_to_string def.Index_def.key_type;
                         tree_meta = Value_index.meta_page idx;
                       })
                   xc.indexes
               @ List.map
                   (fun (iname, ti) ->
                     Catalog.Text_index
                       {
                         table = name;
                         column = cname;
                         name = iname;
                         tree_meta = Rx_fulltext.Text_index.meta_page ti;
                       })
                   xc.text_indexes)
             tbl.xml_columns)
      t.tables
  in
  let schema_entries =
    List.map
      (fun (name, compiled) ->
        Catalog.Schema { name; binary = Rx_schema.Compiled.encode compiled })
      t.schemas
  in
  (dict_entry :: schema_entries) @ table_entries

let save_catalog t = in_txn t (fun () -> Catalog.save t.catalog (catalog_entries t))

let checkpoint t =
  save_catalog t;
  Rx_wal.Recovery.checkpoint t.log t.pool

let close t =
  checkpoint t;
  Pager.close (Buffer_pool.pager t.pool)

let open_dir ?page_size ?(record_threshold = 2048) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let data = Filename.concat dir "data.rxdb" in
  let wal = Filename.concat dir "wal.rxlog" in
  let fresh = not (Sys.file_exists data) in
  let metrics = Rx_obs.Metrics.create () in
  let tracer = Rx_obs.Trace.create () in
  let pool =
    Buffer_pool.create ~metrics ~capacity:2048 (Pager.open_file ~metrics ?page_size data)
  in
  let log = Rx_wal.Log_manager.open_file ~metrics wal in
  if not fresh then ignore (Rx_wal.Recovery.run log pool);
  let txn_mgr = install_txn pool log in
  if fresh then begin
    let catalog = Catalog.create pool in
    {
      pool;
      log;
      dict = Name_dict.create ();
      txn_mgr;
      catalog;
      record_threshold;
      metrics;
      tracer;
      tables = [];
      schemas = [];
    }
  end
  else begin
    (* the catalog heap is always the first structure created: its header
       page is page 1 *)
    let catalog = Catalog.attach pool ~header_page:1 in
    let entries = Catalog.entries catalog in
    let dict =
      match
        List.find_map
          (function Catalog.Dictionary d -> Some d | _ -> None)
          entries
      with
      | Some d -> Name_dict.restore d
      | None -> Name_dict.create ()
    in
    let schemas =
      List.filter_map
        (function
          | Catalog.Schema { name; binary } ->
              Some (name, Rx_schema.Compiled.decode binary)
          | _ -> None)
        entries
    in
    let t =
      {
        pool;
        log;
        dict;
        txn_mgr;
        catalog;
        record_threshold;
        metrics;
        tracer;
        tables = [];
        schemas;
      }
    in
    (* rebuild tables *)
    let tables =
      List.filter_map
        (function
          | Catalog.Table { name; columns; heap_header; docid_index_meta; next_docid }
            ->
              let base =
                Base_table.attach pool ~columns:(Array.of_list columns) ~heap_header
                  ~docid_index_meta
              in
              let xml_columns =
                List.filter_map
                  (function
                    | Catalog.Xml_column
                        { table; column; heap_header; node_index_meta }
                      when table = name ->
                        let store =
                          Doc_store.attach ~record_threshold pool dict
                            ~heap_header ~index_meta:node_index_meta
                        in
                        Some (column, { store; indexes = []; text_indexes = []; schema = None; schema_name = None })
                    | _ -> None)
                  entries
              in
              Some (name, { tname = name; base; xml_columns; next_docid })
          | _ -> None)
        entries
    in
    t.tables <- tables;
    (* value indexes and schema bindings *)
    List.iter
      (function
        | Catalog.Xml_index { table; column; name; path; key_type; tree_meta } -> (
            match find_table t table with
            | Some tbl ->
                let xc = xml_column_exn tbl column in
                let key_type =
                  match Index_def.key_type_of_string key_type with
                  | Some kt -> kt
                  | None -> invalid_arg "Database: bad key type in catalog"
                in
                let def = Index_def.make ~name ~path ~key_type in
                let idx = Value_index.attach pool dict def ~meta_page:tree_meta in
                Value_index.hook idx xc.store;
                xc.indexes <- xc.indexes @ [ idx ]
            | None -> ())
        | Catalog.Text_index { table; column; name; tree_meta } -> (
            match find_table t table with
            | Some tbl ->
                let xc = xml_column_exn tbl column in
                let ti = Rx_fulltext.Text_index.attach pool ~meta_page:tree_meta in
                Rx_fulltext.Text_index.hook ti xc.store;
                xc.text_indexes <- xc.text_indexes @ [ (name, ti) ]
            | None -> ())
        | Catalog.Schema_binding { table; column; schema } -> (
            match (find_table t table, List.assoc_opt schema t.schemas) with
            | Some tbl, Some compiled ->
                let xc = xml_column_exn tbl column in
                xc.schema <- Some compiled;
                xc.schema_name <- Some schema
            | _ -> ())
        | _ -> ())
      entries;
    t
  end

(* --- DDL --- *)

let create_table t ~name ~columns =
  if find_table t name <> None then
    invalid_arg (Printf.sprintf "Database: table %s already exists" name);
  if columns = [] then invalid_arg "Database: a table needs at least one column";
  in_txn t (fun () ->
      let base = Base_table.create t.pool ~columns:(Array.of_list columns) in
      let xml_columns =
        List.filter_map
          (fun (cname, ty) ->
            if ty = Value.T_xml then
              Some
                ( cname,
                  {
                    store =
                      Doc_store.create ~record_threshold:t.record_threshold t.pool
                        t.dict;
                    indexes = [];
                    text_indexes = [];
                    schema = None;
                    schema_name = None;
                  } )
            else None)
          columns
      in
      let tbl = { tname = name; base; xml_columns; next_docid = 1 } in
      t.tables <- t.tables @ [ (name, tbl) ];
      tbl)

let table = find_table
let list_tables t = List.map fst t.tables

let register_schema t ~name ~xsd =
  let model = Rx_schema.Schema_model.parse_xsd t.dict xsd in
  let compiled = Rx_schema.Compiled.compile t.dict model in
  t.schemas <- (name, compiled) :: List.remove_assoc name t.schemas

let bind_schema t ~table ~column ~schema =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  match List.assoc_opt schema t.schemas with
  | Some compiled ->
      xc.schema <- Some compiled;
      xc.schema_name <- Some schema
  | None -> invalid_arg (Printf.sprintf "Database: no schema %s" schema)

let create_xml_index t ~table ~column ~name ~path ~key_type =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  if
    List.exists
      (fun idx -> (Value_index.def idx).Index_def.name = name)
      xc.indexes
  then invalid_arg (Printf.sprintf "Database: index %s already exists" name);
  let def = Index_def.make ~name ~path ~key_type in
  in_txn t (fun () ->
      let idx = Value_index.create t.pool t.dict def in
      (* backfill over existing documents, record by record (§3.2) *)
      Base_table.iter
        (fun docid _ ->
          if Doc_store.mem xc.store ~docid then
            Doc_store.iter_records xc.store ~docid (fun ~rid ~record ->
                Value_index.index_record idx ~docid ~rid ~record
                  ~store:(Some xc.store)))
        tbl.base;
      Value_index.hook idx xc.store;
      xc.indexes <- xc.indexes @ [ idx ])

let list_xml_indexes t ~table ~column =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  List.map (fun idx -> (Value_index.def idx).Index_def.name) xc.indexes

let create_text_index t ~table ~column ~name =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  if List.mem_assoc name xc.text_indexes then
    invalid_arg (Printf.sprintf "Database: text index %s already exists" name);
  in_txn t (fun () ->
      let ti = Rx_fulltext.Text_index.create t.pool in
      Base_table.iter
        (fun docid _ ->
          if Doc_store.mem xc.store ~docid then
            Doc_store.iter_records xc.store ~docid (fun ~rid ~record ->
                Rx_fulltext.Text_index.index_record ti ~docid ~rid ~record))
        tbl.base;
      Rx_fulltext.Text_index.hook ti xc.store;
      xc.text_indexes <- xc.text_indexes @ [ (name, ti) ])

let text_index_exn xc =
  match xc.text_indexes with
  | (_, ti) :: _ -> ti
  | [] -> invalid_arg "Database: column has no text index"

let text_search t ~table ~column ?(mode = `All) query =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let ti = text_index_exn xc in
  let terms = Rx_fulltext.Text_index.tokenize query in
  match mode with
  | `All -> Rx_fulltext.Text_index.docs_with_all ti ~terms
  | `Any -> Rx_fulltext.Text_index.docs_with_any ti ~terms

let text_score t ~table ~column ~docid query =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let ti = text_index_exn xc in
  List.fold_left
    (fun acc term -> acc + Rx_fulltext.Text_index.doc_term_count ti ~term ~docid)
    0
    (List.sort_uniq compare (Rx_fulltext.Text_index.tokenize query))

(* --- DML --- *)

let insert t ~table ?(values = []) ?(xml = []) () =
  let tbl = table_exn t table in
  in_txn t (fun () ->
      let docid = tbl.next_docid in
      tbl.next_docid <- docid + 1;
      (* store the XML column documents first (validated if bound) *)
      List.iter
        (fun (column, src) ->
          let xc = xml_column_exn tbl column in
          let tokens =
            match xc.schema with
            | Some compiled -> Rx_schema.Validator.validate_document compiled t.dict src
            | None -> Parser.parse t.dict src
          in
          Doc_store.insert_tokens xc.store ~docid tokens)
        xml;
      let row =
        Array.map
          (fun (cname, ty) ->
            if ty = Value.T_xml then
              if List.mem_assoc cname xml then Value.Xml_ref docid else Value.Null
            else
              match List.assoc_opt cname values with
              | Some v -> v
              | None -> Value.Null)
          (Base_table.columns tbl.base)
      in
      ignore (Base_table.insert tbl.base ~docid row);
      docid)

let delete t ~table ~docid =
  let tbl = table_exn t table in
  in_txn t (fun () ->
      (match Base_table.fetch_by_docid tbl.base docid with
      | None -> invalid_arg (Printf.sprintf "Database: no row with DocID %d" docid)
      | Some row ->
          Array.iteri
            (fun i v ->
              match v with
              | Value.Xml_ref d ->
                  let cname, _ = (Base_table.columns tbl.base).(i) in
                  let xc = xml_column_exn tbl cname in
                  Doc_store.delete_document xc.store ~docid:d
              | _ -> ())
            row);
      ignore (Base_table.delete_by_docid tbl.base docid))

let fetch_row t ~table ~docid =
  Base_table.fetch_by_docid (table_exn t table).base docid

let row_count t ~table = Base_table.row_count (table_exn t table).base

let document t ~table ~column ~docid =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  Doc_store.serialize xc.store ~docid

let update_xml_text t ~table ~column ~docid node content =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  in_txn t (fun () -> Doc_store.update_text xc.store ~docid node content)

let insert_xml_fragment t ~table ~column ~docid position fragment =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  (* parse the fragment with a synthetic wrapper, then strip it *)
  let tokens = Parser.parse t.dict ("<rx-fragment>" ^ fragment ^ "</rx-fragment>") in
  let inner =
    match tokens with
    | Token.Start_document :: Token.Start_element _ :: rest ->
        let rec strip acc = function
          | [ Token.End_element; Token.End_document ] -> List.rev acc
          | tok :: rest -> strip (tok :: acc) rest
          | [] -> invalid_arg "Database.insert_xml_fragment: bad fragment"
        in
        strip [] rest
    | _ -> invalid_arg "Database.insert_xml_fragment: bad fragment"
  in
  in_txn t (fun () -> Doc_store.insert_fragment xc.store ~docid position inner)

let delete_xml_node t ~table ~column ~docid node =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  in_txn t (fun () -> Doc_store.delete_subtree xc.store ~docid node)

let xml_handle t ~table ~column ~docid =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  Rx_xqueryrt.Xml_handle.of_stored xc.store ~docid

(* --- queries --- *)

let compile_query ?ns_env t xpath =
  let path = Rx_xpath.Rewrite.simplify (Rx_xpath.Xpath_parser.parse xpath) in
  let query = Rx_quickxscan.Query.compile ?ns_env t.dict path in
  (path, query)

let plan_for ?ns_env t xc xpath =
  let path, query = compile_query ?ns_env t xpath in
  let plan = Planner.plan ~indexes:xc.indexes ~query:path in
  let kind =
    match plan with
    | Planner.Full_scan -> "planner.plans_fullscan"
    | Planner.Index_access { granularity = Planner.Docid_level; _ } ->
        "planner.plans_docid"
    | Planner.Index_access { granularity = Planner.Nodeid_level _; _ } ->
        "planner.plans_nodeid"
  in
  Rx_obs.Metrics.(incr (counter t.metrics kind));
  (path, query, plan)

let plan_info_of plan =
  {
    description = Planner.describe plan;
    uses_index = (match plan with Planner.Full_scan -> false | _ -> true);
    exact = (match plan with Planner.Index_access { exact; _ } -> exact | _ -> false);
  }

let explain ?ns_env t ~table ~column ~xpath =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let _, _, plan = plan_for ?ns_env t xc xpath in
  plan_info_of plan

let column_docids tbl column =
  let ci =
    match Base_table.column_index tbl.base column with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Database: no column %s" column)
  in
  let acc = ref [] in
  Base_table.iter
    (fun _ row ->
      match row.(ci) with Value.Xml_ref d -> acc := d :: !acc | _ -> ())
    tbl.base;
  List.rev !acc

let serialize_match t xc m =
  let tokens = ref [] in
  Doc_store.subtree_events xc.store ~docid:m.docid m.node (fun e ->
      tokens := e.Doc_store.token :: !tokens);
  Serializer.to_string t.dict (List.rev !tokens)

let run ?ns_env t ~table ~column ~xpath =
  let tbl = table_exn t table in
  let xc = xml_column_exn tbl column in
  let before = Rx_obs.Metrics.snapshot t.metrics in
  let _, query, plan = plan_for ?ns_env t xc xpath in
  let c_candidates = Rx_obs.Metrics.counter t.metrics "exec.index_candidates" in
  let c_filtered = Rx_obs.Metrics.counter t.metrics "exec.reeval_filtered" in
  let scan_docs docids =
    List.concat_map
      (fun docid ->
        List.map
          (fun node -> { docid; node })
          (Executor.eval_stored query xc.store ~docid))
      docids
  in
  let matches =
    Rx_obs.Trace.with_span t.tracer "db.query"
      ~attrs:[ ("table", table); ("column", column); ("xpath", xpath) ]
      (fun () ->
        match plan with
        | Planner.Full_scan -> scan_docs (column_docids tbl column)
        | Planner.Index_access { exact; _ } -> (
            match Planner.execute_candidates ~indexes:xc.indexes plan with
            | `All -> scan_docs (column_docids tbl column)
            | `Docids docids ->
                Rx_obs.Metrics.add c_candidates (List.length docids);
                let ms = scan_docs docids in
                let surviving =
                  List.sort_uniq compare (List.map (fun m -> m.docid) ms)
                in
                Rx_obs.Metrics.add c_filtered
                  (max 0 (List.length docids - List.length surviving));
                ms
            | `Anchors anchors ->
                Rx_obs.Metrics.add c_candidates (List.length anchors);
                if exact then
                  List.map (fun (docid, node) -> { docid; node }) anchors
                else begin
                  let ms =
                    scan_docs
                      (List.sort_uniq compare (List.map fst anchors))
                  in
                  Rx_obs.Metrics.add c_filtered
                    (max 0 (List.length anchors - List.length ms));
                  ms
                end))
  in
  let after = Rx_obs.Metrics.snapshot t.metrics in
  {
    matches;
    plan = plan_info_of plan;
    serialize = serialize_match t xc;
    profile = Rx_obs.Metrics.diff ~before ~after;
  }

let query ?ns_env t ~table ~column ~xpath =
  (run ?ns_env t ~table ~column ~xpath).matches

let query_docids ?ns_env t ~table ~column ~xpath =
  List.sort_uniq compare
    (List.map (fun m -> m.docid) (run ?ns_env t ~table ~column ~xpath).matches)

let query_serialized ?ns_env t ~table ~column ~xpath =
  let r = run ?ns_env t ~table ~column ~xpath in
  List.map r.serialize r.matches

(* --- stats --- *)

type stats = {
  tables : int;
  documents : int;
  xml_records : int;
  node_index_entries : int;
  value_index_entries : int;
  data_pages : int;
  log_bytes : int;
}

let stats (t : t) =
  let documents = ref 0
  and xml_records = ref 0
  and node_entries = ref 0
  and value_entries = ref 0
  and data_pages = ref 0 in
  List.iter
    (fun (_, tbl) ->
      List.iter
        (fun (_, xc) ->
          let s = Doc_store.stats xc.store in
          documents := !documents + s.Doc_store.documents;
          xml_records := !xml_records + s.Doc_store.records;
          node_entries := !node_entries + s.Doc_store.index_entries;
          data_pages := !data_pages + s.Doc_store.data_pages;
          List.iter
            (fun idx -> value_entries := !value_entries + Value_index.entry_count idx)
            xc.indexes)
        tbl.xml_columns)
    t.tables;
  let s =
    {
      tables = List.length t.tables;
      documents = !documents;
      xml_records = !xml_records;
      node_index_entries = !node_entries;
      value_index_entries = !value_entries;
      data_pages = !data_pages;
      log_bytes = Rx_wal.Log_manager.appended_bytes t.log;
    }
  in
  (* mirror the structural numbers as registry gauges so [rx stats] and the
     JSON renderer expose one unified surface *)
  let g name v = Rx_obs.Metrics.(set (gauge t.metrics name) v) in
  g "db.tables" s.tables;
  g "db.documents" s.documents;
  g "db.xml_records" s.xml_records;
  g "db.node_index_entries" s.node_index_entries;
  g "db.value_index_entries" s.value_index_entries;
  g "db.data_pages" s.data_pages;
  g "db.log_bytes" s.log_bytes;
  s

let column_store t ~table ~column =
  (xml_column_exn (table_exn t table) column).store
