(* Pull-based WAL-shipping replica: fetches durable frames from a leader,
   applies them through the redo path at transaction-consistent horizons,
   and persists a resume cursor so a restarted replica re-fetches only what
   it may not have flushed. *)

open Rx_storage

type fetch = from_lsn:int64 -> max_bytes:int -> int64 * string * int64

let no_fetch ~from_lsn:_ ~max_bytes:_ =
  failwith "replica: no leader configured"

type t = {
  db : Database.t;
  dir : string;
  fetch : fetch;
  mutable received_to : int64; (* end of everything fetched and decoded *)
  mutable horizon : int64; (* all records below are applied; txn-consistent *)
  mutable tail : (int64 * Rx_wal.Log_record.t) list;
      (* records in [horizon, received_to): buffered until every
         transaction seen in them has ended, oldest first *)
  mutable leader_durable : int64;
  mutable cursor : int64; (* last persisted restart point *)
}

type pull_report = {
  pulled_bytes : int;
  applied_records : int;
  caught_up : bool; (* horizon has reached the leader's durable LSN *)
}

let cursor_magic = "RXCUR001"

let read_cursor path =
  if not (Sys.file_exists path) then 0L
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let s = really_input_string ic 16 in
        if String.sub s 0 8 <> cursor_magic then
          failwith (Printf.sprintf "replica: %s is not a cursor file" path);
        String.get_int64_be s 8)
  end

let write_cursor path lsn =
  let b = Bytes.create 16 in
  Bytes.blit_string cursor_magic 0 b 0 8;
  Bytes.set_int64_be b 8 lsn;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let rec w off =
        if off < 16 then w (off + Unix.write fd b off (16 - off))
      in
      w 0;
      Unix.fsync fd);
  Unix.rename tmp path;
  (* persist the rename itself *)
  let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
  (try Unix.fsync dfd with Unix.Unix_error _ -> ());
  Unix.close dfd

let attach ?page_size ?record_threshold ?config ~fetch dir =
  let db = Database.open_replica ?page_size ?record_threshold ?config dir in
  let cursor = read_cursor (Database.replica_cursor_path dir) in
  {
    db;
    dir;
    fetch;
    received_to = cursor;
    horizon = cursor;
    tail = [];
    leader_durable = 0L;
    cursor;
  }

let db t = t.db
let horizon t = t.horizon
let leader_durable t = t.leader_durable

let lag t =
  Int64.to_int (Int64.sub (max t.leader_durable t.horizon) t.horizon)

(* The furthest frame boundary in [records] (which start at [from], each
   record's end being the next one's LSN, the last ending at [upto]) at
   which no transaction is mid-flight. Records below an already-applied
   horizon never reach here, so every Update's transaction either ends in
   the buffered span or is still open on the leader. *)
let consistent_horizon ~from ~upto records =
  let open_txids = Hashtbl.create 8 in
  let best = ref from in
  let rec walk = function
    | [] -> ()
    | (_, record) :: rest ->
        (match record with
        | Rx_wal.Log_record.Update { txid; _ } | Rx_wal.Log_record.Clr { txid; _ }
          ->
            Hashtbl.replace open_txids txid ()
        | Rx_wal.Log_record.Commit { txid } | Rx_wal.Log_record.Abort { txid } ->
            Hashtbl.remove open_txids txid
        | Rx_wal.Log_record.Checkpoint -> ());
        let end_lsn = match rest with (l, _) :: _ -> l | [] -> upto in
        if Hashtbl.length open_txids = 0 then best := end_lsn;
        walk rest
  in
  walk records;
  !best

let apply_records t records =
  let applied = ref 0 in
  List.iter
    (fun (lsn, record) ->
      match record with
      | Rx_wal.Log_record.Update { page_no; off; after; _ }
      | Rx_wal.Log_record.Clr { page_no; off; after; _ } ->
          if Database.apply_redo t.db ~page_no ~lsn ~off ~image:after then
            incr applied
      | Rx_wal.Log_record.Commit _ | Rx_wal.Log_record.Abort _
      | Rx_wal.Log_record.Checkpoint ->
          ())
    records;
  !applied

let pull ?(max_bytes = 1 lsl 20) t =
  (* network I/O happens outside the engine lock *)
  let start_lsn, frames, durable = t.fetch ~from_lsn:t.received_to ~max_bytes in
  Database.exclusively t.db (fun () ->
      t.leader_durable <- durable;
      if Int64.compare start_lsn t.received_to > 0 then
        failwith
          (Printf.sprintf
             "replica: leader history gap — asked for LSN %Ld, got %Ld \
              (rebuild the replica from scratch)"
             t.received_to start_lsn);
      let records =
        if String.length frames = 0 then []
        else
          Rx_wal.Log_manager.decode_frames ~base:start_lsn frames
          |> List.filter (fun (lsn, _) -> Int64.compare lsn t.received_to >= 0)
      in
      let batch_end = Int64.add start_lsn (Int64.of_int (String.length frames)) in
      if Int64.compare batch_end t.received_to > 0 then t.received_to <- batch_end;
      t.tail <- t.tail @ records;
      let new_horizon =
        consistent_horizon ~from:t.horizon ~upto:t.received_to t.tail
      in
      let applied = ref 0 in
      if Int64.compare new_horizon t.horizon > 0 then begin
        let ready, rest =
          List.partition (fun (lsn, _) -> Int64.compare lsn new_horizon < 0) t.tail
        in
        applied := apply_records t ready;
        t.tail <- rest;
        t.horizon <- new_horizon;
        (* the batch may have carried DDL or a checkpointed catalog *)
        Database.refresh_replica t.db
      end;
      let m = Database.metrics t.db in
      Rx_obs.Metrics.(incr (counter m "repl.pulls"));
      Rx_obs.Metrics.(add (counter m "repl.bytes_applied") (String.length frames));
      Rx_obs.Metrics.(add (counter m "repl.records_applied") !applied);
      Rx_obs.Metrics.(set (gauge m "repl.lag_bytes") (lag t));
      {
        pulled_bytes = String.length frames;
        applied_records = !applied;
        caught_up =
          Int64.compare t.horizon t.leader_durable >= 0
          && String.length frames = 0;
      })

let checkpoint t =
  Database.exclusively t.db (fun () ->
      (* cursor rule: only ever persist a restart point whose pages are all
         durably flushed — the cursor must never run ahead of the data *)
      Buffer_pool.flush_all (Database.buffer_pool t.db);
      write_cursor (Database.replica_cursor_path t.dir) t.horizon;
      t.cursor <- t.horizon)

let promote t =
  Database.exclusively t.db (fun () ->
      (* anything buffered past the horizon is mid-transaction on the old
         leader — discarded, exactly like a leader crash at this LSN *)
      t.tail <- [];
      t.received_to <- t.horizon;
      Database.promote_replica t.db ~lsn:t.horizon)

let close t =
  checkpoint t;
  Database.close t.db
