(** Pull-based WAL-shipping replica.

    A replica periodically {!pull}s durable WAL frames from its leader
    (through any {!type-fetch} transport — an in-process
    {!Database.repl_fetch} closure, or the rxd wire protocol), applies
    them through the engine's redo path, and serves read-only snapshot
    queries from the result. Applies stop at {e transaction-consistent
    horizons}: a batch's records are held back until every transaction
    seen in them has committed or aborted, so reads between pulls always
    see a state the leader actually committed.

    The replica never writes its own WAL. Its restart point is a cursor
    file ([replica.lsn], written by {!checkpoint} only after flushing all
    applied pages); on {!attach} the replica resumes fetching from the
    cursor, and page LSNs make any overlap reapply idempotent. *)

type t

type fetch = from_lsn:int64 -> max_bytes:int -> int64 * string * int64
(** How to reach the leader: returns [(start_lsn, frames, durable_lsn)]
    exactly like {!Database.repl_fetch}. Must raise on failure (the
    exception propagates out of {!pull}). *)

val no_fetch : fetch
(** Raises [Failure] — for offline attachment (inspection, {!promote})
    where no {!pull} will ever run. *)

type pull_report = {
  pulled_bytes : int;
  applied_records : int;
  caught_up : bool;
      (** the horizon has reached the leader's durable LSN and the last
          fetch returned nothing *)
}

val attach :
  ?page_size:int ->
  ?record_threshold:int ->
  ?config:Database.config ->
  fetch:fetch ->
  string ->
  t
(** Opens [dir] as a replica ({!Database.open_replica}) and resumes from
    its cursor (LSN 0 for a fresh directory — the whole database then
    arrives by replication). After a replica crash, reads served before
    the first successful {!pull} may reflect a torn page set; pull to the
    leader's durable LSN before trusting them. *)

val db : t -> Database.t
(** The underlying read-only handle — run queries against it (bare reads
    and explicit snapshot transactions work; mutations raise
    {!Database.Read_only}). *)

val pull : ?max_bytes:int -> t -> pull_report
(** One fetch/apply round: asks the leader for up to [max_bytes]
    (default 1 MiB) of frames past what it already holds, applies every
    record below the new transaction-consistent horizon, and refreshes
    the logical layer so replicated DDL becomes visible. The fetch runs
    outside the engine lock; the apply inside it.
    @raise Failure if the leader no longer has the history this replica
    needs (rebuild from scratch). *)

val checkpoint : t -> unit
(** Persists the restart point: flushes all applied pages, then writes
    the cursor. Call periodically; the interval bounds re-fetch work
    after a replica restart, not correctness. *)

val horizon : t -> int64
(** The transaction-consistent LSN this replica has applied up to. *)

val leader_durable : t -> int64
(** The leader's durable LSN as of the last {!pull} (0 before one). *)

val lag : t -> int
(** Bytes of durable leader WAL not yet applied here. *)

val promote : t -> int64
(** Promotes this replica to a writable leader at its current horizon:
    flushes, resets the WAL base so the new timeline continues above
    every replicated LSN (returns the base chosen), and removes the
    cursor file. Buffered records past the horizon are discarded — the
    same loss a leader crash at that LSN would cause. The handle from
    {!db} is writable afterwards; this [t] must not be pulled again. *)

val close : t -> unit
(** {!checkpoint}, then closes the database handle. *)
