type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- rendering --- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go item)
          members;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing --- *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_encode buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some cp ->
                  pos := !pos + 4;
                  utf8_encode buf cp
              | None -> fail "bad \\u escape");
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let consume_while p =
      while (match peek () with Some c when p c -> true | _ -> false) do
        advance ()
      done
    in
    if peek () = Some '-' then advance ();
    consume_while (fun c -> c >= '0' && c <= '9');
    if peek () = Some '.' then begin
      advance ();
      consume_while (fun c -> c >= '0' && c <= '9')
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        consume_while (fun c -> c >= '0' && c <= '9')
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then failwith (Printf.sprintf "Json: trailing input at %d" !pos);
    v
  with Bad (at, msg) -> failwith (Printf.sprintf "Json: %s at %d" msg at)

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> ( try List.for_all2 equal x y with Invalid_argument _ -> false)
  | Obj x, Obj y -> (
      try List.for_all2 (fun (k, v) (k', v') -> k = k' && equal v v') x y
      with Invalid_argument _ -> false)
  | _ -> false
