(** Zero-dependency metrics registry: monotonic counters, gauges and
    fixed-bucket log-scale histograms, registered by dotted name
    ("bufpool.hits", "btree.node_splits", ...).

    Registration is idempotent — asking for an existing name returns the
    same instrument, so independent layers can share one registry without
    coordination. Handles are resolved once (at component construction) and
    incremented on hot paths with a single atomic read-modify-write.

    Every operation is domain-safe: instruments are {!Atomic.t}-backed so
    concurrent increments from parallel scan domains are never lost, and
    the registry table is mutex-guarded at registration/snapshot time (the
    increment path takes no lock).

    There is one process-global {!default} registry; components accept an
    [?metrics] argument so that a database instance can route its layers to
    a private registry and report per-database numbers. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t
val default : t
(** The process-global registry used when no [?metrics] is supplied. *)

(** {1 Registration (idempotent by name)} *)

val counter : t -> string -> counter
(** @raise Invalid_argument if the name is registered as another kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

(** {1 Instrument operations} *)

val incr : counter -> unit
val add : counter -> int -> unit
(** @raise Invalid_argument on a negative amount (counters are monotonic). *)

val value : counter -> int

val set : gauge -> int -> unit
val get : gauge -> int

val observe : histogram -> int -> unit
(** Records a non-negative sample into its log2 bucket: bucket 0 holds 0,
    bucket [i >= 1] holds values in [[2{^i-1}, 2{^i})]; the last bucket is
    unbounded. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int

val histogram_buckets : histogram -> (int * int) array
(** [(upper_bound_inclusive, count)] per non-empty-or-preceding bucket; the
    final bucket's upper bound is [max_int]. *)

(** {1 Snapshots and rendering} *)

type sample =
  | Counter of int
  | Gauge of int
  | Histogram of { count : int; sum : int; buckets : (int * int) array }

val snapshot : t -> (string * sample) list
(** Immutable point-in-time copy, sorted by name. *)

val diff : before:(string * sample) list -> after:(string * sample) list -> (string * int) list
(** Counter deltas between two snapshots, dropping zero deltas. Histograms
    contribute ["name.count"] and ["name.sum"] deltas; gauges contribute
    their (possibly negative) change under their own name. *)

val to_text : t -> string
(** One ["name value"] line per instrument (histograms render count/sum and
    their cumulative buckets). *)

val to_json : t -> Json.t
(** Object keyed by instrument name; round-trips through {!Json.of_string}. *)
