type counter = { c_name : string; mutable c_value : int }
type gauge = { mutable g_value : int }

let n_buckets = 32

type histogram = {
  h_counts : int array; (* raw per-bucket counts *)
  mutable h_count : int;
  mutable h_sum : int;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }
let default = create ()

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (C c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a counter" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.instruments name (C c);
      c

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (G g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" name)
  | None ->
      let g = { g_value = 0 } in
      Hashtbl.replace t.instruments name (G g);
      g

let histogram t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (H h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a histogram" name)
  | None ->
      let h = { h_counts = Array.make n_buckets 0; h_count = 0; h_sum = 0 } in
      Hashtbl.replace t.instruments name (H h);
      h

let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics: counter %s is monotonic" c.c_name);
  c.c_value <- c.c_value + n

let value c = c.c_value

let set g v = g.g_value <- v
let get g = g.g_value

(* bucket 0 holds 0; bucket i >= 1 holds [2^(i-1), 2^i); last is unbounded *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let observe h v =
  let v = max 0 v in
  h.h_counts.(bucket_of v) <- h.h_counts.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let bucket_upper i =
  if i = 0 then 0
  else if i >= n_buckets - 1 then max_int
  else (1 lsl i) - 1

let histogram_buckets h =
  (* trim trailing empty buckets but keep at least bucket 0 *)
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) h.h_counts;
  Array.init (!last + 1) (fun i -> (bucket_upper i, h.h_counts.(i)))

type sample =
  | Counter of int
  | Gauge of int
  | Histogram of { count : int; sum : int; buckets : (int * int) array }

let snapshot t =
  Hashtbl.fold
    (fun name i acc ->
      let sample =
        match i with
        | C c -> Counter c.c_value
        | G g -> Gauge g.g_value
        | H h ->
            Histogram
              { count = h.h_count; sum = h.h_sum; buckets = histogram_buckets h }
      in
      (name, sample) :: acc)
    t.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* [diff] runs on every profiled query ([Database.run]'s result.profile);
   both snapshots are name-sorted (see [snapshot]), so walk them as one
   linear merge instead of a quadratic assoc lookup per instrument *)
let diff ~before ~after =
  let deltas name sample prior =
    match sample with
    | Counter v ->
        let v0 = match prior with Some (Counter p) -> p | _ -> 0 in
        if v - v0 <> 0 then [ (name, v - v0) ] else []
    | Gauge v ->
        let v0 = match prior with Some (Gauge p) -> p | _ -> 0 in
        if v - v0 <> 0 then [ (name, v - v0) ] else []
    | Histogram { count; sum; _ } ->
        let c0, s0 =
          match prior with
          | Some (Histogram { count; sum; _ }) -> (count, sum)
          | _ -> (0, 0)
        in
        (if count - c0 <> 0 then [ (name ^ ".count", count - c0) ] else [])
        @ if sum - s0 <> 0 then [ (name ^ ".sum", sum - s0) ] else []
  in
  let rec merge before after acc =
    match (before, after) with
    | _, [] -> List.rev acc
    | [], (name, s) :: atl ->
        merge [] atl (List.rev_append (List.rev (deltas name s None)) acc)
    | (bn, _) :: btl, (an, _) :: _ when String.compare bn an < 0 ->
        (* instrument vanished between snapshots: nothing to report *)
        merge btl after acc
    | (bn, bs) :: btl, (an, s) :: atl when String.equal bn an ->
        merge btl atl (List.rev_append (List.rev (deltas an s (Some bs))) acc)
    | _, (name, s) :: atl ->
        merge before atl (List.rev_append (List.rev (deltas name s None)) acc)
  in
  merge before after []

let to_text t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, sample) ->
      match sample with
      | Counter v | Gauge v -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | Histogram { count; sum; buckets } ->
          Buffer.add_string buf (Printf.sprintf "%s.count %d\n%s.sum %d\n" name count name sum);
          Array.iter
            (fun (le, c) ->
              let le = if le = max_int then "inf" else string_of_int le in
              Buffer.add_string buf (Printf.sprintf "%s.bucket{le=%s} %d\n" name le c))
            buckets)
    (snapshot t);
  Buffer.contents buf

let to_json t =
  Json.Obj
    (List.map
       (fun (name, sample) ->
         let body =
           match sample with
           | Counter v ->
               Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int v)) ]
           | Gauge v ->
               Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num (float_of_int v)) ]
           | Histogram { count; sum; buckets } ->
               Json.Obj
                 [
                   ("type", Json.Str "histogram");
                   ("count", Json.Num (float_of_int count));
                   ("sum", Json.Num (float_of_int sum));
                   ( "buckets",
                     Json.Arr
                       (Array.to_list
                          (Array.map
                             (fun (le, c) ->
                               Json.Obj
                                 [
                                   ( "le",
                                     if le = max_int then Json.Str "inf"
                                     else Json.Num (float_of_int le) );
                                   ("count", Json.Num (float_of_int c));
                                 ])
                             buckets)) );
                 ]
         in
         (name, body))
       (snapshot t))
