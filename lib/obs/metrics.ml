(* All instruments are updated with Atomic operations so that concurrent
   domains (parallel scan workers, the WAL thread, server sessions) never
   lose increments; the registry table itself is guarded by a mutex, taken
   only at registration and snapshot time — never on the increment path. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_value : int Atomic.t }

let n_buckets = 32

type histogram = {
  h_counts : int Atomic.t array; (* raw per-bucket counts *)
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

type t = { instruments : (string, instrument) Hashtbl.t; reg_lock : Mutex.t }

let create () = { instruments = Hashtbl.create 64; reg_lock = Mutex.create () }
let default = create ()

let locked t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) f

let register t name ~kind ~make ~cast =
  locked t (fun () ->
      match Hashtbl.find_opt t.instruments name with
      | Some i -> (
          match cast i with
          | Some v -> v
          | None ->
              invalid_arg (Printf.sprintf "Metrics: %s is not a %s" name kind))
      | None ->
          let v = make () in
          Hashtbl.replace t.instruments name v;
          match cast v with Some v -> v | None -> assert false)

let counter t name =
  register t name ~kind:"counter"
    ~make:(fun () -> C { c_name = name; c_value = Atomic.make 0 })
    ~cast:(function C c -> Some c | _ -> None)

let gauge t name =
  register t name ~kind:"gauge"
    ~make:(fun () -> G { g_value = Atomic.make 0 })
    ~cast:(function G g -> Some g | _ -> None)

let histogram t name =
  register t name ~kind:"histogram"
    ~make:(fun () ->
      H
        {
          h_counts = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
        })
    ~cast:(function H h -> Some h | _ -> None)

let incr c = Atomic.incr c.c_value

let add c n =
  if n < 0 then invalid_arg (Printf.sprintf "Metrics: counter %s is monotonic" c.c_name);
  ignore (Atomic.fetch_and_add c.c_value n)

let value c = Atomic.get c.c_value

let set g v = Atomic.set g.g_value v
let get g = Atomic.get g.g_value

(* bucket 0 holds 0; bucket i >= 1 holds [2^(i-1), 2^i); last is unbounded *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let observe h v =
  let v = max 0 v in
  Atomic.incr h.h_counts.(bucket_of v);
  Atomic.incr h.h_count;
  ignore (Atomic.fetch_and_add h.h_sum v)

let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Atomic.get h.h_sum

let bucket_upper i =
  if i = 0 then 0
  else if i >= n_buckets - 1 then max_int
  else (1 lsl i) - 1

let histogram_buckets h =
  (* trim trailing empty buckets but keep at least bucket 0 *)
  let counts = Array.map Atomic.get h.h_counts in
  let last = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last := i) counts;
  Array.init (!last + 1) (fun i -> (bucket_upper i, counts.(i)))

type sample =
  | Counter of int
  | Gauge of int
  | Histogram of { count : int; sum : int; buckets : (int * int) array }

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name i acc ->
          let sample =
            match i with
            | C c -> Counter (Atomic.get c.c_value)
            | G g -> Gauge (Atomic.get g.g_value)
            | H h ->
                Histogram
                  {
                    count = Atomic.get h.h_count;
                    sum = Atomic.get h.h_sum;
                    buckets = histogram_buckets h;
                  }
          in
          (name, sample) :: acc)
        t.instruments [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* [diff] runs on every profiled query ([Database.run]'s result.profile);
   both snapshots are name-sorted (see [snapshot]), so walk them as one
   linear merge instead of a quadratic assoc lookup per instrument *)
let diff ~before ~after =
  let deltas name sample prior =
    match sample with
    | Counter v ->
        let v0 = match prior with Some (Counter p) -> p | _ -> 0 in
        if v - v0 <> 0 then [ (name, v - v0) ] else []
    | Gauge v ->
        let v0 = match prior with Some (Gauge p) -> p | _ -> 0 in
        if v - v0 <> 0 then [ (name, v - v0) ] else []
    | Histogram { count; sum; _ } ->
        let c0, s0 =
          match prior with
          | Some (Histogram { count; sum; _ }) -> (count, sum)
          | _ -> (0, 0)
        in
        (if count - c0 <> 0 then [ (name ^ ".count", count - c0) ] else [])
        @ if sum - s0 <> 0 then [ (name ^ ".sum", sum - s0) ] else []
  in
  let rec merge before after acc =
    match (before, after) with
    | _, [] -> List.rev acc
    | [], (name, s) :: atl ->
        merge [] atl (List.rev_append (List.rev (deltas name s None)) acc)
    | (bn, _) :: btl, (an, _) :: _ when String.compare bn an < 0 ->
        (* instrument vanished between snapshots: nothing to report *)
        merge btl after acc
    | (bn, bs) :: btl, (an, s) :: atl when String.equal bn an ->
        merge btl atl (List.rev_append (List.rev (deltas an s (Some bs))) acc)
    | _, (name, s) :: atl ->
        merge before atl (List.rev_append (List.rev (deltas name s None)) acc)
  in
  merge before after []

let to_text t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, sample) ->
      match sample with
      | Counter v | Gauge v -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | Histogram { count; sum; buckets } ->
          Buffer.add_string buf (Printf.sprintf "%s.count %d\n%s.sum %d\n" name count name sum);
          Array.iter
            (fun (le, c) ->
              let le = if le = max_int then "inf" else string_of_int le in
              Buffer.add_string buf (Printf.sprintf "%s.bucket{le=%s} %d\n" name le c))
            buckets)
    (snapshot t);
  Buffer.contents buf

let to_json t =
  Json.Obj
    (List.map
       (fun (name, sample) ->
         let body =
           match sample with
           | Counter v ->
               Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int v)) ]
           | Gauge v ->
               Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Num (float_of_int v)) ]
           | Histogram { count; sum; buckets } ->
               Json.Obj
                 [
                   ("type", Json.Str "histogram");
                   ("count", Json.Num (float_of_int count));
                   ("sum", Json.Num (float_of_int sum));
                   ( "buckets",
                     Json.Arr
                       (Array.to_list
                          (Array.map
                             (fun (le, c) ->
                               Json.Obj
                                 [
                                   ( "le",
                                     if le = max_int then Json.Str "inf"
                                     else Json.Num (float_of_int le) );
                                   ("count", Json.Num (float_of_int c));
                                 ])
                             buckets)) );
                 ]
         in
         (name, body))
       (snapshot t))
