(** Lightweight trace spans: named, attributed, nested timing scopes kept in
    a bounded in-memory ring. A span opens when {!with_span} enters its
    callback and closes when the callback returns (or raises — nesting is
    always rebalanced), so [open_spans] is 0 whenever no traced code is on
    the stack. *)

type span = {
  name : string;
  attrs : (string * string) list;
  depth : int;  (** nesting depth at open time; top-level spans are 0 *)
  start_s : float;  (** wall-clock seconds (Unix epoch) *)
  dur_s : float;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained finished spans (default 1024; oldest
    dropped first). *)

val default : t

val with_span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

val open_spans : t -> int
(** Number of currently open (entered, not yet exited) spans. *)

val started : t -> int
val finished_count : t -> int

val finished : t -> span list
(** Retained finished spans, most recent first. *)

val clear : t -> unit
(** Drops retained spans; keeps the started/finished totals. *)

val to_json : t -> Json.t
(** Array of retained spans, most recent first. *)
