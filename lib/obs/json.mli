(** Minimal JSON values: just enough to render and re-read the metric and
    stats reports without pulling in an external dependency. Numbers are
    floats (integral values print without a fractional part); object member
    order is preserved by the renderer and the parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (RFC 8259 escaping). *)

val of_string : string -> t
(** @raise Failure on malformed input (with a byte offset in the message). *)

val member : string -> t -> t option
(** First member of that name when the value is an [Obj]. *)

val equal : t -> t -> bool
(** Structural equality; numbers compare with [Float.equal]. *)
