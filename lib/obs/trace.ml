type span = {
  name : string;
  attrs : (string * string) list;
  depth : int;
  start_s : float;
  dur_s : float;
}

type t = {
  capacity : int;
  mutable open_depth : int;
  mutable started : int;
  mutable finished_total : int;
  mutable spans : span list; (* most recent first *)
  mutable retained : int;
}

let create ?(capacity = 1024) () =
  { capacity; open_depth = 0; started = 0; finished_total = 0; spans = []; retained = 0 }

let default = create ()

let record t span =
  t.finished_total <- t.finished_total + 1;
  t.spans <- span :: t.spans;
  t.retained <- t.retained + 1;
  (* amortised trim: keep at most 2*capacity in the list, cut back to
     capacity so steady-state conses stay O(1) *)
  if t.retained > 2 * t.capacity then begin
    t.spans <- List.filteri (fun i _ -> i < t.capacity) t.spans;
    t.retained <- t.capacity
  end

let with_span t ?(attrs = []) name f =
  let depth = t.open_depth in
  t.open_depth <- depth + 1;
  t.started <- t.started + 1;
  let start_s = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      t.open_depth <- depth;
      record t { name; attrs; depth; start_s; dur_s = Unix.gettimeofday () -. start_s })
    f

let open_spans t = t.open_depth
let started t = t.started
let finished_count t = t.finished_total

let finished t =
  if t.retained > t.capacity then begin
    t.spans <- List.filteri (fun i _ -> i < t.capacity) t.spans;
    t.retained <- t.capacity
  end;
  t.spans

let clear t =
  t.spans <- [];
  t.retained <- 0

let to_json t =
  Json.Arr
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.name);
             ("depth", Json.Num (float_of_int s.depth));
             ("start_s", Json.Num s.start_s);
             ("dur_us", Json.Num (Float.round (s.dur_s *. 1e6)));
             ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.attrs));
           ])
       (finished t))
