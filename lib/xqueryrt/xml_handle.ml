open Rx_xml

type source =
  | Tokens of Token.t list
  | Binary of string
  | Stored of Rx_xmlstore.Doc_store.t * int
  | Constructed of Template.t * Template.arg array

type t = { source : source; mutable fetches : int }

let of_tokens tokens = { source = Tokens tokens; fetches = 0 }
let of_binary s = { source = Binary s; fetches = 0 }
let of_stored store ~docid = { source = Stored (store, docid); fetches = 0 }
let of_template template args = { source = Constructed (template, args); fetches = 0 }

let events t f =
  match t.source with
  | Tokens tokens -> List.iter f tokens
  | Binary s -> Token_stream.decode_iter s f
  | Stored (store, docid) ->
      t.fetches <- t.fetches + 1;
      Rx_xmlstore.Doc_store.events store ~docid (fun e -> f e.Rx_xmlstore.Doc_store.token)
  | Constructed (template, args) -> Template.instantiate_into template ~args f

let tokens t =
  let acc = ref [] in
  events t (fun tok -> acc := tok :: !acc);
  List.rev !acc

let serialize dict t =
  let buf = Buffer.create 256 in
  let sink = Serializer.make_sink dict buf in
  events t sink;
  Buffer.contents buf

let fetch_count t = t.fetches
