let aggregate ?order_by ~rows ~row_xml sink =
  let rows =
    match order_by with
    | None -> rows
    | Some (key, cmp) ->
        (* in-memory sort of the group's rows (§4.1) *)
        let arr = Array.of_list rows in
        let keyed = Array.map (fun r -> (key r, r)) arr in
        Array.sort (fun (a, _) (b, _) -> cmp a b) keyed;
        Array.to_list (Array.map snd keyed)
  in
  List.iter (fun row -> row_xml row sink) rows

let aggregate_to_tokens ?order_by ~rows ~row_xml () =
  let acc = ref [] in
  aggregate ?order_by ~rows ~row_xml (fun tok -> acc := tok :: !acc);
  List.rev !acc
