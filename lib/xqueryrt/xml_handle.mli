(** XML handles (§4.4): a reference to XML data in whatever form it
    currently exists — parsed tokens, a binary token stream, persistently
    stored records, or an unevaluated constructor — "fetch of persistent
    XML data is deferred until when it's necessary".

    [events] is the virtual-SAX interface: whichever form the handle wraps,
    the consumer sees the same token events, so serialization, tree
    construction and XPath evaluation share one code path with no format
    conversion. *)

type t

val of_tokens : Rx_xml.Token.t list -> t
val of_binary : string -> t
(** A binary token stream ({!Rx_xml.Token_stream}). *)

val of_stored : Rx_xmlstore.Doc_store.t -> docid:int -> t
(** Deferred: nothing is fetched until the handle is consumed. *)

val of_template : Template.t -> Template.arg array -> t
(** Deferred construction. *)

val events : t -> (Rx_xml.Token.t -> unit) -> unit
val tokens : t -> Rx_xml.Token.t list
val serialize : Rx_xml.Name_dict.t -> t -> string

val fetch_count : t -> int
(** How many times the underlying persistent data has been fetched —
    observability for the deferred-fetch tests. *)
