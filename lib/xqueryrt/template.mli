(** SQL/XML constructor functions with the tagging-template optimization of
    §4.1 / Figure 5.

    Nested constructor calls ([XMLELEMENT] containing [XMLATTRIBUTES],
    [XMLFOREST], ...) are flattened at compile time into one template: a
    flat instruction sequence in which every static tag and attribute name
    is fixed and only argument slots remain. Evaluating the constructors
    for a row then touches no intermediate trees and repeats no tagging
    work — "no repetition of the tagging template occurs, which is very
    effective for generating XML for large numbers of repeated rows".

    String-valued slots support concatenation pieces, as in the paper's
    [e.fname || ' ' || e.lname AS "name"] example; XML-valued slots splice
    in a whole token stream. *)

(** A string expression: concatenation of literals and argument slots. *)
type strexpr = [ `Lit of string | `Arg of int ] list

(** Constructor expressions (the SQL/XML functions). *)
type cexpr =
  | Element of {
      name : string;
      attrs : (string * strexpr) list; (* XMLATTRIBUTES *)
      children : cexpr list;
    } (* XMLELEMENT *)
  | Forest of (string * strexpr) list (* XMLFOREST *)
  | Text of strexpr (* XMLTEXT *)
  | Concat of cexpr list (* XMLCONCAT *)
  | Xml_arg of int (* an XML-typed argument (handle) *)

(** A runtime argument. *)
type arg = A_string of string | A_xml of Rx_xml.Token.t list | A_null

type t

val compile : Rx_xml.Name_dict.t -> cexpr -> t
val arity : t -> int
val instruction_count : t -> int

val instantiate_into : t -> args:arg array -> (Rx_xml.Token.t -> unit) -> unit
(** Emits the constructed XML as events (pipelining, §4.4).
    SQL semantics for NULL: an [XMLFOREST]/attribute slot that is [A_null]
    is omitted; a null text piece contributes nothing. *)

val instantiate : t -> args:arg array -> Rx_xml.Token.t list

val to_string : t -> args:arg array -> Rx_xml.Name_dict.t -> string
(** Construct and serialize in one pass. *)

val naive_eval : Rx_xml.Name_dict.t -> cexpr -> args:arg array -> Rx_xml.Token.t list
(** The unoptimized evaluation the paper contrasts with: evaluate nested
    constructor functions bottom-up, materializing each intermediate result
    (the E5 baseline). *)
