open Rx_xml

type strexpr = [ `Lit of string | `Arg of int ] list

type cexpr =
  | Element of {
      name : string;
      attrs : (string * strexpr) list;
      children : cexpr list;
    }
  | Forest of (string * strexpr) list
  | Text of strexpr
  | Concat of cexpr list
  | Xml_arg of int

type arg = A_string of string | A_xml of Token.t list | A_null

(* Compiled instructions. Attribute values and text slots are strexprs with
   names pre-interned; fully static runs are pre-merged. *)
type instr =
  | I_start of { name : Qname.t; attrs : (Qname.t * strexpr) list }
  | I_end
  | I_text of strexpr
  | I_splice of int
  | I_forest_member of { name : Qname.t; content : strexpr }
      (* whole element omitted when the content is NULL (SQL semantics) *)

type t = { instrs : instr array; arity : int }

let strexpr_arity se =
  List.fold_left (fun m p -> match p with `Arg i -> max m (i + 1) | `Lit _ -> m) 0 se

let compile dict cexpr =
  let instrs = ref [] in
  let arity = ref 0 in
  let note_arity n = if n > !arity then arity := n in
  let emit i = instrs := i :: !instrs in
  let qname name = Qname.make (Name_dict.intern dict name) in
  let rec go = function
    | Element { name; attrs; children } ->
        List.iter (fun (_, se) -> note_arity (strexpr_arity se)) attrs;
        emit
          (I_start
             { name = qname name; attrs = List.map (fun (n, se) -> (qname n, se)) attrs });
        List.iter go children;
        emit I_end
    | Forest parts ->
        List.iter
          (fun (name, se) ->
            note_arity (strexpr_arity se);
            emit (I_forest_member { name = qname name; content = se }))
          parts
    | Text se ->
        note_arity (strexpr_arity se);
        emit (I_text se)
    | Concat parts -> List.iter go parts
    | Xml_arg i ->
        note_arity (i + 1);
        emit (I_splice i)
  in
  go cexpr;
  { instrs = Array.of_list (List.rev !instrs); arity = !arity }

let arity t = t.arity
let instruction_count t = Array.length t.instrs

(* Evaluate a strexpr; [None] when any argument piece is NULL and the
   expression consists of that single argument (SQL null propagation for
   simple slots); concatenations treat NULL pieces as empty. *)
let eval_strexpr (args : arg array) (se : strexpr) =
  match se with
  | [ `Arg i ] -> (
      match args.(i) with
      | A_string s -> Some s
      | A_null -> None
      | A_xml _ -> invalid_arg "Template: XML argument used as a string slot")
  | parts ->
      let buf = Buffer.create 16 in
      List.iter
        (fun p ->
          match p with
          | `Lit s -> Buffer.add_string buf s
          | `Arg i -> (
              match args.(i) with
              | A_string s -> Buffer.add_string buf s
              | A_null -> ()
              | A_xml _ -> invalid_arg "Template: XML argument used as a string slot"))
        parts;
      Some (Buffer.contents buf)

let instantiate_into t ~args emit =
  if Array.length args < t.arity then invalid_arg "Template: not enough arguments";
  Array.iter
    (fun instr ->
      match instr with
      | I_start { name; attrs } ->
          let attrs =
            List.filter_map
              (fun (qn, se) ->
                Option.map (fun v -> Token.attr qn v) (eval_strexpr args se))
              attrs
          in
          emit (Token.Start_element { name; attrs; ns_decls = [] })
      | I_end -> emit Token.End_element
      | I_text se -> (
          match eval_strexpr args se with
          | Some s -> emit (Token.text s)
          | None -> ())
      | I_forest_member { name; content } -> (
          match eval_strexpr args content with
          | Some s ->
              emit (Token.Start_element { name; attrs = []; ns_decls = [] });
              emit (Token.text s);
              emit Token.End_element
          | None -> ())
      | I_splice i -> (
          match args.(i) with
          | A_xml tokens ->
              List.iter
                (fun token ->
                  match token with
                  | Token.Start_document | Token.End_document -> ()
                  | token -> emit token)
                tokens
          | A_null -> ()
          | A_string s -> emit (Token.text s)))
    t.instrs

let instantiate t ~args =
  let acc = ref [] in
  instantiate_into t ~args (fun tok -> acc := tok :: !acc);
  List.rev !acc

let to_string t ~args dict =
  let buf = Buffer.create 256 in
  let sink = Serializer.make_sink dict buf in
  instantiate_into t ~args sink;
  Buffer.contents buf

(* The unoptimized path: each nested constructor materializes its own token
   list, which the parent then copies — "either small data items linked by
   pointers or multiple copies of the same data items". *)
let rec naive_eval dict cexpr ~args =
  let qname name = Qname.make (Name_dict.intern dict name) in
  match cexpr with
  | Element { name; attrs; children } ->
      let attr_tokens =
        List.filter_map
          (fun (n, se) ->
            Option.map (fun v -> Token.attr (qname n) v) (eval_strexpr args se))
          attrs
      in
      let child_results = List.map (fun c -> naive_eval dict c ~args) children in
      (Token.Start_element { name = qname name; attrs = attr_tokens; ns_decls = [] }
      :: List.concat child_results)
      @ [ Token.End_element ]
  | Forest parts ->
      List.concat_map
        (fun (n, se) ->
          match eval_strexpr args se with
          | Some v ->
              [
                Token.Start_element { name = qname n; attrs = []; ns_decls = [] };
                Token.text v;
                Token.End_element;
              ]
          | None -> [])
        parts
  | Text se -> (
      match eval_strexpr args se with Some s -> [ Token.text s ] | None -> [])
  | Concat parts -> List.concat_map (fun c -> naive_eval dict c ~args) parts
  | Xml_arg i -> (
      match args.(i) with
      | A_xml tokens ->
          List.filter
            (fun token ->
              match token with
              | Token.Start_document | Token.End_document -> false
              | _ -> true)
            tokens
      | A_null -> []
      | A_string s -> [ Token.text s ])
