(** XMLAGG with ORDER BY (§4.1): aggregating the XML fragments of a group
    of rows, sorted by a key. The paper replaces the general-purpose
    external sort (per-group spill cost) with an in-memory quicksort over
    the group's row list — the E6 benchmark. *)

val aggregate :
  ?order_by:('row -> 'key) * ('key -> 'key -> int) ->
  rows:'row list ->
  row_xml:('row -> (Rx_xml.Token.t -> unit) -> unit) ->
  (Rx_xml.Token.t -> unit) ->
  unit
(** Emits each row's fragment in order (sorted in memory when [order_by]
    is given), pipelined into the sink. *)

val aggregate_to_tokens :
  ?order_by:('row -> 'key) * ('key -> 'key -> int) ->
  rows:'row list ->
  row_xml:('row -> (Rx_xml.Token.t -> unit) -> unit) ->
  unit ->
  Rx_xml.Token.t list
