(** Expanded names after namespace resolution. Identity is (namespace URI,
    local name); the prefix is carried only for faithful serialization. All
    three components are {!Name_dict} ids. *)

type t = { uri : int; local : int; prefix : int }

val make : ?uri:int -> ?prefix:int -> int -> t
(** [make local] with optional namespace and prefix ids (default 0 = none). *)

val equal : t -> t -> bool
(** Prefix-insensitive. *)

val compare : t -> t -> int
val hash : t -> int

val to_string : Name_dict.t -> t -> string
(** Lexical form [prefix:local], for messages and serialization. *)
