type t =
  | String of string
  | Double of float
  | Decimal of Rx_util.Decimal.t
  | Integer of int
  | Boolean of bool
  | Date of { year : int; month : int; day : int }

let type_tag = function
  | String _ -> 0
  | Double _ -> 1
  | Decimal _ -> 2
  | Integer _ -> 3
  | Boolean _ -> 4
  | Date _ -> 5

let compare a b =
  match (a, b) with
  | String x, String y -> String.compare x y
  | Double x, Double y -> Float.compare x y
  | Decimal x, Decimal y -> Rx_util.Decimal.compare x y
  | Integer x, Integer y -> Int.compare x y
  | Boolean x, Boolean y -> Bool.compare x y
  | Date x, Date y -> Stdlib.compare (x.year, x.month, x.day) (y.year, y.month, y.day)
  | _ -> Int.compare (type_tag a) (type_tag b)

let equal a b = compare a b = 0

let to_string = function
  | String s -> s
  | Double f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Decimal d -> Rx_util.Decimal.to_string d
  | Integer n -> string_of_int n
  | Boolean b -> if b then "true" else "false"
  | Date { year; month; day } -> Printf.sprintf "%04d-%02d-%02d" year month day

let trim = String.trim

let parse_date s =
  (* YYYY-MM-DD *)
  if String.length s = 10 && s.[4] = '-' && s.[7] = '-' then
    match
      ( int_of_string_opt (String.sub s 0 4),
        int_of_string_opt (String.sub s 5 2),
        int_of_string_opt (String.sub s 8 2) )
    with
    | Some year, Some month, Some day
      when month >= 1 && month <= 12 && day >= 1 && day <= 31 ->
        Some (Date { year; month; day })
    | _ -> None
  else None

let of_string ty s =
  let s = trim s in
  match ty with
  | `String -> Some (String s)
  | `Double -> Option.map (fun f -> Double f) (float_of_string_opt s)
  | `Decimal -> Option.map (fun d -> Decimal d) (Rx_util.Decimal.of_string s)
  | `Integer -> Option.map (fun n -> Integer n) (int_of_string_opt s)
  | `Boolean -> (
      match s with
      | "true" | "1" -> Some (Boolean true)
      | "false" | "0" -> Some (Boolean false)
      | _ -> None)
  | `Date -> parse_date s

let pp fmt t = Format.pp_print_string fmt (to_string t)
