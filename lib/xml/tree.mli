(** A simple in-memory XML tree. The engine itself never builds one (§3.2:
    "no separate trees of in-memory format are built"); this module exists
    for tests, workload generators, and the DOM-based baseline the paper
    compares against. *)

type t =
  | Element of {
      name : Qname.t;
      attrs : Token.attr list;
      ns_decls : (int * int) list;
      children : t list;
    }
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

type doc = { before_root : t list; root : t; after_root : t list }

val elem : ?attrs:Token.attr list -> ?children:t list -> Qname.t -> t

val doc_of_tokens : Token.t list -> doc
(** @raise Invalid_argument on an unbalanced stream. *)

val of_tokens : Token.t list -> t
(** Root element only. *)

val to_tokens : doc -> Token.t list
val tokens_of_node : t -> Token.t list

val node_count : t -> int
(** Nodes of the XQuery data model in the subtree: elements, attributes,
    texts, comments and PIs. *)

val equal : t -> t -> bool
val text_content : t -> string
(** Concatenated descendant text, i.e. the typed-value string of a node. *)
