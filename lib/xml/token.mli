(** Parser/validator output events: the "token stream" of §3.2, with
    namespace prefixes resolved, attributes in canonical (name-id) order and
    optional type annotations from schema validation. *)

type attr = { name : Qname.t; value : string; annot : Typed_value.t option }

type element = {
  name : Qname.t;
  attrs : attr list; (* sorted by (uri, local) id *)
  ns_decls : (int * int) list; (* (prefix id, uri id) declared here *)
}

type t =
  | Start_document
  | End_document
  | Start_element of element
  | End_element
  | Text of { content : string; annot : Typed_value.t option }
  | Comment of string
  | Pi of { target : string; data : string }

val text : string -> t
val element : ?attrs:attr list -> ?ns_decls:(int * int) list -> Qname.t -> t
val attr : ?annot:Typed_value.t -> Qname.t -> string -> attr
val equal : t -> t -> bool
val pp : Name_dict.t -> Format.formatter -> t -> unit
