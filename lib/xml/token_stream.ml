open Rx_util

let encode_annot w = function
  | None -> Bytes_io.Writer.u8 w 0
  | Some annot -> (
      match annot with
      | Typed_value.String s ->
          Bytes_io.Writer.u8 w 1;
          Bytes_io.Writer.lstring w s
      | Typed_value.Double f ->
          Bytes_io.Writer.u8 w 2;
          Bytes_io.Writer.u64 w (Int64.bits_of_float f)
      | Typed_value.Decimal d ->
          Bytes_io.Writer.u8 w 3;
          Bytes_io.Writer.lstring w (Decimal.encode_key d)
      | Typed_value.Integer n ->
          Bytes_io.Writer.u8 w 4;
          Bytes_io.Writer.u64 w (Int64.of_int n)
      | Typed_value.Boolean b ->
          Bytes_io.Writer.u8 w 5;
          Bytes_io.Writer.u8 w (if b then 1 else 0)
      | Typed_value.Date { year; month; day } ->
          Bytes_io.Writer.u8 w 6;
          Bytes_io.Writer.u16 w year;
          Bytes_io.Writer.u8 w month;
          Bytes_io.Writer.u8 w day)

let decode_annot r =
  match Bytes_io.Reader.u8 r with
  | 0 -> None
  | 1 -> Some (Typed_value.String (Bytes_io.Reader.lstring r))
  | 2 -> Some (Typed_value.Double (Int64.float_of_bits (Bytes_io.Reader.u64 r)))
  | 3 ->
      let key = Bytes_io.Reader.lstring r in
      Some (Typed_value.Decimal (fst (Decimal.decode_key key 0)))
  | 4 -> Some (Typed_value.Integer (Int64.to_int (Bytes_io.Reader.u64 r)))
  | 5 -> Some (Typed_value.Boolean (Bytes_io.Reader.u8 r = 1))
  | 6 ->
      let year = Bytes_io.Reader.u16 r in
      let month = Bytes_io.Reader.u8 r in
      let day = Bytes_io.Reader.u8 r in
      Some (Typed_value.Date { year; month; day })
  | n -> invalid_arg (Printf.sprintf "Token_stream: bad annotation tag %d" n)

let encode_qname w (q : Qname.t) =
  Bytes_io.Writer.varint w q.Qname.uri;
  Bytes_io.Writer.varint w q.Qname.local;
  Bytes_io.Writer.varint w q.Qname.prefix

let decode_qname r =
  let uri = Bytes_io.Reader.varint r in
  let local = Bytes_io.Reader.varint r in
  let prefix = Bytes_io.Reader.varint r in
  { Qname.uri; local; prefix }

let encode w token =
  match token with
  | Token.Start_document -> Bytes_io.Writer.u8 w 1
  | Token.End_document -> Bytes_io.Writer.u8 w 2
  | Token.Start_element { name; attrs; ns_decls } ->
      Bytes_io.Writer.u8 w 3;
      encode_qname w name;
      Bytes_io.Writer.varint w (List.length attrs);
      List.iter
        (fun (a : Token.attr) ->
          encode_qname w a.name;
          Bytes_io.Writer.lstring w a.value;
          encode_annot w a.annot)
        attrs;
      Bytes_io.Writer.varint w (List.length ns_decls);
      List.iter
        (fun (p, u) ->
          Bytes_io.Writer.varint w p;
          Bytes_io.Writer.varint w u)
        ns_decls
  | Token.End_element -> Bytes_io.Writer.u8 w 4
  | Token.Text { content; annot } ->
      Bytes_io.Writer.u8 w 5;
      Bytes_io.Writer.lstring w content;
      encode_annot w annot
  | Token.Comment c ->
      Bytes_io.Writer.u8 w 6;
      Bytes_io.Writer.lstring w c
  | Token.Pi { target; data } ->
      Bytes_io.Writer.u8 w 7;
      Bytes_io.Writer.lstring w target;
      Bytes_io.Writer.lstring w data

let decode_one r =
  match Bytes_io.Reader.u8 r with
  | 1 -> Token.Start_document
  | 2 -> Token.End_document
  | 3 ->
      let name = decode_qname r in
      let n_attrs = Bytes_io.Reader.varint r in
      let attrs =
        List.init n_attrs (fun _ ->
            let name = decode_qname r in
            let value = Bytes_io.Reader.lstring r in
            let annot = decode_annot r in
            { Token.name; value; annot })
      in
      let n_ns = Bytes_io.Reader.varint r in
      let ns_decls =
        List.init n_ns (fun _ ->
            let p = Bytes_io.Reader.varint r in
            let u = Bytes_io.Reader.varint r in
            (p, u))
      in
      Token.Start_element { name; attrs; ns_decls }
  | 4 -> Token.End_element
  | 5 ->
      let content = Bytes_io.Reader.lstring r in
      let annot = decode_annot r in
      Token.Text { content; annot }
  | 6 -> Token.Comment (Bytes_io.Reader.lstring r)
  | 7 ->
      let target = Bytes_io.Reader.lstring r in
      let data = Bytes_io.Reader.lstring r in
      Token.Pi { target; data }
  | n -> invalid_arg (Printf.sprintf "Token_stream: bad token tag %d" n)

let encode_all tokens =
  let w = Bytes_io.Writer.create ~capacity:1024 () in
  List.iter (encode w) tokens;
  Bytes_io.Writer.contents w

let decode_iter s f =
  let r = Bytes_io.Reader.of_string s in
  while not (Bytes_io.Reader.at_end r) do
    f (decode_one r)
  done

let decode_all s =
  let acc = ref [] in
  decode_iter s (fun t -> acc := t :: !acc);
  List.rev !acc

let of_document dict src =
  let w = Bytes_io.Writer.create ~capacity:(String.length src) () in
  Parser.parse_iter dict src (encode w);
  Bytes_io.Writer.contents w

module Reader = struct
  type t = { reader : Bytes_io.Reader.t; mutable peeked : Token.t option }

  let of_string s = { reader = Bytes_io.Reader.of_string s; peeked = None }

  let next t =
    match t.peeked with
    | Some token ->
        t.peeked <- None;
        Some token
    | None ->
        if Bytes_io.Reader.at_end t.reader then None else Some (decode_one t.reader)

  let peek t =
    match t.peeked with
    | Some _ as p -> p
    | None ->
        let token = next t in
        t.peeked <- token;
        token
end
