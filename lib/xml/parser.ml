exception Parse_error of { pos : int; msg : string }

let error pos fmt = Printf.ksprintf (fun msg -> raise (Parse_error { pos; msg })) fmt

type state = {
  src : string;
  dict : Name_dict.t;
  mutable pos : int;
  emit : Token.t -> unit;
  (* namespace environment: innermost scope first; bindings are
     (prefix, uri) name-dict ids *)
  mutable ns_env : (int * int) list list;
}

let xml_uri = "http://www.w3.org/XML/1998/namespace"

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let at_eof st = st.pos >= String.length st.src

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let advance st n = st.pos <- st.pos + n

let expect st s =
  if looking_at st s then advance st (String.length s)
  else error st.pos "expected %S" s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (not (at_eof st)) && is_space st.src.[st.pos] do
    advance st 1
  done

let is_name_start c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_'
  || Char.code c >= 0x80

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

(* A possibly-prefixed name, returned as (prefix, local) raw strings. *)
let read_name st =
  let start = st.pos in
  if at_eof st || not (is_name_start st.src.[st.pos]) then
    error st.pos "expected a name";
  while (not (at_eof st)) && is_name_char st.src.[st.pos] do
    advance st 1
  done;
  let first = String.sub st.src start (st.pos - start) in
  if (not (at_eof st)) && st.src.[st.pos] = ':' then begin
    advance st 1;
    let lstart = st.pos in
    if at_eof st || not (is_name_start st.src.[st.pos]) then
      error st.pos "expected a local name after ':'";
    while (not (at_eof st)) && is_name_char st.src.[st.pos] do
      advance st 1
    done;
    (first, String.sub st.src lstart (st.pos - lstart))
  end
  else ("", first)

let decode_char_ref st body =
  let code =
    if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X') then
      int_of_string_opt ("0x" ^ String.sub body 1 (String.length body - 1))
    else int_of_string_opt body
  in
  match code with
  | Some c when c > 0 && c < 0x110000 ->
      (* encode as UTF-8 *)
      let buf = Buffer.create 4 in
      if c < 0x80 then Buffer.add_char buf (Char.chr c)
      else if c < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else if c < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (c lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
      end;
      Buffer.contents buf
  | _ -> error st.pos "invalid character reference '&#%s;'" body

(* Reads a reference starting just past '&'; appends the replacement. *)
let read_reference st buf =
  let semi =
    match String.index_from_opt st.src st.pos ';' with
    | Some i when i - st.pos <= 10 -> i
    | _ -> error st.pos "unterminated entity reference"
  in
  let body = String.sub st.src st.pos (semi - st.pos) in
  let replacement =
    match body with
    | "amp" -> "&"
    | "lt" -> "<"
    | "gt" -> ">"
    | "quot" -> "\""
    | "apos" -> "'"
    | _ when String.length body > 1 && body.[0] = '#' ->
        decode_char_ref st (String.sub body 1 (String.length body - 1))
    | _ -> error st.pos "unknown entity '&%s;'" body
  in
  Buffer.add_string buf replacement;
  st.pos <- semi + 1

let read_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) ->
        advance st 1;
        q
    | _ -> error st.pos "expected quoted attribute value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_eof st then error st.pos "unterminated attribute value"
    else
      match st.src.[st.pos] with
      | c when c = quote -> advance st 1
      | '&' ->
          advance st 1;
          read_reference st buf;
          loop ()
      | '<' -> error st.pos "'<' in attribute value"
      | c ->
          Buffer.add_char buf c;
          advance st 1;
          loop ()
  in
  loop ();
  Buffer.contents buf

let resolve_prefix st ~for_attr prefix_id =
  if prefix_id = 0 then
    if for_attr then 0
    else
      (* default namespace applies to elements *)
      let rec find = function
        | [] -> 0
        | scope :: rest -> (
            match List.assoc_opt 0 scope with
            | Some uri -> uri
            | None -> find rest)
      in
      find st.ns_env
  else
    let rec find = function
      | [] ->
          error st.pos "undeclared namespace prefix '%s'"
            (Name_dict.name st.dict prefix_id)
      | scope :: rest -> (
          match List.assoc_opt prefix_id scope with
          | Some uri -> uri
          | None -> find rest)
    in
    find st.ns_env

let attr_compare (a : Token.attr) (b : Token.attr) = Qname.compare a.name b.name

(* Parse the inside of a start tag after the element name; returns
   (attrs, ns_decls, self_closing). *)
let read_tag_rest st =
  let raw_attrs = ref [] in
  let ns_decls = ref [] in
  let rec loop () =
    skip_space st;
    match peek st with
    | Some '>' ->
        advance st 1;
        false
    | Some '/' ->
        advance st 1;
        expect st ">";
        true
    | Some c when is_name_start c ->
        let prefix, local = read_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let value = read_attr_value st in
        (if prefix = "xmlns" then
           ns_decls :=
             (Name_dict.intern st.dict local, Name_dict.intern st.dict value)
             :: !ns_decls
         else if prefix = "" && local = "xmlns" then
           ns_decls := (0, Name_dict.intern st.dict value) :: !ns_decls
         else raw_attrs := (prefix, local, value) :: !raw_attrs);
        loop ()
    | _ -> error st.pos "malformed tag"
  in
  let self_closing = loop () in
  (List.rev !raw_attrs, List.rev !ns_decls, self_closing)

let flush_text st buf =
  if Buffer.length buf > 0 then begin
    st.emit (Token.Text { content = Buffer.contents buf; annot = None });
    Buffer.clear buf
  end

let read_comment st =
  (* positioned after "<!--" *)
  let rec find i =
    if i + 2 >= String.length st.src then error st.pos "unterminated comment"
    else if st.src.[i] = '-' && st.src.[i + 1] = '-' then
      if st.src.[i + 2] = '>' then i else error i "'--' inside comment"
    else find (i + 1)
  in
  let close = find st.pos in
  let content = String.sub st.src st.pos (close - st.pos) in
  st.pos <- close + 3;
  content

let read_pi st =
  (* positioned after "<?" *)
  let _, target = read_name st in
  let close =
    let rec find i =
      if i + 1 >= String.length st.src then error st.pos "unterminated PI"
      else if st.src.[i] = '?' && st.src.[i + 1] = '>' then i
      else find (i + 1)
    in
    find st.pos
  in
  let data = String.trim (String.sub st.src st.pos (close - st.pos)) in
  st.pos <- close + 2;
  (target, data)

let skip_doctype st =
  (* positioned after "<!DOCTYPE"; skip to the matching '>' accounting for an
     internal subset in brackets *)
  let depth = ref 0 in
  let rec loop () =
    if at_eof st then error st.pos "unterminated DOCTYPE"
    else begin
      let c = st.src.[st.pos] in
      advance st 1;
      match c with
      | '[' ->
          incr depth;
          loop ()
      | ']' ->
          decr depth;
          loop ()
      | '>' when !depth = 0 -> ()
      | _ -> loop ()
    end
  in
  loop ()

let read_cdata st =
  (* positioned after "<![CDATA[" *)
  let rec find i =
    if i + 2 >= String.length st.src then error st.pos "unterminated CDATA"
    else if st.src.[i] = ']' && st.src.[i + 1] = ']' && st.src.[i + 2] = '>' then i
    else find (i + 1)
  in
  let close = find st.pos in
  let content = String.sub st.src st.pos (close - st.pos) in
  st.pos <- close + 3;
  content

let rec parse_element st =
  (* positioned after '<' at a name *)
  let prefix, local = read_name st in
  let raw_attrs, ns_decls, self_closing = read_tag_rest st in
  st.ns_env <- ns_decls :: st.ns_env;
  let prefix_id = Name_dict.intern st.dict prefix in
  let name =
    let uri =
      if prefix = "xml" then Name_dict.intern st.dict xml_uri
      else resolve_prefix st ~for_attr:false prefix_id
    in
    { Qname.prefix = prefix_id; local = Name_dict.intern st.dict local; uri }
  in
  let attrs =
    List.map
      (fun (p, l, value) ->
        let p_id = Name_dict.intern st.dict p in
        let uri =
          if p = "xml" then Name_dict.intern st.dict xml_uri
          else resolve_prefix st ~for_attr:true p_id
        in
        {
          Token.name = { Qname.prefix = p_id; local = Name_dict.intern st.dict l; uri };
          value;
          annot = None;
        })
      raw_attrs
    |> List.sort attr_compare
  in
  (* duplicate attribute check on resolved names *)
  let rec check_dups = function
    | a :: (b : Token.attr) :: _ when Qname.equal a.Token.name b.name ->
        error st.pos "duplicate attribute '%s'" (Qname.to_string st.dict a.Token.name)
    | _ :: rest -> check_dups rest
    | [] -> ()
  in
  check_dups attrs;
  st.emit (Token.Start_element { name; attrs; ns_decls });
  if self_closing then st.emit Token.End_element
  else begin
    parse_content st;
    (* positioned after "</" *)
    let eprefix, elocal = read_name st in
    if eprefix <> prefix || elocal <> local then
      error st.pos "mismatched end tag </%s%s>, expected </%s%s>"
        (if eprefix = "" then "" else eprefix ^ ":")
        elocal
        (if prefix = "" then "" else prefix ^ ":")
        local;
    skip_space st;
    expect st ">";
    st.emit Token.End_element
  end;
  st.ns_env <- List.tl st.ns_env

and parse_content st =
  (* element content until "</"; consumes the "</" *)
  let buf = Buffer.create 64 in
  let rec loop () =
    if at_eof st then error st.pos "unexpected end of input inside element"
    else if looking_at st "</" then begin
      flush_text st buf;
      advance st 2
    end
    else if looking_at st "<![CDATA[" then begin
      advance st 9;
      Buffer.add_string buf (read_cdata st);
      loop ()
    end
    else if looking_at st "<!--" then begin
      flush_text st buf;
      advance st 4;
      st.emit (Token.Comment (read_comment st));
      loop ()
    end
    else if looking_at st "<?" then begin
      flush_text st buf;
      advance st 2;
      let target, data = read_pi st in
      st.emit (Token.Pi { target; data });
      loop ()
    end
    else if looking_at st "<" then begin
      flush_text st buf;
      advance st 1;
      parse_element st;
      loop ()
    end
    else if looking_at st "&" then begin
      advance st 1;
      read_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf st.src.[st.pos];
      advance st 1;
      loop ()
    end
  in
  loop ()

let parse_misc st =
  (* comments / PIs / whitespace outside the root element *)
  let rec loop () =
    skip_space st;
    if looking_at st "<!--" then begin
      advance st 4;
      st.emit (Token.Comment (read_comment st));
      loop ()
    end
    else if looking_at st "<?xml" then error st.pos "misplaced XML declaration"
    else if looking_at st "<?" then begin
      advance st 2;
      let target, data = read_pi st in
      st.emit (Token.Pi { target; data });
      loop ()
    end
  in
  loop ()

let parse_iter dict src emit =
  let st = { src; dict; pos = 0; emit; ns_env = [] } in
  (* UTF-8 byte-order mark *)
  if looking_at st "\xef\xbb\xbf" then advance st 3;
  emit Token.Start_document;
  if looking_at st "<?xml" then begin
    advance st 2;
    ignore (read_pi st)
  end;
  parse_misc st;
  if looking_at st "<!DOCTYPE" then begin
    advance st 9;
    skip_doctype st;
    parse_misc st
  end;
  if not (looking_at st "<") then error st.pos "expected root element";
  advance st 1;
  if at_eof st || not (is_name_start st.src.[st.pos]) then
    error st.pos "expected root element name";
  parse_element st;
  parse_misc st;
  skip_space st;
  if not (at_eof st) then error st.pos "content after root element";
  emit Token.End_document

let parse dict src =
  let tokens = ref [] in
  parse_iter dict src (fun t -> tokens := t :: !tokens);
  List.rev !tokens

let error_message = function
  | Parse_error { pos; msg } -> Some (Printf.sprintf "XML parse error at byte %d: %s" pos msg)
  | _ -> None
