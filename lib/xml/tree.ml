type t =
  | Element of {
      name : Qname.t;
      attrs : Token.attr list;
      ns_decls : (int * int) list;
      children : t list;
    }
  | Text of string
  | Comment of string
  | Pi of { target : string; data : string }

type doc = { before_root : t list; root : t; after_root : t list }

let elem ?(attrs = []) ?(children = []) name =
  Element { name; attrs; ns_decls = []; children }

let doc_of_tokens tokens =
  (* stack of (pending element, reversed children) frames *)
  let misc_before = ref [] in
  let misc_after = ref [] in
  let root = ref None in
  let stack = ref [] in
  let add_node node =
    match !stack with
    | (e, children) :: rest -> stack := (e, node :: children) :: rest
    | [] -> (
        match node with
        | Element _ ->
            if !root <> None then invalid_arg "Tree: multiple roots";
            root := Some node
        | _ -> if !root = None then misc_before := node :: !misc_before
               else misc_after := node :: !misc_after)
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element e -> stack := (e, []) :: !stack
      | Token.End_element -> (
          match !stack with
          | (e, children) :: rest ->
              stack := rest;
              add_node
                (Element
                   {
                     name = e.Token.name;
                     attrs = e.Token.attrs;
                     ns_decls = e.Token.ns_decls;
                     children = List.rev children;
                   })
          | [] -> invalid_arg "Tree: unbalanced End_element")
      | Token.Text { content; _ } -> add_node (Text content)
      | Token.Comment c -> add_node (Comment c)
      | Token.Pi { target; data } -> add_node (Pi { target; data }))
    tokens;
  if !stack <> [] then invalid_arg "Tree: unclosed element";
  match !root with
  | None -> invalid_arg "Tree: no root element"
  | Some root ->
      { before_root = List.rev !misc_before; root; after_root = List.rev !misc_after }

let of_tokens tokens = (doc_of_tokens tokens).root

let rec emit_node node acc =
  match node with
  | Element { name; attrs; ns_decls; children } ->
      let acc = Token.Start_element { name; attrs; ns_decls } :: acc in
      let acc = List.fold_left (fun acc c -> emit_node c acc) acc children in
      Token.End_element :: acc
  | Text content -> Token.Text { content; annot = None } :: acc
  | Comment c -> Token.Comment c :: acc
  | Pi { target; data } -> Token.Pi { target; data } :: acc

let tokens_of_node node = List.rev (emit_node node [])

let to_tokens doc =
  let acc = [ Token.Start_document ] in
  let acc = List.fold_left (fun acc n -> emit_node n acc) acc doc.before_root in
  let acc = emit_node doc.root acc in
  let acc = List.fold_left (fun acc n -> emit_node n acc) acc doc.after_root in
  List.rev (Token.End_document :: acc)

let rec node_count = function
  | Element { attrs; children; _ } ->
      1 + List.length attrs
      + List.fold_left (fun acc c -> acc + node_count c) 0 children
  | Text _ | Comment _ | Pi _ -> 1

let rec equal a b =
  match (a, b) with
  | Element x, Element y ->
      Qname.equal x.name y.name
      && List.equal
           (fun (p : Token.attr) (q : Token.attr) ->
             Qname.equal p.name q.name && String.equal p.value q.value)
           x.attrs y.attrs
      && List.equal equal x.children y.children
  | Text x, Text y -> String.equal x y
  | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> String.equal x.target y.target && String.equal x.data y.data
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

let text_content node =
  let buf = Buffer.create 32 in
  let rec walk = function
    | Text s -> Buffer.add_string buf s
    | Element { children; _ } -> List.iter walk children
    | Comment _ | Pi _ -> ()
  in
  walk node;
  Buffer.contents buf
