type t = {
  by_name : (string, int) Hashtbl.t;
  mutable by_id : string array;
  mutable next : int;
}

let create () =
  let t = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 } in
  Hashtbl.replace t.by_name "" 0;
  t.by_id.(0) <- "";
  t.next <- 1;
  t

let intern t s =
  match Hashtbl.find_opt t.by_name s with
  | Some id -> id
  | None ->
      let id = t.next in
      if id >= Array.length t.by_id then begin
        let bigger = Array.make (2 * Array.length t.by_id) "" in
        Array.blit t.by_id 0 bigger 0 t.next;
        t.by_id <- bigger
      end;
      Hashtbl.replace t.by_name s id;
      t.by_id.(id) <- s;
      t.next <- id + 1;
      id

let lookup t s = Hashtbl.find_opt t.by_name s

let name t id =
  if id < 0 || id >= t.next then
    invalid_arg (Printf.sprintf "Name_dict.name: unknown id %d" id)
  else t.by_id.(id)

let size t = t.next

let to_list t = List.init t.next (fun id -> (id, t.by_id.(id)))

let restore entries =
  let t = create () in
  List.iter
    (fun (id, s) ->
      if id <> 0 then begin
        let assigned = intern t s in
        if assigned <> id then
          invalid_arg "Name_dict.restore: ids must be dense and in order"
      end)
    (List.sort compare entries);
  t
