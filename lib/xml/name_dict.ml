(* Interning takes a mutex (parse-time only); reverse lookups are
   lock-free.  [by_id]/[next] follow a publication protocol: [intern]
   writes the array slot (and swaps in a grown array) *before* the
   release-store of [next], and readers load [next] first — acquiring it
   guarantees they observe the slot and any replacement array. *)
type t = {
  lock : Mutex.t; (* guards by_name and writers of by_id/next *)
  by_name : (string, int) Hashtbl.t;
  by_id : string array Atomic.t;
  next : int Atomic.t;
}

let create () =
  let arr = Array.make 64 "" in
  let t =
    {
      lock = Mutex.create ();
      by_name = Hashtbl.create 64;
      by_id = Atomic.make arr;
      next = Atomic.make 0;
    }
  in
  Hashtbl.replace t.by_name "" 0;
  arr.(0) <- "";
  Atomic.set t.next 1;
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let intern t s =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_name s with
      | Some id -> id
      | None ->
          let id = Atomic.get t.next in
          let arr = Atomic.get t.by_id in
          let arr =
            if id >= Array.length arr then begin
              let bigger = Array.make (2 * Array.length arr) "" in
              Array.blit arr 0 bigger 0 id;
              Atomic.set t.by_id bigger;
              bigger
            end
            else arr
          in
          Hashtbl.replace t.by_name s id;
          arr.(id) <- s;
          Atomic.set t.next (id + 1);
          id)

let lookup t s = locked t (fun () -> Hashtbl.find_opt t.by_name s)

let name t id =
  let n = Atomic.get t.next in
  if id < 0 || id >= n then
    invalid_arg (Printf.sprintf "Name_dict.name: unknown id %d" id)
  else (Atomic.get t.by_id).(id)

let size t = Atomic.get t.next

let to_list t =
  let n = Atomic.get t.next in
  let arr = Atomic.get t.by_id in
  List.init n (fun id -> (id, arr.(id)))

let restore entries =
  let t = create () in
  List.iter
    (fun (id, s) ->
      if id <> 0 then begin
        let assigned = intern t s in
        if assigned <> id then
          invalid_arg "Name_dict.restore: ids must be dense and in order"
      end)
    (List.sort compare entries);
  t
