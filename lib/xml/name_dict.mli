(** Database-wide name dictionary: "all the names for elements, attributes,
    and namespaces are encoded using integers across the entire database"
    (§3.1). Id 0 is reserved for the empty string (no namespace / no
    prefix).

    Domain-safe: {!intern}/{!lookup} serialize on an internal mutex
    (parse-time paths), while {!name}/{!size}/{!to_list} are lock-free
    reads against atomically published state — safe from parallel scan
    domains. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Returns the id for [s], assigning a fresh one on first sight. *)

val lookup : t -> string -> int option
(** Id if already interned, without assigning. *)

val name : t -> int -> string
(** Reverse lookup. @raise Invalid_argument on unknown id. *)

val size : t -> int

val to_list : t -> (int * string) list
(** Stable export for catalog persistence, sorted by id. *)

val restore : (int * string) list -> t
