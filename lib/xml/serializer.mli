(** Serialization services (§4.4): token stream back to XML text. The sink
    form lets any virtual-SAX iterator pipe events straight to output without
    materializing intermediate trees. *)

val escape_text : string -> string
val escape_attr : string -> string

val make_sink : Name_dict.t -> Buffer.t -> Token.t -> unit
(** Event consumer appending markup to the buffer. *)

val to_string : ?decl:bool -> Name_dict.t -> Token.t list -> string
(** [decl] prepends an XML declaration (default false). *)
