(** Non-validating XML parser, custom-built as in §3.2: a single pass over
    the input producing resolved tokens, with no DOM construction and no
    per-character callback overhead.

    Supported: elements, attributes, namespaces (with proper scoping),
    character data, entity and character references, CDATA sections,
    comments, processing instructions, an XML declaration and a (skipped)
    DOCTYPE. Well-formedness is enforced: tag balance, single root element,
    no duplicate attributes. *)

exception Parse_error of { pos : int; msg : string }

val parse : Name_dict.t -> string -> Token.t list
(** Full document to token list (including [Start_document] /
    [End_document]).
    @raise Parse_error on malformed input. *)

val parse_iter : Name_dict.t -> string -> (Token.t -> unit) -> unit
(** Streaming variant: the callback observes the same tokens in order. *)

val error_message : exn -> string option
(** Renders a {!Parse_error} for display. *)
