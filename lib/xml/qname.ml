type t = { uri : int; local : int; prefix : int }

let make ?(uri = 0) ?(prefix = 0) local = { uri; local; prefix }
let equal a b = a.uri = b.uri && a.local = b.local

let compare a b =
  let c = Int.compare a.uri b.uri in
  if c <> 0 then c else Int.compare a.local b.local

let hash t = (t.uri * 65599) + t.local

let to_string dict t =
  let local = Name_dict.name dict t.local in
  if t.prefix = 0 then local else Name_dict.name dict t.prefix ^ ":" ^ local
