type attr = { name : Qname.t; value : string; annot : Typed_value.t option }

type element = {
  name : Qname.t;
  attrs : attr list;
  ns_decls : (int * int) list;
}

type t =
  | Start_document
  | End_document
  | Start_element of element
  | End_element
  | Text of { content : string; annot : Typed_value.t option }
  | Comment of string
  | Pi of { target : string; data : string }

let text content = Text { content; annot = None }

let element ?(attrs = []) ?(ns_decls = []) name =
  Start_element { name; attrs; ns_decls }

let attr ?annot name value = { name; value; annot }

let attr_equal (a : attr) (b : attr) =
  Qname.equal a.name b.name
  && String.equal a.value b.value
  && Option.equal Typed_value.equal a.annot b.annot

let equal a b =
  match (a, b) with
  | Start_document, Start_document
  | End_document, End_document
  | End_element, End_element ->
      true
  | Start_element x, Start_element y ->
      Qname.equal x.name y.name
      && List.equal attr_equal x.attrs y.attrs
      && List.equal ( = ) x.ns_decls y.ns_decls
  | Text x, Text y ->
      String.equal x.content y.content
      && Option.equal Typed_value.equal x.annot y.annot
  | Comment x, Comment y -> String.equal x y
  | Pi x, Pi y -> String.equal x.target y.target && String.equal x.data y.data
  | ( ( Start_document | End_document | Start_element _ | End_element | Text _
      | Comment _ | Pi _ ),
      _ ) ->
      false

let pp dict fmt = function
  | Start_document -> Format.fprintf fmt "<doc>"
  | End_document -> Format.fprintf fmt "</doc>"
  | Start_element e ->
      Format.fprintf fmt "<%s%s>" (Qname.to_string dict e.name)
        (String.concat ""
           (List.map
              (fun (a : attr) ->
                Printf.sprintf " %s=%S" (Qname.to_string dict a.name) a.value)
              e.attrs))
  | End_element -> Format.fprintf fmt "</>"
  | Text { content; _ } -> Format.fprintf fmt "%S" content
  | Comment c -> Format.fprintf fmt "<!--%s-->" c
  | Pi { target; data } -> Format.fprintf fmt "<?%s %s?>" target data
