(** Typed values carried as annotations on schema-validated token streams and
    used as XPath value-index keys (§3.3: "a few simple types supported, such
    as double, string, and date"; §4.3: decimal floating point per IEEE
    754r). *)

type t =
  | String of string
  | Double of float
  | Decimal of Rx_util.Decimal.t
  | Integer of int
  | Boolean of bool
  | Date of { year : int; month : int; day : int }

val compare : t -> t -> int
(** Total order within a type; cross-type comparisons order by type tag. *)

val equal : t -> t -> bool
val to_string : t -> string

val of_string : [ `String | `Double | `Decimal | `Integer | `Boolean | `Date ] ->
  string -> t option
(** Parses the lexical form (whitespace-trimmed) into the requested type. *)

val pp : Format.formatter -> t -> unit
