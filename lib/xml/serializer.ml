let escape_into buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s + 8) in
  escape_into buf ~attr:true s;
  Buffer.contents buf

let make_sink dict buf =
  (* element-name stack so End_element can emit the matching close tag; a
     start tag is left open ("pending") so an immediately following
     End_element collapses to a self-closing tag *)
  let stack = ref [] in
  let pending = ref false in
  let add_qname q = Buffer.add_string buf (Qname.to_string dict q) in
  let close_pending () =
    if !pending then begin
      Buffer.add_char buf '>';
      pending := false
    end
  in
  fun token ->
    match token with
    | Token.Start_document | Token.End_document -> close_pending ()
    | Token.Start_element { name; attrs; ns_decls } ->
        close_pending ();
        stack := name :: !stack;
        Buffer.add_char buf '<';
        add_qname name;
        List.iter
          (fun (prefix, uri) ->
            Buffer.add_char buf ' ';
            if prefix = 0 then Buffer.add_string buf "xmlns"
            else begin
              Buffer.add_string buf "xmlns:";
              Buffer.add_string buf (Name_dict.name dict prefix)
            end;
            Buffer.add_string buf "=\"";
            escape_into buf ~attr:true (Name_dict.name dict uri);
            Buffer.add_char buf '"')
          ns_decls;
        List.iter
          (fun (a : Token.attr) ->
            Buffer.add_char buf ' ';
            add_qname a.name;
            Buffer.add_string buf "=\"";
            escape_into buf ~attr:true a.value;
            Buffer.add_char buf '"')
          attrs;
        pending := true
    | Token.End_element -> (
        match !stack with
        | name :: rest ->
            stack := rest;
            if !pending then begin
              Buffer.add_string buf "/>";
              pending := false
            end
            else begin
              Buffer.add_string buf "</";
              add_qname name;
              Buffer.add_char buf '>'
            end
        | [] -> invalid_arg "Serializer: unbalanced End_element")
    | Token.Text { content; _ } ->
        close_pending ();
        escape_into buf ~attr:false content
    | Token.Comment c ->
        close_pending ();
        Buffer.add_string buf "<!--";
        Buffer.add_string buf c;
        Buffer.add_string buf "-->"
    | Token.Pi { target; data } ->
        close_pending ();
        Buffer.add_string buf "<?";
        Buffer.add_string buf target;
        if data <> "" then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf data
        end;
        Buffer.add_string buf "?>"

let to_string ?(decl = false) dict tokens =
  let buf = Buffer.create 256 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  let sink = make_sink dict buf in
  List.iter sink tokens;
  Buffer.contents buf
