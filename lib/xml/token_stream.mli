(** The buffered binary token stream of §3.2: tokens serialized into byte
    batches so downstream consumers (tree construction, validation, index
    key generation) pay one procedure call per batch instead of one per
    event — the paper's answer to SAX/DOM overhead. *)

val encode : Rx_util.Bytes_io.Writer.t -> Token.t -> unit
val encode_all : Token.t list -> string

val encode_annot : Rx_util.Bytes_io.Writer.t -> Typed_value.t option -> unit
(** Binary codec for type annotations, shared with the packed record
    format. *)

val decode_annot : Rx_util.Bytes_io.Reader.t -> Typed_value.t option

val decode_iter : string -> (Token.t -> unit) -> unit
val decode_all : string -> Token.t list

val of_document : Name_dict.t -> string -> string
(** Parse an XML document straight into its binary token stream. *)

(** Pull-based reader over a binary stream (the iterator attached to
    token-stream data in the Fig. 8 runtime). *)
module Reader : sig
  type t

  val of_string : string -> t
  val next : t -> Token.t option
  val peek : t -> Token.t option
end
