(** B+tree node page layout.

    Cells live at the end of the page; a sorted cell-pointer array grows
    forward after the header, so binary search never moves cell bodies.
    Leaf cells hold (key, value); internal cells hold (key, child) with the
    convention that [child] covers keys strictly below [key], and the
    header's [right] field is the rightmost child (or, for leaves, the
    right-sibling page for range scans). *)

val init : bytes -> level:int -> unit
val level : bytes -> int
val is_leaf : bytes -> bool
val ncells : bytes -> int

val right : bytes -> int
(** Right sibling (leaf) or rightmost child (internal); 0 if none. *)

val set_right : bytes -> int -> unit

val key_at : bytes -> int -> string
val leaf_cell : bytes -> int -> string * string
val internal_cell : bytes -> int -> string * int
val set_internal_child : bytes -> int -> int -> unit
(** Rewrites the child pointer of cell [i] in place. *)

val search : bytes -> string -> bool * int
(** [(found, i)] where [i] is the index of the first cell whose key is
    [>= key]; [found] reports an exact match at [i]. *)

val leaf_insert_at : bytes -> int -> key:string -> value:string -> bool
(** [false] if the node is full (caller must split). *)

val internal_insert_at : bytes -> int -> key:string -> child:int -> bool
val delete_at : bytes -> int -> unit
val replace_value_at : bytes -> int -> string -> bool
val free_space : bytes -> int

val max_entry_size : page_size:int -> int
(** Upper bound on [key + value] length such that any node can always hold
    at least four entries. *)

val cells : bytes -> (string * string) list
(** All cells in key order; for internal nodes the "value" is the u32 child
    in big-endian. *)
