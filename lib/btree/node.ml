(* Layout:
     16  u16 ncells
     18  u16 cell_start
     20  u16 frag
     22  u32 right
     26  u16 level
     28  reserved to 32
     32  cell pointer array (u16 per cell, sorted by key)
   Leaf cell:     varint klen | varint vlen | key | value
   Internal cell: varint klen | u32 child | key *)

let ptr_base = 32

let u16_get page off =
  (Char.code (Bytes.get page off) lsl 8) lor Char.code (Bytes.get page (off + 1))

let u16_set page off v =
  Bytes.set page off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set page (off + 1) (Char.chr (v land 0xff))

let u32_get page off = (u16_get page off lsl 16) lor u16_get page (off + 2)

let u32_set page off v =
  u16_set page off ((v lsr 16) land 0xffff);
  u16_set page (off + 2) (v land 0xffff)

let ncells page = u16_get page 16
let set_ncells page v = u16_set page 16 v
let cell_start page = u16_get page 18
let set_cell_start page v = u16_set page 18 v
let frag page = u16_get page 20
let set_frag page v = u16_set page 20 v
let right page = u32_get page 22
let set_right page v = u32_set page 22 v
let level page = u16_get page 26
let is_leaf page = level page = 0

let init page ~level =
  set_ncells page 0;
  set_cell_start page (Bytes.length page);
  set_frag page 0;
  set_right page 0;
  u16_set page 26 level

let ptr_at page i = u16_get page (ptr_base + (2 * i))
let set_ptr_at page i v = u16_set page (ptr_base + (2 * i)) v

let read_varint page off =
  let rec loop off shift acc =
    let b = Char.code (Bytes.get page off) in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, off + 1) else loop (off + 1) (shift + 7) acc
  in
  loop off 0 0

(* Returns (key, payload_off, payload_len_or_child, cell_end). *)
let parse_leaf_cell page off =
  let klen, off = read_varint page off in
  let vlen, off = read_varint page off in
  let key = Bytes.sub_string page off klen in
  let value = Bytes.sub_string page (off + klen) vlen in
  (key, value, off + klen + vlen)

let parse_internal_cell page off =
  let klen, off = read_varint page off in
  let child = u32_get page off in
  let key = Bytes.sub_string page (off + 4) klen in
  (key, child, off + 4 + klen)

let key_at page i =
  let off = ptr_at page i in
  if is_leaf page then
    let key, _, _ = parse_leaf_cell page off in
    key
  else
    let key, _, _ = parse_internal_cell page off in
    key

let leaf_cell page i =
  let key, value, _ = parse_leaf_cell page (ptr_at page i) in
  (key, value)

let internal_cell page i =
  let key, child, _ = parse_internal_cell page (ptr_at page i) in
  (key, child)

let set_internal_child page i child =
  let off = ptr_at page i in
  let _, off' = read_varint page off in
  u32_set page off' child

let cell_size_at page i =
  let off = ptr_at page i in
  if is_leaf page then
    let _, _, e = parse_leaf_cell page off in
    e - off
  else
    let _, _, e = parse_internal_cell page off in
    e - off

let search page key =
  let n = ncells page in
  (* binary search for the first index with key_at >= key *)
  let rec loop lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (key_at page mid) key < 0 then loop (mid + 1) hi
      else loop lo mid
  in
  let i = loop 0 n in
  let found = i < n && String.equal (key_at page i) key in
  (found, i)

let free_space page =
  cell_start page - (ptr_base + (2 * ncells page)) + frag page

let compact page =
  let n = ncells page in
  let cells =
    List.init n (fun i ->
        let off = ptr_at page i in
        Bytes.sub page off (cell_size_at page i))
  in
  let pos = ref (Bytes.length page) in
  List.iteri
    (fun i cell ->
      let len = Bytes.length cell in
      pos := !pos - len;
      Bytes.blit cell 0 page !pos len;
      set_ptr_at page i !pos)
    cells;
  set_cell_start page !pos;
  set_frag page 0

(* Reserve [size] bytes of cell space plus one pointer slot; returns the cell
   offset or None if even compaction cannot make room. *)
let reserve page size =
  let needed_ptr = ptr_base + (2 * (ncells page + 1)) in
  if cell_start page - needed_ptr < size then begin
    if cell_start page - needed_ptr + frag page < size then None
    else begin
      compact page;
      if cell_start page - needed_ptr < size then None
      else begin
        let off = cell_start page - size in
        set_cell_start page off;
        Some off
      end
    end
  end
  else begin
    let off = cell_start page - size in
    set_cell_start page off;
    Some off
  end

let insert_ptr page i off =
  let n = ncells page in
  (* shift pointers [i, n) right by one *)
  for j = n downto i + 1 do
    set_ptr_at page j (ptr_at page (j - 1))
  done;
  set_ptr_at page i off;
  set_ncells page (n + 1)

let write_varint page off v =
  let rec loop off v =
    if v < 0x80 then begin
      Bytes.set page off (Char.chr v);
      off + 1
    end
    else begin
      Bytes.set page off (Char.chr (0x80 lor (v land 0x7f)));
      loop (off + 1) (v lsr 7)
    end
  in
  loop off v

let varint_size v =
  let rec loop v acc = if v < 0x80 then acc else loop (v lsr 7) (acc + 1) in
  loop v 1

let leaf_insert_at page i ~key ~value =
  let klen = String.length key and vlen = String.length value in
  let size = varint_size klen + varint_size vlen + klen + vlen in
  match reserve page size with
  | None -> false
  | Some off ->
      let o = write_varint page off klen in
      let o = write_varint page o vlen in
      Bytes.blit_string key 0 page o klen;
      Bytes.blit_string value 0 page (o + klen) vlen;
      insert_ptr page i off;
      true

let internal_insert_at page i ~key ~child =
  let klen = String.length key in
  let size = varint_size klen + 4 + klen in
  match reserve page size with
  | None -> false
  | Some off ->
      let o = write_varint page off klen in
      u32_set page o child;
      Bytes.blit_string key 0 page (o + 4) klen;
      insert_ptr page i off;
      true

let delete_at page i =
  let n = ncells page in
  set_frag page (frag page + cell_size_at page i);
  for j = i to n - 2 do
    set_ptr_at page j (ptr_at page (j + 1))
  done;
  set_ncells page (n - 1)

let replace_value_at page i value =
  let key, old_value = leaf_cell page i in
  if String.length value = String.length old_value then begin
    (* overwrite in place *)
    let off = ptr_at page i in
    let klen, off = read_varint page off in
    let _, off = read_varint page off in
    Bytes.blit_string value 0 page (off + klen) (String.length value);
    true
  end
  else begin
    delete_at page i;
    if leaf_insert_at page i ~key ~value then true
    else begin
      (* restore the old cell so the caller can split *)
      let restored = leaf_insert_at page i ~key ~value:old_value in
      assert restored;
      false
    end
  end

let max_entry_size ~page_size = (page_size - 64) / 4

let cells page =
  let n = ncells page in
  if is_leaf page then List.init n (fun i -> leaf_cell page i)
  else
    List.init n (fun i ->
        let key, child = internal_cell page i in
        let b = Bytes.create 4 in
        Bytes.set_int32_be b 0 (Int32.of_int child);
        (key, Bytes.to_string b))
