(** B+tree index manager over buffer-pool pages.

    Keys and values are byte strings; keys are unique and ordered by
    [String.compare] (callers build composite keys with
    {!Rx_util.Key_codec}). Deletion is lazy (no rebalancing), as in several
    production engines; pages never become unreachable. All page mutations
    flow through {!Rx_storage.Buffer_pool.update} and are therefore
    journaled. *)

type t

val create : Rx_storage.Buffer_pool.t -> t
(** Allocates a meta page and an empty root leaf. *)

val attach : Rx_storage.Buffer_pool.t -> meta_page:int -> t
val meta_page : t -> int

val insert : t -> key:string -> value:string -> unit
(** Inserts or replaces.
    @raise Invalid_argument if [key + value] exceeds {!Node.max_entry_size}. *)

val find : t -> string -> string option
val mem : t -> string -> bool

val delete : t -> string -> bool
(** [true] if the key was present. *)

val entry_count : t -> int
val height : t -> int

val iter_range :
  t ->
  ?lo:string ->
  ?hi:string ->
  (string -> string -> [ `Continue | `Stop ]) ->
  unit
(** In-order iteration over keys in [\[lo, hi)]; unbounded ends when
    omitted. When a readahead window is set (see {!set_readahead}), the
    leaf-chain walk speculatively prefetches the pages numerically following
    each cache-missing leaf in one batched read. *)

val set_readahead : t -> int -> unit
(** Sets the leaf-chain readahead window used by {!iter_range} (and the
    range/prefix helpers built on it). Speculative: leaves split off
    consecutive page allocations, so the numeric successors of a leaf are
    usually the next leaves in the chain; misguesses are skipped by the pool
    or surface as [bufpool.readahead.wasted]. [n <= 1] (the default, 0)
    disables it. *)

val readahead : t -> int
(** Current leaf-chain readahead window. *)

val iter_prefix :
  t -> prefix:string -> (string -> string -> [ `Continue | `Stop ]) -> unit

val fold_range :
  t -> ?lo:string -> ?hi:string -> init:'a -> ('a -> string -> string -> 'a) -> 'a

val to_list : t -> (string * string) list

val page_count : t -> int
(** Pages reachable from the root (meta page excluded) — index-size
    accounting for E1. *)

val check_invariants : t -> unit
(** Validates key order within nodes, separator bounds, level consistency
    and the leaf chain. @raise Failure on violation. *)
