open Rx_storage

type t = {
  pool : Buffer_pool.t;
  meta : int;
  mutable readahead : int; (* leaf-chain readahead window; <= 1 disables *)
  c_lookups : Rx_obs.Metrics.counter;
  c_splits : Rx_obs.Metrics.counter;
  h_scan : Rx_obs.Metrics.histogram;
}

let set_readahead t n = t.readahead <- n
let readahead t = t.readahead

(* Speculative leaf-chain readahead: nodes split off consecutive allocations,
   so the numeric window after [page_no] usually contains the next leaves.
   [Buffer_pool.prefetch] skips cached/foreign pages cheaply; misguesses show
   up as bufpool.readahead.wasted. *)
let prefetch_chain t page_no =
  if t.readahead > 1 && page_no <> 0 && not (Buffer_pool.cached t.pool page_no)
  then
    Buffer_pool.prefetch t.pool
      (List.init t.readahead (fun i -> page_no + i))

let instruments pool =
  let metrics = Buffer_pool.metrics pool in
  Rx_obs.Metrics.
    ( counter metrics "btree.lookups",
      counter metrics "btree.node_splits",
      histogram metrics "btree.scan_len" )

(* Meta page layout: 16 u32 root; 20 u64 entry count. *)
let u32_get page off =
  (Char.code (Bytes.get page off) lsl 24)
  lor (Char.code (Bytes.get page (off + 1)) lsl 16)
  lor (Char.code (Bytes.get page (off + 2)) lsl 8)
  lor Char.code (Bytes.get page (off + 3))

let u32_set page off v =
  Bytes.set page off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set page (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set page (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set page (off + 3) (Char.chr (v land 0xff))

let meta_root page = u32_get page 16
let meta_set_root page v = u32_set page 16 v
let meta_count page = Int64.to_int (Bytes.get_int64_be page 20)
let meta_set_count page v = Bytes.set_int64_be page 20 (Int64.of_int v)

let new_node pool ~level =
  let kind = if level = 0 then Page.Btree_leaf else Page.Btree_internal in
  let page_no = Buffer_pool.alloc pool kind in
  Buffer_pool.update pool page_no (fun page -> Node.init page ~level);
  page_no

let create pool =
  let meta = Buffer_pool.alloc pool Page.Meta in
  let root = new_node pool ~level:0 in
  Buffer_pool.update pool meta (fun page ->
      meta_set_root page root;
      meta_set_count page 0);
  let c_lookups, c_splits, h_scan = instruments pool in
  { pool; meta; readahead = 0; c_lookups; c_splits; h_scan }

let attach pool ~meta_page =
  let c_lookups, c_splits, h_scan = instruments pool in
  { pool; meta = meta_page; readahead = 0; c_lookups; c_splits; h_scan }
let meta_page t = t.meta
let root t = Buffer_pool.with_page t.pool t.meta meta_root
let entry_count t = Buffer_pool.with_page t.pool t.meta meta_count

let bump_count t delta =
  Buffer_pool.update t.pool t.meta (fun page ->
      meta_set_count page (meta_count page + delta))

let height t =
  let rec depth page_no acc =
    let leaf, child =
      Buffer_pool.with_page t.pool page_no (fun page ->
          (Node.is_leaf page, Node.right page))
    in
    if leaf then acc
    else
      let child =
        if child <> 0 then child
        else
          Buffer_pool.with_page t.pool page_no (fun page ->
              snd (Node.internal_cell page 0))
      in
      depth child (acc + 1)
  in
  depth (root t) 1

(* --- insertion --- *)

(* Rebuild [page] as an internal node at [level] from an entry list and
   rightmost child. *)
let rebuild_internal page ~level entries ~rightmost =
  Node.init page ~level;
  List.iteri
    (fun i (key, child) ->
      if not (Node.internal_insert_at page i ~key ~child) then
        failwith "Btree: internal rebuild overflow")
    entries;
  Node.set_right page rightmost

let rebuild_leaf page cells ~sibling =
  Node.init page ~level:0;
  List.iteri
    (fun i (key, value) ->
      if not (Node.leaf_insert_at page i ~key ~value) then
        failwith "Btree: leaf rebuild overflow")
    cells;
  Node.set_right page sibling

let leaf_cells page =
  List.init (Node.ncells page) (fun i -> Node.leaf_cell page i)

let internal_entries page =
  List.init (Node.ncells page) (fun i -> Node.internal_cell page i)

(* Split a cell list roughly in half by byte size. *)
let split_point cells size_of =
  let total = List.fold_left (fun acc c -> acc + size_of c) 0 cells in
  let rec loop acc i = function
    | [] -> i
    | c :: rest ->
        let acc = acc + size_of c in
        if acc * 2 >= total then i + 1 else loop acc (i + 1) rest
  in
  let m = loop 0 0 cells in
  (* keep both sides non-empty *)
  max 1 (min m (List.length cells - 1))

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

let insert_leaf t page_no ~key ~value =
  let fast, was_replace =
    Buffer_pool.update t.pool page_no (fun page ->
        let found, i = Node.search page key in
        if found then
          if Node.replace_value_at page i value then (true, true)
          else (false, true)
        else if Node.leaf_insert_at page i ~key ~value then (true, false)
        else (false, false))
  in
  if not was_replace && fast then bump_count t 1;
  if fast then None
  else begin
    (* split: gather cells, merge the pending entry, rebuild both halves *)
    Rx_obs.Metrics.incr t.c_splits;
    let cells, sibling =
      Buffer_pool.with_page t.pool page_no (fun page ->
          (leaf_cells page, Node.right page))
    in
    let cells =
      let rec merge = function
        | [] -> [ (key, value) ]
        | (k, v) :: rest ->
            let c = String.compare key k in
            if c < 0 then (key, value) :: (k, v) :: rest
            else if c = 0 then (key, value) :: rest
            else (k, v) :: merge rest
      in
      merge cells
    in
    let size_of (k, v) = String.length k + String.length v + 4 in
    let m = split_point cells size_of in
    let left = take m cells and right_cells = drop m cells in
    let right_no = new_node t.pool ~level:0 in
    Buffer_pool.update t.pool right_no (fun page ->
        rebuild_leaf page right_cells ~sibling);
    Buffer_pool.update t.pool page_no (fun page ->
        rebuild_leaf page left ~sibling:right_no);
    if not was_replace then bump_count t 1;
    match right_cells with
    | (sep, _) :: _ -> Some (sep, right_no)
    | [] -> assert false
  end

let rec insert_rec t page_no ~key ~value =
  let leaf = Buffer_pool.with_page t.pool page_no Node.is_leaf in
  if leaf then insert_leaf t page_no ~key ~value
  else begin
    let child_index, child =
      Buffer_pool.with_page t.pool page_no (fun page ->
          let found, i = Node.search page key in
          let idx = if found then i + 1 else i in
          let child =
            if idx < Node.ncells page then snd (Node.internal_cell page idx)
            else Node.right page
          in
          (idx, child))
    in
    match insert_rec t child ~key ~value with
    | None -> None
    | Some (sep, right_page) ->
        let fast =
          Buffer_pool.update t.pool page_no (fun page ->
              if Node.internal_insert_at page child_index ~key:sep ~child then begin
                if child_index + 1 < Node.ncells page then
                  Node.set_internal_child page (child_index + 1) right_page
                else Node.set_right page right_page;
                true
              end
              else false)
        in
        if fast then None
        else begin
          (* split the internal node in list-land, promoting the middle key *)
          Rx_obs.Metrics.incr t.c_splits;
          let entries, rightmost, level =
            Buffer_pool.with_page t.pool page_no (fun page ->
                (internal_entries page, Node.right page, Node.level page))
          in
          let entries, rightmost =
            (* splice (sep, child) at child_index and repoint the old route *)
            let n = List.length entries in
            if child_index = n then (entries @ [ (sep, child) ], right_page)
            else
              let entries =
                List.concat
                  (List.mapi
                     (fun i (k, c) ->
                       if i = child_index then [ (sep, child); (k, right_page) ]
                       else [ (k, c) ])
                     entries)
              in
              (entries, rightmost)
          in
          let size_of (k, _) = String.length k + 8 in
          let m = split_point entries size_of in
          let left = take m entries in
          let promote_key, promote_child =
            match drop m entries with e :: _ -> e | [] -> assert false
          in
          let right_entries = drop (m + 1) entries in
          let right_no = new_node t.pool ~level in
          Buffer_pool.update t.pool right_no (fun page ->
              rebuild_internal page ~level right_entries ~rightmost);
          Buffer_pool.update t.pool page_no (fun page ->
              rebuild_internal page ~level left ~rightmost:promote_child);
          Some (promote_key, right_no)
        end
  end

let insert t ~key ~value =
  let max_entry =
    Node.max_entry_size ~page_size:(Buffer_pool.page_size t.pool)
  in
  if String.length key + String.length value > max_entry then
    invalid_arg "Btree.insert: entry too large";
  match insert_rec t (root t) ~key ~value with
  | None -> ()
  | Some (sep, right_page) ->
      Rx_obs.Metrics.incr t.c_splits;
      let old_root = root t in
      let level =
        1 + Buffer_pool.with_page t.pool old_root Node.level
      in
      let new_root = new_node t.pool ~level in
      Buffer_pool.update t.pool new_root (fun page ->
          rebuild_internal page ~level [ (sep, old_root) ] ~rightmost:right_page);
      Buffer_pool.update t.pool t.meta (fun page -> meta_set_root page new_root)

(* --- lookup --- *)

let rec find_leaf t page_no key =
  let leaf = Buffer_pool.with_page t.pool page_no Node.is_leaf in
  if leaf then page_no
  else
    let child =
      Buffer_pool.with_page t.pool page_no (fun page ->
          let found, i = Node.search page key in
          let idx = if found then i + 1 else i in
          if idx < Node.ncells page then snd (Node.internal_cell page idx)
          else Node.right page)
    in
    find_leaf t child key

let find t key =
  Rx_obs.Metrics.incr t.c_lookups;
  let leaf = find_leaf t (root t) key in
  Buffer_pool.with_page t.pool leaf (fun page ->
      let found, i = Node.search page key in
      if found then Some (snd (Node.leaf_cell page i)) else None)

let mem t key = Option.is_some (find t key)

let delete t key =
  let leaf = find_leaf t (root t) key in
  let deleted =
    Buffer_pool.update t.pool leaf (fun page ->
        let found, i = Node.search page key in
        if found then begin
          Node.delete_at page i;
          true
        end
        else false)
  in
  if deleted then bump_count t (-1);
  deleted

(* --- iteration --- *)

let rec leftmost_leaf t page_no =
  let leaf = Buffer_pool.with_page t.pool page_no Node.is_leaf in
  if leaf then page_no
  else
    let child =
      Buffer_pool.with_page t.pool page_no (fun page ->
          if Node.ncells page > 0 then snd (Node.internal_cell page 0)
          else Node.right page)
    in
    leftmost_leaf t child

let iter_range t ?lo ?hi f =
  Rx_obs.Metrics.incr t.c_lookups;
  let start_leaf =
    match lo with
    | Some key -> find_leaf t (root t) key
    | None -> leftmost_leaf t (root t)
  in
  let within_hi key =
    match hi with None -> true | Some h -> String.compare key h < 0
  in
  let delivered = ref 0 in
  let rec walk page_no start_index =
    if page_no <> 0 then begin
      prefetch_chain t page_no;
      let cells, sibling =
        Buffer_pool.with_page t.pool page_no (fun page ->
            (leaf_cells page, Node.right page))
      in
      let rec consume i = function
        | [] -> `Next
        | (key, value) :: rest ->
            if i < start_index then consume (i + 1) rest
            else if not (within_hi key) then `Done
            else begin
              incr delivered;
              match f key value with
              | `Continue -> consume (i + 1) rest
              | `Stop -> `Done
            end
      in
      match consume 0 cells with
      | `Done -> ()
      | `Next -> walk sibling 0
    end
  in
  let start_index =
    match lo with
    | None -> 0
    | Some key ->
        Buffer_pool.with_page t.pool start_leaf (fun page ->
            snd (Node.search page key))
  in
  walk start_leaf start_index;
  Rx_obs.Metrics.observe t.h_scan !delivered

let next_prefix prefix =
  let b = Bytes.of_string prefix in
  let rec bump i =
    if i < 0 then None
    else if Bytes.get b i = '\xff' then bump (i - 1)
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  bump (Bytes.length b - 1)

let iter_prefix t ~prefix f =
  match next_prefix prefix with
  | Some hi -> iter_range t ~lo:prefix ~hi f
  | None -> iter_range t ~lo:prefix f

let fold_range t ?lo ?hi ~init f =
  let acc = ref init in
  iter_range t ?lo ?hi (fun k v ->
      acc := f !acc k v;
      `Continue);
  !acc

let to_list t =
  List.rev (fold_range t ~init:[] (fun acc k v -> (k, v) :: acc))

let page_count t =
  let count = ref 0 in
  let rec visit page_no =
    incr count;
    let leaf = Buffer_pool.with_page t.pool page_no Node.is_leaf in
    if not leaf then begin
      let children =
        Buffer_pool.with_page t.pool page_no (fun page ->
            let base = List.map snd (internal_entries page) in
            if Node.right page <> 0 then base @ [ Node.right page ] else base)
      in
      List.iter visit children
    end
  in
  visit (root t);
  !count

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* returns (first_key, last_key) of the subtree, or None if empty *)
  let rec check page_no ~lo ~hi ~expected_level =
    Buffer_pool.with_page t.pool page_no (fun page ->
        (match expected_level with
        | Some l when Node.level page <> l ->
            fail "page %d: level %d, expected %d" page_no (Node.level page) l
        | _ -> ());
        let n = Node.ncells page in
        for i = 1 to n - 1 do
          if String.compare (Node.key_at page (i - 1)) (Node.key_at page i) >= 0
          then fail "page %d: keys out of order at %d" page_no i
        done;
        let in_bounds key =
          (match lo with
          | Some l when String.compare key l < 0 ->
              fail "page %d: key below subtree bound" page_no
          | _ -> ());
          match hi with
          | Some h when String.compare key h >= 0 ->
              fail "page %d: key above subtree bound" page_no
          | _ -> ()
        in
        for i = 0 to n - 1 do
          in_bounds (Node.key_at page i)
        done;
        if not (Node.is_leaf page) then begin
          if Node.right page = 0 then
            fail "page %d: internal node without rightmost child" page_no;
          let child_level = Some (Node.level page - 1) in
          let entries = internal_entries page in
          let rec loop lo_bound = function
            | [] ->
                check (Node.right page) ~lo:lo_bound ~hi ~expected_level:child_level
            | (key, child) :: rest ->
                check child ~lo:lo_bound ~hi:(Some key) ~expected_level:child_level;
                loop (Some key) rest
          in
          loop lo entries
        end)
  in
  check (root t) ~lo:None ~hi:None ~expected_level:None;
  (* leaf chain must produce all keys in sorted order and match the count *)
  let prev = ref None in
  let seen = ref 0 in
  iter_range t (fun k _ ->
      (match !prev with
      | Some p when String.compare p k >= 0 -> fail "leaf chain out of order"
      | _ -> ());
      prev := Some k;
      incr seen;
      `Continue);
  if !seen <> entry_count t then
    fail "entry count %d but leaf chain has %d" (entry_count t) !seen
