(** Content-model automata: each complex type's particle is linearized
    (occurrence bounds expanded), turned into a Glushkov NFA and
    determinized into a table-driven DFA — the "binary format like a
    parsing table" of Figure 4 that the validation VM executes. *)

type dfa = {
  start : int;
  accepting : bool array;
  transitions : (int * int) array array;
      (** per state, sorted (symbol, next-state) pairs; symbols are
          name-dictionary ids *)
}

val empty_content : dfa
(** Accepts only the empty child sequence. *)

val of_particle :
  Rx_xml.Name_dict.t -> Schema_model.particle -> dfa
(** @raise Schema_model.Schema_error on occurrence bounds above 64 (guard
    against table explosion). *)

val step : dfa -> state:int -> symbol:int -> int option
(** Binary search in the state's transition table. *)

val state_count : dfa -> int

val encode : Rx_util.Bytes_io.Writer.t -> dfa -> unit
val decode : Rx_util.Bytes_io.Reader.t -> dfa
