(** The compiled ("binary") form of a registered schema (Figure 4): content
    models as DFA tables, attributes and child-element maps resolved to
    name-dictionary ids. The binary encoding is what the catalog stores at
    registration; the validation VM executes the decoded form. *)

type elem_kind =
  | E_simple of Schema_model.simple_type
  | E_complex of int (* index into [types] *)

type ctype = {
  dfa : Automaton.dfa;
  mixed : bool;
  attributes : (int * Schema_model.simple_type * bool) array;
      (** (name id, type, required), sorted by name id *)
  children : (int * elem_kind) array; (** sorted by name id *)
}

type t = {
  types : ctype array;
  roots : (int * elem_kind) array; (** global elements, sorted by name id *)
}

val compile : Rx_xml.Name_dict.t -> Schema_model.t -> t
(** @raise Schema_model.Schema_error on inconsistent schemas (same child
    name with different types within one complex type, undefined type
    references, occurrence bounds beyond the supported limit). *)

val find_child : ctype -> int -> elem_kind option
val find_root : t -> int -> elem_kind option
val find_attribute : ctype -> int -> (Schema_model.simple_type * bool) option

val encode : t -> string
val decode : string -> t

val total_dfa_states : t -> int
(** Size metric for the E7 report. *)
