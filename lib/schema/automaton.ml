open Rx_util
module IS = Set.Make (Int)

type dfa = {
  start : int;
  accepting : bool array;
  transitions : (int * int) array array;
}

type rx =
  | Eps
  | Sym of int (* position *)
  | Cat of rx * rx
  | Alt of rx * rx
  | Star of rx
  | Opt of rx

let max_bounded_occurs = 64

(* Convert a particle into a linearized regex; every occurrence expansion
   allocates fresh positions. *)
let linearize dict particle =
  let next_pos = ref 0 in
  let symbol_of_pos = ref [] in
  let fresh name =
    let p = !next_pos in
    incr next_pos;
    symbol_of_pos := (p, Rx_xml.Name_dict.intern dict name) :: !symbol_of_pos;
    Sym p
  in
  let cat = function [] -> Eps | x :: rest -> List.fold_left (fun a b -> Cat (a, b)) x rest in
  let alt = function
    | [] -> raise (Schema_model.Schema_error "automaton: empty choice")
    | x :: rest -> List.fold_left (fun a b -> Alt (a, b)) x rest
  in
  let rep gen (occurs : Schema_model.occurs) =
    (match occurs.Schema_model.max with
    | Some m when m > max_bounded_occurs ->
        raise
          (Schema_model.Schema_error
             (Printf.sprintf "maxOccurs %d exceeds the supported bound %d" m
                max_bounded_occurs))
    | _ -> ());
    let required = List.init occurs.Schema_model.min (fun _ -> gen ()) in
    let tail =
      match occurs.Schema_model.max with
      | None -> [ Star (gen ()) ]
      | Some m -> List.init (m - occurs.Schema_model.min) (fun _ -> Opt (gen ()))
    in
    cat (required @ tail)
  in
  let rec conv = function
    | Schema_model.P_element { name; occurs; _ } -> rep (fun () -> fresh name) occurs
    | Schema_model.P_seq (parts, occurs) ->
        rep (fun () -> cat (List.map conv parts)) occurs
    | Schema_model.P_choice (parts, occurs) ->
        rep (fun () -> alt (List.map conv parts)) occurs
  in
  let r = conv particle in
  (r, !next_pos, fun p -> List.assoc p !symbol_of_pos)

let rec nullable = function
  | Eps -> true
  | Sym _ -> false
  | Cat (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true

let rec first = function
  | Eps -> IS.empty
  | Sym p -> IS.singleton p
  | Cat (a, b) -> if nullable a then IS.union (first a) (first b) else first a
  | Alt (a, b) -> IS.union (first a) (first b)
  | Star a | Opt a -> first a

let rec last = function
  | Eps -> IS.empty
  | Sym p -> IS.singleton p
  | Cat (a, b) -> if nullable b then IS.union (last a) (last b) else last b
  | Alt (a, b) -> IS.union (last a) (last b)
  | Star a | Opt a -> last a

let follow_sets r n =
  let follow = Array.make n IS.empty in
  let add_all src dst =
    IS.iter (fun p -> follow.(p) <- IS.union follow.(p) dst) src
  in
  let rec walk = function
    | Eps | Sym _ -> ()
    | Cat (a, b) ->
        walk a;
        walk b;
        add_all (last a) (first b)
    | Alt (a, b) ->
        walk a;
        walk b
    | Star a ->
        walk a;
        add_all (last a) (first a)
    | Opt a -> walk a
  in
  walk r;
  follow

let of_particle dict particle =
  let r, n, sym = linearize dict particle in
  let follow = follow_sets r n in
  let firsts = first r and lasts = last r in
  (* Glushkov DFA: a state is the set of positions just read (the initial
     state q0 is the sentinel set {-1}); reading symbol a moves to the
     positions with symbol a among the follow sets (or among [firsts] from
     q0). *)
  let q0_key = [ -1 ] in
  let states = Hashtbl.create 16 in
  let trans = Hashtbl.create 16 in
  let accepting = Hashtbl.create 16 in
  let counter = ref 0 in
  let worklist = Queue.create () in
  let intern key set_opt =
    match Hashtbl.find_opt states key with
    | Some id -> id
    | None ->
        let id = !counter in
        incr counter;
        Hashtbl.replace states key id;
        Queue.add (id, set_opt) worklist;
        id
  in
  let q0 = intern q0_key None in
  Hashtbl.replace accepting q0 (nullable r);
  let bucket_by_symbol pset =
    let buckets = Hashtbl.create 8 in
    IS.iter
      (fun p ->
        let s = sym p in
        Hashtbl.replace buckets s
          (IS.add p (Option.value ~default:IS.empty (Hashtbl.find_opt buckets s))))
      pset;
    buckets
  in
  while not (Queue.is_empty worklist) do
    let id, set_opt = Queue.pop worklist in
    let successors =
      match set_opt with
      | None -> firsts
      | Some set ->
          IS.fold (fun p acc -> IS.union follow.(p) acc) set IS.empty
    in
    let outs =
      Hashtbl.fold
        (fun s target acc ->
          let tid = intern (IS.elements target) (Some target) in
          Hashtbl.replace accepting tid
            (not (IS.is_empty (IS.inter target lasts)));
          (s, tid) :: acc)
        (bucket_by_symbol successors)
        []
    in
    Hashtbl.replace trans id (Array.of_list (List.sort compare outs))
  done;
  let total = !counter in
  {
    start = q0;
    accepting = Array.init total (fun i -> Hashtbl.find accepting i);
    transitions =
      Array.init total (fun i ->
          Option.value ~default:[||] (Hashtbl.find_opt trans i));
  }

let empty_content =
  { start = 0; accepting = [| true |]; transitions = [| [||] |] }

let step dfa ~state ~symbol =
  let table = dfa.transitions.(state) in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let s, next = table.(mid) in
      if s = symbol then Some next
      else if s < symbol then bsearch (mid + 1) hi
      else bsearch lo mid
  in
  bsearch 0 (Array.length table)

let state_count dfa = Array.length dfa.accepting

let encode w dfa =
  Bytes_io.Writer.varint w (Array.length dfa.accepting);
  Bytes_io.Writer.varint w dfa.start;
  Array.iter (fun b -> Bytes_io.Writer.u8 w (if b then 1 else 0)) dfa.accepting;
  Array.iter
    (fun table ->
      Bytes_io.Writer.varint w (Array.length table);
      Array.iter
        (fun (s, next) ->
          Bytes_io.Writer.varint w s;
          Bytes_io.Writer.varint w next)
        table)
    dfa.transitions

let decode r =
  let n = Bytes_io.Reader.varint r in
  let start = Bytes_io.Reader.varint r in
  let accepting = Array.init n (fun _ -> Bytes_io.Reader.u8 r = 1) in
  let transitions =
    Array.init n (fun _ ->
        let k = Bytes_io.Reader.varint r in
        Array.init k (fun _ ->
            let s = Bytes_io.Reader.varint r in
            let next = Bytes_io.Reader.varint r in
            (s, next)))
  in
  { start; accepting; transitions }
