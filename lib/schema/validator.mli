(** Validation runtime ("VM", Figure 4): executes the compiled schema over
    a token stream, producing the same stream with type annotations on
    attribute values and simple-typed element content — the validated,
    typed token stream that tree construction and index key generation
    consume (§3.2). *)

exception Validation_error of { path : string list; msg : string }
(** [path] is the element stack, outermost first. *)

val validate :
  Compiled.t -> Rx_xml.Name_dict.t -> Rx_xml.Token.t list -> Rx_xml.Token.t list
(** @raise Validation_error *)

val validate_iter :
  Compiled.t ->
  Rx_xml.Name_dict.t ->
  Rx_xml.Token.t list ->
  (Rx_xml.Token.t -> unit) ->
  unit
(** Streaming variant: annotated tokens are pushed to the sink; simple
    element content is coalesced into one annotated text token at the
    element's end. *)

val validate_document :
  Compiled.t -> Rx_xml.Name_dict.t -> string -> Rx_xml.Token.t list
(** Parse + validate. *)

val error_message : exn -> string option
