open Rx_xml

type simple_type = St_string | St_double | St_decimal | St_integer | St_boolean | St_date

type occurs = { min : int; max : int option }

type particle =
  | P_element of { name : string; typ : type_ref; occurs : occurs }
  | P_seq of particle list * occurs
  | P_choice of particle list * occurs

and type_ref = Simple of simple_type | Named of string | Anon of complex_type

and complex_type = {
  content : particle option;
  attributes : attribute list;
  mixed : bool;
}

and attribute = { aname : string; atype : simple_type; required : bool }

type t = {
  roots : (string * type_ref) list;
  types : (string * complex_type) list;
}

exception Schema_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Schema_error msg)) fmt

let simple_type_of_string s =
  let bare =
    match String.index_opt s ':' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  match bare with
  | "string" | "token" | "normalizedString" -> Some St_string
  | "double" | "float" -> Some St_double
  | "decimal" -> Some St_decimal
  | "integer" | "int" | "long" | "short" | "nonNegativeInteger" | "positiveInteger"
    ->
      Some St_integer
  | "boolean" -> Some St_boolean
  | "date" -> Some St_date
  | _ -> None

let simple_type_to_tag = function
  | St_string -> 0
  | St_double -> 1
  | St_decimal -> 2
  | St_integer -> 3
  | St_boolean -> 4
  | St_date -> 5

let simple_type_of_tag = function
  | 0 -> St_string
  | 1 -> St_double
  | 2 -> St_decimal
  | 3 -> St_integer
  | 4 -> St_boolean
  | 5 -> St_date
  | n -> error "bad simple type tag %d" n

(* --- XSD parsing over the engine's own tree --- *)

let xsd_uri = "http://www.w3.org/2001/XMLSchema"

let local dict (q : Qname.t) = Name_dict.name dict q.Qname.local

let attr_value dict (attrs : Token.attr list) name =
  List.find_map
    (fun (a : Token.attr) ->
      if Name_dict.name dict a.Token.name.Qname.local = name then Some a.Token.value
      else None)
    attrs

let parse_occurs dict attrs =
  let min =
    match attr_value dict attrs "minOccurs" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> n
        | _ -> error "bad minOccurs %S" s)
    | None -> 1
  in
  let max =
    match attr_value dict attrs "maxOccurs" with
    | Some "unbounded" -> None
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= min -> Some n
        | _ -> error "bad maxOccurs %S" s)
    | None -> Some 1
  in
  { min; max }

let element_children dict node =
  match node with
  | Tree.Element { children; _ } ->
      List.filter_map
        (fun c ->
          match c with
          | Tree.Element ({ name; _ } as e) ->
              Some (local dict { name with Qname.prefix = 0 }, c, e.attrs)
          | _ -> None)
        children
  | _ -> []

let rec parse_type_ref dict ~attrs node_children =
  (* either a type="..." attribute, or an inline xs:complexType child *)
  match attr_value dict attrs "type" with
  | Some tyname -> (
      match simple_type_of_string tyname with
      | Some st -> Simple st
      | None -> Named tyname)
  | None -> (
      match
        List.find_opt (fun (n, _, _) -> n = "complexType") node_children
      with
      | Some (_, node, ct_attrs) -> Anon (parse_complex_type dict node ct_attrs)
      | None -> Simple St_string)

and parse_complex_type dict node attrs =
  let mixed = attr_value dict attrs "mixed" = Some "true" in
  let children = element_children dict node in
  let attributes =
    List.filter_map
      (fun (n, _, a_attrs) ->
        if n = "attribute" then begin
          let aname =
            match attr_value dict a_attrs "name" with
            | Some n -> n
            | None -> error "xs:attribute without name"
          in
          let atype =
            match attr_value dict a_attrs "type" with
            | Some t -> (
                match simple_type_of_string t with
                | Some st -> st
                | None -> error "attribute %s: unsupported type %S" aname t)
            | None -> St_string
          in
          let required = attr_value dict a_attrs "use" = Some "required" in
          Some { aname; atype; required }
        end
        else None)
      children
  in
  let content =
    List.find_map
      (fun (n, node, p_attrs) ->
        match n with
        | "sequence" -> Some (parse_group dict `Seq node p_attrs)
        | "choice" -> Some (parse_group dict `Choice node p_attrs)
        | _ -> None)
      children
  in
  { content; attributes; mixed }

and parse_group dict kind node attrs =
  let occurs = parse_occurs dict attrs in
  let parts =
    List.filter_map
      (fun (n, child, c_attrs) ->
        match n with
        | "element" -> Some (parse_element_particle dict child c_attrs)
        | "sequence" -> Some (parse_group dict `Seq child c_attrs)
        | "choice" -> Some (parse_group dict `Choice child c_attrs)
        | "attribute" -> None
        | other -> error "unsupported construct xs:%s in content model" other)
      (element_children dict node)
  in
  match kind with
  | `Seq -> P_seq (parts, occurs)
  | `Choice ->
      if parts = [] then error "empty xs:choice";
      P_choice (parts, occurs)

and parse_element_particle dict node attrs =
  let name =
    match attr_value dict attrs "name" with
    | Some n -> n
    | None -> error "xs:element without name"
  in
  let occurs = parse_occurs dict attrs in
  let typ = parse_type_ref dict ~attrs (element_children dict node) in
  P_element { name; typ; occurs }

let parse_xsd dict src =
  let tokens =
    try Parser.parse dict src
    with Parser.Parse_error { pos; msg } ->
      error "schema document is not well-formed XML (at %d: %s)" pos msg
  in
  let root = Tree.of_tokens tokens in
  (match root with
  | Tree.Element { name; _ } ->
      let uri = Name_dict.name dict name.Qname.uri in
      let l = Name_dict.name dict name.Qname.local in
      if l <> "schema" then error "root element must be xs:schema, found %s" l;
      if uri <> xsd_uri && uri <> "" then error "unexpected schema namespace %s" uri
  | _ -> error "no root element");
  let top = element_children dict root in
  let types =
    List.filter_map
      (fun (n, node, attrs) ->
        if n = "complexType" then
          match attr_value dict attrs "name" with
          | Some name -> Some (name, parse_complex_type dict node attrs)
          | None -> error "top-level xs:complexType must be named"
        else None)
      top
  in
  let roots =
    List.filter_map
      (fun (n, node, attrs) ->
        if n = "element" then begin
          let name =
            match attr_value dict attrs "name" with
            | Some n -> n
            | None -> error "global xs:element without name"
          in
          Some (name, parse_type_ref dict ~attrs (element_children dict node))
        end
        else None)
      top
  in
  if roots = [] then error "schema declares no global elements";
  { roots; types }

let lookup_type t name =
  match List.assoc_opt name t.types with
  | Some ct -> ct
  | None -> error "undefined type %s" name
