(** XML Schema subset: global elements, named/anonymous complex types with
    sequence/choice content models and occurrence bounds, attributes, and
    the simple types the engine indexes (§3.2/§4.3). Schemas are written in
    (a subset of) XSD and parsed with the engine's own XML parser.

    Restrictions enforced at registration: within one complex type, every
    element particle with a given name must have the same type (so the
    validator can map child name → type with one lookup). *)

type simple_type = St_string | St_double | St_decimal | St_integer | St_boolean | St_date

type occurs = { min : int; max : int option (* None = unbounded *) }

type particle =
  | P_element of { name : string; typ : type_ref; occurs : occurs }
  | P_seq of particle list * occurs
  | P_choice of particle list * occurs

and type_ref = Simple of simple_type | Named of string | Anon of complex_type

and complex_type = {
  content : particle option; (* None = empty content *)
  attributes : attribute list;
  mixed : bool;
}

and attribute = { aname : string; atype : simple_type; required : bool }

type t = {
  roots : (string * type_ref) list; (* global elements *)
  types : (string * complex_type) list; (* named complex types *)
}

exception Schema_error of string

val simple_type_of_string : string -> simple_type option
(** Accepts the [xs:]-prefixed XSD names and bare names. *)

val simple_type_to_tag : simple_type -> int
val simple_type_of_tag : int -> simple_type

val parse_xsd : Rx_xml.Name_dict.t -> string -> t
(** Parses an XSD document (elements: [xs:schema], [xs:element],
    [xs:complexType], [xs:sequence], [xs:choice], [xs:attribute]).
    @raise Schema_error on unsupported or inconsistent constructs. *)

val lookup_type : t -> string -> complex_type
(** @raise Schema_error if undefined. *)
