open Rx_xml

exception Validation_error of { path : string list; msg : string }

type frame =
  | Complex of { ct : Compiled.ctype; mutable state : int; name : string }
  | Simple of { st : Schema_model.simple_type; buffer : Buffer.t; name : string }

let frame_name = function Complex { name; _ } -> name | Simple { name; _ } -> name

let typed_of st s =
  let ty =
    match st with
    | Schema_model.St_string -> `String
    | Schema_model.St_double -> `Double
    | Schema_model.St_decimal -> `Decimal
    | Schema_model.St_integer -> `Integer
    | Schema_model.St_boolean -> `Boolean
    | Schema_model.St_date -> `Date
  in
  Typed_value.of_string ty s

let st_name = function
  | Schema_model.St_string -> "string"
  | Schema_model.St_double -> "double"
  | Schema_model.St_decimal -> "decimal"
  | Schema_model.St_integer -> "integer"
  | Schema_model.St_boolean -> "boolean"
  | Schema_model.St_date -> "date"

let validate_iter compiled dict tokens sink =
  let stack = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Validation_error { path = List.rev_map frame_name !stack; msg }))
      fmt
  in
  let local q = Name_dict.name dict q.Qname.local in
  let annotate_attrs ct (attrs : Token.attr list) ename =
    (* every attribute must be declared; every required one present *)
    let seen = Hashtbl.create 4 in
    let attrs =
      List.map
        (fun (a : Token.attr) ->
          match Compiled.find_attribute ct a.Token.name.Qname.local with
          | None -> fail "undeclared attribute %s on %s" (local a.Token.name) ename
          | Some (st, _) -> (
              Hashtbl.replace seen a.Token.name.Qname.local ();
              match typed_of st a.Token.value with
              | Some tv -> { a with Token.annot = Some tv }
              | None ->
                  fail "attribute %s of %s: %S is not a valid %s"
                    (local a.Token.name) ename a.Token.value (st_name st)))
        attrs
    in
    Array.iter
      (fun (id, _, required) ->
        if required && not (Hashtbl.mem seen id) then
          fail "missing required attribute %s on %s" (Name_dict.name dict id) ename)
      ct.Compiled.attributes;
    attrs
  in
  let enter name ename (attrs : Token.attr list) ns_decls kind =
    match kind with
    | Compiled.E_simple st ->
        if attrs <> [] then
          fail "element %s has simple type %s and cannot carry attributes" ename
            (st_name st);
        stack := Simple { st; buffer = Buffer.create 16; name = ename } :: !stack;
        sink (Token.Start_element { name; attrs = []; ns_decls })
    | Compiled.E_complex idx ->
        let ct = compiled.Compiled.types.(idx) in
        let attrs = annotate_attrs ct attrs ename in
        stack :=
          Complex { ct; state = ct.Compiled.dfa.Automaton.start; name = ename }
          :: !stack;
        sink (Token.Start_element { name; attrs; ns_decls })
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> sink token
      | Token.Start_element { name; attrs; ns_decls } -> (
          let ename = local name in
          match !stack with
          | [] -> (
              match Compiled.find_root compiled name.Qname.local with
              | Some kind -> enter name ename attrs ns_decls kind
              | None -> fail "element %s is not a declared root" ename)
          | Simple { name = pname; _ } :: _ ->
              fail "element %s not allowed inside simple-typed %s" ename pname
          | Complex parent :: _ -> (
              match
                Automaton.step parent.ct.Compiled.dfa ~state:parent.state
                  ~symbol:name.Qname.local
              with
              | None -> fail "element %s not allowed here (inside %s)" ename parent.name
              | Some next -> (
                  parent.state <- next;
                  match Compiled.find_child parent.ct name.Qname.local with
                  | Some kind -> enter name ename attrs ns_decls kind
                  | None -> fail "element %s has no declared type" ename)))
      | Token.End_element -> (
          match !stack with
          | [] -> fail "unbalanced end tag"
          | Simple { st; buffer; name } :: rest ->
              let content = Buffer.contents buffer in
              (match typed_of st content with
              | Some tv -> sink (Token.Text { content; annot = Some tv })
              | None ->
                  fail "content of %s: %S is not a valid %s" name content (st_name st));
              sink Token.End_element;
              stack := rest
          | Complex { ct; state; name } :: rest ->
              if not ct.Compiled.dfa.Automaton.accepting.(state) then
                fail "element %s ends with incomplete content" name;
              sink Token.End_element;
              stack := rest)
      | Token.Text { content; _ } -> (
          match !stack with
          | Simple { buffer; _ } :: _ -> Buffer.add_string buffer content
          | Complex { ct; name; _ } :: _ ->
              if ct.Compiled.mixed then sink (Token.text content)
              else if String.trim content = "" then
                (* ignorable whitespace in element-only content *)
                ()
              else fail "text not allowed inside element-only %s" name
          | [] -> if String.trim content <> "" then fail "text outside the root")
      | Token.Comment _ | Token.Pi _ -> sink token)
    tokens;
  if !stack <> [] then fail "document ended with open elements"

let validate compiled dict tokens =
  let acc = ref [] in
  validate_iter compiled dict tokens (fun t -> acc := t :: !acc);
  List.rev !acc

let validate_document compiled dict src = validate compiled dict (Parser.parse dict src)

let error_message = function
  | Validation_error { path; msg } ->
      Some
        (Printf.sprintf "validation error at /%s: %s" (String.concat "/" path) msg)
  | _ -> None
