open Rx_util

type elem_kind = E_simple of Schema_model.simple_type | E_complex of int

type ctype = {
  dfa : Automaton.dfa;
  mixed : bool;
  attributes : (int * Schema_model.simple_type * bool) array;
  children : (int * elem_kind) array;
}

type t = { types : ctype array; roots : (int * elem_kind) array }

let schema_error fmt =
  Printf.ksprintf (fun msg -> raise (Schema_model.Schema_error msg)) fmt

(* Collect the element particles of a content model (one level). *)
let rec particle_elements = function
  | Schema_model.P_element { name; typ; _ } -> [ (name, typ) ]
  | Schema_model.P_seq (parts, _) | Schema_model.P_choice (parts, _) ->
      List.concat_map particle_elements parts

let compile dict (schema : Schema_model.t) =
  (* assign indices: named types first, anonymous types appended on
     discovery *)
  let types = ref [] in
  let count = ref 0 in
  let named = Hashtbl.create 8 in
  let pending = Queue.create () in
  let alloc ct =
    let idx = !count in
    incr count;
    Queue.add (idx, ct) pending;
    idx
  in
  List.iter
    (fun (name, ct) ->
      if Hashtbl.mem named name then schema_error "duplicate type %s" name;
      Hashtbl.replace named name (alloc ct))
    schema.Schema_model.types;
  let rec resolve_ref = function
    | Schema_model.Simple st -> E_simple st
    | Schema_model.Named n -> (
        match Hashtbl.find_opt named n with
        | Some idx -> E_complex idx
        | None -> (
            match Schema_model.simple_type_of_string n with
            | Some st -> E_simple st
            | None -> schema_error "undefined type %s" n))
    | Schema_model.Anon ct -> E_complex (alloc ct)
  and compile_ctype (ct : Schema_model.complex_type) =
    let dfa =
      match ct.Schema_model.content with
      | None -> Automaton.empty_content
      | Some particle -> Automaton.of_particle dict particle
    in
    let children_assoc =
      match ct.Schema_model.content with
      | None -> []
      | Some particle ->
          List.fold_left
            (fun acc (name, typ) ->
              let id = Rx_xml.Name_dict.intern dict name in
              let kind = resolve_ref typ in
              match List.assoc_opt id acc with
              | Some existing ->
                  if existing <> kind then
                    schema_error
                      "element %s appears with two different types in one \
                       content model"
                      name;
                  acc
              | None -> (id, kind) :: acc)
            []
            (particle_elements particle)
    in
    let attributes =
      List.map
        (fun (a : Schema_model.attribute) ->
          ( Rx_xml.Name_dict.intern dict a.Schema_model.aname,
            a.Schema_model.atype,
            a.Schema_model.required ))
        ct.Schema_model.attributes
      |> List.sort compare |> Array.of_list
    in
    {
      dfa;
      mixed = ct.Schema_model.mixed;
      attributes;
      children = Array.of_list (List.sort compare children_assoc);
    }
  in
  let roots =
    List.map
      (fun (name, typ) -> (Rx_xml.Name_dict.intern dict name, resolve_ref typ))
      schema.Schema_model.roots
    |> List.sort compare |> Array.of_list
  in
  (* drain: compiling a ctype can enqueue anonymous types *)
  let compiled = Hashtbl.create 8 in
  let rec drain () =
    if not (Queue.is_empty pending) then begin
      let idx, ct = Queue.pop pending in
      Hashtbl.replace compiled idx (compile_ctype ct);
      drain ()
    end
  in
  drain ();
  types := List.init !count (fun i -> Hashtbl.find compiled i);
  { types = Array.of_list !types; roots }

let bsearch table key =
  let n = Array.length table in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, _ = table.(mid) in
      if k = key then Some (snd table.(mid))
      else if k < key then go (mid + 1) hi
      else go lo mid
  in
  go 0 n

let find_child ct id = bsearch ct.children id
let find_root t id = bsearch t.roots id

let find_attribute ct id =
  let n = Array.length ct.attributes in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k, st, req = ct.attributes.(mid) in
      if k = id then Some (st, req) else if k < id then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* --- binary format --- *)

let encode_kind w = function
  | E_simple st ->
      Bytes_io.Writer.u8 w 0;
      Bytes_io.Writer.u8 w (Schema_model.simple_type_to_tag st)
  | E_complex idx ->
      Bytes_io.Writer.u8 w 1;
      Bytes_io.Writer.varint w idx

let decode_kind r =
  match Bytes_io.Reader.u8 r with
  | 0 -> E_simple (Schema_model.simple_type_of_tag (Bytes_io.Reader.u8 r))
  | 1 -> E_complex (Bytes_io.Reader.varint r)
  | n -> schema_error "binary schema: bad kind tag %d" n

let encode t =
  let w = Bytes_io.Writer.create ~capacity:512 () in
  Bytes_io.Writer.bytes w "RXSC";
  Bytes_io.Writer.varint w (Array.length t.types);
  Array.iter
    (fun ct ->
      Automaton.encode w ct.dfa;
      Bytes_io.Writer.u8 w (if ct.mixed then 1 else 0);
      Bytes_io.Writer.varint w (Array.length ct.attributes);
      Array.iter
        (fun (id, st, req) ->
          Bytes_io.Writer.varint w id;
          Bytes_io.Writer.u8 w (Schema_model.simple_type_to_tag st);
          Bytes_io.Writer.u8 w (if req then 1 else 0))
        ct.attributes;
      Bytes_io.Writer.varint w (Array.length ct.children);
      Array.iter
        (fun (id, kind) ->
          Bytes_io.Writer.varint w id;
          encode_kind w kind)
        ct.children)
    t.types;
  Bytes_io.Writer.varint w (Array.length t.roots);
  Array.iter
    (fun (id, kind) ->
      Bytes_io.Writer.varint w id;
      encode_kind w kind)
    t.roots;
  Bytes_io.Writer.contents w

let decode s =
  let r = Bytes_io.Reader.of_string s in
  if Bytes_io.Reader.bytes r 4 <> "RXSC" then schema_error "binary schema: bad magic";
  let n_types = Bytes_io.Reader.varint r in
  let types =
    Array.init n_types (fun _ ->
        let dfa = Automaton.decode r in
        let mixed = Bytes_io.Reader.u8 r = 1 in
        let n_attrs = Bytes_io.Reader.varint r in
        let attributes =
          Array.init n_attrs (fun _ ->
              let id = Bytes_io.Reader.varint r in
              let st = Schema_model.simple_type_of_tag (Bytes_io.Reader.u8 r) in
              let req = Bytes_io.Reader.u8 r = 1 in
              (id, st, req))
        in
        let n_children = Bytes_io.Reader.varint r in
        let children =
          Array.init n_children (fun _ ->
              let id = Bytes_io.Reader.varint r in
              let kind = decode_kind r in
              (id, kind))
        in
        { dfa; mixed; attributes; children })
  in
  let n_roots = Bytes_io.Reader.varint r in
  let roots =
    Array.init n_roots (fun _ ->
        let id = Bytes_io.Reader.varint r in
        let kind = decode_kind r in
        (id, kind))
  in
  { types; roots }

let total_dfa_states t =
  Array.fold_left (fun acc ct -> acc + Automaton.state_count ct.dfa) 0 t.types
