let write buf n =
  if n < 0 then invalid_arg "Varint.write: negative";
  let rec loop n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      loop (n lsr 7)
    end
  in
  loop n

let read s pos =
  let len = String.length s in
  let rec loop pos shift acc =
    if pos >= len then invalid_arg "Varint.read: truncated";
    let b = Char.code s.[pos] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then (acc, pos + 1) else loop (pos + 1) (shift + 7) acc
  in
  loop pos 0 0

let size n =
  let rec loop n acc = if n < 0x80 then acc else loop (n lsr 7) (acc + 1) in
  loop n 1
