(** Deterministic splitmix64 PRNG for workload generators: benchmarks must be
    reproducible run-to-run, so nothing in the repo uses [Random] global
    state. *)

type t

val create : seed:int -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] is uniform in [\[lo, hi\]]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
val choose : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

val word : t -> ?min_len:int -> ?max_len:int -> unit -> string
(** Random lowercase ASCII word, handy for generating element text. *)
