(** Order-preserving, self-delimiting byte encodings for index keys.

    B+tree keys are plain byte strings compared lexicographically; composite
    keys (e.g. [(keyval, DocID, NodeID)] for XPath value indexes, §3.3) are
    built by concatenating the encodings below, each of which preserves the
    component order and delimits itself so no component can bleed into the
    next. *)

val encode_string : Buffer.t -> string -> unit
(** NUL-escaped, NUL-terminated: preserves order for arbitrary bytes. *)

val decode_string : string -> int -> string * int

val encode_int64 : Buffer.t -> int64 -> unit
(** 8 bytes, big-endian with the sign bit flipped (orders signed values). *)

val decode_int64 : string -> int -> int64 * int

val encode_int : Buffer.t -> int -> unit
val decode_int : string -> int -> int * int

val encode_float : Buffer.t -> float -> unit
(** IEEE-754 total-order trick: negative values are bit-complemented,
    non-negative values get the sign bit set. *)

val decode_float : string -> int -> float * int

val encode_decimal : Buffer.t -> Decimal.t -> unit
val decode_decimal : string -> int -> Decimal.t * int

val encode_raw_suffix : Buffer.t -> string -> unit
(** Appends bytes verbatim; only valid as the final key component (used for
    NodeIDs, whose encoding is already order-preserving and prefix-free at
    component boundaries). *)
