type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None }

let length t = Hashtbl.length t.table
let capacity t = t.capacity

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  unlink t node;
  push_front t node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      touch t node;
      Some node.value

let peek t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node -> Some node.value

let mem t k = Hashtbl.mem t.table k

let evict_lru t =
  match t.tail with
  | None -> None
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      Some (node.key, node.value)

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      touch t node;
      None
  | None ->
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node;
      if Hashtbl.length t.table > t.capacity then evict_lru t else None

let put_evict_if t ~can_evict k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      touch t node;
      Some None
  | None ->
      if Hashtbl.length t.table < t.capacity then begin
        let node = { key = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.table k node;
        push_front t node;
        Some None
      end
      else begin
        (* walk from LRU end to find an evictable victim *)
        let rec find_victim = function
          | None -> None
          | Some node ->
              if can_evict node.key node.value then Some node
              else find_victim node.prev
        in
        match find_victim t.tail with
        | None -> None
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key;
            let node = { key = k; value = v; prev = None; next = None } in
            Hashtbl.replace t.table k node;
            push_front t node;
            Some (Some (victim.key, victim.value))
      end

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table k

let iter f t = Hashtbl.iter (fun k node -> f k node.value) t.table

let to_list t =
  let rec loop acc = function
    | None -> List.rev acc
    | Some node -> loop ((node.key, node.value) :: acc) node.next
  in
  loop [] t.head
