type t = {
  sign : int; (* -1, 0 or 1 *)
  digits : string; (* significant digits, no leading/trailing '0' *)
  exp : int; (* value = sign * 0.digits * 10^exp *)
}

let zero = { sign = 0; digits = ""; exp = 0 }

(* Normalize a raw digit string [ds] representing sign * 0.ds * 10^exp. *)
let normalize sign ds exp =
  let n = String.length ds in
  let first = ref 0 in
  while !first < n && ds.[!first] = '0' do
    incr first
  done;
  if !first = n then zero
  else begin
    let last = ref (n - 1) in
    while ds.[!last] = '0' do
      decr last
    done;
    {
      sign;
      digits = String.sub ds !first (!last - !first + 1);
      exp = exp - !first;
    }
  end

let of_int n =
  if n = 0 then zero
  else
    let sign = if n < 0 then -1 else 1 in
    let s = string_of_int (abs n) in
    normalize sign s (String.length s)

let is_digit c = c >= '0' && c <= '9'

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let sign = ref 1 in
  if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then begin
    if s.[!pos] = '-' then sign := -1;
    incr pos
  end;
  let int_start = !pos in
  while !pos < n && is_digit s.[!pos] do
    incr pos
  done;
  let int_part = String.sub s int_start (!pos - int_start) in
  let frac_part =
    if !pos < n && s.[!pos] = '.' then begin
      incr pos;
      let fs = !pos in
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done;
      String.sub s fs (!pos - fs)
    end
    else ""
  in
  if int_part = "" && frac_part = "" then None
  else begin
    let exp10 =
      if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
        incr pos;
        let esign =
          if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then begin
            let c = s.[!pos] in
            incr pos;
            if c = '-' then -1 else 1
          end
          else 1
        in
        let es = !pos in
        while !pos < n && is_digit s.[!pos] do
          incr pos
        done;
        if es = !pos then None
        else Some (esign * int_of_string (String.sub s es (!pos - es)))
      end
      else Some 0
    in
    match exp10 with
    | None -> None
    | Some e when !pos <> n -> ignore e; None
    | Some e ->
        Some (normalize !sign (int_part ^ frac_part) (String.length int_part + e))
  end

let of_string_exn s =
  match of_string s with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Decimal.of_string_exn: %S" s)

let of_float f =
  if f = 0.0 then zero
  else
    match of_string (Printf.sprintf "%.17g" f) with
    | Some d -> d
    | None -> invalid_arg "Decimal.of_float: not finite"

let to_float t =
  if t.sign = 0 then 0.0
  else
    float_of_string
      (Printf.sprintf "%s0.%se%d" (if t.sign < 0 then "-" else "") t.digits t.exp)

let to_string t =
  if t.sign = 0 then "0"
  else
    let s = if t.sign < 0 then "-" else "" in
    let nd = String.length t.digits in
    if t.exp >= nd && t.exp <= nd + 6 then
      s ^ t.digits ^ String.make (t.exp - nd) '0'
    else if t.exp > 0 && t.exp < nd then
      s ^ String.sub t.digits 0 t.exp ^ "." ^ String.sub t.digits t.exp (nd - t.exp)
    else if t.exp <= 0 && t.exp > -6 then
      s ^ "0." ^ String.make (-t.exp) '0' ^ t.digits
    else
      (* scientific notation *)
      let head = String.sub t.digits 0 1 in
      let tail = if nd > 1 then "." ^ String.sub t.digits 1 (nd - 1) else "" in
      Printf.sprintf "%s%s%se%d" s head tail (t.exp - 1)

(* Compare magnitudes of two nonzero values. *)
let compare_mag a b =
  if a.exp <> b.exp then compare a.exp b.exp else String.compare a.digits b.digits

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign = 0 then 0
  else if a.sign > 0 then compare_mag a b
  else compare_mag b a

let equal a b = compare a b = 0
let sign t = t.sign
let neg t = if t.sign = 0 then t else { t with sign = -t.sign }

(* Addition via digit-string arithmetic: align both operands to a common
   scale, add/subtract digit strings. Digits are kept as strings to preserve
   arbitrary precision, matching the unbounded decimal of the paper's index
   keys. *)
let add_digit_strings a b =
  let la = String.length a and lb = String.length b in
  let l = max la lb in
  let out = Bytes.make (l + 1) '0' in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let da = if i < la then Char.code a.[la - 1 - i] - 48 else 0 in
    let db = if i < lb then Char.code b.[lb - 1 - i] - 48 else 0 in
    let s = da + db + !carry in
    Bytes.set out (l - i) (Char.chr (48 + (s mod 10)));
    carry := s / 10
  done;
  Bytes.set out 0 (Char.chr (48 + !carry));
  Bytes.to_string out

(* a - b where digit-string a >= b (same length, zero-padded). *)
let sub_digit_strings a b =
  let l = String.length a in
  let out = Bytes.make l '0' in
  let borrow = ref 0 in
  for i = 0 to l - 1 do
    let da = Char.code a.[l - 1 - i] - 48 in
    let db = if i < String.length b then Char.code b.[String.length b - 1 - i] - 48 else 0 in
    let d = da - db - !borrow in
    if d < 0 then begin
      Bytes.set out (l - 1 - i) (Char.chr (48 + d + 10));
      borrow := 1
    end
    else begin
      Bytes.set out (l - 1 - i) (Char.chr (48 + d));
      borrow := 0
    end
  done;
  Bytes.to_string out

(* Represent t as (digits, scale): value = sign * digits * 10^-scale. *)
let to_fixed t = (t.digits, String.length t.digits - t.exp)

let of_fixed sign digits scale =
  normalize sign digits (String.length digits - scale)

let pad_left s n = String.make (n - String.length s) '0' ^ s

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else begin
    let da, sa = to_fixed a and db, sb = to_fixed b in
    let scale = max sa sb in
    let da = da ^ String.make (scale - sa) '0' in
    let db = db ^ String.make (scale - sb) '0' in
    let l = max (String.length da) (String.length db) in
    let da = pad_left da l and db = pad_left db l in
    if a.sign = b.sign then of_fixed a.sign (add_digit_strings da db) scale
    else
      let c = String.compare da db in
      if c = 0 then zero
      else if c > 0 then of_fixed a.sign (sub_digit_strings da db) scale
      else of_fixed b.sign (sub_digit_strings db da) scale
  end

let sub a b = add a (neg b)

(* Key encoding: [class_byte] then, for nonzero values, a biased exponent
   (order-preserving i32) and the digit bytes with a terminator. Negative
   values complement exponent and digits so larger magnitude sorts first. *)
let encode_key t =
  let buf = Buffer.create 16 in
  if t.sign = 0 then Buffer.add_char buf '\x02'
  else begin
    Buffer.add_char buf (if t.sign > 0 then '\x03' else '\x01');
    let biased = t.exp + 0x4000_0000 in
    let e = if t.sign > 0 then biased else 0x7fff_ffff - biased in
    Buffer.add_char buf (Char.chr ((e lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((e lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((e lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (e land 0xff));
    String.iter
      (fun c ->
        let d = Char.code c in
        Buffer.add_char buf (Char.chr (if t.sign > 0 then d else 0xff - d)))
      t.digits;
    (* terminator: below any digit for positives, above any complemented
       digit for negatives, so prefixes order correctly *)
    Buffer.add_char buf (if t.sign > 0 then '\x00' else '\xff')
  end;
  Buffer.contents buf

let decode_key s pos =
  match s.[pos] with
  | '\x02' -> (zero, pos + 1)
  | ('\x01' | '\x03') as cls ->
      let positive = cls = '\x03' in
      let e =
        (Char.code s.[pos + 1] lsl 24)
        lor (Char.code s.[pos + 2] lsl 16)
        lor (Char.code s.[pos + 3] lsl 8)
        lor Char.code s.[pos + 4]
      in
      let e = if positive then e else 0x7fff_ffff - e in
      let exp = e - 0x4000_0000 in
      let buf = Buffer.create 8 in
      let p = ref (pos + 5) in
      let term = if positive then '\x00' else '\xff' in
      while s.[!p] <> term do
        let d = Char.code s.[!p] in
        Buffer.add_char buf (Char.chr (if positive then d else 0xff - d));
        incr p
      done;
      ( { sign = (if positive then 1 else -1); digits = Buffer.contents buf; exp },
        !p + 1 )
  | _ -> invalid_arg "Decimal.decode_key: bad class byte"

let pp fmt t = Format.pp_print_string fmt (to_string t)
