(** A fixed-capacity LRU map used by the buffer pool's replacement policy. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Touches the entry (marks most-recently used). *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Does not touch the entry. *)

val mem : ('k, 'v) t -> 'k -> bool

val put : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Inserts or replaces; if capacity is exceeded returns the evicted
    least-recently-used binding. *)

val put_evict_if : ('k, 'v) t -> can_evict:('k -> 'v -> bool) -> 'k -> 'v ->
  ('k * 'v) option option
(** Like {!put} but only evicts entries satisfying [can_evict] (used to skip
    pinned pages). Returns [None] if the map is full and no entry is
    evictable, otherwise [Some eviction]. *)

val remove : ('k, 'v) t -> 'k -> unit
val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val to_list : ('k, 'v) t -> ('k * 'v) list
(** Most-recently used first. *)
