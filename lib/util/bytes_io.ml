module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t n = Buffer.add_char t (Char.chr (n land 0xff))

  let u16 t n =
    u8 t (n lsr 8);
    u8 t n

  let u32 t n =
    u16 t (n lsr 16);
    u16 t n

  let u64 t n = Buffer.add_int64_be t n
  let varint = Varint.write
  let bytes = Buffer.add_string

  let lstring t s =
    varint t (String.length s);
    bytes t s

  let contents = Buffer.contents
  let clear = Buffer.clear
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }
  let pos t = t.pos
  let seek t p = t.pos <- p
  let remaining t = String.length t.src - t.pos
  let at_end t = t.pos >= String.length t.src

  let u8 t =
    if t.pos >= String.length t.src then invalid_arg "Reader.u8: eof";
    let c = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    c

  let u16 t =
    let hi = u8 t in
    let lo = u8 t in
    (hi lsl 8) lor lo

  let u32 t =
    let hi = u16 t in
    let lo = u16 t in
    (hi lsl 16) lor lo

  let u64 t =
    if t.pos + 8 > String.length t.src then invalid_arg "Reader.u64: eof";
    let v = String.get_int64_be t.src t.pos in
    t.pos <- t.pos + 8;
    v

  let varint t =
    let v, next = Varint.read t.src t.pos in
    t.pos <- next;
    v

  let bytes t n =
    if t.pos + n > String.length t.src then invalid_arg "Reader.bytes: eof";
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let lstring t =
    let n = varint t in
    bytes t n
end
