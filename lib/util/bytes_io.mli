(** Binary readers and writers over strings, shared by the record format,
    the B+tree page layout and the log manager. All multi-byte integers are
    big-endian so that encoded keys compare correctly as byte strings. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int64 -> unit
  val varint : t -> int -> unit
  val bytes : t -> string -> unit

  val lstring : t -> string -> unit
  (** Varint length prefix followed by the raw bytes. *)

  val contents : t -> string
  val clear : t -> unit
end

module Reader : sig
  type t

  val of_string : ?pos:int -> string -> t
  val pos : t -> int
  val seek : t -> int -> unit
  val remaining : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int64
  val varint : t -> int
  val bytes : t -> int -> string

  val lstring : t -> string
  (** Inverse of {!Writer.lstring}. *)
end
