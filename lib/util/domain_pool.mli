(** A process-wide, grow-only pool of OCaml 5 worker domains.

    One [run] call executes a batch of independent thunks concurrently.
    The caller participates in draining the shared task queue, so a batch
    always makes progress even if every worker domain is busy — which also
    makes nested [run] calls deadlock-free.  Workers are spawned lazily up
    to {!max_workers} and joined at process exit. *)

type t
(** A pool handle.  All operations are domain-safe. *)

val shared : unit -> t
(** The process-wide pool.  Every [Database.t] in the process shares it:
    OCaml caps live domains at 128, so per-handle pools would exhaust the
    runtime under test suites that open many handles. *)

val create : unit -> t
(** A private pool (tests).  Call {!stop} when done with it. *)

val max_workers : int
(** Upper bound on spawned worker domains per pool (the caller makes one
    more executor).  Parallelism requests above this still work — extra
    tasks queue. *)

val size : t -> int
(** Current executor count: spawned workers plus the participating
    caller.  Grows as [run] is called with higher [parallelism]. *)

val run : t -> parallelism:int -> (unit -> 'a) array -> 'a array
(** [run t ~parallelism tasks] executes every thunk and returns their
    results in task order.  The pool is grown to [parallelism - 1]
    workers (capped at {!max_workers}); with [parallelism <= 1], a single
    task, or an empty pool the thunks run inline on the caller.  If any
    thunk raises, the first failure (in task order) is re-raised with its
    backtrace after all tasks have finished — no task is abandoned
    mid-flight. *)

val stop : t -> unit
(** Drains queued tasks, terminates and joins the pool's workers.  Only
    needed for {!create}d pools; the {!shared} pool installs an [at_exit]
    hook. *)
