(** IEEE CRC-32 (the zlib/Ethernet polynomial), table-driven.

    This is the checksum stamped into page headers and WAL record frames,
    so the function is part of the on-disk format and must never change.
    The incremental API ([start] / [bytes] / [string] / [finish]) lets a
    caller checksum a page image while skipping the field that stores the
    checksum itself. *)

val start : int32
(** Initial accumulator value for an incremental computation. *)

val bytes : ?crc:int32 -> bytes -> pos:int -> len:int -> int32
(** Feeds [len] bytes starting at [pos] into the accumulator [crc]
    (default {!start}); returns the new accumulator. Pure; raises
    [Invalid_argument] if the range is out of bounds. *)

val string : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** Same as {!bytes} over a string. *)

val finish : int32 -> int32
(** Finalizes an accumulator into the canonical CRC-32 value. *)

val of_string : string -> int32
(** One-shot checksum of a whole string. *)

val of_bytes : bytes -> int32
(** One-shot checksum of a whole byte buffer. *)
