(* IEEE 802.3 CRC-32 (polynomial 0xEDB88320, reflected), table-driven.
   Used for page and WAL-record checksums; must stay stable forever, since
   the values are part of the on-disk formats. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update_byte crc b =
  let table = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl) in
  Int32.logxor table.(idx) (Int32.shift_right_logical crc 8)

let feed_bytes crc buf pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32: range out of bounds";
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := update_byte !crc (Char.code (Bytes.unsafe_get buf i))
  done;
  !crc

let start = 0xFFFFFFFFl
let finish crc = Int32.logxor crc 0xFFFFFFFFl

let bytes ?(crc = start) buf ~pos ~len = feed_bytes crc buf pos len

let string ?(crc = start) s ~pos ~len =
  bytes ~crc (Bytes.unsafe_of_string s) ~pos ~len

let of_string s = finish (string s ~pos:0 ~len:(String.length s))
let of_bytes b = finish (bytes b ~pos:0 ~len:(Bytes.length b))
