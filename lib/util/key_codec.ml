let encode_string buf s =
  String.iter
    (fun c ->
      if c = '\x00' then Buffer.add_string buf "\x00\xff"
      else Buffer.add_char buf c)
    s;
  Buffer.add_string buf "\x00\x00"

let decode_string s pos =
  let buf = Buffer.create 16 in
  let rec loop p =
    match s.[p] with
    | '\x00' ->
        if s.[p + 1] = '\xff' then begin
          Buffer.add_char buf '\x00';
          loop (p + 2)
        end
        else (Buffer.contents buf, p + 2)
    | c ->
        Buffer.add_char buf c;
        loop (p + 1)
  in
  loop pos

let encode_int64 buf n =
  let n = Int64.logxor n Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 n;
  Buffer.add_bytes buf b

let decode_int64 s pos =
  let n = String.get_int64_be s pos in
  (Int64.logxor n Int64.min_int, pos + 8)

let encode_int buf n = encode_int64 buf (Int64.of_int n)

let decode_int s pos =
  let v, p = decode_int64 s pos in
  (Int64.to_int v, p)

let encode_float buf f =
  let bits = Int64.bits_of_float f in
  let bits =
    if Int64.compare bits 0L < 0 then Int64.lognot bits
    else Int64.logor bits Int64.min_int
  in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 bits;
  Buffer.add_bytes buf b

let decode_float s pos =
  let bits = String.get_int64_be s pos in
  let bits =
    if Int64.compare bits 0L < 0 then Int64.logand bits Int64.max_int
    else Int64.lognot bits
  in
  (Int64.float_of_bits bits, pos + 8)

let encode_decimal buf d = Buffer.add_string buf (Decimal.encode_key d)
let decode_decimal s pos = Decimal.decode_key s pos
let encode_raw_suffix buf s = Buffer.add_string buf s
