(** Decimal floating-point numbers in the spirit of IEEE 754r, used for
    numeric XPath value-index keys (§4.3 of the paper): values parsed from
    document text are kept precise within range instead of rounding through
    binary floating point.

    A value is normalized scientific form: [sign * 0.d1 d2 ... dn * 10^exp]
    with [d1 <> 0] and [dn <> 0] (the zero value has no digits). Comparison
    is exact and the key encoding is order-preserving under byte-string
    comparison. *)

type t

val zero : t
val of_int : int -> t

val of_string : string -> t option
(** Parses decimal literals: [-12.5e3], [0.001], [42], [+.5]. Returns
    [None] on malformed input. *)

val of_string_exn : string -> t
val of_float : float -> t
val to_float : t -> float
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t

val encode_key : t -> string
(** Order-preserving, self-delimiting byte encoding: for all [a], [b],
    [compare a b] equals [String.compare (encode_key a) (encode_key b)]. *)

val decode_key : string -> int -> t * int
(** Inverse of {!encode_key}; returns the value and the position just past
    the encoding. *)

val pp : Format.formatter -> t -> unit
