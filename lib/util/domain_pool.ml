(* A process-wide, grow-only pool of worker domains.

   OCaml 5 caps the number of live domains (128) and spawning one costs a
   few hundred microseconds, so every Database handle sharing one lazily
   grown pool beats a pool per handle: tests open dozens of handles, and a
   server opens one per process anyway.  Workers are spawned on demand up
   to [max_workers] and then live until process exit (an [at_exit] hook
   drains and joins them so the runtime shuts down cleanly).

   [run] executes a batch of independent thunks with the *caller
   participating*: the caller drains the shared queue alongside the
   workers, so a batch always makes progress even when every worker is
   busy with someone else's tasks — which also makes nested [run] calls
   deadlock-free. *)

type batch = {
  b_lock : Mutex.t;
  b_done : Condition.t;
  mutable b_remaining : int;
}

type t = {
  lock : Mutex.t; (* guards queue / workers / shutdown *)
  work : Condition.t; (* signaled when queue grows or shutdown flips *)
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable shutdown : bool;
}

(* keep well under the runtime's domain cap while still covering any
   realistic core count for one process; parallelism knobs above this
   still work, the extra chunks just queue *)
let max_workers = 15

let create () =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    queue = Queue.create ();
    workers = [];
    n_workers = 0;
    shutdown = false;
  }

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.shutdown do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue && t.shutdown then Mutex.unlock t.lock
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      task ();
      loop ()
    end
  in
  loop ()

let ensure t n =
  let target = min (n - 1) max_workers in
  if t.n_workers < target then begin
    Mutex.lock t.lock;
    while t.n_workers < target && not t.shutdown do
      t.workers <- Domain.spawn (worker_loop t) :: t.workers;
      t.n_workers <- t.n_workers + 1
    done;
    Mutex.unlock t.lock
  end

let size t = t.n_workers + 1

let stop t =
  Mutex.lock t.lock;
  t.shutdown <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  t.n_workers <- 0;
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let shared_pool = lazy (let t = create () in at_exit (fun () -> stop t); t)
let shared () = Lazy.force shared_pool

let run_inline tasks = Array.map (fun f -> f ()) tasks

let run t ~parallelism tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if parallelism <= 1 || n = 1 then run_inline tasks
  else begin
    ensure t parallelism;
    if t.n_workers = 0 then run_inline tasks
    else begin
      let results = Array.make n None in
      let batch =
        { b_lock = Mutex.create (); b_done = Condition.create (); b_remaining = n }
      in
      let wrap i f () =
        let r =
          match f () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock batch.b_lock;
        results.(i) <- Some r;
        batch.b_remaining <- batch.b_remaining - 1;
        if batch.b_remaining = 0 then Condition.broadcast batch.b_done;
        Mutex.unlock batch.b_lock
      in
      Mutex.lock t.lock;
      Array.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      (* caller participation: drain the shared queue until it is empty,
         then wait for in-flight tasks of this batch to land *)
      let rec drain () =
        Mutex.lock t.lock;
        match Queue.pop t.queue with
        | task ->
            Mutex.unlock t.lock;
            task ();
            drain ()
        | exception Queue.Empty -> Mutex.unlock t.lock
      in
      drain ();
      Mutex.lock batch.b_lock;
      while batch.b_remaining > 0 do
        Condition.wait batch.b_done batch.b_lock
      done;
      Mutex.unlock batch.b_lock;
      let first_error = ref None in
      Array.iter
        (function
          | Some (Error (e, bt)) when !first_error = None ->
              first_error := Some (e, bt)
          | _ -> ())
        results;
      match !first_error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None ->
          Array.map
            (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
            results
    end
  end
