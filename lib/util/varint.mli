(** Variable-length integer encoding (LEB128, unsigned) used throughout the
    packed XML record format and the write-ahead log. *)

val write : Buffer.t -> int -> unit
(** [write buf n] appends the LEB128 encoding of [n] (must be [>= 0]). *)

val read : string -> int -> int * int
(** [read s pos] decodes a varint at [pos] and returns [(value, next_pos)].
    @raise Invalid_argument on truncated input. *)

val size : int -> int
(** [size n] is the number of bytes [write] produces for [n]. *)
