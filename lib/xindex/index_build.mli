(** Side-log absorber for online index construction (GenIndex-style).

    An online build snapshot-scans the table while normal DML keeps
    committing. The absorber is registered as a maintenance observer on the
    column's document store {e before} the scan starts, so every concurrent
    insert, update and delete lands in a side log of pre-extracted index
    keys. The build drains the log incrementally between scan slices and
    one final time at the quiesce point, then the new generation is swapped
    in.

    Events store extracted keys, never raw records: a deleted document's
    split subtrees are only resolvable while the store still holds it, and
    key-only draining keeps the quiesce window proportional to the log, not
    to document sizes. Replays are idempotent (B+tree insert replaces,
    delete ignores missing), so a record observed by both the scan and the
    log lands exactly once. *)

type t
(** One side log, bound to the index generation under construction and the
    document store it observes. *)

val start : Value_index.t -> Rx_xmlstore.Doc_store.t -> t
(** Registers record and delete observers on the store and returns the
    live log. Must be called before the snapshot scan captures its docid
    list, or DML in the gap would be lost. *)

val absorb : t -> docid:int -> rid:Rx_storage.Rid.t -> record:string -> unit
(** Feeds one inserted record directly — for bulk-load paths that bypass
    store observers ([Doc_store.insert_tokens_bulk]). Extracts keys
    immediately, like the observer path. *)

val pending : t -> int
(** Number of undrained events. *)

val drain : t -> int
(** Applies all pending events to the target index, oldest first, and
    returns how many were applied. Call under the engine's write exclusion:
    draining mutates the B+tree. *)

val stop : t -> unit
(** Detaches the observers. Call at the quiesce point (after the final
    {!drain}) or when abandoning a failed build; no-op if already
    stopped. *)
