(** XPath value index definitions (§3.3): a simple XPath expression without
    predicates plus a key type — "users can create XPath value indexes on
    frequently searched elements or attributes by specifying a simple XPath
    expression ... and a data type for the key values". *)

type key_type = K_string | K_double | K_decimal | K_integer | K_date

type t = { name : string; path : Rx_xpath.Ast.path; key_type : key_type }

val make : name:string -> path:string -> key_type:key_type -> t
(** Parses and validates the path.
    @raise Invalid_argument if the path is not linear and absolute. *)

val key_type_of_string : string -> key_type option
(** Parses a key-type name ("string", "double", "decimal", "integer",
    "date"); [None] for anything else. *)

val key_type_to_string : key_type -> string
(** The persistent/wire spelling of a key type. *)

val typed_of_string : key_type -> string -> Rx_xml.Typed_value.t option
(** Conversion from a node's string value to the index key type; [None]
    (unconvertible) values produce no index entry. *)

val anchor_level : t -> int option
(** When every step is on the child axis, the level of the {e predicate
    anchor element} (the value node's parent level for attribute paths, the
    value node's own parent for element paths) is fixed; this enables exact
    NodeID-level ANDing (§4.3). [None] when descendant steps make the level
    variable. *)

val to_string : t -> string
(** Human-readable rendering: [name : path (type)]. *)
