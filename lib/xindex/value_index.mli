(** One XPath value index (§3.3): a B+tree whose entries are
    [(keyval, DocID, NodeID) → RID], mapping typed node values to both the
    logical position (DocID, NodeID) and the physical record (RID).

    Maintenance is driven by the document store's record observers: "index
    keys ... are generated per record" (§3.2) by running a simplified
    QuickXScan over each packed record, using the record header's context
    path to pre-match the ancestor steps — so records are processed
    self-contained. An element whose subtree is split across records (a
    proxy under the matched node) gets its value completed through a store
    traversal; text and attribute values are always record-local.

    Nodes whose string value does not convert to the key type produce no
    entry, so containment-matched indexes are only ever used as filters.

    An index carries a {e generation} number: 1 for its first build, bumped
    each time an online rebuild swaps a fresh tree in under the same name
    (see [Database.Index]). The tag lives here so the catalog can persist
    it next to the tree's meta page. *)

type t
(** One attached value index: definition, B+tree, and observer hooks. *)

type entry = {
  key : Rx_xml.Typed_value.t;
  docid : int;
  node : Rx_xmlstore.Node_id.t;
  rid : Rx_storage.Rid.t;
}
(** A decoded index entry in (key, docid, node) order. *)

val create :
  Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> Index_def.t -> t
(** Creates an empty index (fresh B+tree) for [def]; generation 1. *)

val attach :
  Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> Index_def.t -> meta_page:int -> t
(** Re-attaches a persisted index from its B+tree meta page. *)

val def : t -> Index_def.t
(** The definition this index was created with. *)

val meta_page : t -> int
(** The B+tree meta page number, persisted in the catalog. *)

val generation : t -> int
(** The generation tag (1 unless an online rebuild bumped it). *)

val set_generation : t -> int -> unit
(** Stamps the generation tag; called when the catalog records a rebuild
    or re-attaches a generational index. *)

val hook : t -> Rx_xmlstore.Doc_store.t -> unit
(** Registers insert and delete observers on the store. Only call once per
    store; documents inserted before hooking are not indexed. *)

val unhook : t -> Rx_xmlstore.Doc_store.t -> unit
(** Detaches the observers registered by {!hook} — the maintenance side of
    [DROP XML INDEX]. The B+tree pages are not reclaimed (deletion is lazy
    engine-wide); no-op if not hooked. *)

val index_record :
  t -> docid:int -> rid:Rx_storage.Rid.t -> record:string ->
  store:Rx_xmlstore.Doc_store.t option -> unit
(** Direct per-record maintenance (what the observer does); [store] enables
    the split-subtree value fallback. Equivalent to {!extract_keys} piped
    into {!insert_keys}. *)

val unindex_record :
  t -> docid:int -> record:string ->
  store:Rx_xmlstore.Doc_store.t option -> unit
(** The delete-observer side of {!index_record}: removes every entry the
    record contributes. Must run while the store can still resolve the
    record's split subtrees (i.e. before the document is gone). *)

val extract_keys :
  t -> docid:int -> record:string ->
  store:Rx_xmlstore.Doc_store.t option ->
  (Rx_xml.Typed_value.t * Rx_xmlstore.Node_id.t) list
(** The read-only half of {!index_record}: runs the per-record key
    extraction scan without touching the B+tree. Safe to call from
    concurrent domains — index builds extract in parallel, then apply the
    resulting keys serially with {!insert_keys}. *)

val insert_keys :
  t -> docid:int -> rid:Rx_storage.Rid.t ->
  (Rx_xml.Typed_value.t * Rx_xmlstore.Node_id.t) list -> unit
(** The mutating half of {!index_record}: inserts previously extracted
    keys. Single-writer, like all B+tree mutation. Re-inserting an existing
    (key, docid, node) replaces its RID, so replays are idempotent. *)

val remove_keys :
  t -> docid:int ->
  (Rx_xml.Typed_value.t * Rx_xmlstore.Node_id.t) list -> unit
(** Deletes previously extracted keys — the mutating half of
    {!unindex_record}, used by side-log draining where the keys were
    captured at event time and the document may be gone by apply time.
    Missing keys are ignored, so replays are idempotent. *)

type bound = Rx_xml.Typed_value.t * bool (** value, inclusive? *)

val scan :
  t -> ?min:bound -> ?max:bound -> (entry -> [ `Continue | `Stop ]) -> unit
(** Entries in (key, docid, node) order. *)

val entries : t -> ?min:bound -> ?max:bound -> unit -> entry list
(** {!scan} materialized into a list (tests and small ranges). *)

val entry_count : t -> int
(** Number of live entries in the B+tree. *)

val page_count : t -> int
(** Number of pages the B+tree occupies. *)
