(** One XPath value index (§3.3): a B+tree whose entries are
    [(keyval, DocID, NodeID) → RID], mapping typed node values to both the
    logical position (DocID, NodeID) and the physical record (RID).

    Maintenance is driven by the document store's record observers: "index
    keys ... are generated per record" (§3.2) by running a simplified
    QuickXScan over each packed record, using the record header's context
    path to pre-match the ancestor steps — so records are processed
    self-contained. An element whose subtree is split across records (a
    proxy under the matched node) gets its value completed through a store
    traversal; text and attribute values are always record-local.

    Nodes whose string value does not convert to the key type produce no
    entry, so containment-matched indexes are only ever used as filters. *)

type t

type entry = {
  key : Rx_xml.Typed_value.t;
  docid : int;
  node : Rx_xmlstore.Node_id.t;
  rid : Rx_storage.Rid.t;
}

val create :
  Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> Index_def.t -> t

val attach :
  Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> Index_def.t -> meta_page:int -> t

val def : t -> Index_def.t
val meta_page : t -> int

val hook : t -> Rx_xmlstore.Doc_store.t -> unit
(** Registers insert and delete observers on the store. Only call once per
    store; documents inserted before hooking are not indexed. *)

val unhook : t -> Rx_xmlstore.Doc_store.t -> unit
(** Detaches the observers registered by {!hook} — the maintenance side of
    [DROP XML INDEX]. The B+tree pages are not reclaimed (deletion is lazy
    engine-wide); no-op if not hooked. *)

val index_record :
  t -> docid:int -> rid:Rx_storage.Rid.t -> record:string ->
  store:Rx_xmlstore.Doc_store.t option -> unit
(** Direct per-record maintenance (what the observer does); [store] enables
    the split-subtree value fallback. Equivalent to {!extract_keys} piped
    into {!insert_keys}. *)

val extract_keys :
  t -> docid:int -> record:string ->
  store:Rx_xmlstore.Doc_store.t option ->
  (Rx_xml.Typed_value.t * Rx_xmlstore.Node_id.t) list
(** The read-only half of {!index_record}: runs the per-record key
    extraction scan without touching the B+tree. Safe to call from
    concurrent domains — index builds extract in parallel, then apply the
    resulting keys serially with {!insert_keys}. *)

val insert_keys :
  t -> docid:int -> rid:Rx_storage.Rid.t ->
  (Rx_xml.Typed_value.t * Rx_xmlstore.Node_id.t) list -> unit
(** The mutating half of {!index_record}: inserts previously extracted
    keys. Single-writer, like all B+tree mutation. *)

type bound = Rx_xml.Typed_value.t * bool (** value, inclusive? *)

val scan :
  t -> ?min:bound -> ?max:bound -> (entry -> [ `Continue | `Stop ]) -> unit
(** Entries in (key, docid, node) order. *)

val entries : t -> ?min:bound -> ?max:bound -> unit -> entry list
val entry_count : t -> int
val page_count : t -> int
