open Rx_xpath

type key_type = K_string | K_double | K_decimal | K_integer | K_date

type t = { name : string; path : Ast.path; key_type : key_type }

let make ~name ~path ~key_type =
  let path = Xpath_parser.parse path in
  if not (Ast.is_linear path) then
    invalid_arg "Index_def.make: index paths must have no predicates";
  if not path.Ast.absolute then
    invalid_arg "Index_def.make: index paths must be absolute";
  if path.Ast.steps = [] then invalid_arg "Index_def.make: empty path";
  { name; path; key_type }

let key_type_of_string = function
  | "string" | "varchar" -> Some K_string
  | "double" -> Some K_double
  | "decimal" -> Some K_decimal
  | "integer" -> Some K_integer
  | "date" -> Some K_date
  | _ -> None

let key_type_to_string = function
  | K_string -> "string"
  | K_double -> "double"
  | K_decimal -> "decimal"
  | K_integer -> "integer"
  | K_date -> "date"

let typed_of_string kt s =
  let ty =
    match kt with
    | K_string -> `String
    | K_double -> `Double
    | K_decimal -> `Decimal
    | K_integer -> `Integer
    | K_date -> `Date
  in
  Rx_xml.Typed_value.of_string ty s

let anchor_level t =
  let rec walk level = function
    | [] -> Some (level - 1) (* parent of the element value node *)
    | [ { Ast.axis = Ast.Attribute; _ } ] -> Some level
    | { Ast.axis = Ast.Child; _ } :: rest -> walk (level + 1) rest
    | _ -> None
  in
  walk 0 t.path.Ast.steps

let to_string t =
  Printf.sprintf "%s ON %s AS %s" t.name (Ast.to_string t.path)
    (key_type_to_string t.key_type)
