open Rx_util
open Rx_xml
open Rx_xmlstore
module Q = Rx_quickxscan.Query
module E = Rx_quickxscan.Engine

type t = {
  definition : Index_def.t;
  tree : Rx_btree.Btree.t;
  dict : Name_dict.t;
  query : Q.t; (* compiled index path, value-producing *)
  metrics : Rx_obs.Metrics.t;
  c_fetched : Rx_obs.Metrics.counter;
  mutable hook_ids : (int * int) option; (* (record, delete) observer handles *)
  mutable generation : int; (* 1 for a first build; bumped by online rebuilds *)
}

type entry = {
  key : Typed_value.t;
  docid : int;
  node : Node_id.t;
  rid : Rx_storage.Rid.t;
}

type bound = Typed_value.t * bool

let compile dict (definition : Index_def.t) =
  Q.compile ~value_output:true dict definition.Index_def.path

let create pool dict definition =
  let metrics = Rx_storage.Buffer_pool.metrics pool in
  {
    definition;
    tree = Rx_btree.Btree.create pool;
    dict;
    query = compile dict definition;
    metrics;
    c_fetched = Rx_obs.Metrics.counter metrics "xindex.entries_fetched";
    hook_ids = None;
    generation = 1;
  }

let attach pool dict definition ~meta_page =
  let metrics = Rx_storage.Buffer_pool.metrics pool in
  {
    definition;
    tree = Rx_btree.Btree.attach pool ~meta_page;
    dict;
    query = compile dict definition;
    metrics;
    c_fetched = Rx_obs.Metrics.counter metrics "xindex.entries_fetched";
    hook_ids = None;
    generation = 1;
  }

let def t = t.definition
let meta_page t = Rx_btree.Btree.meta_page t.tree
let generation t = t.generation
let set_generation t g = t.generation <- g

(* --- key encoding: (keyval, DocID, NodeID) → RID --- *)

let encode_value buf (kt : Index_def.key_type) (v : Typed_value.t) =
  match (kt, v) with
  | Index_def.K_string, Typed_value.String s -> Key_codec.encode_string buf s
  | Index_def.K_double, Typed_value.Double f -> Key_codec.encode_float buf f
  | Index_def.K_decimal, Typed_value.Decimal d -> Key_codec.encode_decimal buf d
  | Index_def.K_integer, Typed_value.Integer n -> Key_codec.encode_int64 buf (Int64.of_int n)
  | Index_def.K_date, Typed_value.Date { year; month; day } ->
      Key_codec.encode_int64 buf
        (Int64.of_int ((year * 10000) + (month * 100) + day))
  | _ -> invalid_arg "Value_index: typed value does not match the key type"

let decode_value (kt : Index_def.key_type) s pos =
  match kt with
  | Index_def.K_string ->
      let v, p = Key_codec.decode_string s pos in
      (Typed_value.String v, p)
  | Index_def.K_double ->
      let v, p = Key_codec.decode_float s pos in
      (Typed_value.Double v, p)
  | Index_def.K_decimal ->
      let v, p = Key_codec.decode_decimal s pos in
      (Typed_value.Decimal v, p)
  | Index_def.K_integer ->
      let v, p = Key_codec.decode_int64 s pos in
      (Typed_value.Integer (Int64.to_int v), p)
  | Index_def.K_date ->
      let v, p = Key_codec.decode_int64 s pos in
      let v = Int64.to_int v in
      ( Typed_value.Date { year = v / 10000; month = v / 100 mod 100; day = v mod 100 },
        p )

let value_prefix t v =
  let buf = Buffer.create 16 in
  encode_value buf t.definition.Index_def.key_type v;
  Buffer.contents buf

let full_key t v ~docid ~node =
  let buf = Buffer.create 24 in
  encode_value buf t.definition.Index_def.key_type v;
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Buffer.add_string buf node;
  Buffer.contents buf

let decode_entry t key value =
  let k, pos = decode_value t.definition.Index_def.key_type key 0 in
  let docid, pos = Key_codec.decode_int64 key pos in
  let node = String.sub key pos (String.length key - pos) in
  let rid = Rx_storage.Rid.decode (Bytes_io.Reader.of_string value) in
  { key = k; docid = Int64.to_int docid; node; rid }

(* --- per-record key extraction --- *)

type item = Ancestor | Node_item of Node_id.t

(* Runs the simplified QuickXScan over one record; returns
   (node id, value, complete?) for every match. Ancestor steps are
   pre-matched from the record header's context path. *)
let extract_record t ~record =
  let header, first = Record_format.decode_header record in
  let engine = E.create ~metrics:t.metrics t.query in
  (* synthetic ancestors from the context path *)
  List.iter
    (fun (uri, local) ->
      E.start_element engine
        ~name:{ Qname.uri; local; prefix = 0 }
        ~attrs:[]
        ~item:(fun () -> Ancestor)
        ~attr_item:(fun _ -> Ancestor))
    header.Record_format.path;
  let incomplete = Hashtbl.create 4 in
  let open_elems = ref [] in
  let rec walk base off limit =
    if off < limit then begin
      let entry, next = Record_format.decode_entry record off in
      let abs = Node_id.append base (Record_format.entry_rel entry) in
      (match entry with
      | Record_format.Element { name; attrs; children_off; children_len; _ } ->
          E.start_element engine ~name ~attrs
            ~item:(fun () -> Node_item abs)
            ~attr_item:(fun _ -> Node_item abs);
          open_elems := abs :: !open_elems;
          walk abs children_off (children_off + children_len);
          open_elems := List.tl !open_elems;
          E.end_element engine
      | Record_format.Text { content; _ } ->
          E.text engine ~content ~item:(fun () -> Node_item abs)
      | Record_format.Comment { content; _ } ->
          E.comment engine ~content ~item:(fun () -> Node_item abs)
      | Record_format.Pi { target; data; _ } ->
          E.pi engine ~target ~data ~item:(fun () -> Node_item abs)
      | Record_format.Proxy _ ->
          (* a subtree stored elsewhere: every open element's value within
             this record is incomplete *)
          List.iter (fun id -> Hashtbl.replace incomplete id ()) !open_elems);
      walk base next limit
    end
  in
  walk header.Record_format.context first (String.length record);
  List.iter (fun _ -> E.end_element engine) header.Record_format.path;
  List.filter_map
    (fun (item, value) ->
      match item with
      | Ancestor -> None
      | Node_item id -> Some (id, value, not (Hashtbl.mem incomplete id)))
    (E.finish_with_values engine)

let subtree_value store ~docid id =
  let buf = Buffer.create 64 in
  Doc_store.subtree_events store ~docid id (fun e ->
      match e.Doc_store.token with
      | Token.Text { content; _ } -> Buffer.add_string buf content
      | _ -> ());
  Buffer.contents buf

let keys_for_record t ~docid ~record ~store =
  List.filter_map
    (fun (id, value, complete) ->
      let value =
        if complete then value
        else
          match store with
          | Some store -> Some (subtree_value store ~docid id)
          | None -> value
      in
      match value with
      | None -> None
      | Some v -> (
          match Index_def.typed_of_string t.definition.Index_def.key_type v with
          | Some typed -> Some (typed, id)
          | None -> None))
    (extract_record t ~record)

let rid_value rid =
  let w = Bytes_io.Writer.create ~capacity:6 () in
  Rx_storage.Rid.encode w rid;
  Bytes_io.Writer.contents w

let extract_keys t ~docid ~record ~store = keys_for_record t ~docid ~record ~store

let insert_keys t ~docid ~rid keys =
  List.iter
    (fun (typed, id) ->
      Rx_btree.Btree.insert t.tree
        ~key:(full_key t typed ~docid ~node:id)
        ~value:(rid_value rid))
    keys

let remove_keys t ~docid keys =
  List.iter
    (fun (typed, id) ->
      ignore (Rx_btree.Btree.delete t.tree (full_key t typed ~docid ~node:id)))
    keys

let index_record t ~docid ~rid ~record ~store =
  insert_keys t ~docid ~rid (keys_for_record t ~docid ~record ~store)

let unindex_record t ~docid ~record ~store =
  List.iter
    (fun (typed, id) ->
      ignore (Rx_btree.Btree.delete t.tree (full_key t typed ~docid ~node:id)))
    (keys_for_record t ~docid ~record ~store)

let hook t store =
  let record_id =
    Doc_store.add_record_observer store (fun ~docid ~rid ~record ->
        index_record t ~docid ~rid ~record ~store:(Some store))
  in
  let delete_id =
    Doc_store.add_delete_observer store (fun ~docid ~rid:_ ~record ->
        unindex_record t ~docid ~record ~store:(Some store))
  in
  t.hook_ids <- Some (record_id, delete_id)

let unhook t store =
  match t.hook_ids with
  | None -> ()
  | Some (record_id, delete_id) ->
      Doc_store.remove_record_observer store record_id;
      Doc_store.remove_delete_observer store delete_id;
      t.hook_ids <- None

(* --- scans --- *)

let prefix_successor s =
  let b = Bytes.of_string s in
  let rec bump i =
    if i < 0 then None
    else if Bytes.get b i = '\xff' then bump (i - 1)
    else begin
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) + 1));
      Some (Bytes.sub_string b 0 (i + 1))
    end
  in
  bump (Bytes.length b - 1)

let scan t ?min ?max f =
  let empty = ref false in
  let lo =
    match min with
    | None -> None
    | Some (v, inclusive) ->
        let p = value_prefix t v in
        if inclusive then Some p
        else begin
          match prefix_successor p with
          | Some s -> Some s
          | None ->
              (* no key can sort above an all-0xff prefix *)
              empty := true;
              None
        end
  in
  if !empty then ()
  else
  let hi =
    match max with
    | None -> None
    | Some (v, inclusive) ->
        let p = value_prefix t v in
        if inclusive then prefix_successor p else Some p
  in
  Rx_btree.Btree.iter_range t.tree ?lo ?hi (fun key value ->
      Rx_obs.Metrics.incr t.c_fetched;
      f (decode_entry t key value))

let entries t ?min ?max () =
  let acc = ref [] in
  scan t ?min ?max (fun e ->
      acc := e :: !acc;
      `Continue);
  List.rev !acc

let entry_count t = Rx_btree.Btree.entry_count t.tree
let page_count t = Rx_btree.Btree.page_count t.tree
