open Rx_xmlstore

(* Keys are extracted *eagerly*, at observation time, and the raw record is
   not retained. Two reasons:
   - a deleted document's split subtrees (proxy records) are only
     resolvable while the store still holds the document, so deferring
     extraction to drain time would mis-key deletions of large documents;
   - drain then touches only the B+tree, keeping the quiesce window short. *)
type keys = (Rx_xml.Typed_value.t * Node_id.t) list

type event =
  | Add of { docid : int; rid : Rx_storage.Rid.t; keys : keys }
  | Del of { docid : int; keys : keys }

type t = {
  target : Value_index.t;
  store : Doc_store.t;
  lock : Mutex.t;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable hook_ids : (int * int) option; (* (record, delete) observer ids *)
}

let push t ev =
  Mutex.protect t.lock (fun () ->
      t.events <- ev :: t.events;
      t.count <- t.count + 1)

let absorb t ~docid ~rid ~record =
  let keys =
    Value_index.extract_keys t.target ~docid ~record ~store:(Some t.store)
  in
  if keys <> [] then push t (Add { docid; rid; keys })

let absorb_delete t ~docid ~record =
  let keys =
    Value_index.extract_keys t.target ~docid ~record ~store:(Some t.store)
  in
  if keys <> [] then push t (Del { docid; keys })

let start target store =
  let t =
    {
      target;
      store;
      lock = Mutex.create ();
      events = [];
      count = 0;
      hook_ids = None;
    }
  in
  let record_id =
    Doc_store.add_record_observer store (fun ~docid ~rid ~record ->
        absorb t ~docid ~rid ~record)
  in
  let delete_id =
    Doc_store.add_delete_observer store (fun ~docid ~rid:_ ~record ->
        absorb_delete t ~docid ~record)
  in
  t.hook_ids <- Some (record_id, delete_id);
  t

let pending t = Mutex.protect t.lock (fun () -> t.count)

let drain t =
  let batch =
    Mutex.protect t.lock (fun () ->
        let evs = List.rev t.events in
        t.events <- [];
        t.count <- 0;
        evs)
  in
  List.iter
    (function
      | Add { docid; rid; keys } ->
          Value_index.insert_keys t.target ~docid ~rid keys
      | Del { docid; keys } -> Value_index.remove_keys t.target ~docid keys)
    batch;
  List.length batch

let stop t =
  match t.hook_ids with
  | None -> ()
  | Some (record_id, delete_id) ->
      Doc_store.remove_record_observer t.store record_id;
      Doc_store.remove_delete_observer t.store delete_id;
      t.hook_ids <- None
