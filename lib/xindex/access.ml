open Rx_xpath
open Rx_xmlstore

type range = { min : Value_index.bound option; max : Value_index.bound option }

let range_of_compare (op : Ast.cmp) v =
  match op with
  | Ast.Eq -> Some { min = Some (v, true); max = Some (v, true) }
  | Ast.Lt -> Some { min = None; max = Some (v, false) }
  | Ast.Le -> Some { min = None; max = Some (v, true) }
  | Ast.Gt -> Some { min = Some (v, false); max = None }
  | Ast.Ge -> Some { min = Some (v, true); max = None }
  | Ast.Neq -> None

let scan_entries index range f =
  Value_index.scan index ?min:range.min ?max:range.max f

let docid_list index range =
  let acc = ref [] in
  scan_entries index range (fun e ->
      (match !acc with
      | d :: _ when d = e.Value_index.docid -> ()
      | _ -> acc := e.Value_index.docid :: !acc);
      `Continue);
  List.sort_uniq compare !acc

let nodeid_list index range =
  let acc = ref [] in
  scan_entries index range (fun e ->
      acc := (e.Value_index.docid, e.Value_index.node) :: !acc;
      `Continue);
  List.sort_uniq compare !acc

let anchored_nodeid_list index range ~level =
  let acc = ref [] in
  scan_entries index range (fun e ->
      if Node_id.level e.Value_index.node >= level then
        acc :=
          (e.Value_index.docid, Node_id.prefix_at_level e.Value_index.node level)
          :: !acc;
      `Continue);
  List.sort_uniq compare !acc

let rec merge_sorted op a b =
  match (a, b, op) with
  | [], rest, `Or | rest, [], `Or -> rest
  | [], _, `And | _, [], `And -> []
  | x :: xs, y :: ys, _ ->
      let c = compare x y in
      if c = 0 then
        x :: merge_sorted op xs ys
      else if c < 0 then
        match op with
        | `And -> merge_sorted op xs (y :: ys)
        | `Or -> x :: merge_sorted op xs (y :: ys)
      else
        match op with
        | `And -> merge_sorted op (x :: xs) ys
        | `Or -> y :: merge_sorted op (x :: xs) ys

let and_docids a b = merge_sorted `And a b
let or_docids a b = merge_sorted `Or a b
let and_nodeids a b = merge_sorted `And a b
let or_nodeids a b = merge_sorted `Or a b
