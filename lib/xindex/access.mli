(** Index-based access methods (§4.3, Table 2).

    - {e DocID list access}: an index scan yields the unique documents whose
      nodes satisfy a predicate — efficient for small documents.
    - {e NodeID list access}: yields (DocID, NodeID) pairs, truncated to the
      query's anchor element level when that level is fixed — efficient for
      large documents.
    - {e Filtering}: when the index path merely contains the query path, the
      returned list is a superset and the query must be re-evaluated on the
      candidates.
    - {e ANDing/ORing}: sorted-list intersection/union of DocID or NodeID
      lists from multiple indexes. If all participating indexes match their
      predicates exactly, the result is exact; if at least one is exact,
      NodeID-level ANDing still yields an exact list (the paper's rule —
      which holds at the anchor level). *)

type range = {
  min : Value_index.bound option;
  max : Value_index.bound option;
}

val range_of_compare :
  Rx_xpath.Ast.cmp -> Rx_xml.Typed_value.t -> range option
(** The key range selected by [node op literal]; [None] for [!=], which an
    ordered index cannot serve with one range. *)

val docid_list : Value_index.t -> range -> int list
(** Sorted, duplicate-free. *)

val nodeid_list : Value_index.t -> range -> (int * Rx_xmlstore.Node_id.t) list
(** (DocID, value-node NodeID) pairs, sorted, duplicate-free. *)

val anchored_nodeid_list :
  Value_index.t -> range -> level:int -> (int * Rx_xmlstore.Node_id.t) list
(** NodeIDs truncated to the ancestor at [level] — the anchor elements the
    query predicates hang off. Entries shallower than [level] are
    dropped. *)

val and_docids : int list -> int list -> int list
(** Sorted-list intersection of DocID lists. *)

val or_docids : int list -> int list -> int list
(** Sorted-list union of DocID lists. *)

val and_nodeids :
  (int * Rx_xmlstore.Node_id.t) list ->
  (int * Rx_xmlstore.Node_id.t) list ->
  (int * Rx_xmlstore.Node_id.t) list
(** Sorted-list intersection of (DocID, NodeID) lists. *)

val or_nodeids :
  (int * Rx_xmlstore.Node_id.t) list ->
  (int * Rx_xmlstore.Node_id.t) list ->
  (int * Rx_xmlstore.Node_id.t) list
(** Sorted-list union of (DocID, NodeID) lists. *)
