let default_page_size = 4096
let magic = "RXPAGER2"
let format_version = 1

exception Corrupt_page of { page_no : int; stored : int32; computed : int32 }

let () =
  Printexc.register_printer (function
    | Corrupt_page { page_no; stored; computed } ->
        Some
          (Printf.sprintf
             "Pager.Corrupt_page(page %d: stored checksum %08lx, computed %08lx)"
             page_no stored computed)
    | _ -> None)

(* sync: [pages]/[count] are mutated only by [alloc] (writer path, under
   [Database.write_lock]); concurrent reader domains take [io_lock] around
   every physical transfer, which also covers the seek+read pair on the
   shared file descriptor *)
type backend =
  | Mem of { mutable pages : bytes array; mutable count : int }
  | File of { fd : Unix.file_descr; mutable count : int }

type t = {
  page_size : int;
  backend : backend;
  io_lock : Mutex.t; (* serializes lseek+read/write on the shared fd *)
  mutable fault : Fault.t option;
      (* sync: installed before concurrent use (harness setup); plain field *)
  reads : int Atomic.t;
  writes : int Atomic.t;
  c_reads : Rx_obs.Metrics.counter;
  c_writes : Rx_obs.Metrics.counter;
  c_syncs : Rx_obs.Metrics.counter;
  c_corrupt : Rx_obs.Metrics.counter;
}

let with_io t f =
  Mutex.lock t.io_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.io_lock) f

let counters metrics =
  Rx_obs.Metrics.
    ( counter metrics "pager.reads",
      counter metrics "pager.writes",
      counter metrics "pager.syncs",
      counter metrics "pager.corrupt_pages" )

let page_size t = t.page_size

let page_count t =
  match t.backend with Mem m -> m.count | File f -> f.count

let set_fault t fault = t.fault <- fault

let create_in_memory ?(metrics = Rx_obs.Metrics.default) ?(page_size = default_page_size) () =
  let c_reads, c_writes, c_syncs, c_corrupt = counters metrics in
  let t =
    {
      page_size;
      backend = Mem { pages = Array.make 64 Bytes.empty; count = 0 };
      io_lock = Mutex.create ();
      fault = None;
      reads = Atomic.make 0;
      writes = Atomic.make 0;
      c_reads;
      c_writes;
      c_syncs;
      c_corrupt;
    }
  in
  (* reserve page 0 *)
  (match t.backend with
  | Mem m ->
      m.pages.(0) <- Bytes.make page_size '\000';
      m.count <- 1
  | File _ -> assert false);
  t

let pwrite_full fd buf off len =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let rec loop pos =
    if pos < len then begin
      let n = Unix.write fd buf pos (len - pos) in
      loop (pos + n)
    end
  in
  loop 0

let pread_full fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec loop pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n = 0 then invalid_arg "Pager: short read";
      loop (pos + n)
    end
  in
  loop 0

(* Physical write of the (pre-stamped) page image, honouring the fault
   hook: a torn write transfers only a prefix of the image. *)
let write_page t page_no buf =
  Fault.wrap_write t.fault ~op:"pager.write" ~len:(Bytes.length buf)
    ~write:(fun n ->
      with_io t (fun () ->
          match t.backend with
          | Mem m -> Bytes.blit buf 0 m.pages.(page_no) 0 n
          | File f -> pwrite_full f.fd buf (page_no * t.page_size) n))

let stored_page_size path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let hdr = Bytes.make 16 '\000' in
      pread_full fd hdr 0;
      if Bytes.sub_string hdr 0 8 <> magic then
        failwith "Pager.stored_page_size: bad magic";
      Int32.to_int (Bytes.get_int32_be hdr 8))

let open_file ?(metrics = Rx_obs.Metrics.default) ?(page_size = default_page_size) path =
  let c_reads, c_writes, c_syncs, c_corrupt = counters metrics in
  let existed = Sys.file_exists path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if existed && (Unix.fstat fd).Unix.st_size > 0 then begin
    let hdr = Bytes.make 16 '\000' in
    pread_full fd hdr 0;
    if Bytes.sub_string hdr 0 8 <> magic then failwith "Pager.open_file: bad magic";
    let stored = Int32.to_int (Bytes.get_int32_be hdr 8) in
    if stored <> page_size then
      failwith
        (Printf.sprintf "Pager.open_file: page size mismatch (%d vs %d)" stored
           page_size);
    let version = Char.code (Bytes.get hdr 12) in
    if version <> format_version then
      failwith
        (Printf.sprintf "Pager.open_file: unsupported format version %d" version);
    let size = (Unix.fstat fd).Unix.st_size in
    {
      page_size;
      backend = File { fd; count = size / page_size };
      io_lock = Mutex.create ();
      fault = None;
      reads = Atomic.make 0;
      writes = Atomic.make 0;
      c_reads;
      c_writes;
      c_syncs;
      c_corrupt;
    }
  end
  else begin
    let hdr = Bytes.make page_size '\000' in
    Bytes.blit_string magic 0 hdr 0 8;
    Bytes.set_int32_be hdr 8 (Int32.of_int page_size);
    Bytes.set hdr 12 (Char.chr format_version);
    pwrite_full fd hdr 0 page_size;
    {
      page_size;
      backend = File { fd; count = 1 };
      io_lock = Mutex.create ();
      fault = None;
      reads = Atomic.make 0;
      writes = Atomic.make 0;
      c_reads;
      c_writes;
      c_syncs;
      c_corrupt;
    }
  end

let alloc t =
  let zero = Bytes.make t.page_size '\000' in
  Page.stamp zero;
  let n =
    (* sync: backend growth under io_lock so reader domains never observe a
       half-swapped pages array or a count past the initialized prefix *)
    with_io t (fun () ->
        match t.backend with
        | Mem m ->
            if m.count >= Array.length m.pages then begin
              let bigger = Array.make (2 * Array.length m.pages) Bytes.empty in
              Array.blit m.pages 0 bigger 0 m.count;
              m.pages <- bigger
            end;
            let n = m.count in
            m.pages.(n) <- Bytes.make t.page_size '\000';
            m.count <- n + 1;
            n
        | File f ->
            let n = f.count in
            f.count <- n + 1;
            n)
  in
  write_page t n zero;
  n

let check_page_no t page_no =
  if page_no <= 0 || page_no >= page_count t then
    invalid_arg (Printf.sprintf "Pager: page %d out of range" page_no)

let read t page_no buf =
  check_page_no t page_no;
  Atomic.incr t.reads;
  Rx_obs.Metrics.incr t.c_reads;
  with_io t (fun () ->
      match t.backend with
      | Mem m -> Bytes.blit m.pages.(page_no) 0 buf 0 t.page_size
      | File f -> pread_full f.fd buf (page_no * t.page_size));
  if not (Page.verify buf) then begin
    Rx_obs.Metrics.incr t.c_corrupt;
    raise
      (Corrupt_page
         {
           page_no;
           stored = Bytes.get_int32_be buf 12;
           computed = Page.compute_checksum buf;
         })
  end

let read_run t ~first bufs =
  let n = Array.length bufs in
  if n > 0 then begin
    check_page_no t first;
    check_page_no t (first + n - 1);
    Atomic.fetch_and_add t.reads n |> ignore;
    Rx_obs.Metrics.add t.c_reads n;
    with_io t (fun () ->
        match t.backend with
        | Mem m ->
            Array.iteri
              (fun i buf -> Bytes.blit m.pages.(first + i) 0 buf 0 t.page_size)
              bufs
        | File f ->
            let run = Bytes.create (n * t.page_size) in
            pread_full f.fd run (first * t.page_size);
            Array.iteri
              (fun i buf -> Bytes.blit run (i * t.page_size) buf 0 t.page_size)
              bufs);
    Array.iteri
      (fun i buf ->
        if not (Page.verify buf) then begin
          Rx_obs.Metrics.incr t.c_corrupt;
          raise
            (Corrupt_page
               {
                 page_no = first + i;
                 stored = Bytes.get_int32_be buf 12;
                 computed = Page.compute_checksum buf;
               })
        end)
      bufs
  end

let write t page_no buf =
  check_page_no t page_no;
  Atomic.incr t.writes;
  Rx_obs.Metrics.incr t.c_writes;
  Page.stamp buf;
  write_page t page_no buf

let sync t =
  Rx_obs.Metrics.incr t.c_syncs;
  Fault.wrap_fsync t.fault ~op:"pager.sync" ~sync:(fun () ->
      match t.backend with Mem _ -> () | File f -> Unix.fsync f.fd)

let close t =
  match t.backend with Mem _ -> () | File f -> Unix.close f.fd

let io_stats t = (Atomic.get t.reads, Atomic.get t.writes)
