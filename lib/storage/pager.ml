let default_page_size = 4096
let magic = "RXPAGER1"

type backend =
  | Mem of { mutable pages : bytes array; mutable count : int }
  | File of { fd : Unix.file_descr; mutable count : int }

type t = {
  page_size : int;
  backend : backend;
  mutable reads : int;
  mutable writes : int;
  c_reads : Rx_obs.Metrics.counter;
  c_writes : Rx_obs.Metrics.counter;
  c_syncs : Rx_obs.Metrics.counter;
}

let counters metrics =
  Rx_obs.Metrics.
    (counter metrics "pager.reads", counter metrics "pager.writes", counter metrics "pager.syncs")

let page_size t = t.page_size

let page_count t =
  match t.backend with Mem m -> m.count | File f -> f.count

let create_in_memory ?(metrics = Rx_obs.Metrics.default) ?(page_size = default_page_size) () =
  let c_reads, c_writes, c_syncs = counters metrics in
  let t =
    {
      page_size;
      backend = Mem { pages = Array.make 64 Bytes.empty; count = 0 };
      reads = 0;
      writes = 0;
      c_reads;
      c_writes;
      c_syncs;
    }
  in
  (* reserve page 0 *)
  (match t.backend with
  | Mem m ->
      m.pages.(0) <- Bytes.make page_size '\000';
      m.count <- 1
  | File _ -> assert false);
  t

let pwrite_full fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec loop pos =
    if pos < len then begin
      let n = Unix.write fd buf pos (len - pos) in
      loop (pos + n)
    end
  in
  loop 0

let pread_full fd buf off =
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec loop pos =
    if pos < len then begin
      let n = Unix.read fd buf pos (len - pos) in
      if n = 0 then invalid_arg "Pager: short read";
      loop (pos + n)
    end
  in
  loop 0

let open_file ?(metrics = Rx_obs.Metrics.default) ?(page_size = default_page_size) path =
  let c_reads, c_writes, c_syncs = counters metrics in
  let existed = Sys.file_exists path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  if existed && (Unix.fstat fd).Unix.st_size > 0 then begin
    let hdr = Bytes.make 16 '\000' in
    pread_full fd hdr 0;
    if Bytes.sub_string hdr 0 8 <> magic then failwith "Pager.open_file: bad magic";
    let stored = Int32.to_int (Bytes.get_int32_be hdr 8) in
    if stored <> page_size then
      failwith
        (Printf.sprintf "Pager.open_file: page size mismatch (%d vs %d)" stored
           page_size);
    let size = (Unix.fstat fd).Unix.st_size in
    {
      page_size;
      backend = File { fd; count = size / page_size };
      reads = 0;
      writes = 0;
      c_reads;
      c_writes;
      c_syncs;
    }
  end
  else begin
    let hdr = Bytes.make page_size '\000' in
    Bytes.blit_string magic 0 hdr 0 8;
    Bytes.set_int32_be hdr 8 (Int32.of_int page_size);
    pwrite_full fd hdr 0;
    {
      page_size;
      backend = File { fd; count = 1 };
      reads = 0;
      writes = 0;
      c_reads;
      c_writes;
      c_syncs;
    }
  end

let alloc t =
  match t.backend with
  | Mem m ->
      if m.count >= Array.length m.pages then begin
        let bigger = Array.make (2 * Array.length m.pages) Bytes.empty in
        Array.blit m.pages 0 bigger 0 m.count;
        m.pages <- bigger
      end;
      m.pages.(m.count) <- Bytes.make t.page_size '\000';
      let n = m.count in
      m.count <- n + 1;
      n
  | File f ->
      let n = f.count in
      pwrite_full f.fd (Bytes.make t.page_size '\000') (n * t.page_size);
      f.count <- n + 1;
      n

let check_page_no t page_no =
  if page_no <= 0 || page_no >= page_count t then
    invalid_arg (Printf.sprintf "Pager: page %d out of range" page_no)

let read t page_no buf =
  check_page_no t page_no;
  t.reads <- t.reads + 1;
  Rx_obs.Metrics.incr t.c_reads;
  match t.backend with
  | Mem m -> Bytes.blit m.pages.(page_no) 0 buf 0 t.page_size
  | File f -> pread_full f.fd buf (page_no * t.page_size)

let write t page_no buf =
  check_page_no t page_no;
  t.writes <- t.writes + 1;
  Rx_obs.Metrics.incr t.c_writes;
  match t.backend with
  | Mem m -> Bytes.blit buf 0 m.pages.(page_no) 0 t.page_size
  | File f -> pwrite_full f.fd buf (page_no * t.page_size)

let sync t =
  Rx_obs.Metrics.incr t.c_syncs;
  match t.backend with Mem _ -> () | File f -> Unix.fsync f.fd

let close t =
  match t.backend with Mem _ -> () | File f -> Unix.close f.fd

let io_stats t = (t.reads, t.writes)
