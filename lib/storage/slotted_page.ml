(* Layout (byte offsets within the page):
     16  u16 slot_count
     18  u16 cell_start   (lowest byte used by cell content)
     20  u16 frag_bytes   (reclaimable bytes from deleted cells)
     22  u32 next_page
     26  u32 aux
     30  u16 reserved
     32  slot directory: per slot, u16 cell offset (0 = dead) and u16 length *)

let header_size = 32
let slot_entry_size = 4

let u16_get page off = Char.code (Bytes.get page off) lsl 8 lor Char.code (Bytes.get page (off + 1))

let u16_set page off v =
  Bytes.set page off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set page (off + 1) (Char.chr (v land 0xff))

let u32_get page off = (u16_get page off lsl 16) lor u16_get page (off + 2)

let u32_set page off v =
  u16_set page off ((v lsr 16) land 0xffff);
  u16_set page (off + 2) (v land 0xffff)

let slot_count page = u16_get page 16
let set_slot_count page v = u16_set page 16 v
let cell_start page = u16_get page 18
let set_cell_start page v = u16_set page 18 v
let frag_bytes page = u16_get page 20
let set_frag_bytes page v = u16_set page 20 v
let next_page page = u32_get page 22
let set_next_page page v = u32_set page 22 v
let aux page = u32_get page 26
let set_aux page v = u32_set page 26 v

let init page =
  set_slot_count page 0;
  set_cell_start page (Bytes.length page);
  set_frag_bytes page 0;
  set_next_page page 0;
  set_aux page 0

let slot_pos n = header_size + (n * slot_entry_size)
let slot_offset page n = u16_get page (slot_pos n)
let slot_len page n = u16_get page (slot_pos n + 2)

let set_slot page n ~offset ~len =
  u16_set page (slot_pos n) offset;
  u16_set page (slot_pos n + 2) len

let live_count page =
  let n = slot_count page in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if slot_offset page i <> 0 then incr count
  done;
  !count

let directory_end page = slot_pos (slot_count page)

let free_space page =
  cell_start page - directory_end page + frag_bytes page - slot_entry_size

let max_record_size ~page_size = page_size - header_size - slot_entry_size

(* Repack all live cells against the end of the page, preserving slot
   numbers. *)
let compact page =
  let n = slot_count page in
  let cells = ref [] in
  for i = 0 to n - 1 do
    let off = slot_offset page i in
    if off <> 0 then
      cells := (i, Bytes.sub page off (slot_len page i)) :: !cells
  done;
  let pos = ref (Bytes.length page) in
  List.iter
    (fun (i, cell) ->
      let len = Bytes.length cell in
      pos := !pos - len;
      Bytes.blit cell 0 page !pos len;
      set_slot page i ~offset:!pos ~len)
    !cells;
  set_cell_start page !pos;
  set_frag_bytes page 0

let find_dead_slot page =
  let n = slot_count page in
  let rec loop i =
    if i >= n then None else if slot_offset page i = 0 then Some i else loop (i + 1)
  in
  loop 0

let rec insert page payload =
  let len = String.length payload in
  let reuse = find_dead_slot page in
  let dir_growth = match reuse with Some _ -> 0 | None -> slot_entry_size in
  let contiguous = cell_start page - directory_end page - dir_growth in
  if contiguous < len then begin
    if contiguous + frag_bytes page < len then None
    else begin
      compact page;
      (* compaction does not change directory size *)
      if cell_start page - directory_end page - dir_growth < len then None
      else insert_after_compact page payload reuse
    end
  end
  else insert_after_compact page payload reuse

and insert_after_compact page payload reuse =
  let len = String.length payload in
  let slot =
    match reuse with
    | Some i -> i
    | None ->
        let i = slot_count page in
        set_slot_count page (i + 1);
        i
  in
  let offset = cell_start page - len in
  Bytes.blit_string payload 0 page offset len;
  set_cell_start page offset;
  set_slot page slot ~offset ~len;
  Some slot

let insert_at page slot payload =
  let n = slot_count page in
  if slot >= n then begin
    for i = n to slot do
      set_slot page i ~offset:0 ~len:0
    done;
    set_slot_count page (slot + 1)
  end
  else if slot_offset page slot <> 0 then begin
    (* replace existing: free old cell first *)
    set_frag_bytes page (frag_bytes page + slot_len page slot);
    set_slot page slot ~offset:0 ~len:0
  end;
  let len = String.length payload in
  if cell_start page - directory_end page < len then compact page;
  let offset = cell_start page - len in
  if offset < directory_end page then failwith "Slotted_page.insert_at: no space";
  Bytes.blit_string payload 0 page offset len;
  set_cell_start page offset;
  set_slot page slot ~offset ~len

let get_view page slot =
  if slot < 0 || slot >= slot_count page then None
  else
    let off = slot_offset page slot in
    if off = 0 then None else Some (off, slot_len page slot)

let get page slot =
  match get_view page slot with
  | None -> None
  | Some (off, len) -> Some (Bytes.sub_string page off len)

let delete page slot =
  if slot >= 0 && slot < slot_count page then begin
    let off = slot_offset page slot in
    if off <> 0 then begin
      set_frag_bytes page (frag_bytes page + slot_len page slot);
      set_slot page slot ~offset:0 ~len:0;
      (* trim trailing dead slots so the directory can shrink *)
      let n = ref (slot_count page) in
      while !n > 0 && slot_offset page (!n - 1) = 0 do
        decr n
      done;
      set_slot_count page !n
    end
  end

let update page slot payload =
  match get page slot with
  | None -> invalid_arg "Slotted_page.update: dead slot"
  | Some old ->
      let len = String.length payload in
      let old_len = String.length old in
      if len <= old_len then begin
        (* shrink in place *)
        let off = slot_offset page slot in
        Bytes.blit_string payload 0 page off len;
        set_slot page slot ~offset:off ~len;
        set_frag_bytes page (frag_bytes page + (old_len - len));
        true
      end
      else begin
        (* free old cell, then behave like insert into the same slot *)
        set_frag_bytes page (frag_bytes page + old_len);
        set_slot page slot ~offset:0 ~len:0;
        let contiguous = cell_start page - directory_end page in
        if contiguous < len && contiguous + frag_bytes page >= len then
          compact page;
        if cell_start page - directory_end page < len then begin
          (* roll back: re-insert the old payload into the same slot *)
          insert_at page slot old;
          false
        end
        else begin
          let offset = cell_start page - len in
          Bytes.blit_string payload 0 page offset len;
          set_cell_start page offset;
          set_slot page slot ~offset ~len;
          true
        end
      end

let iter f page =
  let n = slot_count page in
  for i = 0 to n - 1 do
    let off = slot_offset page i in
    if off <> 0 then f i (Bytes.sub_string page off (slot_len page i))
  done
