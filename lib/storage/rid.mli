(** Physical record identifiers: (page number, slot number), the RIDs of
    §3.1 that XPath value indexes and the NodeID index map into. *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
(** Builds a RID; no range checking is performed. *)

val compare : t -> t -> int
(** Total order: page number first, then slot — i.e. physical scan order. *)

val equal : t -> t -> bool
(** Structural equality. *)

val hash : t -> int
(** Hash consistent with {!equal}, for use in hash tables. *)

val encode : Rx_util.Bytes_io.Writer.t -> t -> unit
(** Serializes as two u32s (page, slot) — the on-disk index payload form. *)

val decode : Rx_util.Bytes_io.Reader.t -> t
(** Inverse of {!encode}. *)

val to_string : t -> string
(** ["page:slot"], for messages and debugging. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer matching {!to_string}. *)
