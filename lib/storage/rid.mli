(** Physical record identifiers: (page number, slot number), the RIDs of
    §3.1 that XPath value indexes and the NodeID index map into. *)

type t = { page : int; slot : int }

val make : page:int -> slot:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val encode : Rx_util.Bytes_io.Writer.t -> t -> unit
val decode : Rx_util.Bytes_io.Reader.t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
