(** Slotted-page layout for variable-length records.

    A slot directory grows forward from the header; cell contents grow
    backward from the end of the page. Slot numbers are stable across
    compaction, so RIDs remain valid for the life of a record — the property
    §3.1 relies on ("maximum flexibility of record placement"). *)

val header_size : int
(** First byte usable by the slot directory. *)

val init : bytes -> unit
(** Formats an empty slotted page (does not touch the page header). *)

val slot_count : bytes -> int
(** Size of the slot directory, including dead slots. *)

val live_count : bytes -> int
(** Number of live (non-dead) slots. *)

val next_page : bytes -> int
(** Forward link to the next page in the owning chain (0 = end). *)

val set_next_page : bytes -> int -> unit
(** Sets the forward link. Callers must journal the change (i.e. go through
    {!Buffer_pool.update}) for it to be crash-safe. *)

val aux : bytes -> int
(** A spare u32 for the owning component (e.g. B+tree right-sibling). *)

val set_aux : bytes -> int -> unit

val free_space : bytes -> int
(** Bytes available for one new record (counting a fresh slot entry),
    assuming compaction. *)

val max_record_size : page_size:int -> int
(** Largest record insertable into an empty page. *)

val insert : bytes -> string -> int option
(** [insert page payload] returns the slot number, or [None] if the payload
    does not fit even after compaction. *)

val insert_at : bytes -> int -> string -> unit
(** Forces [payload] into the given slot number, growing the directory as
    needed — used only by recovery redo. *)

val get : bytes -> int -> string option
(** [None] if the slot is dead or out of range. *)

val get_view : bytes -> int -> (int * int) option
(** [get_view page slot] is the [(offset, length)] of the cell inside the page
    image, without copying — the zero-allocation counterpart of {!get}. The
    view is only valid while the page stays pinned and unmodified; any insert,
    delete, or update may compact the page and move cells. *)

val delete : bytes -> int -> unit
(** Marks the slot dead; space is reclaimed lazily by compaction. *)

val update : bytes -> int -> string -> bool
(** In-place update; [false] if the new payload cannot fit on this page. *)

val iter : (int -> string -> unit) -> bytes -> unit
(** Live slots in slot-number order. *)
