open Rx_util

(* Header page layout: 16 u32 first_data_page; 20 u32 last_data_page;
   24 u64 record_count; 32 u64 overflow_page_count.
   Data-page cells: tag byte 0 = inline payload, 1 = overflow stub
   (u32 first overflow page, u32 total length).
   Overflow pages: 16 u32 next; 20 u16 chunk length; data from 22. *)

(* sync: all mutation happens on the writer path, serialized by the table
   X lock / database write lock. Reader domains only probe [free_map] with
   [Hashtbl.mem] (prefetch filtering), and the lock manager keeps S-locked
   scans from overlapping an X-locked writer on the same table, so the
   table is never resized under a reader. *)
type t = {
  pool : Buffer_pool.t;
  header : int;
  free_map : (int, int) Hashtbl.t; (* data page -> cached free bytes *)
  mutable last_page : int;
  mutable readahead : int; (* max pages per readahead batch; <= 1 disables *)
}

let default_readahead = 8
let set_readahead t n = t.readahead <- n
let readahead t = t.readahead

(* Data pages are appended to the chain in allocation order, so the pages
   following [page_no] numerically are (mostly) the pages a chain walk will
   visit next. Prefetch the window ahead of [page_no], filtered to pages this
   heap actually owns (the free map holds exactly the data pages). *)
let prefetch_window t page_no =
  if t.readahead > 1 && not (Buffer_pool.cached t.pool page_no) then begin
    let pages = ref [] in
    for p = page_no + t.readahead - 1 downto page_no do
      if p = page_no || Hashtbl.mem t.free_map p then pages := p :: !pages
    done;
    Buffer_pool.prefetch t.pool !pages
  end

let u32_get page off =
  (Char.code (Bytes.get page off) lsl 24)
  lor (Char.code (Bytes.get page (off + 1)) lsl 16)
  lor (Char.code (Bytes.get page (off + 2)) lsl 8)
  lor Char.code (Bytes.get page (off + 3))

let u32_set page off v =
  Bytes.set page off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set page (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set page (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set page (off + 3) (Char.chr (v land 0xff))

let hdr_first page = u32_get page 16
let hdr_set_first page v = u32_set page 16 v
let hdr_last page = u32_get page 20
let hdr_set_last page v = u32_set page 20 v
let hdr_count page = Int64.to_int (Bytes.get_int64_be page 24)
let hdr_set_count page v = Bytes.set_int64_be page 24 (Int64.of_int v)
let hdr_ovf page = Int64.to_int (Bytes.get_int64_be page 32)
let hdr_set_ovf page v = Bytes.set_int64_be page 32 (Int64.of_int v)
let hdr_free_ovf page = u32_get page 40
let hdr_set_free_ovf page v = u32_set page 40 v

let new_data_page pool =
  let page_no = Buffer_pool.alloc pool Page.Heap in
  Buffer_pool.update pool page_no Slotted_page.init;
  page_no

let create pool =
  let header = Buffer_pool.alloc pool Page.Meta in
  let first = new_data_page pool in
  Buffer_pool.update pool header (fun page ->
      hdr_set_first page first;
      hdr_set_last page first;
      hdr_set_count page 0;
      hdr_set_ovf page 0);
  let t =
    {
      pool;
      header;
      free_map = Hashtbl.create 64;
      last_page = first;
      readahead = default_readahead;
    }
  in
  Hashtbl.replace t.free_map first
    (Buffer_pool.with_page pool first Slotted_page.free_space);
  t

let attach pool ~header_page =
  let first, last =
    Buffer_pool.with_page pool header_page (fun page ->
        (hdr_first page, hdr_last page))
  in
  let t =
    {
      pool;
      header = header_page;
      free_map = Hashtbl.create 64;
      last_page = last;
      readahead = default_readahead;
    }
  in
  (* Rebuild the free-space map by walking the page chain. *)
  let rec walk page_no =
    if page_no <> 0 then begin
      let free, next =
        Buffer_pool.with_page pool page_no (fun page ->
            (Slotted_page.free_space page, Slotted_page.next_page page))
      in
      Hashtbl.replace t.free_map page_no free;
      walk next
    end
  in
  walk first;
  t

let header_page t = t.header

let record_count t =
  Buffer_pool.with_page t.pool t.header hdr_count

let bump_count t delta =
  Buffer_pool.update t.pool t.header (fun page ->
      hdr_set_count page (hdr_count page + delta))

let data_pages t = Hashtbl.length t.free_map

let overflow_pages t = Buffer_pool.with_page t.pool t.header hdr_ovf

(* Append a fresh data page to the chain and register it in the free map. *)
let extend_chain t =
  let fresh = new_data_page t.pool in
  Buffer_pool.update t.pool t.last_page (fun page ->
      Slotted_page.set_next_page page fresh);
  Buffer_pool.update t.pool t.header (fun page -> hdr_set_last page fresh);
  Hashtbl.replace t.free_map fresh
    (Buffer_pool.with_page t.pool fresh Slotted_page.free_space);
  t.last_page <- fresh;
  fresh

(* Choose a data page with at least [need] free bytes; extend the chain if
   none qualifies. *)
let page_for t need =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun page_no free ->
         if free >= need then begin
           found := Some page_no;
           raise Exit
         end)
       t.free_map
   with Exit -> ());
  match !found with Some p -> p | None -> extend_chain t

let overflow_chunk_capacity t = Buffer_pool.page_size t.pool - 22

(* Pop a page from the overflow free list, or allocate a fresh one. *)
let alloc_overflow_page t =
  let head = Buffer_pool.with_page t.pool t.header hdr_free_ovf in
  if head = 0 then Buffer_pool.alloc t.pool Page.Heap_overflow
  else begin
    let next = Buffer_pool.with_page t.pool head (fun page -> u32_get page 16) in
    Buffer_pool.update t.pool t.header (fun page -> hdr_set_free_ovf page next);
    head
  end

(* Store [payload] in a chain of overflow pages, returning the first page. *)
let write_overflow t payload =
  let cap = overflow_chunk_capacity t in
  let len = String.length payload in
  let n_chunks = (len + cap - 1) / cap in
  let pages = Array.init n_chunks (fun _ -> alloc_overflow_page t) in
  Array.iteri
    (fun i page_no ->
      let off = i * cap in
      let chunk_len = min cap (len - off) in
      let next = if i + 1 < n_chunks then pages.(i + 1) else 0 in
      Buffer_pool.update t.pool page_no (fun page ->
          u32_set page 16 next;
          Bytes.set page 20 (Char.chr ((chunk_len lsr 8) land 0xff));
          Bytes.set page 21 (Char.chr (chunk_len land 0xff));
          Bytes.blit_string payload off page 22 chunk_len))
    pages;
  Buffer_pool.update t.pool t.header (fun page ->
      hdr_set_ovf page (hdr_ovf page + n_chunks));
  pages.(0)

let read_overflow t first total_len =
  let buf = Bytes.create total_len in
  let rec loop page_no pos =
    if page_no <> 0 then begin
      let next, chunk_len =
        Buffer_pool.with_page t.pool page_no (fun page ->
            let next = u32_get page 16 in
            let chunk_len =
              (Char.code (Bytes.get page 20) lsl 8) lor Char.code (Bytes.get page 21)
            in
            Bytes.blit page 22 buf pos chunk_len;
            (next, chunk_len))
      in
      loop next (pos + chunk_len)
    end
  in
  loop first 0;
  Bytes.to_string buf

let free_overflow t first =
  (* recycle the whole chain onto the header's free list *)
  let rec walk page_no acc last =
    if page_no = 0 then (acc, last)
    else
      let next = Buffer_pool.with_page t.pool page_no (fun page -> u32_get page 16) in
      walk next (acc + 1) page_no
  in
  let n, last = walk first 0 0 in
  if n > 0 then begin
    let old_head = Buffer_pool.with_page t.pool t.header hdr_free_ovf in
    Buffer_pool.update t.pool last (fun page -> u32_set page 16 old_head);
    Buffer_pool.update t.pool t.header (fun page ->
        hdr_set_free_ovf page first;
        hdr_set_ovf page (hdr_ovf page - n))
  end

let encode_cell t payload =
  let max_inline = Slotted_page.max_record_size ~page_size:(Buffer_pool.page_size t.pool) - 1 in
  if String.length payload <= max_inline then "\x00" ^ payload
  else begin
    let first = write_overflow t payload in
    let w = Bytes_io.Writer.create ~capacity:9 () in
    Bytes_io.Writer.u8 w 1;
    Bytes_io.Writer.u32 w first;
    Bytes_io.Writer.u32 w (String.length payload);
    Bytes_io.Writer.contents w
  end

(* Decode a cell in place from the pinned page image: one [Bytes.sub_string]
   for inline payloads (the returned record), none beyond the reassembly
   buffer for overflow stubs. Must be called with the page pinned. *)
let decode_cell_view t page ~off ~len =
  match Bytes.get page off with
  | '\x00' -> Bytes.sub_string page (off + 1) (len - 1)
  | '\x01' ->
      let first = u32_get page (off + 1) in
      let total = u32_get page (off + 5) in
      read_overflow t first total
  | _ -> invalid_arg "Heap_file: corrupt cell tag"

let refresh_free t page_no page =
  Hashtbl.replace t.free_map page_no (Slotted_page.free_space page)

let insert t payload =
  let cell = encode_cell t payload in
  let need = String.length cell in
  let rec try_insert attempts =
    let page_no = page_for t need in
    let slot =
      Buffer_pool.update t.pool page_no (fun page ->
          let slot = Slotted_page.insert page cell in
          refresh_free t page_no page;
          slot)
    in
    match slot with
    | Some slot -> Rid.make ~page:page_no ~slot
    | None ->
        (* cached free space was stale; retry with the map corrected *)
        if attempts > Hashtbl.length t.free_map + 1 then
          failwith "Heap_file.insert: cannot place record"
        else try_insert (attempts + 1)
  in
  let rid = try_insert 0 in
  bump_count t 1;
  rid

let insert_many t payloads =
  match payloads with
  | [] -> []
  | _ ->
      (* Encode first: overflow chains are written as a side effect here,
         before any data-page placement. *)
      let cells = List.map (fun p -> encode_cell t p) payloads in
      let rids = ref [] in
      (* Fill one page at a time under a single [Buffer_pool.update]:
         consecutive cells land on the same page until it rejects one, so
         the free-space map is probed once per page transition instead of
         once per record. *)
      let rec place page_no cells =
        match cells with
        | [] -> ()
        | _ :: _ ->
            let rest =
              Buffer_pool.update t.pool page_no (fun page ->
                  let rec fill = function
                    | [] -> []
                    | cell :: tl as l -> (
                        match Slotted_page.insert page cell with
                        | Some slot ->
                            rids := Rid.make ~page:page_no ~slot :: !rids;
                            fill tl
                        | None -> l)
                  in
                  let rest = fill cells in
                  refresh_free t page_no page;
                  rest)
            in
            (match rest with
            | [] -> ()
            | cell :: _ ->
                let next = page_for t (String.length cell) in
                (* a page that just rejected this cell can still win the
                   free-map probe on stale arithmetic; force fresh space *)
                let next = if next = page_no then extend_chain t else next in
                place next rest)
      in
      place (page_for t (String.length (List.hd cells))) cells;
      bump_count t (List.length payloads);
      List.rev !rids

let read t (rid : Rid.t) =
  prefetch_window t rid.Rid.page;
  Buffer_pool.with_page t.pool rid.Rid.page (fun page ->
      match Slotted_page.get_view page rid.Rid.slot with
      | None ->
          invalid_arg
            (Printf.sprintf "Heap_file.read: no record at %s" (Rid.to_string rid))
      | Some (off, len) -> decode_cell_view t page ~off ~len)

let delete t (rid : Rid.t) =
  let cell =
    Buffer_pool.update t.pool rid.Rid.page (fun page ->
        let cell = Slotted_page.get page rid.Rid.slot in
        (match cell with
        | Some _ ->
            Slotted_page.delete page rid.Rid.slot;
            refresh_free t rid.Rid.page page
        | None -> ());
        cell)
  in
  match cell with
  | None -> invalid_arg (Printf.sprintf "Heap_file.delete: no record at %s" (Rid.to_string rid))
  | Some cell ->
      if cell.[0] = '\x01' then begin
        let r = Bytes_io.Reader.of_string ~pos:1 cell in
        free_overflow t (Bytes_io.Reader.u32 r)
      end;
      bump_count t (-1)

let update t (rid : Rid.t) payload =
  (* Fast path: inline record updated in place on its page. *)
  let max_inline =
    Slotted_page.max_record_size ~page_size:(Buffer_pool.page_size t.pool) - 1
  in
  if String.length payload <= max_inline then begin
    let old_cell, ok =
      Buffer_pool.update t.pool rid.Rid.page (fun page ->
          match Slotted_page.get page rid.Rid.slot with
          | None ->
              invalid_arg
                (Printf.sprintf "Heap_file.update: no record at %s" (Rid.to_string rid))
          | Some old ->
              let ok = Slotted_page.update page rid.Rid.slot ("\x00" ^ payload) in
              if ok then refresh_free t rid.Rid.page page;
              (old, ok))
    in
    if ok then begin
      if old_cell.[0] = '\x01' then begin
        let r = Bytes_io.Reader.of_string ~pos:1 old_cell in
        free_overflow t (Bytes_io.Reader.u32 r)
      end;
      rid
    end
    else begin
      delete t rid;
      insert t payload
    end
  end
  else begin
    delete t rid;
    insert t payload
  end

let iter f t =
  let first = Buffer_pool.with_page t.pool t.header hdr_first in
  let rec walk page_no =
    if page_no <> 0 then begin
      prefetch_window t page_no;
      (* materialize payloads (one copy, straight off the pinned image)
         before invoking [f], which may itself touch the pool *)
      let records = ref [] in
      let next =
        Buffer_pool.with_page t.pool page_no (fun page ->
            let n = Slotted_page.slot_count page in
            for slot = n - 1 downto 0 do
              match Slotted_page.get_view page slot with
              | None -> ()
              | Some (off, len) ->
                  records :=
                    (slot, decode_cell_view t page ~off ~len) :: !records
            done;
            Slotted_page.next_page page)
      in
      List.iter
        (fun (slot, record) -> f (Rid.make ~page:page_no ~slot) record)
        !records;
      walk next
    end
  in
  walk first
