(** The external storage manager: a flat array of fixed-size pages, backed by
    either an in-memory store (for tests and benchmarks) or a file. Page 0 is
    reserved for pager metadata (magic, page size); user pages start at 1. *)

type t

val default_page_size : int

val create_in_memory : ?metrics:Rx_obs.Metrics.t -> ?page_size:int -> unit -> t
(** [metrics] receives the [pager.reads]/[pager.writes]/[pager.syncs]
    counters (default: the global registry). *)

val open_file : ?metrics:Rx_obs.Metrics.t -> ?page_size:int -> string -> t
(** Opens (creating if absent) a file-backed pager.
    @raise Failure if the file exists with a different page size. *)

val page_size : t -> int

val page_count : t -> int
(** Number of allocated pages, including the reserved page 0. *)

val alloc : t -> int
(** Allocates a fresh zeroed page and returns its number. *)

val read : t -> int -> bytes -> unit
(** [read t page_no buf] fills [buf] (of length [page_size]) with the page
    image. *)

val write : t -> int -> bytes -> unit
val sync : t -> unit
val close : t -> unit

val io_stats : t -> int * int
(** (reads, writes) performed, for the benchmark harness. *)
