(** The external storage manager: a flat array of fixed-size pages, backed by
    either an in-memory store (for tests and benchmarks) or a file. Page 0 is
    reserved for pager metadata (magic ["RXPAGER2"], page size, format
    version); user pages start at 1.

    Integrity: every page image carries a CRC-32 in its header
    (see {!Page}); {!write} and {!alloc} stamp it immediately before the
    physical write and {!read} verifies it, raising {!Corrupt_page} rather
    than serving a damaged image. Torn or bit-flipped pages are therefore
    detected at the first read, never silently propagated.

    Durability: writes reach the OS immediately but are only durable after
    {!sync}. The buffer pool enforces the WAL rule (log durable up to the
    page LSN) before any page write reaches this layer.

    Concurrency: {!read} and {!read_run} are reentrant — concurrent reader
    domains are serialized on an internal I/O mutex around each physical
    transfer (the seek+read pair on the shared descriptor is atomic), and
    the I/O tallies are {!Atomic.t}.  Mutating operations ({!write},
    {!alloc}, {!sync}) remain single-writer: callers serialize them via
    the engine write lock, exactly as before. *)

type t

exception Corrupt_page of { page_no : int; stored : int32; computed : int32 }
(** Raised by {!read} when the stored page checksum does not match the
    image — the page was torn, bit-flipped, or never fully written. *)

val default_page_size : int

val create_in_memory : ?metrics:Rx_obs.Metrics.t -> ?page_size:int -> unit -> t
(** [metrics] receives the [pager.reads]/[pager.writes]/[pager.syncs]/
    [pager.corrupt_pages] counters (default: the global registry). *)

val open_file : ?metrics:Rx_obs.Metrics.t -> ?page_size:int -> string -> t
(** Opens (creating if absent) a file-backed pager.
    @raise Failure if the file exists with a different page size, a bad
    magic, or an unsupported format version. *)

val stored_page_size : string -> int
(** The page size recorded in an existing pager file's header, without
    opening it as a pager — lets offline tools (point-in-time restore)
    match a source database's geometry.
    @raise Failure on a bad magic. *)

val page_size : t -> int

val page_count : t -> int
(** Number of allocated pages, including the reserved page 0. *)

val alloc : t -> int
(** Allocates a fresh zeroed (and checksum-stamped) page and returns its
    number. The new page is written through to the backend but not synced. *)

val read : t -> int -> bytes -> unit
(** [read t page_no buf] fills [buf] (of length [page_size]) with the page
    image after verifying its checksum.
    @raise Corrupt_page if the stored checksum does not match. *)

val read_run : t -> first:int -> bytes array -> unit
(** [read_run t ~first bufs] fills [bufs.(i)] with the image of page
    [first + i] in one batched backend read (a single [pread] for the file
    backend), verifying each page's checksum. This is the readahead primitive:
    one seek amortized over a run of consecutive pages.
    @raise Corrupt_page on the first page whose checksum does not match;
    earlier pages in the run are already filled, later ones undefined.
    @raise Invalid_argument if any page of the run is out of range. *)

val write : t -> int -> bytes -> unit
(** Stamps the page checksum into [buf] and writes it through to the
    backend. Not durable until {!sync}. *)

val sync : t -> unit
(** Forces all completed writes to stable storage (fsync); a no-op for the
    in-memory backend. *)

val close : t -> unit
(** Releases the backing file descriptor {e without} flushing dirty
    buffer-pool state — callers flush first (or deliberately don't, to
    simulate a crash). *)

val set_fault : t -> Fault.t option -> unit
(** Installs (or clears) a fault-injection handle consulted by every
    physical write and sync. Testing only. *)

val io_stats : t -> int * int
(** (reads, writes) performed, for the benchmark harness. *)
