let lsn_size = 8
let header_size = 16
let format_version = 1
let version_off = 9
let checksum_off = 12

type kind = Free | Meta | Heap | Heap_overflow | Btree_internal | Btree_leaf

let kind_to_tag = function
  | Free -> 0
  | Meta -> 1
  | Heap -> 2
  | Heap_overflow -> 3
  | Btree_internal -> 4
  | Btree_leaf -> 5

let kind_of_tag = function
  | 0 -> Free
  | 1 -> Meta
  | 2 -> Heap
  | 3 -> Heap_overflow
  | 4 -> Btree_internal
  | 5 -> Btree_leaf
  | n -> invalid_arg (Printf.sprintf "Page.kind_of_tag: %d" n)

let get_lsn page = Bytes.get_int64_be page 0
let set_lsn page lsn = Bytes.set_int64_be page 0 lsn
let get_kind page = kind_of_tag (Char.code (Bytes.get page 8))
let set_kind page kind = Bytes.set page 8 (Char.chr (kind_to_tag kind))
let get_version page = Char.code (Bytes.get page version_off)

(* The checksum covers the whole image except its own 4-byte field, so any
   bit flip anywhere on the page (header included) is detected. *)
let compute_checksum page =
  let crc = Rx_util.Crc32.bytes page ~pos:0 ~len:checksum_off in
  let crc =
    Rx_util.Crc32.bytes ~crc page ~pos:(checksum_off + 4)
      ~len:(Bytes.length page - checksum_off - 4)
  in
  Rx_util.Crc32.finish crc

let stamp page =
  Bytes.set page version_off (Char.chr format_version);
  Bytes.set_int32_be page checksum_off (compute_checksum page)

let verify page =
  Int32.equal (Bytes.get_int32_be page checksum_off) (compute_checksum page)
