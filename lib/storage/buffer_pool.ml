open Rx_util

type journal = {
  log_update :
    page_no:int -> off:int -> before:string -> after:string -> int64;
  ensure_durable : int64 -> unit;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable page_flushes : int;
}

type frame = { data : bytes; mutable dirty : bool; mutable pins : int }

type t = {
  pager : Pager.t;
  frames : (int, frame) Lru.t;
  mutable journal : journal option;
  mutable fallback_lsn : int64; (* when no journal is installed *)
  stats : stats;
}

let create ?(capacity = 256) pager =
  {
    pager;
    frames = Lru.create ~capacity;
    journal = None;
    fallback_lsn = 0L;
    stats = { hits = 0; misses = 0; evictions = 0; page_flushes = 0 };
  }

let pager t = t.pager
let page_size t = Pager.page_size t.pager
let set_journal t j = t.journal <- j
let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0;
  t.stats.page_flushes <- 0

let flush_frame t page_no frame =
  if frame.dirty then begin
    (match t.journal with
    | Some j -> j.ensure_durable (Page.get_lsn frame.data)
    | None -> ());
    Pager.write t.pager page_no frame.data;
    frame.dirty <- false;
    t.stats.page_flushes <- t.stats.page_flushes + 1
  end

(* Fetch the frame for [page_no], pinning it. *)
let pin t page_no =
  match Lru.find t.frames page_no with
  | Some frame ->
      t.stats.hits <- t.stats.hits + 1;
      frame.pins <- frame.pins + 1;
      frame
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      let data = Bytes.create (page_size t) in
      Pager.read t.pager page_no data;
      let frame = { data; dirty = false; pins = 1 } in
      (match
         Lru.put_evict_if t.frames
           ~can_evict:(fun _ f -> f.pins = 0)
           page_no frame
       with
      | None -> failwith "Buffer_pool: all frames pinned"
      | Some None -> ()
      | Some (Some (victim_no, victim)) ->
          t.stats.evictions <- t.stats.evictions + 1;
          flush_frame t victim_no victim);
      frame

let unpin frame = frame.pins <- frame.pins - 1

let with_page t page_no f =
  let frame = pin t page_no in
  Fun.protect ~finally:(fun () -> unpin frame) (fun () -> f frame.data)

(* Diff the page image outside the LSN field (bytes 0..7). *)
let diff_range before after =
  let n = Bytes.length after in
  let lo = ref Page.lsn_size in
  while !lo < n && Bytes.get before !lo = Bytes.get after !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get before !hi = Bytes.get after !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

let update t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin frame)
    (fun () ->
      let before = Bytes.copy frame.data in
      let result = f frame.data in
      (match diff_range before frame.data with
      | None -> ()
      | Some (off, len) ->
          let lsn =
            match t.journal with
            | Some j ->
                j.log_update ~page_no ~off
                  ~before:(Bytes.sub_string before off len)
                  ~after:(Bytes.sub_string frame.data off len)
            | None ->
                t.fallback_lsn <- Int64.add t.fallback_lsn 1L;
                t.fallback_lsn
          in
          Page.set_lsn frame.data lsn;
          frame.dirty <- true);
      result)

let modify_unlogged t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin frame)
    (fun () ->
      let result = f frame.data in
      frame.dirty <- true;
      result)

let alloc t kind =
  let page_no = Pager.alloc t.pager in
  update t page_no (fun data -> Page.set_kind data kind);
  page_no

let flush_all t =
  Lru.iter (fun page_no frame -> flush_frame t page_no frame) t.frames;
  Pager.sync t.pager

let drop_cache t =
  Lru.iter
    (fun page_no frame ->
      if frame.pins > 0 then
        failwith (Printf.sprintf "Buffer_pool.drop_cache: page %d pinned" page_no))
    t.frames;
  let keys = List.map fst (Lru.to_list t.frames) in
  List.iter (Lru.remove t.frames) keys
