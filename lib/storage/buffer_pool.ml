open Rx_util

type journal = {
  log_update :
    page_no:int -> off:int -> before:string -> after:string -> int64;
  ensure_durable : int64 -> unit;
}

type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  page_flushes : int;
}

exception Pool_exhausted of { page_no : int; capacity : int }

let () =
  Printexc.register_printer (function
    | Pool_exhausted { page_no; capacity } ->
        Some
          (Printf.sprintf
             "Buffer_pool.Pool_exhausted(page %d: all %d frames pinned)"
             page_no capacity)
    | _ -> None)

(* sync: every frame field is read and written under its shard's lock,
   except [data]/[dirty] inside [update]'s callback window where the frame
   is pinned and the caller holds the engine write lock (single-writer
   rule) — eviction never selects a pinned frame, so no flush can race the
   mutation.
   sync: all frame fields are guarded by the owning shard's [s_lock],
   modulo that pinned-callback window *)
type frame = {
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  (* set when the frame was filled by readahead and not yet demanded; an
     eviction while still set counts as bufpool.readahead.wasted *)
  mutable prefetched : bool;
}

(* Per-shard tallies back the immutable [snapshot] API; the registry counters
   mirror them so the pool shows up in the Rx_obs report (shared registries
   merge pools, per-database registries stay isolated). *)
(* sync: tally fields are mutated under the owning shard's lock *)
type tally = {
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_evictions : int;
  mutable t_flushes : int;
}

(* One latch-striped partition of the pool: pages are assigned by
   [page_no land mask], so consecutive heap pages round-robin across
   shards and concurrent scan domains contend on different latches. *)
type shard = {
  s_lock : Mutex.t;
  s_frames : (int, frame) Lru.t; (* sync: guarded by s_lock *)
  s_tally : tally;
}

type t = {
  pager : Pager.t;
  shards : shard array; (* length is a power of two *)
  mask : int;
  mutable journal : journal option;
      (* sync: installed at open time, before any concurrent reader exists *)
  mutable fallback_lsn : int64;
      (* sync: when no journal is installed; bumped only inside [update],
         which the single-writer rule already serializes *)
  metrics : Rx_obs.Metrics.t;
  c_hits : Rx_obs.Metrics.counter;
  c_misses : Rx_obs.Metrics.counter;
  c_evictions : Rx_obs.Metrics.counter;
  c_flushes : Rx_obs.Metrics.counter;
  c_ra_batches : Rx_obs.Metrics.counter;
  c_ra_pages : Rx_obs.Metrics.counter;
  c_ra_wasted : Rx_obs.Metrics.counter;
}

(* Small pools (tests, throwaway catalogs) keep one shard so their exact
   LRU/eviction semantics are unchanged; engine-sized pools stripe 16
   ways. Must be a power of two for the page-number mask. *)
let default_shards ~capacity = if capacity >= 1024 then 16 else 1

let create ?(metrics = Rx_obs.Metrics.default) ?(capacity = 256) ?shards pager =
  let n_shards =
    let requested = match shards with Some n -> n | None -> default_shards ~capacity in
    if requested < 1 then invalid_arg "Buffer_pool.create: shards must be >= 1";
    if requested land (requested - 1) <> 0 then
      invalid_arg "Buffer_pool.create: shards must be a power of two";
    if requested > capacity then
      invalid_arg "Buffer_pool.create: more shards than frames";
    requested
  in
  let per_shard = max 1 (capacity / n_shards) in
  let t =
    {
      pager;
      shards =
        Array.init n_shards (fun _ ->
            {
              s_lock = Mutex.create ();
              s_frames = Lru.create ~capacity:per_shard;
              s_tally = { t_hits = 0; t_misses = 0; t_evictions = 0; t_flushes = 0 };
            });
      mask = n_shards - 1;
      journal = None;
      fallback_lsn = 0L;
      metrics;
      c_hits = Rx_obs.Metrics.counter metrics "bufpool.hits";
      c_misses = Rx_obs.Metrics.counter metrics "bufpool.misses";
      c_evictions = Rx_obs.Metrics.counter metrics "bufpool.evictions";
      c_flushes = Rx_obs.Metrics.counter metrics "bufpool.page_flushes";
      c_ra_batches = Rx_obs.Metrics.counter metrics "bufpool.readahead.batches";
      c_ra_pages = Rx_obs.Metrics.counter metrics "bufpool.readahead.pages";
      c_ra_wasted = Rx_obs.Metrics.counter metrics "bufpool.readahead.wasted";
    }
  in
  Rx_obs.Metrics.set (Rx_obs.Metrics.gauge metrics "bufpool.shards") n_shards;
  t

let pager t = t.pager
let page_size t = Pager.page_size t.pager
let set_journal t j = t.journal <- j
let metrics t = t.metrics
let shards t = Array.length t.shards

let shard_of t page_no = t.shards.(page_no land t.mask)

let locked s f =
  Mutex.lock s.s_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.s_lock) f

(* Tally reads are unlocked: each field is a word-sized int mutated under
   its shard lock, so a snapshot is approximately consistent under
   concurrency and exact whenever the caller has quiesced the pool (every
   existing test and the profile path). *)
let snapshot t =
  Array.fold_left
    (fun acc s ->
      {
        hits = acc.hits + s.s_tally.t_hits;
        misses = acc.misses + s.s_tally.t_misses;
        evictions = acc.evictions + s.s_tally.t_evictions;
        page_flushes = acc.page_flushes + s.s_tally.t_flushes;
      })
    { hits = 0; misses = 0; evictions = 0; page_flushes = 0 }
    t.shards

let diff ~before ~after =
  {
    hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    page_flushes = after.page_flushes - before.page_flushes;
  }

(* Write back one dirty frame. Called with the owning shard's lock held;
   takes the WAL lock (ensure_durable) and the pager I/O lock inside it —
   the engine-wide lock order is shard -> wal/pager, and neither the WAL
   nor the pager ever calls back into the pool. *)
let flush_frame t s page_no frame =
  if frame.dirty then begin
    (match t.journal with
    | Some j -> j.ensure_durable (Page.get_lsn frame.data)
    | None -> ());
    Pager.write t.pager page_no frame.data;
    frame.dirty <- false;
    s.s_tally.t_flushes <- s.s_tally.t_flushes + 1;
    Rx_obs.Metrics.incr t.c_flushes
  end

(* Insert a freshly read frame, evicting an unpinned victim if the shard is
   full. Shard lock held. @raise Pool_exhausted when every frame is pinned. *)
let insert_frame t s page_no frame =
  match
    Lru.put_evict_if s.s_frames ~can_evict:(fun _ f -> f.pins = 0) page_no frame
  with
  | None ->
      raise (Pool_exhausted { page_no; capacity = Lru.capacity s.s_frames })
  | Some None -> ()
  | Some (Some (victim_no, victim)) ->
      s.s_tally.t_evictions <- s.s_tally.t_evictions + 1;
      Rx_obs.Metrics.incr t.c_evictions;
      if victim.prefetched then Rx_obs.Metrics.incr t.c_ra_wasted;
      flush_frame t s victim_no victim

(* Fetch the frame for [page_no], pinning it. The shard lock is held across
   the miss read so two domains demanding the same cold page produce one
   physical read and one frame; other shards stay fully concurrent. *)
let pin t page_no =
  let s = shard_of t page_no in
  locked s (fun () ->
      match Lru.find s.s_frames page_no with
      | Some frame ->
          s.s_tally.t_hits <- s.s_tally.t_hits + 1;
          Rx_obs.Metrics.incr t.c_hits;
          frame.prefetched <- false;
          frame.pins <- frame.pins + 1;
          frame
      | None ->
          s.s_tally.t_misses <- s.s_tally.t_misses + 1;
          Rx_obs.Metrics.incr t.c_misses;
          let data = Bytes.create (page_size t) in
          Pager.read t.pager page_no data;
          let frame = { data; dirty = false; pins = 1; prefetched = false } in
          insert_frame t s page_no frame;
          frame)

let unpin t page_no frame =
  let s = shard_of t page_no in
  locked s (fun () -> frame.pins <- frame.pins - 1)

let cached t page_no =
  let s = shard_of t page_no in
  locked s (fun () -> Lru.mem s.s_frames page_no)

(* Group a sorted page list into maximal runs of consecutive numbers. *)
let contiguous_runs pages =
  let flush cur acc = match cur with [] -> acc | _ -> List.rev cur :: acc in
  let rec go acc cur = function
    | [] -> List.rev (flush cur acc)
    | p :: rest -> (
        match cur with
        | q :: _ when p = q + 1 -> go acc (p :: cur) rest
        | [] -> go acc [ p ] rest
        | _ -> go (flush cur acc) [ p ] rest)
  in
  go [] [] pages

let prefetch t pages =
  let limit = Pager.page_count t.pager in
  let wanted =
    List.sort_uniq compare pages
    |> List.filter (fun p -> p > 0 && p < limit && not (cached t p))
  in
  let fetch_run run =
    match run with
    | [] -> ()
    | first :: _ ->
        let n = List.length run in
        let bufs = Array.init n (fun _ -> Bytes.create (page_size t)) in
        (* batched physical read outside any shard lock (Pager.read_run is
           reentrant); frames are then published shard by shard *)
        Pager.read_run t.pager ~first bufs;
        Rx_obs.Metrics.incr t.c_ra_batches;
        Rx_obs.Metrics.add t.c_ra_pages n;
        Array.iteri
          (fun i data ->
            let page_no = first + i in
            let s = shard_of t page_no in
            locked s (fun () ->
                (* a demand read (or another domain's prefetch of the same
                   run) may have won the race: never replace a live frame *)
                if not (Lru.mem s.s_frames page_no) then
                  insert_frame t s page_no
                    { data; dirty = false; pins = 0; prefetched = true }))
          bufs
  in
  let fetch_run_advisory run =
    try fetch_run run with
    | Pool_exhausted _ ->
        (* advisory: this shard has no evictable frame left; other shards
           may still have room, so keep going with the remaining runs *)
        ()
    | Pager.Corrupt_page _ ->
        (* leave the corruption for a demand read to surface with full context *)
        ()
  in
  List.iter fetch_run_advisory (contiguous_runs wanted)

let with_page t page_no f =
  let frame = pin t page_no in
  Fun.protect ~finally:(fun () -> unpin t page_no frame) (fun () -> f frame.data)

(* Diff the page image outside the LSN field (bytes 0..7). *)
let diff_range before after =
  let n = Bytes.length after in
  let lo = ref Page.lsn_size in
  while !lo < n && Bytes.get before !lo = Bytes.get after !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get before !hi = Bytes.get after !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

let update t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin t page_no frame)
    (fun () ->
      let before = Bytes.copy frame.data in
      let result = f frame.data in
      (match diff_range before frame.data with
      | None -> ()
      | Some (off, len) ->
          let lsn =
            match t.journal with
            | Some j ->
                j.log_update ~page_no ~off
                  ~before:(Bytes.sub_string before off len)
                  ~after:(Bytes.sub_string frame.data off len)
            | None ->
                t.fallback_lsn <- Int64.add t.fallback_lsn 1L;
                t.fallback_lsn
          in
          Page.set_lsn frame.data lsn;
          frame.dirty <- true);
      result)

let modify_unlogged t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin t page_no frame)
    (fun () ->
      let result = f frame.data in
      frame.dirty <- true;
      result)

let alloc t kind =
  let page_no = Pager.alloc t.pager in
  update t page_no (fun data -> Page.set_kind data kind);
  page_no

let flush_all t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Lru.iter (fun page_no frame -> flush_frame t s page_no frame) s.s_frames))
    t.shards;
  Pager.sync t.pager

let drop_cache t =
  Array.iter
    (fun s ->
      locked s (fun () ->
          Lru.iter
            (fun page_no frame ->
              if frame.pins > 0 then
                raise
                  (Pool_exhausted { page_no; capacity = Lru.capacity s.s_frames }))
            s.s_frames;
          let keys = List.map fst (Lru.to_list s.s_frames) in
          List.iter (Lru.remove s.s_frames) keys))
    t.shards
