open Rx_util

type journal = {
  log_update :
    page_no:int -> off:int -> before:string -> after:string -> int64;
  ensure_durable : int64 -> unit;
}

type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  page_flushes : int;
}

exception Pool_exhausted of { page_no : int; capacity : int }

let () =
  Printexc.register_printer (function
    | Pool_exhausted { page_no; capacity } ->
        Some
          (Printf.sprintf
             "Buffer_pool.Pool_exhausted(page %d: all %d frames pinned)"
             page_no capacity)
    | _ -> None)

type frame = {
  data : bytes;
  mutable dirty : bool;
  mutable pins : int;
  (* set when the frame was filled by readahead and not yet demanded; an
     eviction while still set counts as bufpool.readahead.wasted *)
  mutable prefetched : bool;
}

(* Per-pool tallies back the immutable [snapshot] API; the registry counters
   mirror them so the pool shows up in the Rx_obs report (shared registries
   merge pools, per-database registries stay isolated). *)
type tally = {
  mutable t_hits : int;
  mutable t_misses : int;
  mutable t_evictions : int;
  mutable t_flushes : int;
}

type t = {
  pager : Pager.t;
  frames : (int, frame) Lru.t;
  mutable journal : journal option;
  mutable fallback_lsn : int64; (* when no journal is installed *)
  tally : tally;
  metrics : Rx_obs.Metrics.t;
  c_hits : Rx_obs.Metrics.counter;
  c_misses : Rx_obs.Metrics.counter;
  c_evictions : Rx_obs.Metrics.counter;
  c_flushes : Rx_obs.Metrics.counter;
  c_ra_batches : Rx_obs.Metrics.counter;
  c_ra_pages : Rx_obs.Metrics.counter;
  c_ra_wasted : Rx_obs.Metrics.counter;
}

let create ?(metrics = Rx_obs.Metrics.default) ?(capacity = 256) pager =
  {
    pager;
    frames = Lru.create ~capacity;
    journal = None;
    fallback_lsn = 0L;
    tally = { t_hits = 0; t_misses = 0; t_evictions = 0; t_flushes = 0 };
    metrics;
    c_hits = Rx_obs.Metrics.counter metrics "bufpool.hits";
    c_misses = Rx_obs.Metrics.counter metrics "bufpool.misses";
    c_evictions = Rx_obs.Metrics.counter metrics "bufpool.evictions";
    c_flushes = Rx_obs.Metrics.counter metrics "bufpool.page_flushes";
    c_ra_batches = Rx_obs.Metrics.counter metrics "bufpool.readahead.batches";
    c_ra_pages = Rx_obs.Metrics.counter metrics "bufpool.readahead.pages";
    c_ra_wasted = Rx_obs.Metrics.counter metrics "bufpool.readahead.wasted";
  }

let pager t = t.pager
let page_size t = Pager.page_size t.pager
let set_journal t j = t.journal <- j
let metrics t = t.metrics

let snapshot t =
  {
    hits = t.tally.t_hits;
    misses = t.tally.t_misses;
    evictions = t.tally.t_evictions;
    page_flushes = t.tally.t_flushes;
  }

let diff ~before ~after =
  {
    hits = after.hits - before.hits;
    misses = after.misses - before.misses;
    evictions = after.evictions - before.evictions;
    page_flushes = after.page_flushes - before.page_flushes;
  }

let flush_frame t page_no frame =
  if frame.dirty then begin
    (match t.journal with
    | Some j -> j.ensure_durable (Page.get_lsn frame.data)
    | None -> ());
    Pager.write t.pager page_no frame.data;
    frame.dirty <- false;
    t.tally.t_flushes <- t.tally.t_flushes + 1;
    Rx_obs.Metrics.incr t.c_flushes
  end

(* Insert a freshly read frame, evicting an unpinned victim if the pool is
   full. @raise Pool_exhausted when every frame is pinned. *)
let insert_frame t page_no frame =
  match
    Lru.put_evict_if t.frames ~can_evict:(fun _ f -> f.pins = 0) page_no frame
  with
  | None ->
      raise (Pool_exhausted { page_no; capacity = Lru.capacity t.frames })
  | Some None -> ()
  | Some (Some (victim_no, victim)) ->
      t.tally.t_evictions <- t.tally.t_evictions + 1;
      Rx_obs.Metrics.incr t.c_evictions;
      if victim.prefetched then Rx_obs.Metrics.incr t.c_ra_wasted;
      flush_frame t victim_no victim

(* Fetch the frame for [page_no], pinning it. *)
let pin t page_no =
  match Lru.find t.frames page_no with
  | Some frame ->
      t.tally.t_hits <- t.tally.t_hits + 1;
      Rx_obs.Metrics.incr t.c_hits;
      frame.prefetched <- false;
      frame.pins <- frame.pins + 1;
      frame
  | None ->
      t.tally.t_misses <- t.tally.t_misses + 1;
      Rx_obs.Metrics.incr t.c_misses;
      let data = Bytes.create (page_size t) in
      Pager.read t.pager page_no data;
      let frame = { data; dirty = false; pins = 1; prefetched = false } in
      insert_frame t page_no frame;
      frame

let cached t page_no = Lru.mem t.frames page_no

(* Group a sorted page list into maximal runs of consecutive numbers. *)
let contiguous_runs pages =
  let flush cur acc = match cur with [] -> acc | _ -> List.rev cur :: acc in
  let rec go acc cur = function
    | [] -> List.rev (flush cur acc)
    | p :: rest -> (
        match cur with
        | q :: _ when p = q + 1 -> go acc (p :: cur) rest
        | [] -> go acc [ p ] rest
        | _ -> go (flush cur acc) [ p ] rest)
  in
  go [] [] pages

let prefetch t pages =
  let limit = Pager.page_count t.pager in
  let wanted =
    List.sort_uniq compare pages
    |> List.filter (fun p -> p > 0 && p < limit && not (Lru.mem t.frames p))
  in
  let fetch_run run =
    match run with
    | [] -> ()
    | first :: _ ->
        let n = List.length run in
        let bufs = Array.init n (fun _ -> Bytes.create (page_size t)) in
        Pager.read_run t.pager ~first bufs;
        Rx_obs.Metrics.incr t.c_ra_batches;
        Rx_obs.Metrics.add t.c_ra_pages n;
        Array.iteri
          (fun i data ->
            insert_frame t (first + i)
              { data; dirty = false; pins = 0; prefetched = true })
          bufs
  in
  try List.iter fetch_run (contiguous_runs wanted) with
  | Pool_exhausted _ ->
      (* advisory: no evictable frame left, stop prefetching *)
      ()
  | Pager.Corrupt_page _ ->
      (* leave the corruption for a demand read to surface with full context *)
      ()

let unpin frame = frame.pins <- frame.pins - 1

let with_page t page_no f =
  let frame = pin t page_no in
  Fun.protect ~finally:(fun () -> unpin frame) (fun () -> f frame.data)

(* Diff the page image outside the LSN field (bytes 0..7). *)
let diff_range before after =
  let n = Bytes.length after in
  let lo = ref Page.lsn_size in
  while !lo < n && Bytes.get before !lo = Bytes.get after !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get before !hi = Bytes.get after !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

let update t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin frame)
    (fun () ->
      let before = Bytes.copy frame.data in
      let result = f frame.data in
      (match diff_range before frame.data with
      | None -> ()
      | Some (off, len) ->
          let lsn =
            match t.journal with
            | Some j ->
                j.log_update ~page_no ~off
                  ~before:(Bytes.sub_string before off len)
                  ~after:(Bytes.sub_string frame.data off len)
            | None ->
                t.fallback_lsn <- Int64.add t.fallback_lsn 1L;
                t.fallback_lsn
          in
          Page.set_lsn frame.data lsn;
          frame.dirty <- true);
      result)

let modify_unlogged t page_no f =
  let frame = pin t page_no in
  Fun.protect
    ~finally:(fun () -> unpin frame)
    (fun () ->
      let result = f frame.data in
      frame.dirty <- true;
      result)

let alloc t kind =
  let page_no = Pager.alloc t.pager in
  update t page_no (fun data -> Page.set_kind data kind);
  page_no

let flush_all t =
  Lru.iter (fun page_no frame -> flush_frame t page_no frame) t.frames;
  Pager.sync t.pager

let drop_cache t =
  Lru.iter
    (fun page_no frame ->
      if frame.pins > 0 then
        raise (Pool_exhausted { page_no; capacity = Lru.capacity t.frames }))
    t.frames;
  let keys = List.map fst (Lru.to_list t.frames) in
  List.iter (Lru.remove t.frames) keys
