(** The buffer manager: a fixed set of in-memory frames over a {!Pager},
    with LRU replacement, pin counts, and write-ahead-logging hooks.

    All page modifications by higher components (heap files, B+trees) go
    through {!update}, which diffs the page image around the callback and
    reports the changed byte range to the journal; the returned LSN is
    stamped into the page header. This gives every component physiological
    redo/undo logging for free — the paper's point that packed XML records
    "look like rows" to logging and recovery.

    Concurrency: the pool is latch-striped into power-of-two {!shards},
    pages assigned by [page_no land (shards - 1)]. Each shard owns a mutex,
    an LRU of its frames and its activity tallies, so reader domains
    scanning different page ranges contend on different latches; a shard's
    lock is held across a miss's physical read, making a cold demand read
    single-flight per page. Read access ({!with_page}, {!prefetch},
    {!cached}, {!snapshot}) is safe from any number of domains. Mutating
    entry points ({!update}, {!modify_unlogged}, {!alloc}, {!flush_all},
    {!drop_cache}, {!set_journal}) keep the engine's single-writer rule:
    callers serialize them behind the database write lock. Lock order is
    shard latch, then WAL/pager locks; lower layers never call back into
    the pool. *)

type t

exception Pool_exhausted of { page_no : int; capacity : int }
(** Raised when a frame is needed for [page_no] but every frame in its
    shard is pinned (no eviction candidate), or by {!drop_cache} when a
    page is still pinned; [capacity] is the shard's frame count. The
    database layer surfaces this as [Database.Busy] so a pin-heavy query
    degrades gracefully instead of killing the process. *)

(** Write-ahead-log hooks installed by the transaction layer. *)
type journal = {
  log_update :
    page_no:int -> off:int -> before:string -> after:string -> int64;
      (** Must append a redo/undo record and return its LSN. *)
  ensure_durable : int64 -> unit;
      (** Called with a page's LSN before that page is written back. *)
}

(** Immutable point-in-time view of the pool's activity counters. *)
type snapshot = {
  hits : int;
  misses : int;
  evictions : int;
  page_flushes : int;
}

val create :
  ?metrics:Rx_obs.Metrics.t -> ?capacity:int -> ?shards:int -> Pager.t -> t
(** [capacity] is the total number of frames (default 256), divided evenly
    among [shards] latch-striped partitions. [shards] must be a power of
    two no larger than [capacity]; the default is 16 for engine-sized
    pools ([capacity >= 1024]) and 1 otherwise, so small test pools keep
    exact single-LRU semantics. [metrics] receives the [bufpool.*]
    counters and the [bufpool.shards] gauge (default: the global
    registry); storage-side components built over this pool
    ({!Rx_btree.Btree}, heap files, stores) resolve their own instruments
    from {!metrics}. *)

val shards : t -> int
(** Number of latch-striped partitions. *)

val pager : t -> Pager.t
(** The underlying pager (shared; do not close it while the pool is live). *)

val page_size : t -> int
(** Page size of the underlying pager, in bytes. *)

val set_journal : t -> journal option -> unit
(** Installs (or removes, with [None]) the WAL hooks. While a journal is
    installed, every {!update} is logged before the frame can be written
    back, and {!flush_all} honours the WAL rule via [ensure_durable]. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** Read-only access; the page is pinned for the duration of the callback.
    The callback must not retain the bytes.
    @raise Pool_exhausted if every frame is pinned. *)

val cached : t -> int -> bool
(** Whether the page is resident in a frame right now (does not touch LRU
    recency). Scans use this to decide when to issue a readahead batch. *)

val prefetch : t -> int list -> unit
(** Readahead: load the listed pages into unpinned frames ahead of demand.
    Pages already cached or out of range are skipped; the rest are grouped
    into maximal runs of consecutive page numbers, each fetched from the
    pager in one batched read ({!Pager.read_run}). Purely advisory: it stops
    quietly when no evictable frame remains and leaves corrupt pages for the
    demand read to report. Instrumented as [bufpool.readahead.batches] (runs
    issued), [bufpool.readahead.pages] (pages fetched), and
    [bufpool.readahead.wasted] (prefetched frames evicted untouched). *)

val update : t -> int -> (bytes -> 'a) -> 'a
(** Mutating access: diffs the image, journals the change, stamps the LSN
    and marks the frame dirty. *)

val modify_unlogged : t -> int -> (bytes -> 'a) -> 'a
(** Mutating access that bypasses the journal — recovery redo/undo only. *)

val alloc : t -> Page.kind -> int
(** Allocates a fresh page of the given kind (the kind tag write is
    journaled). *)

val flush_all : t -> unit
(** Writes back all dirty frames (honouring the WAL rule) and syncs. *)

val drop_cache : t -> unit
(** Discards every frame without writing anything back — simulates losing
    volatile memory in a crash.
    @raise Pool_exhausted if any page is pinned. *)

val metrics : t -> Rx_obs.Metrics.t
(** The registry this pool reports to. *)

val snapshot : t -> snapshot
(** Cheap immutable copy of this pool's own tallies (never shared with
    other pools, even when registries are). Take one before and one after a
    measured section and {!diff} them — no reset, so concurrent readers
    can't race each other's zeroing. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Component-wise [after - before]. *)
