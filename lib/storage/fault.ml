(* Deterministic crash/fault injection for the physical I/O layer.

   A fault handle counts the physical operations (page/log writes and
   fsyncs) performed by the devices it is installed on; when the armed
   operation number is reached it "crashes the process": the write is
   dropped or torn at [keep] bytes and [Injected] is raised. Once fired,
   every later operation also raises, so a harness that swallows one
   [Injected] cannot accidentally keep doing I/O on the dead handle. *)

type kind =
  | Fail_write  (** drop the write entirely, then crash *)
  | Torn_write of int  (** write only the first [keep] bytes, then crash *)
  | Fail_fsync  (** crash at the fsync, before it completes *)

exception Injected of { op : string; kind : kind }

let kind_to_string = function
  | Fail_write -> "fail-write"
  | Torn_write k -> Printf.sprintf "torn-write(%d)" k
  | Fail_fsync -> "fail-fsync"

let () =
  Printexc.register_printer (function
    | Injected { op; kind } ->
        Some (Printf.sprintf "Fault.Injected(%s during %s)" (kind_to_string kind) op)
    | _ -> None)

(* sync: all mutable fields are guarded by [lock] — operations arrive
   concurrently from the WAL group-commit leader and from reader domains
   evicting dirty frames, and [next_op]'s count-and-decide is a
   read-modify-write that must be atomic for crash points to stay
   deterministic *)
type t = {
  lock : Mutex.t;
  mutable armed : kind option;
  mutable countdown : int; (* operations to let through before firing *)
  mutable fired : bool;
  mutable ops_seen : int;
}

let create () =
  { lock = Mutex.create (); armed = None; countdown = 0; fired = false; ops_seen = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let arm t ~after kind =
  if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  locked t (fun () ->
      t.armed <- Some kind;
      t.countdown <- after;
      t.fired <- false)

let arm_random t rng ~max_ops =
  let kind =
    match Rx_util.Prng.int rng 3 with
    | 0 -> Fail_write
    | 1 -> Torn_write (Rx_util.Prng.int rng 256)
    | _ -> Fail_fsync
  in
  arm t ~after:(1 + Rx_util.Prng.int rng (max 1 max_ops)) kind;
  kind

let disarm t =
  locked t (fun () ->
      t.armed <- None;
      t.fired <- false)

let fired t = locked t (fun () -> t.fired)
let ops_seen t = locked t (fun () -> t.ops_seen)

(* Decide the fate of the next operation. [`Proceed] lets it through;
   [`Torn k] instructs the caller to perform a partial write of [k] bytes
   and then call {!crashed}; [`Crash kind] means perform nothing and call
   {!crashed}. *)
let next_op t ~is_sync =
  locked t (fun () ->
      t.ops_seen <- t.ops_seen + 1;
      if t.fired then `Crash (match t.armed with Some k -> k | None -> Fail_write)
      else
        match t.armed with
        | None -> `Proceed
        | Some kind ->
            t.countdown <- t.countdown - 1;
            if t.countdown > 0 then `Proceed
            else begin
              (* an armed write fault lets fsyncs through and vice versa, so the
                 Nth *matching* operation is the one that fails *)
              match (kind, is_sync) with
              | Fail_fsync, false | (Fail_write | Torn_write _), true ->
                  t.countdown <- 1;
                  `Proceed
              | Fail_fsync, true -> `Crash Fail_fsync
              | Fail_write, false -> `Crash Fail_write
              | Torn_write k, false -> `Torn k
            end)

let crashed t ~op kind =
  locked t (fun () -> t.fired <- true);
  raise (Injected { op; kind })

let wrap_write fault ~op ~len ~write =
  match fault with
  | None -> write len
  | Some t -> (
      match next_op t ~is_sync:false with
      | `Proceed -> write len
      | `Torn keep ->
          write (min keep len);
          crashed t ~op (Torn_write keep)
      | `Crash kind -> crashed t ~op kind)

let wrap_fsync fault ~op ~sync =
  match fault with
  | None -> sync ()
  | Some t -> (
      match next_op t ~is_sync:true with
      | `Proceed -> sync ()
      | `Torn _ -> assert false
      | `Crash kind -> crashed t ~op kind)
