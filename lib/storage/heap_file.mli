(** Heap files ("table spaces"): unordered collections of variable-length
    records addressed by {!Rid.t}. Records larger than a page spill into
    overflow-page chains, so packed XML records never constrain page size
    choice. Pages are chained from a per-file header page; free space is
    tracked in an in-memory map rebuilt on attach. *)

type t

val create : Buffer_pool.t -> t
(** Allocates a fresh heap file (header page + first data page). *)

val attach : Buffer_pool.t -> header_page:int -> t
(** Re-opens an existing heap file by its header page number. *)

val header_page : t -> int
(** Page number of the file's header page — the stable handle persisted in
    the catalog and passed back to {!attach}. *)

val insert : t -> string -> Rid.t
(** Appends a record, spilling to overflow chains when it exceeds a page.
    The change is journaled through the buffer pool; durability follows the
    enclosing transaction's commit. *)

val insert_many : t -> string list -> Rid.t list
(** Batch {!insert}: places the records in order, filling each chosen page
    to capacity under a single journaled page update before probing the
    free-space map for the next — one probe per page transition rather than
    per record, and one record-count bump for the whole batch. Returns the
    RIDs in payload order. *)

val read : t -> Rid.t -> string
(** Fetches a record by RID, reassembling overflow chains.
    @raise Invalid_argument if the slot is dead or out of range. *)

val delete : t -> Rid.t -> unit
(** @raise Invalid_argument if the record does not exist. *)

val update : t -> Rid.t -> string -> Rid.t
(** Updates in place when possible; otherwise deletes and re-inserts,
    returning the (possibly new) RID. *)

val iter : (Rid.t -> string -> unit) -> t -> unit
(** Full scan in page order. Issues readahead batches ahead of the chain
    walk (see {!set_readahead}). *)

val set_readahead : t -> int -> unit
(** Sets the readahead window: on a cache-missing page access, up to this
    many upcoming data pages are prefetched in one batched read
    ({!Buffer_pool.prefetch}). [n <= 1] disables readahead. Default 8. *)

val readahead : t -> int
(** Current readahead window. *)

val record_count : t -> int
(** Number of live records (maintained incrementally, O(1)). *)

val data_pages : t -> int
(** Number of data pages (excluding header and overflow), for storage
    accounting in the E1 benchmark. *)

val overflow_pages : t -> int
(** Number of overflow pages holding spilled record tails. *)
