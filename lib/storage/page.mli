(** Conventions for the raw page image shared by all page types.

    Layout (format version 1): bytes 0..7 hold the page LSN (big-endian),
    byte 8 the page type, byte 9 the page format version, bytes 10..11 are
    reserved, bytes 12..15 a CRC-32 of the rest of the image;
    component-specific content starts at {!header_size}.

    The version byte and checksum are {e not} maintained by page editors:
    {!stamp} is called by the {!Pager} on every physical write (and
    {!verify} on every physical read), so in-memory images between I/Os may
    carry a stale checksum by design. *)

val lsn_size : int
(** Width of the LSN field (bytes 0..7), which the buffer pool excludes
    from change journaling. *)

val header_size : int
(** First byte usable by component-specific content. *)

val format_version : int
(** Version stamped into byte 9 on write; bumped when the header layout
    changes. *)

(** Page type tags, recorded for debugging and recovery sanity checks. *)
type kind = Free | Meta | Heap | Heap_overflow | Btree_internal | Btree_leaf

val kind_to_tag : kind -> int
(** Stable on-disk encoding of {!kind}. *)

val kind_of_tag : int -> kind
(** Inverse of {!kind_to_tag}; raises [Invalid_argument] on an unknown
    tag. *)

val get_lsn : bytes -> int64
(** LSN of the last journaled update applied to this image; pages flush
    only after the WAL is durable up to this LSN. *)

val set_lsn : bytes -> int64 -> unit
(** Stamps the page LSN (done by the buffer pool after journaling, and by
    recovery redo). *)

val get_kind : bytes -> kind
(** The page's type tag. *)

val set_kind : bytes -> kind -> unit
(** Sets the type tag (journaled when done through the buffer pool). *)

val get_version : bytes -> int
(** The format version stamped at the page's last physical write; [0] on an
    image that has never been written. *)

val compute_checksum : bytes -> int32
(** CRC-32 of the image excluding the checksum field itself. *)

val stamp : bytes -> unit
(** Writes the format version and checksum into the header — called by the
    pager immediately before every physical write. *)

val verify : bytes -> bool
(** Whether the stored checksum matches the image — checked by the pager
    on every physical read. *)
