(** Conventions for the raw page image shared by all page types.

    Layout: bytes 0..7 hold the page LSN (big-endian), byte 8 the page type,
    bytes 9..15 are reserved; component-specific content starts at
    {!header_size}. *)

val lsn_size : int
val header_size : int

(** Page type tags, recorded for debugging and recovery sanity checks. *)
type kind = Free | Meta | Heap | Heap_overflow | Btree_internal | Btree_leaf

val kind_to_tag : kind -> int
val kind_of_tag : int -> kind

val get_lsn : bytes -> int64
val set_lsn : bytes -> int64 -> unit
val get_kind : bytes -> kind
val set_kind : bytes -> kind -> unit
