open Rx_util

type t = { page : int; slot : int }

let make ~page ~slot = { page; slot }

let compare a b =
  let c = Int.compare a.page b.page in
  if c <> 0 then c else Int.compare a.slot b.slot

let equal a b = compare a b = 0
let hash t = (t.page * 65599) + t.slot

let encode w t =
  Bytes_io.Writer.u32 w t.page;
  Bytes_io.Writer.u16 w t.slot

let decode r =
  let page = Bytes_io.Reader.u32 r in
  let slot = Bytes_io.Reader.u16 r in
  { page; slot }

let to_string t = Printf.sprintf "(%d,%d)" t.page t.slot
let pp fmt t = Format.pp_print_string fmt (to_string t)
