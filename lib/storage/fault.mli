(** Deterministic fault injection for the physical I/O layer.

    A fault handle is installed on a {!Pager} and/or {!Log_manager}
    ([set_fault]); every physical page write, log write and fsync those
    devices perform consults it. When the armed operation count is reached
    the operation is sabotaged — dropped entirely, torn after [keep] bytes,
    or the fsync skipped — and {!Injected} is raised, simulating the
    process dying at exactly that point. Once fired, {e every} subsequent
    operation on the same handle raises too, so code that catches one
    [Injected] cannot keep mutating the "dead" database by accident.

    Determinism: the crash point is chosen by explicit counts ({!arm}) or
    by a caller-seeded {!Rx_util.Prng} ({!arm_random}); nothing here reads
    wall-clock time or global randomness, so a failing seed replays
    exactly.

    Domain-safe: a handle's count-and-decide step is serialized on an
    internal mutex, so operations arriving concurrently from the WAL
    group-commit leader and from reader domains evicting dirty frames are
    counted exactly once each and the crash point stays deterministic for
    a given operation interleaving. *)

(** What happens to the sabotaged operation. *)
type kind =
  | Fail_write  (** the write performs nothing, then the "process dies" *)
  | Torn_write of int
      (** only the first [keep] bytes reach the device — a torn page or a
          torn log tail — then the "process dies" *)
  | Fail_fsync  (** the sync never happens; prior unsynced writes are
                    nevertheless on the simulated device *)

exception Injected of { op : string; kind : kind }
(** The simulated crash. [op] names the I/O site (e.g. ["pager.write"],
    ["wal.flush"]). *)

type t

val create : unit -> t
(** A fresh, disarmed handle. Disarmed handles let all I/O through while
    still counting operations ({!ops_seen}). *)

val arm : t -> after:int -> kind -> unit
(** Fire [kind] on the [after]-th matching operation from now ([after] is
    1-based: [~after:1] fails the very next one). Write kinds count only
    writes, [Fail_fsync] counts only fsyncs; non-matching operations
    proceed. Re-arming resets the fired state. *)

val arm_random : t -> Rx_util.Prng.t -> max_ops:int -> kind
(** Arms a uniformly chosen kind at a uniformly chosen operation count in
    [\[1, max_ops\]], drawn from the caller's seeded PRNG; returns the
    chosen kind for reporting. *)

val disarm : t -> unit
(** Lets all subsequent I/O through again (also clears the fired state). *)

val fired : t -> bool
(** Whether the armed fault has gone off. *)

val ops_seen : t -> int
(** Total operations observed (fired or not) — used by harnesses to size
    [max_ops] for the next iteration. *)

val kind_to_string : kind -> string

(** {2 Device-side hooks}

    Called by {!Pager} and {!Log_manager} around each physical operation;
    not intended for other callers. *)

val wrap_write : t option -> op:string -> len:int -> write:(int -> unit) -> unit
(** [wrap_write fault ~op ~len ~write] calls [write n] with [n = len]
    normally, [n < len] for a torn write (then raises {!Injected}), or not
    at all for a failed write (raising {!Injected}). *)

val wrap_fsync : t option -> op:string -> sync:(unit -> unit) -> unit
(** Same protocol for fsync. *)
