open Rx_util
open Rx_storage

type entry =
  | Table of {
      name : string;
      columns : (string * Value.col_type) list;
      heap_header : int;
      docid_index_meta : int;
      next_docid : int;
    }
  | Xml_column of {
      table : string;
      column : string;
      heap_header : int;
      node_index_meta : int;
    }
  | Xml_index of {
      table : string;
      column : string;
      name : string;
      path : string;
      key_type : string;
      tree_meta : int;
    }
  | Text_index of { table : string; column : string; name : string; tree_meta : int }
  | Schema of { name : string; binary : string }
  | Schema_binding of { table : string; column : string; schema : string }
  | Dictionary of (int * string) list
  | Index_generation of {
      table : string;
      column : string;
      name : string;
      generation : int;
      build_ms : int;
      prior : (int * int) option; (* (generation, tree_meta) *)
    }

type t = { heap : Heap_file.t }

let create pool = { heap = Heap_file.create pool }
let attach pool ~header_page = { heap = Heap_file.attach pool ~header_page }
let header_page t = Heap_file.header_page t.heap

let encode_entry entry =
  let w = Bytes_io.Writer.create () in
  (match entry with
  | Table { name; columns; heap_header; docid_index_meta; next_docid } ->
      Bytes_io.Writer.u8 w 1;
      Bytes_io.Writer.lstring w name;
      Bytes_io.Writer.varint w (List.length columns);
      List.iter
        (fun (cname, ty) ->
          Bytes_io.Writer.lstring w cname;
          Bytes_io.Writer.lstring w (Value.col_type_to_string ty))
        columns;
      Bytes_io.Writer.varint w heap_header;
      Bytes_io.Writer.varint w docid_index_meta;
      Bytes_io.Writer.varint w next_docid
  | Xml_column { table; column; heap_header; node_index_meta } ->
      Bytes_io.Writer.u8 w 2;
      Bytes_io.Writer.lstring w table;
      Bytes_io.Writer.lstring w column;
      Bytes_io.Writer.varint w heap_header;
      Bytes_io.Writer.varint w node_index_meta
  | Xml_index { table; column; name; path; key_type; tree_meta } ->
      Bytes_io.Writer.u8 w 3;
      Bytes_io.Writer.lstring w table;
      Bytes_io.Writer.lstring w column;
      Bytes_io.Writer.lstring w name;
      Bytes_io.Writer.lstring w path;
      Bytes_io.Writer.lstring w key_type;
      Bytes_io.Writer.varint w tree_meta
  | Text_index { table; column; name; tree_meta } ->
      Bytes_io.Writer.u8 w 7;
      Bytes_io.Writer.lstring w table;
      Bytes_io.Writer.lstring w column;
      Bytes_io.Writer.lstring w name;
      Bytes_io.Writer.varint w tree_meta
  | Schema { name; binary } ->
      Bytes_io.Writer.u8 w 4;
      Bytes_io.Writer.lstring w name;
      Bytes_io.Writer.lstring w binary
  | Schema_binding { table; column; schema } ->
      Bytes_io.Writer.u8 w 5;
      Bytes_io.Writer.lstring w table;
      Bytes_io.Writer.lstring w column;
      Bytes_io.Writer.lstring w schema
  | Dictionary entries ->
      Bytes_io.Writer.u8 w 6;
      Bytes_io.Writer.varint w (List.length entries);
      List.iter
        (fun (id, name) ->
          Bytes_io.Writer.varint w id;
          Bytes_io.Writer.lstring w name)
        entries
  | Index_generation { table; column; name; generation; build_ms; prior } ->
      Bytes_io.Writer.u8 w 8;
      Bytes_io.Writer.lstring w table;
      Bytes_io.Writer.lstring w column;
      Bytes_io.Writer.lstring w name;
      Bytes_io.Writer.varint w generation;
      Bytes_io.Writer.varint w build_ms;
      (match prior with
      | None -> Bytes_io.Writer.u8 w 0
      | Some (g, meta) ->
          Bytes_io.Writer.u8 w 1;
          Bytes_io.Writer.varint w g;
          Bytes_io.Writer.varint w meta));
  Bytes_io.Writer.contents w

let decode_entry payload =
  let r = Bytes_io.Reader.of_string payload in
  match Bytes_io.Reader.u8 r with
  | 1 ->
      let name = Bytes_io.Reader.lstring r in
      let n = Bytes_io.Reader.varint r in
      let columns =
        List.init n (fun _ ->
            let cname = Bytes_io.Reader.lstring r in
            let ty =
              match Value.col_type_of_string (Bytes_io.Reader.lstring r) with
              | Some ty -> ty
              | None -> invalid_arg "Catalog: bad column type"
            in
            (cname, ty))
      in
      let heap_header = Bytes_io.Reader.varint r in
      let docid_index_meta = Bytes_io.Reader.varint r in
      let next_docid = Bytes_io.Reader.varint r in
      Table { name; columns; heap_header; docid_index_meta; next_docid }
  | 2 ->
      let table = Bytes_io.Reader.lstring r in
      let column = Bytes_io.Reader.lstring r in
      let heap_header = Bytes_io.Reader.varint r in
      let node_index_meta = Bytes_io.Reader.varint r in
      Xml_column { table; column; heap_header; node_index_meta }
  | 3 ->
      let table = Bytes_io.Reader.lstring r in
      let column = Bytes_io.Reader.lstring r in
      let name = Bytes_io.Reader.lstring r in
      let path = Bytes_io.Reader.lstring r in
      let key_type = Bytes_io.Reader.lstring r in
      let tree_meta = Bytes_io.Reader.varint r in
      Xml_index { table; column; name; path; key_type; tree_meta }
  | 4 ->
      let name = Bytes_io.Reader.lstring r in
      let binary = Bytes_io.Reader.lstring r in
      Schema { name; binary }
  | 5 ->
      let table = Bytes_io.Reader.lstring r in
      let column = Bytes_io.Reader.lstring r in
      let schema = Bytes_io.Reader.lstring r in
      Schema_binding { table; column; schema }
  | 6 ->
      let n = Bytes_io.Reader.varint r in
      Dictionary
        (List.init n (fun _ ->
             let id = Bytes_io.Reader.varint r in
             let name = Bytes_io.Reader.lstring r in
             (id, name)))
  | 7 ->
      let table = Bytes_io.Reader.lstring r in
      let column = Bytes_io.Reader.lstring r in
      let name = Bytes_io.Reader.lstring r in
      let tree_meta = Bytes_io.Reader.varint r in
      Text_index { table; column; name; tree_meta }
  | 8 ->
      let table = Bytes_io.Reader.lstring r in
      let column = Bytes_io.Reader.lstring r in
      let name = Bytes_io.Reader.lstring r in
      let generation = Bytes_io.Reader.varint r in
      let build_ms = Bytes_io.Reader.varint r in
      let prior =
        match Bytes_io.Reader.u8 r with
        | 0 -> None
        | _ ->
            let g = Bytes_io.Reader.varint r in
            let meta = Bytes_io.Reader.varint r in
            Some (g, meta)
      in
      Index_generation { table; column; name; generation; build_ms; prior }
  | n -> invalid_arg (Printf.sprintf "Catalog: bad entry tag %d" n)

let entries t =
  let acc = ref [] in
  Heap_file.iter (fun _ payload -> acc := decode_entry payload :: !acc) t.heap;
  List.rev !acc

let save t entries =
  let rids = ref [] in
  Heap_file.iter (fun rid _ -> rids := rid :: !rids) t.heap;
  List.iter (Heap_file.delete t.heap) !rids;
  List.iter (fun e -> ignore (Heap_file.insert t.heap (encode_entry e))) entries
