(** SQL values for base-table rows. "To SQL, XML is just a new data type"
    (§2): an XML column value is a reference to the document in the
    column's internal XML table, carried as the row's DocID. *)

type col_type = T_int | T_double | T_decimal | T_varchar | T_bool | T_date | T_xml

type t =
  | Null
  | Int of int
  | Double of float
  | Decimal of Rx_util.Decimal.t
  | Varchar of string
  | Bool of bool
  | Date of { year : int; month : int; day : int }
  | Xml_ref of int (** DocID in the column's XML table *)

val type_matches : col_type -> t -> bool
(** [Null] matches every type. *)

val col_type_to_string : col_type -> string
val col_type_of_string : string -> col_type option
val to_string : t -> string

val encode : Rx_util.Bytes_io.Writer.t -> t -> unit
val decode : Rx_util.Bytes_io.Reader.t -> t

val encode_row : t array -> string
val decode_row : string -> t array

val compare : t -> t -> int
