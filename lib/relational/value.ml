open Rx_util

type col_type = T_int | T_double | T_decimal | T_varchar | T_bool | T_date | T_xml

type t =
  | Null
  | Int of int
  | Double of float
  | Decimal of Rx_util.Decimal.t
  | Varchar of string
  | Bool of bool
  | Date of { year : int; month : int; day : int }
  | Xml_ref of int

let type_matches ty v =
  match (ty, v) with
  | _, Null -> true
  | T_int, Int _
  | T_double, Double _
  | T_decimal, Decimal _
  | T_varchar, Varchar _
  | T_bool, Bool _
  | T_date, Date _
  | T_xml, Xml_ref _ ->
      true
  | (T_int | T_double | T_decimal | T_varchar | T_bool | T_date | T_xml), _ -> false

let col_type_to_string = function
  | T_int -> "int"
  | T_double -> "double"
  | T_decimal -> "decimal"
  | T_varchar -> "varchar"
  | T_bool -> "bool"
  | T_date -> "date"
  | T_xml -> "xml"

let col_type_of_string = function
  | "int" | "integer" -> Some T_int
  | "double" -> Some T_double
  | "decimal" -> Some T_decimal
  | "varchar" | "string" -> Some T_varchar
  | "bool" | "boolean" -> Some T_bool
  | "date" -> Some T_date
  | "xml" -> Some T_xml
  | _ -> None

let to_string = function
  | Null -> "NULL"
  | Int n -> string_of_int n
  | Double f -> Printf.sprintf "%g" f
  | Decimal d -> Decimal.to_string d
  | Varchar s -> s
  | Bool b -> if b then "true" else "false"
  | Date { year; month; day } -> Printf.sprintf "%04d-%02d-%02d" year month day
  | Xml_ref d -> Printf.sprintf "<xml:%d>" d

let encode w = function
  | Null -> Bytes_io.Writer.u8 w 0
  | Int n ->
      Bytes_io.Writer.u8 w 1;
      Bytes_io.Writer.u64 w (Int64.of_int n)
  | Double f ->
      Bytes_io.Writer.u8 w 2;
      Bytes_io.Writer.u64 w (Int64.bits_of_float f)
  | Decimal d ->
      Bytes_io.Writer.u8 w 3;
      Bytes_io.Writer.lstring w (Decimal.encode_key d)
  | Varchar s ->
      Bytes_io.Writer.u8 w 4;
      Bytes_io.Writer.lstring w s
  | Bool b ->
      Bytes_io.Writer.u8 w 5;
      Bytes_io.Writer.u8 w (if b then 1 else 0)
  | Date { year; month; day } ->
      Bytes_io.Writer.u8 w 6;
      Bytes_io.Writer.u16 w year;
      Bytes_io.Writer.u8 w month;
      Bytes_io.Writer.u8 w day
  | Xml_ref d ->
      Bytes_io.Writer.u8 w 7;
      Bytes_io.Writer.varint w d

let decode r =
  match Bytes_io.Reader.u8 r with
  | 0 -> Null
  | 1 -> Int (Int64.to_int (Bytes_io.Reader.u64 r))
  | 2 -> Double (Int64.float_of_bits (Bytes_io.Reader.u64 r))
  | 3 -> Decimal (fst (Decimal.decode_key (Bytes_io.Reader.lstring r) 0))
  | 4 -> Varchar (Bytes_io.Reader.lstring r)
  | 5 -> Bool (Bytes_io.Reader.u8 r = 1)
  | 6 ->
      let year = Bytes_io.Reader.u16 r in
      let month = Bytes_io.Reader.u8 r in
      let day = Bytes_io.Reader.u8 r in
      Date { year; month; day }
  | 7 -> Xml_ref (Bytes_io.Reader.varint r)
  | n -> invalid_arg (Printf.sprintf "Value.decode: bad tag %d" n)

let encode_row values =
  let w = Bytes_io.Writer.create () in
  Bytes_io.Writer.varint w (Array.length values);
  Array.iter (encode w) values;
  Bytes_io.Writer.contents w

let decode_row s =
  let r = Bytes_io.Reader.of_string s in
  let n = Bytes_io.Reader.varint r in
  Array.init n (fun _ -> decode r)

let compare a b = Stdlib.compare a b
