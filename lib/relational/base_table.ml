open Rx_util
open Rx_storage

type t = {
  heap : Heap_file.t;
  docid_index : Rx_btree.Btree.t;
  columns : (string * Value.col_type) array;
}

let create pool ~columns =
  { heap = Heap_file.create pool; docid_index = Rx_btree.Btree.create pool; columns }

let attach pool ~columns ~heap_header ~docid_index_meta =
  {
    heap = Heap_file.attach pool ~header_page:heap_header;
    docid_index = Rx_btree.Btree.attach pool ~meta_page:docid_index_meta;
    columns;
  }

let heap_header t = Heap_file.header_page t.heap
let docid_index_meta t = Rx_btree.Btree.meta_page t.docid_index
let columns t = t.columns

let column_index t name =
  let rec find i =
    if i >= Array.length t.columns then None
    else if fst t.columns.(i) = name then Some i
    else find (i + 1)
  in
  find 0

let docid_key docid =
  let buf = Buffer.create 9 in
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Buffer.contents buf

let rid_value rid =
  let w = Bytes_io.Writer.create ~capacity:6 () in
  Rid.encode w rid;
  Bytes_io.Writer.contents w

let check_row t values =
  if Array.length values <> Array.length t.columns then
    invalid_arg "Base_table.insert: wrong number of columns";
  Array.iteri
    (fun i v ->
      let name, ty = t.columns.(i) in
      if not (Value.type_matches ty v) then
        invalid_arg
          (Printf.sprintf "Base_table.insert: column %s expects %s, got %s" name
             (Value.col_type_to_string ty) (Value.to_string v)))
    values

let encode_stored ~docid values =
  let w = Bytes_io.Writer.create () in
  Bytes_io.Writer.varint w docid;
  Bytes_io.Writer.bytes w (Value.encode_row values);
  Bytes_io.Writer.contents w

let decode_stored payload =
  let r = Bytes_io.Reader.of_string payload in
  let docid = Bytes_io.Reader.varint r in
  let rest = Bytes_io.Reader.bytes r (Bytes_io.Reader.remaining r) in
  (docid, Value.decode_row rest)

let insert t ~docid values =
  check_row t values;
  let rid = Heap_file.insert t.heap (encode_stored ~docid values) in
  Rx_btree.Btree.insert t.docid_index ~key:(docid_key docid) ~value:(rid_value rid);
  rid

let insert_many t rows =
  List.iter (fun (_, values) -> check_row t values) rows;
  let rids =
    Heap_file.insert_many t.heap
      (List.map (fun (docid, values) -> encode_stored ~docid values) rows)
  in
  List.iter2
    (fun (docid, _) rid ->
      Rx_btree.Btree.insert t.docid_index ~key:(docid_key docid)
        ~value:(rid_value rid))
    rows rids;
  rids

let lookup_rid t docid =
  Option.map
    (fun v -> Rid.decode (Bytes_io.Reader.of_string v))
    (Rx_btree.Btree.find t.docid_index (docid_key docid))

let fetch_by_docid t docid =
  Option.map
    (fun rid -> snd (decode_stored (Heap_file.read t.heap rid)))
    (lookup_rid t docid)

let delete_by_docid t docid =
  match lookup_rid t docid with
  | None -> false
  | Some rid ->
      Heap_file.delete t.heap rid;
      ignore (Rx_btree.Btree.delete t.docid_index (docid_key docid));
      true

let iter f t =
  Rx_btree.Btree.iter_range t.docid_index (fun key value ->
      let docid, _ = Key_codec.decode_int64 key 0 in
      let rid = Rid.decode (Bytes_io.Reader.of_string value) in
      let _, values = decode_stored (Heap_file.read t.heap rid) in
      f (Int64.to_int docid) values;
      `Continue)

let row_count t = Heap_file.record_count t.heap
