(** Base tables (Figure 2): heap-stored rows with an implicit DocID column
    shared by all the table's XML columns, plus the DocID index "used for
    getting to base table rows from XPath value indexes". *)

type t

val create :
  Rx_storage.Buffer_pool.t -> columns:(string * Value.col_type) array -> t

val attach :
  Rx_storage.Buffer_pool.t ->
  columns:(string * Value.col_type) array ->
  heap_header:int ->
  docid_index_meta:int ->
  t

val heap_header : t -> int
val docid_index_meta : t -> int
val columns : t -> (string * Value.col_type) array
val column_index : t -> string -> int option

val insert : t -> docid:int -> Value.t array -> Rx_storage.Rid.t
(** @raise Invalid_argument on arity or type mismatch. *)

val insert_many : t -> (int * Value.t array) list -> Rx_storage.Rid.t list
(** Batch {!insert}: validates every row up front, places all rows through
    {!Rx_storage.Heap_file.insert_many} (one journaled page image per filled
    page rather than per row), then maintains the DocID index. Returns the
    RIDs in row order.
    @raise Invalid_argument on any arity or type mismatch. *)

val fetch_by_docid : t -> int -> Value.t array option
val delete_by_docid : t -> int -> bool
val iter : (int -> Value.t array -> unit) -> t -> unit
(** In DocID order (via the DocID index). *)

val row_count : t -> int
