(** The system catalog ("catalog and directory" in Figure 1): persisted
    descriptions of base tables, XML columns with their internal-table page
    numbers, XPath value indexes, registered schemas in binary form, and the
    database-wide name dictionary. Stored as records in a heap file whose
    header page the engine places at a fixed, discoverable location. *)

type entry =
  | Table of {
      name : string;
      columns : (string * Value.col_type) list;
      heap_header : int;
      docid_index_meta : int;
      next_docid : int;
    }
  | Xml_column of {
      table : string;
      column : string;
      heap_header : int;
      node_index_meta : int;
    }
  | Xml_index of {
      table : string;
      column : string;
      name : string;
      path : string;
      key_type : string;
      tree_meta : int;
    }
  | Text_index of { table : string; column : string; name : string; tree_meta : int }
  | Schema of { name : string; binary : string }
  | Schema_binding of { table : string; column : string; schema : string }
  | Dictionary of (int * string) list

type t

val create : Rx_storage.Buffer_pool.t -> t
val attach : Rx_storage.Buffer_pool.t -> header_page:int -> t
val header_page : t -> int

val entries : t -> entry list
val save : t -> entry list -> unit
(** Replaces the whole catalog (it is small; a checkpoint-time rewrite). *)
