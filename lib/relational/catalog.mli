(** The system catalog ("catalog and directory" in Figure 1): persisted
    descriptions of base tables, XML columns with their internal-table page
    numbers, XPath value indexes, registered schemas in binary form, and the
    database-wide name dictionary. Stored as records in a heap file whose
    header page the engine places at a fixed, discoverable location. *)

type entry =
  | Table of {
      name : string;
      columns : (string * Value.col_type) list;
      heap_header : int;
      docid_index_meta : int;
      next_docid : int;
    }
  | Xml_column of {
      table : string;
      column : string;
      heap_header : int;
      node_index_meta : int;
    }
  | Xml_index of {
      table : string;
      column : string;
      name : string;
      path : string;
      key_type : string;
      tree_meta : int;
    }
  | Text_index of { table : string; column : string; name : string; tree_meta : int }
  | Schema of { name : string; binary : string }
  | Schema_binding of { table : string; column : string; schema : string }
  | Dictionary of (int * string) list
  | Index_generation of {
      table : string;
      column : string;
      name : string;
      generation : int;
      build_ms : int;
      prior : (int * int) option;
          (** (generation, B+tree meta page) of the retained prior
              generation, kept so [Index.rollback] can restore it; [None]
              once a generation has no predecessor. *)
    }
      (** Generational metadata for one XPath value index, written by
          online rebuilds next to the [Xml_index] entry (which always
          describes the {e live} generation). Absent for indexes that have
          only ever been built once — old catalogs decode unchanged. *)

type t

val create : Rx_storage.Buffer_pool.t -> t
val attach : Rx_storage.Buffer_pool.t -> header_page:int -> t
val header_page : t -> int

val entries : t -> entry list
val save : t -> entry list -> unit
(** Replaces the whole catalog (it is small; a checkpoint-time rewrite). *)
