(** The "one row per node" relational shredding alternative that §3.1's
    analytical model compares against (Tian et al. / Florescu-Kossmann
    style): every node of the XQuery data model becomes its own storage
    record plus a NodeID-index entry. E1 measures storage size, index-entry
    counts and traversal cost against the packed-record scheme. *)

type t

val create : Rx_storage.Buffer_pool.t -> Rx_xml.Name_dict.t -> t
val insert_tokens : t -> docid:int -> Rx_xml.Token.t list -> unit
val insert_document : t -> docid:int -> string -> unit

val events : t -> docid:int -> (Rx_xmlstore.Doc_store.event -> unit) -> unit
(** Document-order traversal: one index probe + one record fetch per node —
    the k·t cost of the analytical model. *)

val serialize : t -> docid:int -> string

type stats = {
  records : int;
  index_entries : int;
  data_pages : int;
  index_pages : int;
  record_bytes : int;
}

val stats : t -> stats
