(** DOM-based navigational XPath evaluation — the in-memory-tree approach
    the paper's engine avoids (§3.2, §4.2: "orders of magnitude better than
    some DOM-based algorithm"). It materializes the whole document, then
    evaluates each step by set-at-a-time navigation.

    Nodes are numbered in document order with the same sequence numbering as
    {!Rx_quickxscan.Engine.feed_tokens} (element, then its attributes, then
    content), so results are directly comparable — this module doubles as
    the test oracle for QuickXScan. *)

type dom

val build : Rx_xml.Token.t list -> dom
val node_count : dom -> int

val approximate_bytes : dom -> int
(** Rough in-memory footprint of the materialized tree, for the E3 memory
    comparison. *)

val eval : Rx_quickxscan.Query.t -> dom -> int list
(** Result sequence numbers in document order, duplicate-free. *)

val eval_with_values : Rx_quickxscan.Query.t -> dom -> (int * string) list
(** Results paired with their string values. *)
