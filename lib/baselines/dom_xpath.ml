open Rx_xml
module Q = Rx_quickxscan.Query

type kind = Element | Attr | Text | Comment | Pi

type node = {
  seq : int;
  kind : kind;
  name : Qname.t; (* meaningful for Element / Attr / Pi (target interned) *)
  content : string; (* Attr value, Text content, Comment content, Pi data *)
  mutable children : node list; (* document order; excludes attributes *)
  mutable attrs : node list;
  mutable parent : node option;
}

type dom = { roots : node list; count : int; bytes : int }

let no_name = Qname.make 0

let build tokens =
  let seq = ref 0 in
  let bytes = ref 0 in
  let next () =
    incr seq;
    !seq
  in
  let mk kind name content =
    bytes := !bytes + 64 + String.length content;
    {
      seq = next ();
      kind;
      name;
      content;
      children = [];
      attrs = [];
      parent = None;
    }
  in
  let roots = ref [] in
  let stack = ref [] in
  let add node =
    match !stack with
    | parent :: _ ->
        node.parent <- Some parent;
        parent.children <- node :: parent.children
    | [] -> roots := node :: !roots
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element { name; attrs; _ } ->
          let e = mk Element name "" in
          e.attrs <-
            List.map (fun (a : Token.attr) -> mk Attr a.Token.name a.Token.value) attrs;
          List.iter (fun a -> a.parent <- Some e) e.attrs;
          add e;
          stack := e :: !stack
      | Token.End_element -> (
          match !stack with
          | e :: rest ->
              e.children <- List.rev e.children;
              stack := rest
          | [] -> invalid_arg "Dom_xpath.build: unbalanced stream")
      | Token.Text { content; _ } -> add (mk Text no_name content)
      | Token.Comment content -> add (mk Comment no_name content)
      | Token.Pi { target; data } ->
          add (mk Pi (Qname.make 0) (target ^ "\000" ^ data)))
    tokens;
  if !stack <> [] then invalid_arg "Dom_xpath.build: unclosed element";
  { roots = List.rev !roots; count = !seq; bytes = !bytes }

let node_count dom = dom.count
let approximate_bytes dom = dom.bytes

let rec string_value node =
  match node.kind with
  | Text -> node.content
  | Attr -> node.content
  | Comment -> node.content
  | Pi -> ( match String.index_opt node.content '\000' with
      | Some i -> String.sub node.content (i + 1) (String.length node.content - i - 1)
      | None -> node.content)
  | Element ->
      String.concat ""
        (List.map
           (fun c -> match c.kind with Element | Text -> string_value c | _ -> "")
           node.children)

let rec descendants node acc =
  List.fold_left (fun acc c -> descendants c (c :: acc)) acc node.children

let test_matches (test : Q.test) node =
  match (test, node.kind) with
  | Q.Any_element, Element -> true
  | Q.Element { uri; local }, Element ->
      node.name.Qname.uri = uri && node.name.Qname.local = local
  | Q.Any_node, (Element | Text | Comment | Pi) -> true
  | Q.Text_node, Text -> true
  | Q.Comment_node, Comment -> true
  | Q.Pi_node, Pi -> true
  | Q.Any_attribute, Attr -> true
  | Q.Attribute_named { uri; local }, Attr ->
      node.name.Qname.uri = uri && node.name.Qname.local = local
  | _ -> false

let axis_candidates (axis : Q.axis) node =
  match axis with
  | Q.Child -> node.children
  | Q.Descendant -> List.rev (descendants node [])
  | Q.Descendant_or_self -> node :: List.rev (descendants node [])
  | Q.Self -> [ node ]
  | Q.Attribute -> node.attrs

(* pseudo-root holder so the first step can use the same machinery *)
let pseudo_root roots =
  {
    seq = 0;
    kind = Element;
    name = no_name;
    content = "";
    children = roots;
    attrs = [];
    parent = None;
  }

let number_of_string s = float_of_string_opt (String.trim s)

let atomic_compare (op : Rx_xpath.Ast.cmp)
    (l : [ `S of string | `N of float ]) (r : [ `S of string | `N of float ]) =
  let num_cmp a b =
    match op with
    | Rx_xpath.Ast.Eq -> a = b
    | Rx_xpath.Ast.Neq -> a <> b
    | Rx_xpath.Ast.Lt -> a < b
    | Rx_xpath.Ast.Le -> a <= b
    | Rx_xpath.Ast.Gt -> a > b
    | Rx_xpath.Ast.Ge -> a >= b
  in
  match (l, r) with
  | `N a, `N b -> num_cmp a b
  | `S a, `S b when op = Rx_xpath.Ast.Eq -> String.equal a b
  | `S a, `S b when op = Rx_xpath.Ast.Neq -> not (String.equal a b)
  | l, r -> (
      let as_num = function `N f -> Some f | `S s -> number_of_string s in
      match (as_num l, as_num r) with
      | Some a, Some b -> num_cmp a b
      | _ -> false)

let rec select_chain query contexts (qn : Q.qnode) =
  let step_nodes =
    List.concat_map
      (fun ctx ->
        List.filter (test_matches qn.Q.test) (axis_candidates qn.Q.axis ctx))
      contexts
  in
  (* dedup by seq, keep document order *)
  let module IS = Set.Make (Int) in
  let _, step_nodes =
    List.fold_left
      (fun (seen, acc) n ->
        if IS.mem n.seq seen then (seen, acc) else (IS.add n.seq seen, n :: acc))
      (IS.empty, []) step_nodes
  in
  let step_nodes = List.sort (fun a b -> compare a.seq b.seq) step_nodes in
  let kept =
    match qn.Q.pred with
    | None -> step_nodes
    | Some pe -> List.filter (fun n -> eval_pexpr query n pe) step_nodes
  in
  match qn.Q.children with
  | chain :: _ when chain.Q.role = qn.Q.role && not qn.Q.is_terminal ->
      select_chain query kept chain
  | _ -> kept

and eval_pexpr query node = function
  | Q.P_exists qid -> select_chain query [ node ] query.Q.nodes.(qid) <> []
  | Q.P_compare (op, l, r) ->
      let atoms = function
        | Q.Self_value -> [ `S (string_value node) ]
        | Q.Branch qid ->
            List.map
              (fun n -> `S (string_value n))
              (select_chain query [ node ] query.Q.nodes.(qid))
        | Q.Lit_string s -> [ `S s ]
        | Q.Lit_number n -> [ `N n ]
      in
      let ls = atoms l and rs = atoms r in
      List.exists (fun a -> List.exists (fun b -> atomic_compare op a b) rs) ls
  | Q.P_and (a, b) -> eval_pexpr query node a && eval_pexpr query node b
  | Q.P_or (a, b) -> eval_pexpr query node a || eval_pexpr query node b
  | Q.P_not a -> not (eval_pexpr query node a)

let eval_nodes query dom =
  match query.Q.root.Q.children with
  | [ first ] -> select_chain query [ pseudo_root dom.roots ] first
  | _ -> invalid_arg "Dom_xpath.eval: malformed query tree"

let eval query dom = List.map (fun n -> n.seq) (eval_nodes query dom)

let eval_with_values query dom =
  List.map (fun n -> (n.seq, string_value n)) (eval_nodes query dom)
