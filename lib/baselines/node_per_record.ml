open Rx_util
open Rx_storage
open Rx_xml
open Rx_xmlstore

(* Per-node record: kind byte, then kind-specific fields. Parent-child
   structure is implicit in the Dewey node IDs. *)

type t = {
  heap : Heap_file.t;
  index : Rx_btree.Btree.t;
  dict : Name_dict.t;
  mutable record_bytes : int;
}

let create pool dict =
  {
    heap = Heap_file.create pool;
    index = Rx_btree.Btree.create pool;
    dict;
    record_bytes = 0;
  }

let index_key docid node_id =
  let buf = Buffer.create 16 in
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Buffer.add_string buf node_id;
  Buffer.contents buf

let encode_qname w (q : Qname.t) =
  Bytes_io.Writer.varint w q.Qname.uri;
  Bytes_io.Writer.varint w q.Qname.local;
  Bytes_io.Writer.varint w q.Qname.prefix

let decode_qname r =
  let uri = Bytes_io.Reader.varint r in
  let local = Bytes_io.Reader.varint r in
  let prefix = Bytes_io.Reader.varint r in
  { Qname.uri; local; prefix }

let encode_node token =
  let w = Bytes_io.Writer.create () in
  (match token with
  | Token.Start_element { name; attrs; ns_decls } ->
      Bytes_io.Writer.u8 w 1;
      encode_qname w name;
      Bytes_io.Writer.varint w (List.length attrs);
      List.iter
        (fun (a : Token.attr) ->
          encode_qname w a.Token.name;
          Bytes_io.Writer.lstring w a.Token.value)
        attrs;
      Bytes_io.Writer.varint w (List.length ns_decls);
      List.iter
        (fun (p, u) ->
          Bytes_io.Writer.varint w p;
          Bytes_io.Writer.varint w u)
        ns_decls
  | Token.Text { content; _ } ->
      Bytes_io.Writer.u8 w 2;
      Bytes_io.Writer.lstring w content
  | Token.Comment c ->
      Bytes_io.Writer.u8 w 3;
      Bytes_io.Writer.lstring w c
  | Token.Pi { target; data } ->
      Bytes_io.Writer.u8 w 4;
      Bytes_io.Writer.lstring w target;
      Bytes_io.Writer.lstring w data
  | Token.Start_document | Token.End_document | Token.End_element ->
      invalid_arg "Node_per_record: not a node token");
  Bytes_io.Writer.contents w

let decode_node payload =
  let r = Bytes_io.Reader.of_string payload in
  match Bytes_io.Reader.u8 r with
  | 1 ->
      let name = decode_qname r in
      let n_attrs = Bytes_io.Reader.varint r in
      let attrs =
        List.init n_attrs (fun _ ->
            let name = decode_qname r in
            let value = Bytes_io.Reader.lstring r in
            { Token.name; value; annot = None })
      in
      let n_ns = Bytes_io.Reader.varint r in
      let ns_decls =
        List.init n_ns (fun _ ->
            let p = Bytes_io.Reader.varint r in
            let u = Bytes_io.Reader.varint r in
            (p, u))
      in
      Token.Start_element { name; attrs; ns_decls }
  | 2 -> Token.Text { content = Bytes_io.Reader.lstring r; annot = None }
  | 3 -> Token.Comment (Bytes_io.Reader.lstring r)
  | 4 ->
      let target = Bytes_io.Reader.lstring r in
      let data = Bytes_io.Reader.lstring r in
      Token.Pi { target; data }
  | n -> invalid_arg (Printf.sprintf "Node_per_record: bad kind %d" n)

let insert_node t ~docid node_id token =
  let payload = encode_node token in
  t.record_bytes <- t.record_bytes + String.length payload;
  let rid = Heap_file.insert t.heap payload in
  let w = Bytes_io.Writer.create ~capacity:6 () in
  Rid.encode w rid;
  Rx_btree.Btree.insert t.index ~key:(index_key docid node_id)
    ~value:(Bytes_io.Writer.contents w)

let insert_tokens t ~docid tokens =
  (* mirror the packer's node-id assignment *)
  let stack = ref [ (Node_id.root, ref 0) ] in
  let alloc () =
    match !stack with
    | (base, counter) :: _ ->
        let rel = Node_id.nth_sibling_rel !counter in
        incr counter;
        Node_id.append base rel
    | [] -> invalid_arg "Node_per_record: token outside document"
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element _ ->
          let id = alloc () in
          insert_node t ~docid id token;
          stack := (id, ref 0) :: !stack
      | Token.End_element -> stack := List.tl !stack
      | Token.Text { content; _ }
        when (match !stack with [ _ ] -> true | _ -> false)
             && String.trim content = "" ->
          ()
      | Token.Text _ | Token.Comment _ | Token.Pi _ ->
          insert_node t ~docid (alloc ()) token)
    tokens

let insert_document t ~docid src = insert_tokens t ~docid (Parser.parse t.dict src)

let events t ~docid f =
  (* scan the document's entries in node-id order = document order; emit
     End_element when leaving a subtree, inferred from node-id ancestry *)
  let open_stack = ref [] in
  let close_down_to id =
    let rec loop () =
      match !open_stack with
      | top :: rest when not (Node_id.is_ancestor ~ancestor:top id) ->
          f { Doc_store.id = None; token = Token.End_element };
          open_stack := rest;
          loop ()
      | _ -> ()
    in
    loop ()
  in
  f { Doc_store.id = None; token = Token.Start_document };
  Rx_btree.Btree.iter_prefix t.index ~prefix:(index_key docid Node_id.root)
    (fun key value ->
      let _, pos = Key_codec.decode_int64 key 0 in
      let node_id = String.sub key pos (String.length key - pos) in
      let rid = Rid.decode (Bytes_io.Reader.of_string value) in
      let token = decode_node (Heap_file.read t.heap rid) in
      close_down_to node_id;
      f { Doc_store.id = Some node_id; token };
      (match token with
      | Token.Start_element _ -> open_stack := node_id :: !open_stack
      | _ -> ());
      `Continue);
  (* "\x01" is below every real node id, so this closes everything *)
  close_down_to "\x01";
  f { Doc_store.id = None; token = Token.End_document }

let serialize t ~docid =
  let tokens = ref [] in
  events t ~docid (fun e -> tokens := e.Doc_store.token :: !tokens);
  Serializer.to_string t.dict (List.rev !tokens)

type stats = {
  records : int;
  index_entries : int;
  data_pages : int;
  index_pages : int;
  record_bytes : int;
}

let stats t =
  {
    records = Heap_file.record_count t.heap;
    index_entries = Rx_btree.Btree.entry_count t.index;
    data_pages = Heap_file.data_pages t.heap;
    index_pages = Rx_btree.Btree.page_count t.index;
    record_bytes = t.record_bytes;
  }
