(* Rows are written to temp files as length-prefixed (key, payload) pairs;
   runs are sorted in memory, spilled, then merged k-way. *)

let write_run path rows =
  let oc = open_out_bin path in
  List.iter
    (fun (key, payload) ->
      output_string oc (Printf.sprintf "%08d%s" (String.length key) key);
      output_string oc (Printf.sprintf "%08d%s" (String.length payload) payload))
    rows;
  close_out oc

let read_lstring ic =
  match really_input_string ic 8 with
  | len_str ->
      let len = int_of_string len_str in
      Some (really_input_string ic len)
  | exception End_of_file -> None

let read_pair ic =
  match read_lstring ic with
  | None -> None
  | Some key -> (
      match read_lstring ic with
      | Some payload -> Some (key, payload)
      | None -> invalid_arg "External_sort: truncated run file")

let sort ?(run_size = 64) ~key ~encode ~decode rows =
  let pairs = List.map (fun r -> (key r, encode r)) rows in
  (* run generation *)
  let rec chunks acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
        if n = run_size then chunks (List.rev current :: acc) [ x ] 1 rest
        else chunks acc (x :: current) (n + 1) rest
  in
  let runs = chunks [] [] 0 pairs in
  let files =
    List.map
      (fun run ->
        let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) run in
        let path = Filename.temp_file "rxsort" ".run" in
        write_run path sorted;
        path)
      runs
  in
  (* k-way merge over per-run cursors *)
  let channels = Array.of_list (List.map open_in_bin files) in
  let heads = Array.map read_pair channels in
  let out = ref [] in
  let rec merge () =
    let best = ref None in
    Array.iteri
      (fun i head ->
        match head with
        | None -> ()
        | Some (k, _) -> (
            match !best with
            | Some (bk, _) when compare bk k <= 0 -> ()
            | _ -> best := Some (k, i)))
      heads;
    match !best with
    | None -> ()
    | Some (_, i) ->
        (match heads.(i) with
        | Some (_, payload) -> out := payload :: !out
        | None -> assert false);
        heads.(i) <- read_pair channels.(i);
        merge ()
  in
  merge ();
  Array.iter close_in channels;
  List.iter Sys.remove files;
  List.rev_map decode !out

let sorted_strings ?run_size rows =
  sort ?run_size ~key:(fun s -> s) ~encode:(fun s -> s) ~decode:(fun s -> s) rows
