(** Instance-tracking streaming matcher — the "other streaming algorithms"
    of Figure 7. It evaluates a linear path by keeping one runtime state per
    {e partial embedding} of the path prefix into the document, instead of
    QuickXScan's one-per-stack-top with transitivity. On recursive
    documents ([//a//a//a] over nested [a] elements) the number of live
    states grows combinatorially, which E4 measures. Results are identical
    to QuickXScan on linear paths. *)

type t

val create : Rx_xml.Name_dict.t -> Rx_xpath.Ast.path -> t
(** @raise Invalid_argument unless the path is linear
    ({!Rx_xpath.Ast.is_linear}) and absolute, with element name tests
    only. *)

val start_element : t -> name:Rx_xml.Qname.t -> seq:int -> unit
val end_element : t -> unit

val finish : t -> int list
(** Matched sequence numbers, document order, duplicate-free. *)

val max_active : t -> int
(** High-water mark of live partial-match states. *)

val feed_tokens : t -> Rx_xml.Token.t list -> unit
