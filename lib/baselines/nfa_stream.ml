open Rx_xml
open Rx_xpath

type cstep = { desc : bool; uri : int; local : int; star : bool }

(* A live state is a partial embedding: the next step to match and the
   document depth of its last matched node. A state stays alive while that
   node is open. *)
type state = { next_step : int; at_depth : int }

type t = {
  steps : cstep array;
  mutable depth : int;
  mutable live : state list;
  mutable matches : int list; (* rev *)
  mutable active : int;
  mutable max_active : int;
}

let create dict (path : Ast.path) =
  if not (Ast.is_linear path) then invalid_arg "Nfa_stream: path not linear";
  if not path.Ast.absolute then invalid_arg "Nfa_stream: path not absolute";
  let cstep (s : Ast.step) =
    let desc = s.Ast.axis = Ast.Descendant in
    if s.Ast.axis = Ast.Attribute then
      invalid_arg "Nfa_stream: attribute steps unsupported";
    match s.Ast.test with
    | Ast.Name { prefix = None; local } ->
        {
          desc;
          uri = 0;
          local = Name_dict.intern dict local;
          star = false;
        }
    | Ast.Wildcard -> { desc; uri = 0; local = -1; star = true }
    | _ -> invalid_arg "Nfa_stream: only name tests supported"
  in
  let steps = Array.of_list (List.map cstep path.Ast.steps) in
  {
    steps;
    depth = 0;
    live = [ { next_step = 0; at_depth = 0 } ];
    matches = [];
    active = 1;
    max_active = 1;
  }

let step_matches (s : cstep) (name : Qname.t) =
  s.star || (name.Qname.uri = s.uri && name.Qname.local = s.local)

let start_element t ~name ~seq =
  t.depth <- t.depth + 1;
  let spawned = ref [] in
  List.iter
    (fun st ->
      if st.next_step < Array.length t.steps then begin
        let step = t.steps.(st.next_step) in
        let depth_ok =
          if step.desc then t.depth > st.at_depth
          else t.depth = st.at_depth + 1
        in
        if depth_ok && step_matches step name then begin
          if st.next_step + 1 = Array.length t.steps then
            t.matches <- seq :: t.matches
          else ();
          (* spawn a new partial embedding; the old one persists to match
             other occurrences (no transitivity sharing) *)
          spawned := { next_step = st.next_step + 1; at_depth = t.depth } :: !spawned
        end
      end)
    t.live;
  t.live <- !spawned @ t.live;
  t.active <- List.length t.live;
  if t.active > t.max_active then t.max_active <- t.active

let end_element t =
  t.live <- List.filter (fun st -> st.at_depth < t.depth) t.live;
  t.depth <- t.depth - 1;
  t.active <- List.length t.live

let finish t =
  if t.depth <> 0 then invalid_arg "Nfa_stream.finish: unbalanced stream";
  List.sort_uniq compare (List.rev t.matches)

let max_active t = t.max_active

let feed_tokens t tokens =
  let seq = ref 0 in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element { name; attrs; _ } ->
          incr seq;
          let elem_seq = !seq in
          seq := !seq + List.length attrs;
          start_element t ~name ~seq:elem_seq
      | Token.End_element -> end_element t
      | Token.Text _ | Token.Comment _ | Token.Pi _ -> incr seq)
    tokens
