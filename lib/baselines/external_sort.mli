(** External merge sort — the "typical external SORT" the paper's XMLAGG
    optimization avoids (§4.1): run generation to temporary files followed
    by a k-way merge, paying serialization and file I/O per group even when
    the group fits in memory. The E6 baseline. *)

val sort :
  ?run_size:int ->
  key:('a -> string) ->
  encode:('a -> string) ->
  decode:(string -> 'a) ->
  'a list ->
  'a list
(** Stable by key. [run_size] rows per initial run (default 64). *)

val sorted_strings : ?run_size:int -> string list -> string list
(** Convenience instance for string rows sorted by themselves. *)
