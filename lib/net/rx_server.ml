open Systemrx

let server_banner = "rxd/1.0"

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_queue_depth : int;
  auth_token : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    max_queue_depth = 64;
    auth_token = None;
  }

type session = {
  sid : int;
  fd : Unix.file_descr;
  mutable txn : Database.txn option;
  prepared : (int, Database.prepared) Hashtbl.t;
  mutable next_stmt : int;
}

type t = {
  db : Database.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* self-pipe: [request_stop] only writes a byte here (async-signal-safe
     — no lock), and the accept loop's select turns it into the actual
     shutdown under the lock *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Mutex.t;
  cv : Condition.t;
  mutable stopping : bool;
  mutable live : (int * Unix.file_descr) list;
  mutable threads : Thread.t list;  (* accept loop + running sessions *)
  mutable dead : Thread.t list;  (* finished sessions awaiting join *)
  mutable next_sid : int;
  mutable queued : int;  (* requests currently in service *)
  m_conns : Rx_obs.Metrics.gauge;
  m_accepted : Rx_obs.Metrics.counter;
  m_requests : Rx_obs.Metrics.counter;
  m_errors : Rx_obs.Metrics.counter;
  m_rejected : Rx_obs.Metrics.counter;
  op_hists : (string * Rx_obs.Metrics.histogram) list;
}

let port t = t.bound_port

(* --- admission control + engine serialization --- *)

(* queue-depth admission: refuse (as Busy, the engine's own backpressure
   type) rather than queue unboundedly behind the engine lock *)
let admitted t f =
  let ok =
    Mutex.protect t.lock (fun () ->
        if t.queued >= t.cfg.max_queue_depth then false
        else begin
          t.queued <- t.queued + 1;
          true
        end)
  in
  if not ok then begin
    Rx_obs.Metrics.incr t.m_rejected;
    raise (Database.Busy { txid = 0; blockers = [] })
  end;
  Fun.protect
    ~finally:(fun () -> Mutex.protect t.lock (fun () -> t.queued <- t.queued - 1))
    f

(* the trace ring is not thread-safe, so spans are recorded only inside
   the engine lock, where everything else that traces already runs *)
let span t op f =
  Rx_obs.Trace.with_span (Database.tracer t.db) "net.request"
    ~attrs:[ ("op", op) ]
    f

let engine t op f = admitted t (fun () -> Database.exclusively t.db (fun () -> span t op f))

(* --- request dispatch --- *)

let op_name : Rx_wire.request -> string = function
  | Rx_wire.Hello _ -> "hello"
  | Rx_wire.Query _ -> "query"
  | Rx_wire.Prepare _ -> "prepare"
  | Rx_wire.Run_prepared _ -> "run_prepared"
  | Rx_wire.Begin -> "begin"
  | Rx_wire.Commit _ -> "commit"
  | Rx_wire.Rollback _ -> "rollback"
  | Rx_wire.Insert _ -> "insert"
  | Rx_wire.Insert_many _ -> "insert_many"
  | Rx_wire.Delete _ -> "delete"
  | Rx_wire.Get _ -> "get"
  | Rx_wire.Stats -> "stats"
  | Rx_wire.Shutdown -> "shutdown"
  | Rx_wire.Bye -> "bye"
  | Rx_wire.Repl_state -> "repl_state"
  | Rx_wire.Repl_fetch _ -> "repl_fetch"

let matches_of_result (r : Database.result) =
  Rx_wire.R_matches
    {
      plan = r.Database.plan.Database.description;
      matches =
        List.map
          (fun m -> (m.Database.docid, r.Database.serialize m))
          r.Database.matches;
    }

let session_txn sess =
  match sess.txn with
  | Some txn when Database.txn_active txn -> Some txn
  | _ ->
      (* wounded as a deadlock victim (or otherwise finished) since the
         last request: the session just no longer has a transaction *)
      sess.txn <- None;
      None

let dispatch t sess : Rx_wire.request -> Rx_wire.ok = function
  | Rx_wire.Hello _ -> invalid_arg "session already established"
  | Rx_wire.Query { table; column; xpath; ns_env } ->
      engine t "query" (fun () ->
          matches_of_result
            (Database.run ~ns_env ?txn:(session_txn sess) t.db ~table ~column
               ~xpath))
  | Rx_wire.Prepare { table; column; xpath; ns_env } ->
      engine t "prepare" (fun () ->
          let p = Database.prepare ~ns_env t.db ~table ~column ~xpath in
          sess.next_stmt <- sess.next_stmt + 1;
          Hashtbl.replace sess.prepared sess.next_stmt p;
          Rx_wire.R_prepared
            {
              stmt = sess.next_stmt;
              plan = (Database.Prepared.plan p).Database.description;
            })
  | Rx_wire.Run_prepared { stmt } -> (
      match Hashtbl.find_opt sess.prepared stmt with
      | None -> invalid_arg (Printf.sprintf "unknown prepared statement %d" stmt)
      | Some p ->
          engine t "run_prepared" (fun () ->
              matches_of_result
                (Database.run_prepared ?txn:(session_txn sess) t.db p)))
  | Rx_wire.Begin ->
      if session_txn sess <> None then
        invalid_arg "session already has an open transaction";
      engine t "begin" (fun () ->
          let txn = Database.begin_txn t.db in
          sess.txn <- Some txn;
          Rx_wire.R_txn { txid = Database.txn_id txn })
  | Rx_wire.Commit { txid } -> (
      match session_txn sess with
      | None -> invalid_arg "no open transaction"
      | Some txn ->
          if Database.txn_id txn <> txid then
            invalid_arg
              (Printf.sprintf "transaction %d is not this session's" txid);
          (* apply under the engine lock, await durability outside it:
             concurrent session commits share group-commit fsyncs. The
             session keeps its transaction until the engine accepts the
             commit: admission control's Busy must leave it open and
             retryable, not orphaned with its locks held *)
          let await =
            engine t "commit" (fun () -> Database.commit_async t.db txn)
          in
          sess.txn <- None;
          await ();
          Rx_wire.R_unit)
  | Rx_wire.Rollback { txid } -> (
      match session_txn sess with
      | None -> invalid_arg "no open transaction"
      | Some txn ->
          if Database.txn_id txn <> txid then
            invalid_arg
              (Printf.sprintf "transaction %d is not this session's" txid);
          (* as with commit: only forget the transaction once the engine
             actually rolled it back, so a Busy refusal stays retryable *)
          let r =
            engine t "rollback" (fun () ->
                Database.rollback t.db txn;
                Rx_wire.R_unit)
          in
          sess.txn <- None;
          r)
  | Rx_wire.Insert { table; values; xml } ->
      let values =
        List.map (fun (k, v) -> (k, Rx_relational.Value.Varchar v)) values
      in
      let do_insert txn = Database.insert ~txn t.db ~table ~values ~xml () in
      let docid =
        match session_txn sess with
        | Some txn -> engine t "insert" (fun () -> do_insert txn)
        | None ->
            (* the per-request transaction wrapper: same idiom embedded
               callers use, durability wait outside the engine lock *)
            admitted t (fun () ->
                Database.with_txn t.db (fun txn ->
                    span t "insert" (fun () -> do_insert txn)))
      in
      Rx_wire.R_docid { docid }
  | Rx_wire.Insert_many { table; column; docs } ->
      if session_txn sess <> None then
        invalid_arg "bulk load cannot run inside an explicit transaction";
      engine t "insert_many" (fun () ->
          Rx_wire.R_docids
            { docids = Database.insert_many t.db ~table ~column docs })
  | Rx_wire.Delete { table; docid } ->
      let do_delete txn = Database.delete ~txn t.db ~table ~docid in
      (match session_txn sess with
      | Some txn -> engine t "delete" (fun () -> do_delete txn)
      | None ->
          admitted t (fun () ->
              Database.with_txn t.db (fun txn ->
                  span t "delete" (fun () -> do_delete txn))));
      Rx_wire.R_unit
  | Rx_wire.Get { table; column; docid } ->
      engine t "get" (fun () ->
          Rx_wire.R_doc
            { doc = Database.document ?txn:(session_txn sess) t.db ~table ~column ~docid })
  | Rx_wire.Stats ->
      engine t "stats" (fun () ->
          Rx_wire.R_stats
            { json = Rx_obs.Json.to_string (Stats_report.json t.db) })
  | Rx_wire.Repl_state ->
      engine t "repl_state" (fun () ->
          let st = Database.repl_state t.db in
          Rx_wire.R_repl_state
            {
              base_lsn = st.Database.r_base_lsn;
              durable_lsn = st.Database.r_durable_lsn;
              generations = st.Database.r_generations;
              page_size = st.Database.r_page_size;
            })
  | Rx_wire.Repl_fetch { from_lsn; max_bytes } ->
      engine t "repl_fetch" (fun () ->
          (* cap at what one response frame can carry (minus envelope) *)
          let max_bytes = min max_bytes (Rx_wire.max_frame - 64) in
          let start_lsn, frames, durable_lsn =
            Database.repl_fetch t.db ~from_lsn ~max_bytes
          in
          Rx_wire.R_repl_batch { start_lsn; durable_lsn; frames })
  | Rx_wire.Shutdown -> Rx_wire.R_unit
  | Rx_wire.Bye -> Rx_wire.R_unit

(* --- graceful shutdown --- *)

(* the shutdown proper; runs on the accept-loop (or a stop-calling)
   thread, never inside a signal handler *)
let initiate_stop t =
  let fds =
    Mutex.protect t.lock (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.cv;
          List.map snd t.live
        end)
  in
  (* wake sessions blocked between frames: their reads return EOF, their
     in-flight request (if any) still completes and responds *)
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    fds

(* only touches the nonblocking pipe — no mutex, so a signal handler
   running on a thread that already holds [t.lock] (e.g. the main thread
   parked in [wait]) cannot self-deadlock *)
let request_stop t =
  if not t.stopping then
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

let wait t =
  Mutex.protect t.lock (fun () ->
      while not (t.stopping && t.live = []) do
        Condition.wait t.cv t.lock
      done)

let stop t =
  request_stop t;
  wait t;
  let threads =
    Mutex.protect t.lock (fun () ->
        let ths = t.threads @ t.dead in
        t.threads <- [];
        t.dead <- [];
        ths)
  in
  List.iter Thread.join threads;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w ]

(* --- per-session request loop --- *)

let observe_latency t op t0 =
  match List.assoc_opt op t.op_hists with
  | Some h ->
      Rx_obs.Metrics.observe h
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.))
  | None -> ()

(* handle one request end-to-end; [false] ends the session *)
let handle t sess req =
  Rx_obs.Metrics.incr t.m_requests;
  let op = op_name req in
  let t0 = Unix.gettimeofday () in
  let resp =
    match dispatch t sess req with
    | ok -> Rx_wire.Ok ok
    | exception e ->
        Rx_obs.Metrics.incr t.m_errors;
        Rx_wire.Err
          { status = Database.error_code e; message = Database.error_message e }
  in
  observe_latency t op t0;
  Rx_wire.send_response sess.fd resp;
  match req with
  | Rx_wire.Shutdown ->
      request_stop t;
      false
  | Rx_wire.Bye -> false
  | _ -> true

let handshake t sess =
  let t0 = Unix.gettimeofday () in
  match Rx_wire.recv_request sess.fd with
  | None -> false
  | Some (Rx_wire.Hello { token; client = _ }) ->
      let authorized =
        match t.cfg.auth_token with None -> true | Some secret -> token = secret
      in
      Rx_obs.Metrics.incr t.m_requests;
      observe_latency t "hello" t0;
      if authorized then begin
        Rx_wire.send_response sess.fd
          (Rx_wire.Ok (Rx_wire.R_hello { server = server_banner; session = sess.sid }));
        true
      end
      else begin
        Rx_obs.Metrics.incr t.m_errors;
        Rx_wire.send_response sess.fd
          (Rx_wire.Err { status = 1; message = "authentication failed" });
        false
      end
  | Some _ ->
      Rx_wire.send_response sess.fd
        (Rx_wire.Err { status = 1; message = "expected hello" });
      false

let rec serve_loop t sess =
  match Rx_wire.recv_request sess.fd with
  | None -> ()
  | Some req -> if handle t sess req then serve_loop t sess

let session_main t (sid, fd) =
  let sess = { sid; fd; txn = None; prepared = Hashtbl.create 8; next_stmt = 0 } in
  let cleanup () =
    (* a dropped connection rolls its open transaction back, like a
       dropped embedded session *)
    (match session_txn sess with
    | Some txn -> (
        try Database.exclusively t.db (fun () -> Database.rollback t.db txn)
        with _ -> ())
    | None -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (* hand our handle to the reaper: [t.threads] would otherwise grow
       one entry per connection ever accepted. Registration in
       [accept_one] holds [t.lock] across create+insert, so the handle
       is always present here *)
    let self_id = Thread.id (Thread.self ()) in
    Mutex.protect t.lock (fun () ->
        t.live <- List.filter (fun (s, _) -> s <> sid) t.live;
        t.threads <- List.filter (fun th -> Thread.id th <> self_id) t.threads;
        t.dead <- Thread.self () :: t.dead;
        Rx_obs.Metrics.set t.m_conns (List.length t.live);
        Condition.broadcast t.cv)
  in
  Fun.protect ~finally:cleanup (fun () ->
      try
        if handshake t sess then serve_loop t sess
      with
      | Rx_wire.Protocol_error msg ->
          Rx_obs.Metrics.incr t.m_errors;
          (try
             Rx_wire.send_response fd
               (Rx_wire.Err { status = Rx_wire.status_protocol; message = msg })
           with _ -> ())
      | Unix.Unix_error _ -> () (* peer vanished mid-write *))

(* --- accept loop --- *)

let accept_one t =
  let fd, _addr = Unix.accept t.listen_fd in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let admitted_sid =
    Mutex.protect t.lock (fun () ->
        if t.stopping || List.length t.live >= t.cfg.max_connections then None
        else begin
          t.next_sid <- t.next_sid + 1;
          t.live <- (t.next_sid, fd) :: t.live;
          Rx_obs.Metrics.set t.m_conns (List.length t.live);
          Some t.next_sid
        end)
  in
  match admitted_sid with
  | None ->
      Rx_obs.Metrics.incr t.m_rejected;
      (try
         Rx_wire.send_response fd
           (Rx_wire.Err { status = 3; message = "server at max connections" })
       with _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | Some sid ->
      Rx_obs.Metrics.incr t.m_accepted;
      (* create + register under one lock section: the session's cleanup
         also takes the lock to deregister, so it cannot run before the
         handle is in [t.threads] *)
      Mutex.protect t.lock (fun () ->
          let th = Thread.create (session_main t) (sid, fd) in
          t.threads <- th :: t.threads)

(* join session threads that finished since the last pass; they are past
   their cleanup, so each join returns ~immediately *)
let reap_finished t =
  let dead =
    Mutex.protect t.lock (fun () ->
        let d = t.dead in
        t.dead <- [];
        d)
  in
  List.iter Thread.join dead

let accept_loop t =
  (* select doubles as the shutdown wakeup (the self-pipe) and, with its
     timeout, as the reaper's cadence *)
  let rec loop () =
    if not t.stopping then begin
      (match Unix.select [ t.listen_fd; t.stop_r ] [] [] 0.2 with
      | ready, _, _ ->
          if List.mem t.stop_r ready then begin
            (try ignore (Unix.read t.stop_r (Bytes.create 8) 0 8)
             with Unix.Unix_error _ -> ());
            initiate_stop t
          end
          else if List.mem t.listen_fd ready then (
            try accept_one t
            with Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      reap_finished t;
      loop ()
    end
  in
  loop ()

let start ?(config = default_config) db =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let m = Database.metrics db in
  (* register every net instrument up front: session threads only ever
     resolve existing entries, and the stats schema is complete from the
     first request *)
  Stats_report.ensure_net_instruments m;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    try
      (* a full pipe must never block (or EINTR-loop) a signal handler;
         one byte is enough and extras are harmless *)
      Unix.set_nonblock stop_w;
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd 128;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      {
        db;
        cfg = config;
        listen_fd;
        bound_port;
        stop_r;
        stop_w;
        lock = Mutex.create ();
        cv = Condition.create ();
        stopping = false;
        live = [];
        threads = [];
        dead = [];
        next_sid = 0;
        queued = 0;
        m_conns = Rx_obs.Metrics.gauge m "net.conns";
        m_accepted = Rx_obs.Metrics.counter m "net.conns.accepted";
        m_requests = Rx_obs.Metrics.counter m "net.requests";
        m_errors = Rx_obs.Metrics.counter m "net.errors";
        m_rejected = Rx_obs.Metrics.counter m "net.rejected";
        op_hists =
          List.map
            (fun op -> (op, Rx_obs.Metrics.histogram m ("net.latency." ^ op)))
            Stats_report.net_ops;
      }
    with e ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ listen_fd; stop_r; stop_w ];
      raise e
  in
  let th = Thread.create accept_loop t in
  Mutex.protect t.lock (fun () -> t.threads <- th :: t.threads);
  t
