open Systemrx

let server_banner = "rxd/1.1"

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_queue_depth : int;
  auth_token : string option;
  max_pipeline : int;
  io_threads : int;
  idle_timeout : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    max_queue_depth = 64;
    auth_token = None;
    max_pipeline = 32;
    io_threads = 0;
    idle_timeout = 0.;
  }

(* --- growable byte window ---

   Per-connection I/O staging: appended at the tail, consumed from the
   head, contents always contiguous. The buffer is retained for the
   connection's lifetime (grown to the largest backlog seen), so steady
   traffic reassembles and writes frames with no per-frame allocation. *)
module Nb = struct
  type t = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

  let create n = { buf = Bytes.create n; off = 0; len = 0 }
  let length b = b.len

  let reserve b n =
    let cap = Bytes.length b.buf in
    if b.off + b.len + n > cap then
      if b.len + n <= cap then begin
        (* enough total room: slide the window back to the start *)
        Bytes.blit b.buf b.off b.buf 0 b.len;
        b.off <- 0
      end
      else begin
        let ncap = ref (max 4096 cap) in
        while b.len + n > !ncap do
          ncap := !ncap * 2
        done;
        let nb = Bytes.create !ncap in
        Bytes.blit b.buf b.off nb 0 b.len;
        b.buf <- nb;
        b.off <- 0
      end

  let add_subbytes b src off len =
    reserve b len;
    Bytes.blit src off b.buf (b.off + b.len) len;
    b.len <- b.len + len

  let add_buffer b (src : Buffer.t) =
    let len = Buffer.length src in
    reserve b len;
    Buffer.blit src 0 b.buf (b.off + b.len) len;
    b.len <- b.len + len

  let peek_i32 b pos = Int32.to_int (Bytes.get_int32_be b.buf (b.off + pos))
  let sub_string b pos len = Bytes.sub_string b.buf (b.off + pos) len

  let consume b n =
    b.off <- b.off + n;
    b.len <- b.len - n;
    if b.len = 0 then b.off <- 0
end

(* a queued request: [Exec] entries own an admission slot; [Refuse]
   entries were turned away by queue-depth admission at parse time but
   still flow through the ordered response path, so a pipelined client
   sees its Busy exactly where the refused request was *)
type work = Exec of Rx_wire.request | Refuse of Rx_wire.request

type conn = {
  sid : int;
  fd : Unix.file_descr;
  mutable established : bool;
  inbuf : Nb.t;  (* raw inbound bytes, frames not yet parsed (reactor only) *)
  inq : work Queue.t;  (* parsed requests awaiting service (under lock) *)
  out : Nb.t;  (* encoded response bytes awaiting writeback (under lock) *)
  mutable busy : bool;  (* a worker is draining [inq] (under lock) *)
  mutable txn : Database.txn option;
  prepared : (int, Database.prepared) Hashtbl.t;
  mutable next_stmt : int;
  cursors : (int, Database.cursor * int) Hashtbl.t;  (* id -> cursor, chunk *)
  mutable next_cursor : int;
  mutable last_activity : float;
  mutable eof : bool;  (* peer half-closed: drain [inq]/[out], then close *)
  mutable dead : bool;  (* write error: peer is gone, discard everything *)
  mutable close_after_flush : bool;  (* Bye/auth failure/idle timeout *)
  mutable fatal : Rx_wire.response option;
      (* a protocol error to deliver once all earlier responses are out *)
}

type job = Serve of conn | Cleanup of conn

type t = {
  db : Database.t;
  cfg : config;
  workers_n : int;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* self-pipe: [request_stop] only writes a byte here (async-signal-safe
     — no lock), and the reactor's select turns it into the actual
     shutdown under the lock *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  (* worker -> reactor doorbell: response bytes are ready to flush *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  lock : Mutex.t;
  cv : Condition.t;  (* lifecycle: [wait]ers *)
  work_cv : Condition.t;  (* job queue *)
  workq : job Queue.t;
  mutable stopping : bool;
  mutable workers_stop : bool;
  mutable conns : conn list;  (* reactor-owned; field access under lock *)
  mutable live : int;  (* conns not yet fully cleaned up *)
  mutable pending : int;  (* Exec entries queued or in service *)
  mutable threads : Thread.t list;  (* reactor + workers *)
  mutable next_sid : int;
  open_cursors : int Atomic.t;
  m_conns : Rx_obs.Metrics.gauge;
  m_cursors : Rx_obs.Metrics.gauge;
  m_accepted : Rx_obs.Metrics.counter;
  m_requests : Rx_obs.Metrics.counter;
  m_errors : Rx_obs.Metrics.counter;
  m_rejected : Rx_obs.Metrics.counter;
  m_bytes_in : Rx_obs.Metrics.counter;
  m_bytes_out : Rx_obs.Metrics.counter;
  m_idle_timeouts : Rx_obs.Metrics.counter;
  m_pl_batches : Rx_obs.Metrics.counter;
  m_pl_requests : Rx_obs.Metrics.counter;
  op_hists : (string * Rx_obs.Metrics.histogram) list;
}

let port t = t.bound_port

(* --- engine serialization --- *)

(* the trace ring is not thread-safe, so spans are recorded only inside
   the engine lock, where everything else that traces already runs *)
let span t op f =
  Rx_obs.Trace.with_span (Database.tracer t.db) "net.request"
    ~attrs:[ ("op", op) ]
    f

let engine t op f = Database.exclusively t.db (fun () -> span t op f)

(* begin + body + commit phase 1 under the engine lock, durability
   returned as a thunk — [Database.with_txn] with the fsync wait split
   out, so a worker can batch several auto-commit requests' waits into
   one group-commit window *)
let with_txn_async t f =
  Database.exclusively t.db (fun () ->
      let txn = Database.begin_txn t.db in
      match f txn with
      | v ->
          let await = Database.commit_async t.db txn in
          (v, await)
      | exception e ->
          (try Database.rollback t.db txn with _ -> ());
          raise e)

(* --- request dispatch --- *)

let op_name : Rx_wire.request -> string = function
  | Rx_wire.Hello _ -> "hello"
  | Rx_wire.Query _ -> "query"
  | Rx_wire.Prepare _ -> "prepare"
  | Rx_wire.Run_prepared _ -> "run_prepared"
  | Rx_wire.Begin -> "begin"
  | Rx_wire.Commit _ -> "commit"
  | Rx_wire.Rollback _ -> "rollback"
  | Rx_wire.Insert _ -> "insert"
  | Rx_wire.Insert_many _ -> "insert_many"
  | Rx_wire.Delete _ -> "delete"
  | Rx_wire.Get _ -> "get"
  | Rx_wire.Stats -> "stats"
  | Rx_wire.Shutdown -> "shutdown"
  | Rx_wire.Bye -> "bye"
  | Rx_wire.Repl_state -> "repl_state"
  | Rx_wire.Repl_fetch _ -> "repl_fetch"
  | Rx_wire.Open_cursor _ -> "open_cursor"
  | Rx_wire.Fetch _ -> "fetch"
  | Rx_wire.Close_cursor _ -> "close_cursor"
  | Rx_wire.Index_build _ -> "index_build"
  | Rx_wire.Index_status _ -> "index_status"
  | Rx_wire.Index_rollback _ -> "index_rollback"
  | Rx_wire.Index_drop _ -> "index_drop"
  | Rx_wire.Index_list _ -> "index_list"

let matches_of_result (r : Database.result) =
  Rx_wire.R_matches
    {
      plan = r.Database.plan.Database.description;
      matches =
        List.map
          (fun m -> (m.Database.docid, r.Database.serialize m))
          r.Database.matches;
    }

let wire_index_info (i : Database.Index.info) =
  let state, scanned, total =
    match i.Database.Index.ix_state with
    | Database.Index.Live -> ("live", i.Database.Index.ix_entries, i.Database.Index.ix_entries)
    | Database.Index.Building { scanned; total; side_log = _ } ->
        ("building", scanned, total)
    | Database.Index.Failed msg -> ("failed: " ^ msg, 0, 0)
  in
  {
    Rx_wire.ix_name = i.Database.Index.ix_name;
    ix_path = i.Database.Index.ix_path;
    ix_key_type =
      Rx_xindex.Index_def.key_type_to_string i.Database.Index.ix_key_type;
    ix_state = state;
    ix_generation = i.Database.Index.ix_generation;
    ix_entries = i.Database.Index.ix_entries;
    ix_build_ms = i.Database.Index.ix_build_ms;
    ix_prior_generation =
      (match i.Database.Index.ix_prior_generation with None -> 0 | Some g -> g);
    ix_docs_scanned = scanned;
    ix_docs_total = total;
  }

let session_txn sess =
  match sess.txn with
  | Some txn when Database.txn_active txn -> Some txn
  | _ ->
      (* wounded as a deadlock victim (or otherwise finished) since the
         last request: the session just no longer has a transaction *)
      sess.txn <- None;
      None

(* chunks must fit a response frame with room for the envelope and the
   per-row headers; half the cap leaves slack for one row's overshoot *)
let clamp_chunk chunk =
  let chunk = if chunk <= 0 then Rx_wire.default_chunk_bytes else chunk in
  min chunk (Rx_wire.max_frame / 2)

let set_cursor_gauge t = Rx_obs.Metrics.set t.m_cursors (Atomic.get t.open_cursors)

let drop_cursor t sess id cur =
  Database.cursor_close cur;
  Hashtbl.remove sess.cursors id;
  Atomic.decr t.open_cursors;
  set_cursor_gauge t

(* executes one request; returns the OK payload plus, for commits, the
   durability wait to perform before the response may be flushed *)
let dispatch t sess :
    Rx_wire.request -> Rx_wire.ok * (unit -> unit) option = function
  | Rx_wire.Hello _ -> invalid_arg "session already established"
  | Rx_wire.Query { table; column; xpath; ns_env } ->
      ( engine t "query" (fun () ->
            matches_of_result
              (Database.run ~ns_env ?txn:(session_txn sess) t.db ~table ~column
                 ~xpath)),
        None )
  | Rx_wire.Prepare { table; column; xpath; ns_env } ->
      ( engine t "prepare" (fun () ->
            let p = Database.prepare ~ns_env t.db ~table ~column ~xpath in
            sess.next_stmt <- sess.next_stmt + 1;
            Hashtbl.replace sess.prepared sess.next_stmt p;
            Rx_wire.R_prepared
              {
                stmt = sess.next_stmt;
                plan = (Database.Prepared.plan p).Database.description;
              }),
        None )
  | Rx_wire.Run_prepared { stmt } -> (
      match Hashtbl.find_opt sess.prepared stmt with
      | None -> invalid_arg (Printf.sprintf "unknown prepared statement %d" stmt)
      | Some p ->
          ( engine t "run_prepared" (fun () ->
                matches_of_result
                  (Database.run_prepared ?txn:(session_txn sess) t.db p)),
            None ))
  | Rx_wire.Begin ->
      if session_txn sess <> None then
        invalid_arg "session already has an open transaction";
      ( engine t "begin" (fun () ->
            let txn = Database.begin_txn t.db in
            sess.txn <- Some txn;
            Rx_wire.R_txn { txid = Database.txn_id txn }),
        None )
  | Rx_wire.Commit { txid } -> (
      match session_txn sess with
      | None -> invalid_arg "no open transaction"
      | Some txn ->
          (* txid 0 targets the session's current transaction — pipelined
             flights commit a Begin they have not read the reply of *)
          if txid <> 0 && Database.txn_id txn <> txid then
            invalid_arg
              (Printf.sprintf "transaction %d is not this session's" txid);
          (* apply under the engine lock, await durability before the
             response is flushed: concurrent sessions' commits — and a
             pipelined batch of this session's own commits — share
             group-commit fsyncs. The session keeps its transaction until
             the engine accepts the commit, so a refusal stays open and
             retryable, not orphaned with its locks held *)
          let await =
            engine t "commit" (fun () -> Database.commit_async t.db txn)
          in
          sess.txn <- None;
          (Rx_wire.R_unit, Some await))
  | Rx_wire.Rollback { txid } -> (
      match session_txn sess with
      | None -> invalid_arg "no open transaction"
      | Some txn ->
          if txid <> 0 && Database.txn_id txn <> txid then
            invalid_arg
              (Printf.sprintf "transaction %d is not this session's" txid);
          (* as with commit: only forget the transaction once the engine
             actually rolled it back *)
          let r =
            engine t "rollback" (fun () ->
                Database.rollback t.db txn;
                Rx_wire.R_unit)
          in
          sess.txn <- None;
          (r, None))
  | Rx_wire.Insert { table; values; xml } ->
      let values =
        List.map (fun (k, v) -> (k, Rx_relational.Value.Varchar v)) values
      in
      let do_insert txn = Database.insert ~txn t.db ~table ~values ~xml () in
      (match session_txn sess with
      | Some txn ->
          (Rx_wire.R_docid { docid = engine t "insert" (fun () -> do_insert txn) }, None)
      | None ->
          (* the per-request transaction wrapper, durability deferred so a
             pipelined run of auto-commit inserts shares fsyncs *)
          let docid, await =
            with_txn_async t (fun txn -> span t "insert" (fun () -> do_insert txn))
          in
          (Rx_wire.R_docid { docid }, Some await))
  | Rx_wire.Insert_many { table; column; docs } ->
      if session_txn sess <> None then
        invalid_arg "bulk load cannot run inside an explicit transaction";
      ( engine t "insert_many" (fun () ->
            Rx_wire.R_docids
              { docids = Database.insert_many t.db ~table ~column docs }),
        None )
  | Rx_wire.Delete { table; docid } ->
      let do_delete txn = Database.delete ~txn t.db ~table ~docid in
      (match session_txn sess with
      | Some txn ->
          engine t "delete" (fun () -> do_delete txn);
          (Rx_wire.R_unit, None)
      | None ->
          let (), await =
            with_txn_async t (fun txn -> span t "delete" (fun () -> do_delete txn))
          in
          (Rx_wire.R_unit, Some await))
  | Rx_wire.Get { table; column; docid } ->
      ( engine t "get" (fun () ->
            Rx_wire.R_doc
              {
                doc =
                  Database.document ?txn:(session_txn sess) t.db ~table ~column
                    ~docid;
              }),
        None )
  | Rx_wire.Stats ->
      ( engine t "stats" (fun () ->
            Rx_wire.R_stats
              { json = Rx_obs.Json.to_string (Stats_report.json t.db) }),
        None )
  | Rx_wire.Repl_state ->
      ( engine t "repl_state" (fun () ->
            let st = Database.repl_state t.db in
            Rx_wire.R_repl_state
              {
                base_lsn = st.Database.r_base_lsn;
                durable_lsn = st.Database.r_durable_lsn;
                generations = st.Database.r_generations;
                page_size = st.Database.r_page_size;
              }),
        None )
  | Rx_wire.Repl_fetch { from_lsn; max_bytes } ->
      ( engine t "repl_fetch" (fun () ->
            (* cap at what one response frame can carry (minus envelope) *)
            let max_bytes = min max_bytes (Rx_wire.max_frame - 64) in
            let start_lsn, frames, durable_lsn =
              Database.repl_fetch t.db ~from_lsn ~max_bytes
            in
            Rx_wire.R_repl_batch { start_lsn; durable_lsn; frames }),
        None )
  | Rx_wire.Open_cursor { table; column; xpath; ns_env; chunk_bytes } ->
      ( engine t "open_cursor" (fun () ->
            let cur =
              Database.open_cursor ~ns_env ?txn:(session_txn sess) t.db ~table
                ~column ~xpath
            in
            sess.next_cursor <- sess.next_cursor + 1;
            Hashtbl.replace sess.cursors sess.next_cursor
              (cur, clamp_chunk chunk_bytes);
            Atomic.incr t.open_cursors;
            set_cursor_gauge t;
            Rx_wire.R_cursor
              {
                cursor = sess.next_cursor;
                plan = (Database.cursor_plan cur).Database.description;
              }),
        None )
  | Rx_wire.Fetch { cursor } -> (
      match Hashtbl.find_opt sess.cursors cursor with
      | None -> invalid_arg (Printf.sprintf "unknown cursor %d" cursor)
      | Some (cur, chunk) ->
          ( engine t "fetch" (fun () ->
                match Database.cursor_next ~max_bytes:chunk cur with
                | [] ->
                    drop_cursor t sess cursor cur;
                    Rx_wire.R_rows_end
                | rows -> Rx_wire.R_rows_chunk { matches = rows }),
            None ))
  | Rx_wire.Close_cursor { cursor } -> (
      match Hashtbl.find_opt sess.cursors cursor with
      | None -> invalid_arg (Printf.sprintf "unknown cursor %d" cursor)
      | Some (cur, _) ->
          drop_cursor t sess cursor cur;
          (Rx_wire.R_unit, None))
  | Rx_wire.Index_build { table; column; name; path; key_type } ->
      let key_type =
        match Rx_xindex.Index_def.key_type_of_string key_type with
        | Some k -> k
        | None -> invalid_arg (Printf.sprintf "unknown key type %S" key_type)
      in
      (* deliberately NOT under [engine] (and untraced — the trace ring
         needs the lock): the build serializes itself per slice, which is
         exactly what keeps the engine online while this worker waits for
         it — wrapping it here would hold the lock for the whole scan and
         stall every other session *)
      let info =
        Database.Index.await
          (Database.Index.build t.db ~table ~column ~name ~path ~key_type)
      in
      (Rx_wire.R_index_info { info = wire_index_info info }, None)
  | Rx_wire.Index_status { table; column; name } ->
      ( engine t "index_status" (fun () ->
            Rx_wire.R_index_info
              {
                info =
                  wire_index_info
                    (Database.Index.status t.db ~table ~column ~name);
              }),
        None )
  | Rx_wire.Index_rollback { table; column; name } ->
      (* self-locking (and hence not under [engine], whose mutex is not
         reentrant) *)
      ( Rx_wire.R_index_info
          {
            info =
              wire_index_info (Database.Index.rollback t.db ~table ~column ~name);
          },
        None )
  | Rx_wire.Index_drop { table; column; name } ->
      (* immediate drops self-lock; staged drops only touch the session's
         own transaction *)
      Database.Index.drop ?txn:(session_txn sess) t.db ~table ~column ~name;
      (Rx_wire.R_unit, None)
  | Rx_wire.Index_list { table; column } ->
      ( engine t "index_list" (fun () ->
            Rx_wire.R_index_list
              {
                infos =
                  List.map wire_index_info
                    (Database.Index.list t.db ~table ~column);
              }),
        None )
  | Rx_wire.Shutdown -> (Rx_wire.R_unit, None)
  | Rx_wire.Bye -> (Rx_wire.R_unit, None)

(* --- response framing ---

   [acc] accumulates ready-to-write framed bytes, [enc] is the payload
   scratch; both are retained by their owner (one pair per worker, one
   pair in the reactor), so framing allocates nothing per response. A
   response that would exceed the frame cap is replaced by an error
   pointing at cursor streaming — the old core killed the whole
   connection with no response. *)
let append_frame ~acc ~enc resp =
  Buffer.clear enc;
  Rx_wire.encode_response_into enc resp;
  if Buffer.length enc > Rx_wire.max_frame then begin
    Buffer.clear enc;
    Rx_wire.encode_response_into enc
      (Rx_wire.Err
         {
           status = 1;
           message =
             "result exceeds the 16 MiB frame cap: stream it with a cursor \
              (Open_cursor/Fetch)";
         })
  end;
  Buffer.add_int32_be acc (Int32.of_int (Buffer.length enc));
  Buffer.add_buffer acc enc

(* --- lifecycle --- *)

(* only touches the nonblocking pipe — no mutex, so a signal handler
   running on a thread that already holds [t.lock] cannot self-deadlock *)
let request_stop t =
  if not t.stopping then
    try ignore (Unix.write_substring t.stop_w "!" 0 1)
    with Unix.Unix_error _ -> ()

let wake_reactor t =
  try ignore (Unix.write_substring t.wake_w "!" 0 1) with Unix.Unix_error _ -> ()

let wait t =
  Mutex.protect t.lock (fun () ->
      while not (t.stopping && t.live = 0) do
        Condition.wait t.cv t.lock
      done)

(* --- worker pool --- *)

let observe_latency t op t0 =
  match List.assoc_opt op t.op_hists with
  | Some h ->
      Rx_obs.Metrics.observe h
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.))
  | None -> ()

(* drain one connection's request queue: execute in arrival order,
   accumulate framed responses locally, run the collected durability
   waits (one group-commit window for the whole batch), then publish the
   response bytes to the connection in one append — responses therefore
   leave in request order, with commits never flushed before they are
   durable *)
let serve_batch t conn ~acc ~enc =
  Buffer.clear acc;
  let awaits = ref [] in
  let shutdown_after = ref false in
  let served = ref 0 in
  let continue_ = ref true in
  while !continue_ && !served < t.cfg.max_pipeline do
    let job = Mutex.protect t.lock (fun () -> Queue.take_opt conn.inq) in
    match job with
    | None -> continue_ := false
    | Some (Refuse req) ->
        incr served;
        Rx_obs.Metrics.incr t.m_requests;
        Rx_obs.Metrics.incr t.m_rejected;
        Rx_obs.Metrics.incr t.m_errors;
        let t0 = Unix.gettimeofday () in
        append_frame ~acc ~enc
          (Rx_wire.Err
             { status = 3; message = "busy: server queue depth exceeded" });
        observe_latency t (op_name req) t0
    | Some (Exec req) ->
        incr served;
        Rx_obs.Metrics.incr t.m_requests;
        let op = op_name req in
        let t0 = Unix.gettimeofday () in
        let resp =
          match dispatch t conn req with
          | ok, await ->
              (match await with Some a -> awaits := a :: !awaits | None -> ());
              Rx_wire.Ok ok
          | exception e ->
              Rx_obs.Metrics.incr t.m_errors;
              Rx_wire.Err
                {
                  status = Database.error_code e;
                  message = Database.error_message e;
                }
        in
        observe_latency t op t0;
        append_frame ~acc ~enc resp;
        Mutex.protect t.lock (fun () -> t.pending <- t.pending - 1);
        (match req with
        | Rx_wire.Shutdown ->
            shutdown_after := true;
            continue_ := false
        | Rx_wire.Bye ->
            conn.close_after_flush <- true;
            continue_ := false
        | _ -> ())
  done;
  if !served > 1 then begin
    Rx_obs.Metrics.incr t.m_pl_batches;
    Rx_obs.Metrics.add t.m_pl_requests !served
  end;
  (* durability point for every commit in the batch: the first wait's
     fsync covers the later commits' records, so they return without
     their own (group commit absorbs the batch) *)
  List.iter (fun a -> a ()) (List.rev !awaits);
  Mutex.protect t.lock (fun () ->
      Nb.add_buffer conn.out acc;
      conn.last_activity <- Unix.gettimeofday ();
      if
        (not (Queue.is_empty conn.inq))
        && (not conn.dead)
        && not conn.close_after_flush
      then begin
        (* new requests arrived while serving: stay busy, go again *)
        Queue.add (Serve conn) t.workq;
        Condition.signal t.work_cv
      end
      else conn.busy <- false);
  wake_reactor t;
  if !shutdown_after then request_stop t

(* a closed session's teardown runs on the pool too: rolling back an
   abandoned transaction takes the engine lock, which must never stall
   the reactor's I/O *)
let cleanup_conn t conn =
  (match session_txn conn with
  | Some txn -> (
      try Database.exclusively t.db (fun () -> Database.rollback t.db txn)
      with _ -> ())
  | None -> ());
  conn.txn <- None;
  Hashtbl.iter
    (fun _ (cur, _) ->
      Database.cursor_close cur;
      Atomic.decr t.open_cursors)
    conn.cursors;
  Hashtbl.reset conn.cursors;
  Hashtbl.reset conn.prepared;
  set_cursor_gauge t;
  Mutex.protect t.lock (fun () ->
      t.live <- t.live - 1;
      Condition.broadcast t.cv)

let worker_main t =
  let acc = Buffer.create 4096 and enc = Buffer.create 4096 in
  let rec loop () =
    let job =
      Mutex.protect t.lock (fun () ->
          let rec take () =
            match Queue.take_opt t.workq with
            | Some j -> Some j
            | None ->
                if t.workers_stop then None
                else begin
                  Condition.wait t.work_cv t.lock;
                  take ()
                end
          in
          take ())
    in
    match job with
    | None -> ()
    | Some (Serve conn) ->
        serve_batch t conn ~acc ~enc;
        loop ()
    | Some (Cleanup conn) ->
        cleanup_conn t conn;
        loop ()
  in
  loop ()

(* --- reactor --- *)

let read_chunk = 65536

(* parse complete frames out of [conn.inbuf]; stops at the pipeline
   bound, on a fatal protocol error, or when bytes run short (a partial
   frame just stays buffered across ticks — slow writers cost memory for
   one frame, not a thread) *)
let parse_frames t conn ~acc ~enc =
  let progressed = ref false in
  let stop = ref false in
  while not !stop do
    let depth =
      Mutex.protect t.lock (fun () ->
          Queue.length conn.inq + if conn.busy then 1 else 0)
    in
    if
      conn.fatal <> None || conn.close_after_flush || conn.dead
      || depth >= t.cfg.max_pipeline
      || Nb.length conn.inbuf < 4
    then stop := true
    else begin
      let len = Nb.peek_i32 conn.inbuf 0 in
      if len < 0 || len > Rx_wire.max_frame then begin
        conn.fatal <-
          Some
            (Rx_wire.Err
               {
                 status = Rx_wire.status_protocol;
                 message = Printf.sprintf "oversized frame (%d bytes)" len;
               });
        stop := true
      end
      else if Nb.length conn.inbuf < 4 + len then stop := true
      else begin
        let payload = Nb.sub_string conn.inbuf 4 len in
        Nb.consume conn.inbuf (4 + len);
        match Rx_wire.decode_request payload with
        | exception Rx_wire.Protocol_error msg ->
            Rx_obs.Metrics.incr t.m_errors;
            conn.fatal <-
              Some (Rx_wire.Err { status = Rx_wire.status_protocol; message = msg });
            stop := true
        | req ->
            progressed := true;
            if not conn.established then begin
              (* handshake runs on the reactor: no engine work involved *)
              let t0 = Unix.gettimeofday () in
              Rx_obs.Metrics.incr t.m_requests;
              (match req with
              | Rx_wire.Hello { token; _ } ->
                  let authorized =
                    match t.cfg.auth_token with
                    | None -> true
                    | Some secret -> token = secret
                  in
                  if authorized then begin
                    conn.established <- true;
                    Mutex.protect t.lock (fun () ->
                        Buffer.clear acc;
                        append_frame ~acc ~enc
                          (Rx_wire.Ok
                             (Rx_wire.R_hello
                                { server = server_banner; session = conn.sid }));
                        Nb.add_buffer conn.out acc)
                  end
                  else begin
                    Rx_obs.Metrics.incr t.m_errors;
                    conn.close_after_flush <- true;
                    Mutex.protect t.lock (fun () ->
                        Buffer.clear acc;
                        append_frame ~acc ~enc
                          (Rx_wire.Err
                             { status = 1; message = "authentication failed" });
                        Nb.add_buffer conn.out acc)
                  end
              | _ ->
                  Rx_obs.Metrics.incr t.m_errors;
                  conn.close_after_flush <- true;
                  Mutex.protect t.lock (fun () ->
                      Buffer.clear acc;
                      append_frame ~acc ~enc
                        (Rx_wire.Err { status = 1; message = "expected hello" });
                      Nb.add_buffer conn.out acc));
              observe_latency t "hello" t0
            end
            else
              Mutex.protect t.lock (fun () ->
                  (* queue-depth admission: refuse (as Busy, the engine's
                     own backpressure type) rather than queue unboundedly;
                     the refusal rides the ordered response path *)
                  if t.pending >= t.cfg.max_queue_depth then
                    Queue.add (Refuse req) conn.inq
                  else begin
                    t.pending <- t.pending + 1;
                    Queue.add (Exec req) conn.inq
                  end)
      end
    end
  done;
  !progressed

let schedule t conn =
  Mutex.protect t.lock (fun () ->
      if
        conn.established && (not conn.busy) && (not conn.dead)
        && (not conn.close_after_flush)
        && not (Queue.is_empty conn.inq)
      then begin
        conn.busy <- true;
        Queue.add (Serve conn) t.workq;
        Condition.signal t.work_cv
      end)

let reject_overflow t fd =
  Rx_obs.Metrics.incr t.m_rejected;
  (* over-cap connections get one Busy frame before the close, so a
     client can tell backpressure from a crash *)
  (try
     Rx_wire.send_response fd
       (Rx_wire.Err { status = 3; message = "server at max connections" })
   with _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_one t =
  let fd, _addr = Unix.accept t.listen_fd in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let admitted =
    Mutex.protect t.lock (fun () ->
        if t.stopping || List.length t.conns >= t.cfg.max_connections then None
        else begin
          t.next_sid <- t.next_sid + 1;
          t.live <- t.live + 1;
          Some t.next_sid
        end)
  in
  match admitted with
  | None -> reject_overflow t fd
  | Some sid ->
      Rx_obs.Metrics.incr t.m_accepted;
      Unix.set_nonblock fd;
      let conn =
        {
          sid;
          fd;
          established = false;
          inbuf = Nb.create 4096;
          inq = Queue.create ();
          out = Nb.create 4096;
          busy = false;
          txn = None;
          prepared = Hashtbl.create 8;
          next_stmt = 0;
          cursors = Hashtbl.create 4;
          next_cursor = 0;
          last_activity = Unix.gettimeofday ();
          eof = false;
          dead = false;
          close_after_flush = false;
          fatal = None;
        }
      in
      Mutex.protect t.lock (fun () -> t.conns <- conn :: t.conns);
      Rx_obs.Metrics.set t.m_conns (List.length t.conns)

let close_conn t conn =
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun c -> c.sid <> conn.sid) t.conns;
      (* unserviced admitted entries hand their slots back *)
      Queue.iter
        (function Exec _ -> t.pending <- t.pending - 1 | Refuse _ -> ())
        conn.inq;
      Queue.clear conn.inq;
      Queue.add (Cleanup conn) t.workq;
      Condition.signal t.work_cv);
  Rx_obs.Metrics.set t.m_conns (List.length t.conns)

let initiate_stop t =
  let conns =
    Mutex.protect t.lock (fun () ->
        if t.stopping then []
        else begin
          t.stopping <- true;
          Condition.broadcast t.cv;
          t.conns
        end)
  in
  (* wake idle sessions: their reads return EOF, in-flight requests still
     finish and respond before the close *)
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    conns

let reactor t =
  let rbuf = Bytes.create read_chunk in
  (* the self-pipe drain buffer is allocated once, not per wakeup *)
  let drain = Bytes.create 64 in
  let r_acc = Buffer.create 256 and r_enc = Buffer.create 256 in
  let do_read conn =
    match Unix.read conn.fd rbuf 0 read_chunk with
    | 0 -> conn.eof <- true
    | n ->
        Rx_obs.Metrics.add t.m_bytes_in n;
        conn.last_activity <- Unix.gettimeofday ();
        Nb.add_subbytes conn.inbuf rbuf 0 n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> conn.eof <- true
  in
  let do_write conn =
    Mutex.protect t.lock (fun () ->
        if Nb.length conn.out > 0 then
          let len = min (Nb.length conn.out) (256 * 1024) in
          match Unix.write conn.fd conn.out.Nb.buf conn.out.Nb.off len with
          | n ->
              Rx_obs.Metrics.add t.m_bytes_out n;
              Nb.consume conn.out n
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              ()
          | exception Unix.Unix_error _ -> conn.dead <- true)
  in
  let rec loop () =
    let stopping, conns =
      Mutex.protect t.lock (fun () -> (t.stopping, t.conns))
    in
    if stopping && conns = [] then ()
    else begin
      let read_ok c =
        (not c.eof) && (not c.dead) && (not c.close_after_flush)
        && c.fatal = None
        && Nb.length c.inbuf < 4 + Rx_wire.max_frame
        && Mutex.protect t.lock (fun () ->
               Queue.length c.inq + (if c.busy then 1 else 0)
               < t.cfg.max_pipeline)
      in
      let rset =
        t.stop_r :: t.wake_r
        :: (if stopping then [] else [ t.listen_fd ])
        @ List.filter_map
            (fun c -> if read_ok c then Some c.fd else None)
            conns
      and wset =
        List.filter_map
          (fun c ->
            if
              (not c.dead)
              && Mutex.protect t.lock (fun () -> Nb.length c.out > 0)
            then Some c.fd
            else None)
          conns
      in
      (match Unix.select rset wset [] 0.2 with
      | ready_r, ready_w, _ ->
          if List.mem t.stop_r ready_r then begin
            (try ignore (Unix.read t.stop_r drain 0 (Bytes.length drain))
             with Unix.Unix_error _ -> ());
            initiate_stop t
          end;
          if List.mem t.wake_r ready_r then (
            try ignore (Unix.read t.wake_r drain 0 (Bytes.length drain))
            with Unix.Unix_error _ -> ());
          List.iter
            (fun c -> if List.mem c.fd ready_r then do_read c)
            conns;
          if (not stopping) && List.mem t.listen_fd ready_r then (
            try accept_one t
            with Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _) -> ());
          List.iter
            (fun c -> if List.mem c.fd ready_w then do_write c)
            conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      (* pump every connection: parse buffered frames, schedule service,
         surface deferred protocol errors, time out idle sessions *)
      let now = Unix.gettimeofday () in
      let conns = Mutex.protect t.lock (fun () -> t.conns) in
      List.iter
        (fun c ->
          if Nb.length c.inbuf >= 4 && not c.dead then
            ignore (parse_frames t c ~acc:r_acc ~enc:r_enc);
          schedule t c;
          (* a protocol error is delivered only once every earlier
             response has been produced, preserving response order *)
          (match c.fatal with
          | Some resp
            when Mutex.protect t.lock (fun () ->
                     (not c.busy) && Queue.is_empty c.inq) ->
              c.fatal <- None;
              c.close_after_flush <- true;
              Mutex.protect t.lock (fun () ->
                  Buffer.clear r_acc;
                  append_frame ~acc:r_acc ~enc:r_enc resp;
                  Nb.add_buffer c.out r_acc)
          | _ -> ());
          if
            t.cfg.idle_timeout > 0. && c.established
            && (not c.close_after_flush)
            && now -. c.last_activity > t.cfg.idle_timeout
            && Mutex.protect t.lock (fun () ->
                   (not c.busy) && Queue.is_empty c.inq)
          then begin
            (* an abandoned session must not park its locks forever: roll
               it back (via cleanup) and close, telling the client why *)
            Rx_obs.Metrics.incr t.m_idle_timeouts;
            c.close_after_flush <- true;
            (try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
             with Unix.Unix_error _ -> ());
            Mutex.protect t.lock (fun () ->
                Buffer.clear r_acc;
                append_frame ~acc:r_acc ~enc:r_enc
                  (Rx_wire.Err
                     {
                       status = 1;
                       message =
                         "session idle timeout: transaction rolled back, \
                          connection closed";
                     });
                Nb.add_buffer c.out r_acc)
          end)
        conns;
      (* close what is ready to close *)
      List.iter
        (fun c ->
          let closable =
            Mutex.protect t.lock (fun () ->
                (not c.busy)
                && (c.dead
                   || (c.close_after_flush && Nb.length c.out = 0)
                   || (c.eof && Queue.is_empty c.inq && Nb.length c.out = 0)))
          in
          if closable then close_conn t c)
        conns;
      loop ()
    end
  in
  loop ();
  (* all sessions are closed: release the workers once the remaining
     cleanup jobs drain *)
  Mutex.protect t.lock (fun () ->
      t.workers_stop <- true;
      Condition.broadcast t.work_cv)

(* --- startup --- *)

let worker_count cfg =
  if cfg.io_threads > 0 then cfg.io_threads
  else
    (* 0 = auto-size. Workers are blocking threads, not CPU domains: most
       of their life is spent parked in the group-commit durability wait,
       during which they hold no core — so the pool must be sized to the
       number of commits worth overlapping into one fsync (the old
       thread-per-connection core effectively had [max_connections]
       such threads), not to the host's core count. Floor of 8 keeps
       group-commit absorption alive on small hosts; cap of 32 bounds
       the engine-lock convoy on big ones. *)
    max 8 (min 32 (2 * Domain.recommended_domain_count ()))

let start ?(config = default_config) db =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let m = Database.metrics db in
  (* register every net instrument up front: reactor and workers only
     ever resolve existing entries, and the stats schema is complete from
     the first request *)
  Stats_report.ensure_net_instruments m;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let stop_r, stop_w = Unix.pipe () in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    try
      (* a full pipe must never block (or EINTR-loop) a signal handler;
         one byte is enough and extras are harmless *)
      Unix.set_nonblock stop_w;
      Unix.set_nonblock wake_w;
      Unix.set_nonblock wake_r;
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listen_fd 128;
      let bound_port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> config.port
      in
      {
        db;
        cfg = config;
        workers_n = worker_count config;
        listen_fd;
        bound_port;
        stop_r;
        stop_w;
        wake_r;
        wake_w;
        lock = Mutex.create ();
        cv = Condition.create ();
        work_cv = Condition.create ();
        workq = Queue.create ();
        stopping = false;
        workers_stop = false;
        conns = [];
        live = 0;
        pending = 0;
        threads = [];
        next_sid = 0;
        open_cursors = Atomic.make 0;
        m_conns = Rx_obs.Metrics.gauge m "net.conns";
        m_cursors = Rx_obs.Metrics.gauge m "net.cursors";
        m_accepted = Rx_obs.Metrics.counter m "net.conns.accepted";
        m_requests = Rx_obs.Metrics.counter m "net.requests";
        m_errors = Rx_obs.Metrics.counter m "net.errors";
        m_rejected = Rx_obs.Metrics.counter m "net.rejected";
        m_bytes_in = Rx_obs.Metrics.counter m "net.bytes_in";
        m_bytes_out = Rx_obs.Metrics.counter m "net.bytes_out";
        m_idle_timeouts = Rx_obs.Metrics.counter m "net.idle_timeouts";
        m_pl_batches = Rx_obs.Metrics.counter m "net.pipeline.batches";
        m_pl_requests = Rx_obs.Metrics.counter m "net.pipeline.requests";
        op_hists =
          List.map
            (fun op -> (op, Rx_obs.Metrics.histogram m ("net.latency." ^ op)))
            Stats_report.net_ops;
      }
    with e ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ listen_fd; stop_r; stop_w; wake_r; wake_w ];
      raise e
  in
  let ths =
    Thread.create reactor t
    :: List.init t.workers_n (fun _ -> Thread.create worker_main t)
  in
  Mutex.protect t.lock (fun () -> t.threads <- ths);
  t

let stop t =
  request_stop t;
  wait t;
  let threads =
    Mutex.protect t.lock (fun () ->
        let ths = t.threads in
        t.threads <- [];
        ths)
  in
  List.iter Thread.join threads;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.listen_fd; t.stop_r; t.stop_w; t.wake_r; t.wake_w ]
