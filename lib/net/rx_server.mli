(** The rxd network server: many client sessions, one embedded engine.

    An event-loop reactor thread owns every socket: it accepts, performs
    non-blocking reads with per-connection frame reassembly (a partial
    frame just stays buffered across ticks — a slow writer costs one
    frame of memory, not a thread), and flushes encoded responses with
    non-blocking writes. Complete requests are handed to a bounded
    worker pool; session count is therefore limited by sockets, not
    threads, so hundreds of mostly-idle connections cost nothing but
    their buffers.

    Connections may {e pipeline} up to [max_pipeline] requests. A worker
    drains a connection's queue as one batch, which keeps responses in
    request order (one worker per connection at a time) and lets the
    batch's commits share group-commit fsyncs: every request executes
    under {!Systemrx.Database.exclusively} (the engine lock), but
    commits apply with {!Systemrx.Database.commit_async} and the batch
    performs the collected durability waits together, outside the lock,
    before any of the batch's responses are flushed. Requests that
    arrive without an open session transaction and need one
    ([Insert]/[Delete]) get the same split per-request transaction
    wrapper, so pipelined auto-commit writes batch their fsyncs too.

    Results larger than one frame stream through server-side cursors
    ([Open_cursor]/[Fetch]/[Close_cursor]): the session holds the
    {!Systemrx.Database.cursor} and serializes one bounded chunk per
    [Fetch], so result size never multiplies server memory. Cursors die
    with the session — an abandoned connection's cursors are freed by
    its cleanup, which runs on the worker pool (session teardown takes
    the engine lock and must never stall the reactor).

    Admission control maps overload onto the engine's typed
    backpressure: a connection beyond [max_connections] is answered with
    one Busy response and closed, and a request that would push the
    number of admitted requests past [max_queue_depth] is refused with
    the Busy status (3) at enqueue time — before it touches session or
    engine state, so a Busy-refused commit leaves the transaction open
    and retryable. Refusals still flow through the ordered response
    path, so pipelined clients see each Busy exactly where its request
    was. Beyond [max_pipeline] the server simply stops reading the
    connection and TCP flow control paces the client.

    Observability threads through the database's own registry:
    [net.conns] / [net.cursors] gauges, [net.conns.accepted],
    [net.requests], [net.errors], [net.rejected], [net.bytes_in],
    [net.bytes_out], [net.idle_timeouts], [net.pipeline.batches],
    [net.pipeline.requests] counters, a [net.latency.<op>] histogram
    (microseconds) per operation, and a [net.request] trace span around
    each engine-locked section. *)

type config = {
  host : string;  (** bind address (default 127.0.0.1) *)
  port : int;  (** TCP port; 0 picks an ephemeral one (see {!port}) *)
  max_connections : int;
      (** sessions allowed concurrently; further connects are answered
          Busy and closed (default 64) *)
  max_queue_depth : int;
      (** requests admitted for service concurrently across all
          connections — admission control's queue-depth bound; excess
          requests are answered Busy without touching the engine
          (default 64) *)
  auth_token : string option;
      (** handshake stub: when set, a [Hello] whose token differs is
          refused (default [None] = any token accepted) *)
  max_pipeline : int;
      (** requests one connection may have in flight (queued + being
          served) before the reactor stops reading it (default 32) *)
  io_threads : int;
      (** worker-pool size; [0] (the default) auto-sizes to the host
          like {!Rx_util.Domain_pool} — clamped to [2..8], since workers
          serialize on the engine lock and past a point more threads
          only add context switches *)
  idle_timeout : float;
      (** seconds a session may sit idle (no complete request) before
          the server rolls back its transaction, frees its cursors and
          closes it with an explanatory error; [0.] (the default)
          disables the timeout *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, 64 connections, queue depth 64, no
    token, pipeline 32, auto-sized workers, no idle timeout. *)

type t

val start : ?config:config -> Systemrx.Database.t -> t
(** Binds, listens and spawns the reactor and worker threads; returns
    immediately. The caller keeps ownership of the database handle but
    must stop issuing its own operations on it (or wrap them in
    {!Systemrx.Database.exclusively}) while the server runs. SIGPIPE is
    set to ignore — an abruptly closed peer surfaces as a write error on
    the reactor, not process death. *)

val port : t -> int
(** The bound TCP port (the actual one when [config.port] was 0). *)

val request_stop : t -> unit
(** Initiates graceful shutdown without blocking: stop accepting, let
    every in-flight request finish and respond, flush each connection's
    pending responses, then close. Async-signal-safe — it only writes a
    byte to a nonblocking self-pipe (no locks), which the reactor's
    [select] turns into the actual shutdown — so [rxd] installs it
    directly as the SIGINT/SIGTERM handler even though the main thread
    sits in {!wait} holding the server lock. Idempotent. The wire
    [Shutdown] operation calls this after its OK response is sent. *)

val wait : t -> unit
(** Blocks until shutdown has been requested and every session has
    drained (including its cleanup: abandoned transactions rolled back,
    cursors freed). *)

val stop : t -> unit
(** {!request_stop}, then {!wait}, then joins the reactor and workers
    and closes the listener. Idempotent; the database handle stays open
    — closing it remains the caller's job. *)
