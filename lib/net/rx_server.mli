(** The rxd network server: many client sessions, one embedded engine.

    One thread per accepted connection runs that connection's session —
    handshake first, then a request/response loop over the {!Rx_wire}
    protocol. Every session request executes against the shared
    {!Systemrx.Database.t} under {!Systemrx.Database.exclusively} (the
    engine lock), except that a commit's durability wait happens
    {e outside} the lock — concurrent committers overlap their waits and
    share group-commit fsyncs, which is the whole point of putting a
    server in front of the engine. Requests that arrive without an open
    session transaction and need one ([Insert]/[Delete]) are wrapped in
    {!Systemrx.Database.with_txn}, the same idiom embedded callers use.

    Admission control maps overload onto the engine's typed backpressure:
    a connection beyond [max_connections] is answered with one Busy
    response and closed, and a request that would push the number of
    requests in service past [max_queue_depth] is refused with the Busy
    status (3) — clients retry; nothing hangs or queues unboundedly.

    Observability threads through the database's own registry:
    [net.conns] (live sessions), [net.conns.accepted], [net.requests],
    [net.errors], [net.rejected], a [net.latency.<op>] histogram
    (microseconds) per operation, and a [net.request] trace span around
    each engine-locked section. *)

type config = {
  host : string;  (** bind address (default 127.0.0.1) *)
  port : int;  (** TCP port; 0 picks an ephemeral one (see {!port}) *)
  max_connections : int;
      (** sessions allowed concurrently; further connects are answered
          Busy and closed (default 64) *)
  max_queue_depth : int;
      (** requests allowed in service concurrently — admission control's
          queue-depth bound; excess requests are answered Busy without
          touching the engine (default 64) *)
  auth_token : string option;
      (** handshake stub: when set, a [Hello] whose token differs is
          refused (default [None] = any token accepted) *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, 64 connections, queue depth 64, no
    token. *)

type t

val start : ?config:config -> Systemrx.Database.t -> t
(** Binds, listens and spawns the accept loop; returns immediately. The
    caller keeps ownership of the database handle but must stop issuing
    its own operations on it (or wrap them in
    {!Systemrx.Database.exclusively}) while the server runs. SIGPIPE is
    set to ignore — an abruptly closed peer surfaces as [EPIPE] on the
    session's writes, not process death. *)

val port : t -> int
(** The bound TCP port (the actual one when [config.port] was 0). *)

val request_stop : t -> unit
(** Initiates graceful shutdown without blocking: stop accepting, let
    every in-flight request finish and respond, then end each session at
    its next frame boundary. Async-signal-safe — it only writes a byte
    to a nonblocking self-pipe (no locks), which the accept loop turns
    into the actual shutdown — so [rxd] installs it directly as the
    SIGINT/SIGTERM handler even though the main thread sits in {!wait}
    holding the server lock. Idempotent. The wire [Shutdown] operation
    calls this after its OK response is sent. *)

val wait : t -> unit
(** Blocks until shutdown has been requested and every session has
    drained. *)

val stop : t -> unit
(** {!request_stop}, then {!wait}, then joins the server's threads and
    closes the listener. Idempotent; the database handle stays open —
    closing it remains the caller's job. *)
