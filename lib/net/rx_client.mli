(** Blocking client for the rxd wire protocol, mirroring the
    {!Systemrx.Database} API shape over a socket: connect/handshake, ad-hoc
    and prepared queries, explicit transactions, single-row and bulk
    inserts, document fetch, stats, and graceful server shutdown.

    One connection is one server session: at most one open transaction,
    which the session's queries and DML join implicitly until {!commit} or
    {!rollback}. A connection must not be shared between threads without
    external serialization. The plain calls are strictly one request, one
    response; {!pipeline} batches several requests in flight (the server
    answers in request order and absorbs the batch's commits into shared
    group-commit fsyncs), and {!fold_query} streams a result of any size
    through a server-side cursor in bounded-memory chunks.

    Error surface: the server ships the engine's stable error table
    (status = {!Systemrx.Database.error_code}) and the client re-raises
    the engine's own exceptions where they reconstruct faithfully —
    status 3 as {!Systemrx.Database.Busy} (with [txid = 0], no blockers:
    retryable backpressure, whether from lock conflict, pool exhaustion
    or the server's admission control), status 4 as
    {!Rx_txn.Lock_manager.Deadlock} (with [victim = 0], empty cycle —
    the ids stay server-side; retry logic can treat Busy and Deadlock
    uniformly, as embedded callers do) and status 5 as
    {!Systemrx.Database.Read_only}. Everything else (application errors,
    corruption, protocol violations) raises {!Error} with the wire
    status and the server's message, so embedded and networked callers
    share one error vocabulary. *)

type t

exception Error of { status : int; message : string }
(** A non-OK response that does not reconstruct as an engine exception:
    the wire status (1 application error, 2 unexpected, 6 corruption,
    7 protocol violation) plus the server's one-line message. *)

type txn
(** An explicit transaction open on this connection's server session. *)

type result = { plan : string; matches : (int * string) list }
(** A query's outcome: the executed access-plan description and one
    [(docid, serialized subtree)] pair per match, in (DocID, document
    order) — the wire rendering of {!Systemrx.Database.result}. *)

type prepared
(** A statement prepared (compiled and cached) in the server session. *)

val connect :
  ?host:string -> ?token:string -> ?client:string -> port:int -> unit -> t
(** Connects over TCP and performs the [Hello] handshake. [host] defaults
    to 127.0.0.1, [token] to the empty string (checked against the
    server's [auth_token] when it has one), [client] is a free-form name
    for diagnostics.
    @raise Error when the server refuses the handshake. *)

val close : t -> unit
(** Sends [Bye] (best effort) and closes the socket. The server rolls
    back any transaction the session still holds. Idempotent. *)

val session_id : t -> int
(** The server-assigned session id from the handshake. *)

val begin_txn : t -> txn
(** Opens the session's explicit transaction; until {!commit} or
    {!rollback}, queries and DML on this connection run inside it. *)

val commit : t -> txn -> unit
(** Commits; returns once the server reports the commit durable (the
    server overlaps concurrent sessions' durability waits through WAL
    group commit). *)

val rollback : t -> txn -> unit
(** Discards the transaction's staged statements. *)

val txn_id : txn -> int
(** The engine transaction id, as {!Systemrx.Database.txn_id}. *)

val query :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> result
(** Plans and executes an XPath query, as {!Systemrx.Database.run}. *)

val prepare :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> prepared
(** Compiles the query once in the server session, as
    {!Systemrx.Database.prepare}; the handle is valid for this
    connection's lifetime. *)

val run_prepared : t -> prepared -> result
(** Executes a prepared query, as {!Systemrx.Database.run_prepared}. *)

val plan : prepared -> string
(** The access-plan description chosen at preparation time. *)

val insert :
  t ->
  table:string ->
  ?values:(string * string) list ->
  ?xml:(string * string) list ->
  unit ->
  int
(** Inserts a row ([values] are varchar columns, [xml] are XML column
    documents); returns its DocID. Joins the session transaction when one
    is open, otherwise the server wraps it in its own transaction
    ({!Systemrx.Database.with_txn}). *)

val insert_many : t -> table:string -> column:string -> string list -> int list
(** Bulk load, as {!Systemrx.Database.insert_many}: one server-side
    transaction, all documents visible and durable together or not at
    all. Refused inside an explicit transaction. *)

val delete : t -> table:string -> docid:int -> unit
(** Deletes a row, as {!Systemrx.Database.delete}. *)

val document : t -> table:string -> column:string -> docid:int -> string
(** Fetches a serialized XML column value, as
    {!Systemrx.Database.document}. *)

val stats_json : t -> string
(** The server's {!Systemrx.Stats_report.json} document as a JSON string
    — the same schema [rx stats --json] prints embedded, [net.*]
    counters included. *)

type repl_state = {
  base_lsn : int64;
  durable_lsn : int64;
  generations : int;
  page_size : int;
}
(** The leader's replication position — live WAL base, durable LSN, how
    many archived generations it holds — and its page size, which a
    fresh replica must adopt. *)

val repl_state : t -> repl_state

val repl_fetch : t -> from_lsn:int64 -> max_bytes:int -> int64 * string * int64
(** [(start_lsn, frames, durable_lsn)] — ships durable WAL frames from
    [from_lsn], exactly {!Systemrx.Database.repl_fetch} over the wire;
    this is the {!Systemrx.Replica.fetch} shape, so a partially applied
    [repl_fetch c] plugs straight into {!Systemrx.Replica.attach}. *)

val shutdown : t -> unit
(** Asks the server to shut down gracefully; returns once the server has
    acknowledged (in-flight sessions drain, then the process's
    {!Rx_server.wait} returns). The connection is unusable afterwards
    except for {!close}. *)

(** {1 Index lifecycle}

    The wire face of {!Systemrx.Database.Index}: build an index online,
    watch its progress from another connection, roll a rebuild back, or
    drop it. Unknown table/column/index names raise {!Error} with
    status 1 and an ["unknown ..."] message — the engine's
    [Unknown_index] over the wire. *)

type index_info = Rx_wire.index_info = {
  ix_name : string;
  ix_path : string;  (** the indexed XPath, normalized *)
  ix_key_type : string;  (** ["string"], ["double"], ... *)
  ix_state : string;  (** ["live"], ["building"], ["failed: <reason>"] *)
  ix_generation : int;
  ix_entries : int;
  ix_build_ms : int;
  ix_prior_generation : int;  (** [0] when nothing is retained *)
  ix_docs_scanned : int;  (** build scan progress, in documents *)
  ix_docs_total : int;
}
(** One index generation as the server reports it — the flat rendering
    of {!Systemrx.Database.Index.info}. *)

val build_index :
  t ->
  table:string ->
  column:string ->
  name:string ->
  path:string ->
  key_type:string ->
  index_info
(** Builds (or generationally rebuilds) a value index {e online} and
    returns once it is live — the engine keeps serving this and other
    sessions' queries and DML from the previous generation while the
    build scans. Progress is visible meanwhile through {!index_status}
    on another connection. *)

val index_status : t -> table:string -> column:string -> name:string -> index_info
(** The index's current state, including an in-flight build's scan
    progress. *)

val rollback_index :
  t -> table:string -> column:string -> name:string -> index_info
(** Restores the retained prior generation without downtime, as
    {!Systemrx.Database.Index.rollback}; returns the restored
    generation's info. *)

val drop_index : t -> table:string -> column:string -> name:string -> unit
(** Drops the index and any retained generation. Inside the session's
    open transaction the drop is staged and applies at {!commit}. *)

val list_indexes : t -> table:string -> column:string -> index_info list
(** Every index on the column, live and building, as
    {!Systemrx.Database.Index.list}. *)

(** {1 Pipelined batches}

    {!pipeline} writes a batch of requests before reading any response:
    one round of socket writes replaces a round trip per request, and
    the server executes the batch as one unit — responses in request
    order, independent commits from the batch absorbed into the same
    group-commit fsync. Internally the batch is split into flights
    sized under the server's per-connection pipeline bound, so a batch
    of any length is safe. *)

(** One request in a pipelined batch. [P_commit]/[P_rollback] act on the
    session's {e current} transaction (wire [txid = 0]) — so a flight
    can carry [P_begin; ...; P_commit] even though the transaction id is
    unknown when the flight is written. *)
type op =
  | P_query of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | P_insert of {
      table : string;
      values : (string * string) list;
      xml : (string * string) list;
    }
  | P_delete of { table : string; docid : int }
  | P_get of { table : string; column : string; docid : int }
  | P_begin
  | P_commit
  | P_rollback

(** A pipelined request's successful outcome, mirroring the plain calls'
    return types. *)
type reply =
  | Rp_result of result  (** [P_query] *)
  | Rp_docid of int  (** [P_insert] *)
  | Rp_txn of int  (** [P_begin] *)
  | Rp_doc of string  (** [P_get] *)
  | Rp_unit  (** [P_delete] / [P_commit] / [P_rollback] *)

val pipeline : t -> op list -> (reply, exn) Stdlib.result list
(** Executes the batch pipelined; one outcome per op, in op order. A
    failed op yields [Error] with the same exception the plain call
    would have raised ({!Systemrx.Database.Busy}, {!Error}, ...) without
    aborting the rest of the batch — server-side, a failed statement
    inside an open transaction has the usual statement-level-rollback
    semantics. *)

(** {1 Streamed result cursors}

    A query whose serialized result exceeds the wire's one-frame cap (16
    MiB) — or that the client simply does not want materialized at once
    — streams through a server-side cursor: {!open_cursor} plans and
    executes it, each {!fetch} returns one bounded chunk of rows, and
    the whole result crosses the wire in [chunk_bytes]-sized pieces of
    memory at both ends. *)

type cursor
(** A server-side cursor open on this connection's session. *)

val open_cursor :
  ?ns_env:(string * string) list ->
  ?chunk_bytes:int ->
  t ->
  table:string ->
  column:string ->
  xpath:string ->
  cursor
(** Plans and executes the query like {!query} but leaves the rows
    server-side. [chunk_bytes] is the serialized-row budget per {!fetch}
    (default: the server's, 256 KiB; the server clamps it so a chunk
    always fits one frame). Joins the session transaction when one is
    open — the cursor is then only valid until that transaction ends. *)

val cursor_plan : cursor -> string
(** The access-plan description chosen when the cursor was opened. *)

val fetch : t -> cursor -> (int * string) list
(** The next chunk of [(docid, serialized subtree)] rows, in (DocID,
    document order) continuing across chunks; [[]] once the cursor is
    exhausted (the server frees it — no {!close_cursor} needed). *)

val close_cursor : t -> cursor -> unit
(** Frees a cursor before exhausting it. Idempotent client-side; a no-op
    on an already-exhausted cursor. *)

val fold_query :
  ?ns_env:(string * string) list ->
  ?chunk_bytes:int ->
  t ->
  table:string ->
  column:string ->
  xpath:string ->
  init:'a ->
  f:('a -> int -> string -> 'a) ->
  'a
(** [fold_query c ~table ~column ~xpath ~init ~f] opens a cursor, folds
    [f acc docid serialized] over every match in order, and frees the
    cursor (also on exception) — the streaming counterpart of {!query}
    for results too large to hold, with at most one chunk in client
    memory at a time. *)
