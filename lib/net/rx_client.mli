(** Blocking client for the rxd wire protocol, mirroring the
    {!Systemrx.Database} API shape over a socket: connect/handshake, ad-hoc
    and prepared queries, explicit transactions, single-row and bulk
    inserts, document fetch, stats, and graceful server shutdown.

    One connection is one server session: at most one open transaction,
    which the session's queries and DML join implicitly until {!commit} or
    {!rollback}. A connection must not be shared between threads without
    external serialization — the protocol is strictly one request, one
    response.

    Error surface: the server ships the engine's stable error table
    (status = {!Systemrx.Database.error_code}) and the client re-raises
    the engine's own exceptions where they reconstruct faithfully —
    status 3 as {!Systemrx.Database.Busy} (with [txid = 0], no blockers:
    retryable backpressure, whether from lock conflict, pool exhaustion
    or the server's admission control), status 4 as
    {!Rx_txn.Lock_manager.Deadlock} (with [victim = 0], empty cycle —
    the ids stay server-side; retry logic can treat Busy and Deadlock
    uniformly, as embedded callers do) and status 5 as
    {!Systemrx.Database.Read_only}. Everything else (application errors,
    corruption, protocol violations) raises {!Error} with the wire
    status and the server's message, so embedded and networked callers
    share one error vocabulary. *)

type t

exception Error of { status : int; message : string }
(** A non-OK response that does not reconstruct as an engine exception:
    the wire status (1 application error, 2 unexpected, 6 corruption,
    7 protocol violation) plus the server's one-line message. *)

type txn
(** An explicit transaction open on this connection's server session. *)

type result = { plan : string; matches : (int * string) list }
(** A query's outcome: the executed access-plan description and one
    [(docid, serialized subtree)] pair per match, in (DocID, document
    order) — the wire rendering of {!Systemrx.Database.result}. *)

type prepared
(** A statement prepared (compiled and cached) in the server session. *)

val connect :
  ?host:string -> ?token:string -> ?client:string -> port:int -> unit -> t
(** Connects over TCP and performs the [Hello] handshake. [host] defaults
    to 127.0.0.1, [token] to the empty string (checked against the
    server's [auth_token] when it has one), [client] is a free-form name
    for diagnostics.
    @raise Error when the server refuses the handshake. *)

val close : t -> unit
(** Sends [Bye] (best effort) and closes the socket. The server rolls
    back any transaction the session still holds. Idempotent. *)

val session_id : t -> int
(** The server-assigned session id from the handshake. *)

val begin_txn : t -> txn
(** Opens the session's explicit transaction; until {!commit} or
    {!rollback}, queries and DML on this connection run inside it. *)

val commit : t -> txn -> unit
(** Commits; returns once the server reports the commit durable (the
    server overlaps concurrent sessions' durability waits through WAL
    group commit). *)

val rollback : t -> txn -> unit
(** Discards the transaction's staged statements. *)

val txn_id : txn -> int
(** The engine transaction id, as {!Systemrx.Database.txn_id}. *)

val query :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> result
(** Plans and executes an XPath query, as {!Systemrx.Database.run}. *)

val prepare :
  ?ns_env:(string * string) list ->
  t -> table:string -> column:string -> xpath:string -> prepared
(** Compiles the query once in the server session, as
    {!Systemrx.Database.prepare}; the handle is valid for this
    connection's lifetime. *)

val run_prepared : t -> prepared -> result
(** Executes a prepared query, as {!Systemrx.Database.run_prepared}. *)

val plan : prepared -> string
(** The access-plan description chosen at preparation time. *)

val insert :
  t ->
  table:string ->
  ?values:(string * string) list ->
  ?xml:(string * string) list ->
  unit ->
  int
(** Inserts a row ([values] are varchar columns, [xml] are XML column
    documents); returns its DocID. Joins the session transaction when one
    is open, otherwise the server wraps it in its own transaction
    ({!Systemrx.Database.with_txn}). *)

val insert_many : t -> table:string -> column:string -> string list -> int list
(** Bulk load, as {!Systemrx.Database.insert_many}: one server-side
    transaction, all documents visible and durable together or not at
    all. Refused inside an explicit transaction. *)

val delete : t -> table:string -> docid:int -> unit
(** Deletes a row, as {!Systemrx.Database.delete}. *)

val document : t -> table:string -> column:string -> docid:int -> string
(** Fetches a serialized XML column value, as
    {!Systemrx.Database.document}. *)

val stats_json : t -> string
(** The server's {!Systemrx.Stats_report.json} document as a JSON string
    — the same schema [rx stats --json] prints embedded, [net.*]
    counters included. *)

type repl_state = {
  base_lsn : int64;
  durable_lsn : int64;
  generations : int;
  page_size : int;
}
(** The leader's replication position — live WAL base, durable LSN, how
    many archived generations it holds — and its page size, which a
    fresh replica must adopt. *)

val repl_state : t -> repl_state

val repl_fetch : t -> from_lsn:int64 -> max_bytes:int -> int64 * string * int64
(** [(start_lsn, frames, durable_lsn)] — ships durable WAL frames from
    [from_lsn], exactly {!Systemrx.Database.repl_fetch} over the wire;
    this is the {!Systemrx.Replica.fetch} shape, so a partially applied
    [repl_fetch c] plugs straight into {!Systemrx.Replica.attach}. *)

val shutdown : t -> unit
(** Asks the server to shut down gracefully; returns once the server has
    acknowledged (in-flight sessions drain, then the process's
    {!Rx_server.wait} returns). The connection is unusable afterwards
    except for {!close}. *)
