exception Protocol_error of string

let max_frame = 16 * 1024 * 1024
let status_protocol = 7
let default_chunk_bytes = 256 * 1024

type request =
  | Hello of { token : string; client : string }
  | Query of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Prepare of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Run_prepared of { stmt : int }
  | Begin
  | Commit of { txid : int }
  | Rollback of { txid : int }
  | Insert of {
      table : string;
      values : (string * string) list;
      xml : (string * string) list;
    }
  | Insert_many of { table : string; column : string; docs : string list }
  | Delete of { table : string; docid : int }
  | Get of { table : string; column : string; docid : int }
  | Stats
  | Shutdown
  | Bye
  | Repl_state
  | Repl_fetch of { from_lsn : int64; max_bytes : int }
  | Open_cursor of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
      chunk_bytes : int;
    }
  | Fetch of { cursor : int }
  | Close_cursor of { cursor : int }
  | Index_build of {
      table : string;
      column : string;
      name : string;
      path : string;
      key_type : string;
    }
  | Index_status of { table : string; column : string; name : string }
  | Index_rollback of { table : string; column : string; name : string }
  | Index_drop of { table : string; column : string; name : string }
  | Index_list of { table : string; column : string }

(* one index described on the wire; [ix_state] is "building" / "live" /
   "failed: <msg>", [ix_prior_generation] 0 when none *)
type index_info = {
  ix_name : string;
  ix_path : string;
  ix_key_type : string;
  ix_state : string;
  ix_generation : int;
  ix_entries : int;
  ix_build_ms : int;
  ix_prior_generation : int;
  ix_docs_scanned : int;
  ix_docs_total : int;
}

type ok =
  | R_hello of { server : string; session : int }
  | R_matches of { plan : string; matches : (int * string) list }
  | R_prepared of { stmt : int; plan : string }
  | R_txn of { txid : int }
  | R_unit
  | R_docid of { docid : int }
  | R_docids of { docids : int list }
  | R_doc of { doc : string }
  | R_stats of { json : string }
  | R_repl_state of {
      base_lsn : int64;
      durable_lsn : int64;
      generations : int;
      page_size : int;
    }
  | R_repl_batch of { start_lsn : int64; durable_lsn : int64; frames : string }
  | R_cursor of { cursor : int; plan : string }
  | R_rows_chunk of { matches : (int * string) list }
  | R_rows_end
  | R_index_info of { info : index_info }
  | R_index_list of { infos : index_info list }

type response = Ok of ok | Err of { status : int; message : string }

(* --- payload encoding ---

   Encoders append to a caller-supplied [Buffer.t] and every primitive
   writes through [Buffer.add_int*_be] — no intermediate [Bytes.create]
   per field, so a connection that reuses one scratch buffer encodes
   frames without fresh allocation (beyond buffer growth to the largest
   frame seen). *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let put_int b v = Buffer.add_int64_be b (Int64.of_int v)
let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)

(* LSNs travel as true 8-byte big-endian int64s (put_int narrows through
   the host int, which is fine for counts but not for a durable on-disk
   position) *)
let put_i64 b v = Buffer.add_int64_be b v

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b f xs =
  put_u32 b (List.length xs);
  List.iter (f b) xs

let put_pair b (k, v) =
  put_str b k;
  put_str b v

(* --- payload decoding --- *)

type cursor = { s : string; mutable pos : int }

let need c n =
  if n < 0 || c.pos + n > String.length c.s then
    raise (Protocol_error "truncated payload")

let get_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_int c =
  need c 8;
  let v = Int64.to_int (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let get_i64 c =
  need c 8;
  let v = String.get_int64_be c.s c.pos in
  c.pos <- c.pos + 8;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.s c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Protocol_error "negative length");
  v

let get_str c =
  let len = get_u32 c in
  need c len;
  let s = String.sub c.s c.pos len in
  c.pos <- c.pos + len;
  s

let get_list c f =
  let n = get_u32 c in
  (* every element costs at least one byte on the wire, so a count larger
     than the remaining payload is malformed, not merely large *)
  need c n;
  List.init n (fun _ -> f c)

let get_pair c =
  let k = get_str c in
  let v = get_str c in
  (k, v)

(* --- requests --- *)

let encode_request_into b r =
  match r with
  | Hello { token; client } ->
      put_u8 b 1;
      put_str b token;
      put_str b client
  | Query { table; column; xpath; ns_env } ->
      put_u8 b 2;
      put_str b table;
      put_str b column;
      put_str b xpath;
      put_list b put_pair ns_env
  | Prepare { table; column; xpath; ns_env } ->
      put_u8 b 3;
      put_str b table;
      put_str b column;
      put_str b xpath;
      put_list b put_pair ns_env
  | Run_prepared { stmt } ->
      put_u8 b 4;
      put_int b stmt
  | Begin -> put_u8 b 5
  | Commit { txid } ->
      put_u8 b 6;
      put_int b txid
  | Rollback { txid } ->
      put_u8 b 7;
      put_int b txid
  | Insert { table; values; xml } ->
      put_u8 b 8;
      put_str b table;
      put_list b put_pair values;
      put_list b put_pair xml
  | Insert_many { table; column; docs } ->
      put_u8 b 9;
      put_str b table;
      put_str b column;
      put_list b put_str docs
  | Delete { table; docid } ->
      put_u8 b 10;
      put_str b table;
      put_int b docid
  | Get { table; column; docid } ->
      put_u8 b 11;
      put_str b table;
      put_str b column;
      put_int b docid
  | Stats -> put_u8 b 12
  | Shutdown -> put_u8 b 13
  | Bye -> put_u8 b 14
  | Repl_state -> put_u8 b 15
  | Repl_fetch { from_lsn; max_bytes } ->
      put_u8 b 16;
      put_i64 b from_lsn;
      put_int b max_bytes
  | Open_cursor { table; column; xpath; ns_env; chunk_bytes } ->
      put_u8 b 17;
      put_str b table;
      put_str b column;
      put_str b xpath;
      put_list b put_pair ns_env;
      put_int b chunk_bytes
  | Fetch { cursor } ->
      put_u8 b 18;
      put_int b cursor
  | Close_cursor { cursor } ->
      put_u8 b 19;
      put_int b cursor
  | Index_build { table; column; name; path; key_type } ->
      put_u8 b 20;
      put_str b table;
      put_str b column;
      put_str b name;
      put_str b path;
      put_str b key_type
  | Index_status { table; column; name } ->
      put_u8 b 21;
      put_str b table;
      put_str b column;
      put_str b name
  | Index_rollback { table; column; name } ->
      put_u8 b 22;
      put_str b table;
      put_str b column;
      put_str b name
  | Index_drop { table; column; name } ->
      put_u8 b 23;
      put_str b table;
      put_str b column;
      put_str b name
  | Index_list { table; column } ->
      put_u8 b 24;
      put_str b table;
      put_str b column

let encode_request r =
  let b = Buffer.create 64 in
  encode_request_into b r;
  Buffer.contents b

let finish c v =
  if c.pos <> String.length c.s then raise (Protocol_error "trailing bytes");
  v

let decode_request s =
  let c = { s; pos = 0 } in
  let r =
    match get_u8 c with
    | 1 ->
        let token = get_str c in
        let client = get_str c in
        Hello { token; client }
    | 2 ->
        let table = get_str c in
        let column = get_str c in
        let xpath = get_str c in
        let ns_env = get_list c get_pair in
        Query { table; column; xpath; ns_env }
    | 3 ->
        let table = get_str c in
        let column = get_str c in
        let xpath = get_str c in
        let ns_env = get_list c get_pair in
        Prepare { table; column; xpath; ns_env }
    | 4 -> Run_prepared { stmt = get_int c }
    | 5 -> Begin
    | 6 -> Commit { txid = get_int c }
    | 7 -> Rollback { txid = get_int c }
    | 8 ->
        let table = get_str c in
        let values = get_list c get_pair in
        let xml = get_list c get_pair in
        Insert { table; values; xml }
    | 9 ->
        let table = get_str c in
        let column = get_str c in
        let docs = get_list c get_str in
        Insert_many { table; column; docs }
    | 10 ->
        let table = get_str c in
        let docid = get_int c in
        Delete { table; docid }
    | 11 ->
        let table = get_str c in
        let column = get_str c in
        let docid = get_int c in
        Get { table; column; docid }
    | 12 -> Stats
    | 13 -> Shutdown
    | 14 -> Bye
    | 15 -> Repl_state
    | 16 ->
        let from_lsn = get_i64 c in
        let max_bytes = get_int c in
        Repl_fetch { from_lsn; max_bytes }
    | 17 ->
        let table = get_str c in
        let column = get_str c in
        let xpath = get_str c in
        let ns_env = get_list c get_pair in
        let chunk_bytes = get_int c in
        Open_cursor { table; column; xpath; ns_env; chunk_bytes }
    | 18 -> Fetch { cursor = get_int c }
    | 19 -> Close_cursor { cursor = get_int c }
    | 20 ->
        let table = get_str c in
        let column = get_str c in
        let name = get_str c in
        let path = get_str c in
        let key_type = get_str c in
        Index_build { table; column; name; path; key_type }
    | 21 ->
        let table = get_str c in
        let column = get_str c in
        let name = get_str c in
        Index_status { table; column; name }
    | 22 ->
        let table = get_str c in
        let column = get_str c in
        let name = get_str c in
        Index_rollback { table; column; name }
    | 23 ->
        let table = get_str c in
        let column = get_str c in
        let name = get_str c in
        Index_drop { table; column; name }
    | 24 ->
        let table = get_str c in
        let column = get_str c in
        Index_list { table; column }
    | op -> raise (Protocol_error (Printf.sprintf "unknown opcode %d" op))
  in
  finish c r

(* --- responses --- *)

let put_index_info b i =
  put_str b i.ix_name;
  put_str b i.ix_path;
  put_str b i.ix_key_type;
  put_str b i.ix_state;
  put_int b i.ix_generation;
  put_int b i.ix_entries;
  put_int b i.ix_build_ms;
  put_int b i.ix_prior_generation;
  put_int b i.ix_docs_scanned;
  put_int b i.ix_docs_total

let get_index_info c =
  let ix_name = get_str c in
  let ix_path = get_str c in
  let ix_key_type = get_str c in
  let ix_state = get_str c in
  let ix_generation = get_int c in
  let ix_entries = get_int c in
  let ix_build_ms = get_int c in
  let ix_prior_generation = get_int c in
  let ix_docs_scanned = get_int c in
  let ix_docs_total = get_int c in
  {
    ix_name;
    ix_path;
    ix_key_type;
    ix_state;
    ix_generation;
    ix_entries;
    ix_build_ms;
    ix_prior_generation;
    ix_docs_scanned;
    ix_docs_total;
  }

let encode_response_into b r =
  match r with
  | Ok ok -> (
      put_u8 b 0;
      match ok with
      | R_hello { server; session } ->
          put_u8 b 1;
          put_str b server;
          put_int b session
      | R_matches { plan; matches } ->
          put_u8 b 2;
          put_str b plan;
          put_list b
            (fun b (docid, doc) ->
              put_int b docid;
              put_str b doc)
            matches
      | R_prepared { stmt; plan } ->
          put_u8 b 3;
          put_int b stmt;
          put_str b plan
      | R_txn { txid } ->
          put_u8 b 4;
          put_int b txid
      | R_unit -> put_u8 b 5
      | R_docid { docid } ->
          put_u8 b 6;
          put_int b docid
      | R_docids { docids } ->
          put_u8 b 7;
          put_list b put_int docids
      | R_doc { doc } ->
          put_u8 b 8;
          put_str b doc
      | R_stats { json } ->
          put_u8 b 9;
          put_str b json
      | R_repl_state { base_lsn; durable_lsn; generations; page_size } ->
          put_u8 b 10;
          put_i64 b base_lsn;
          put_i64 b durable_lsn;
          put_int b generations;
          put_int b page_size
      | R_repl_batch { start_lsn; durable_lsn; frames } ->
          put_u8 b 11;
          put_i64 b start_lsn;
          put_i64 b durable_lsn;
          put_str b frames
      | R_cursor { cursor; plan } ->
          put_u8 b 12;
          put_int b cursor;
          put_str b plan
      | R_rows_chunk { matches } ->
          put_u8 b 13;
          put_list b
            (fun b (docid, doc) ->
              put_int b docid;
              put_str b doc)
            matches
      | R_rows_end -> put_u8 b 14
      | R_index_info { info } ->
          put_u8 b 15;
          put_index_info b info
      | R_index_list { infos } ->
          put_u8 b 16;
          put_list b put_index_info infos)
  | Err { status; message } ->
      if status <= 0 || status > 255 then
        invalid_arg "Rx_wire: error status out of range";
      put_u8 b status;
      put_str b message

let encode_response r =
  let b = Buffer.create 64 in
  encode_response_into b r;
  Buffer.contents b

let decode_response s =
  let c = { s; pos = 0 } in
  let r =
    match get_u8 c with
    | 0 -> (
        match get_u8 c with
        | 1 ->
            let server = get_str c in
            let session = get_int c in
            Ok (R_hello { server; session })
        | 2 ->
            let plan = get_str c in
            let matches =
              get_list c (fun c ->
                  let docid = get_int c in
                  let doc = get_str c in
                  (docid, doc))
            in
            Ok (R_matches { plan; matches })
        | 3 ->
            let stmt = get_int c in
            let plan = get_str c in
            Ok (R_prepared { stmt; plan })
        | 4 -> Ok (R_txn { txid = get_int c })
        | 5 -> Ok R_unit
        | 6 -> Ok (R_docid { docid = get_int c })
        | 7 -> Ok (R_docids { docids = get_list c get_int })
        | 8 -> Ok (R_doc { doc = get_str c })
        | 9 -> Ok (R_stats { json = get_str c })
        | 10 ->
            let base_lsn = get_i64 c in
            let durable_lsn = get_i64 c in
            let generations = get_int c in
            let page_size = get_int c in
            Ok (R_repl_state { base_lsn; durable_lsn; generations; page_size })
        | 11 ->
            let start_lsn = get_i64 c in
            let durable_lsn = get_i64 c in
            let frames = get_str c in
            Ok (R_repl_batch { start_lsn; durable_lsn; frames })
        | 12 ->
            let cursor = get_int c in
            let plan = get_str c in
            Ok (R_cursor { cursor; plan })
        | 13 ->
            let matches =
              get_list c (fun c ->
                  let docid = get_int c in
                  let doc = get_str c in
                  (docid, doc))
            in
            Ok (R_rows_chunk { matches })
        | 14 -> Ok R_rows_end
        | 15 -> Ok (R_index_info { info = get_index_info c })
        | 16 -> Ok (R_index_list { infos = get_list c get_index_info })
        | tag -> raise (Protocol_error (Printf.sprintf "unknown result tag %d" tag)))
    | status -> Err { status; message = get_str c }
  in
  finish c r

(* --- framing over a file descriptor --- *)

let rec really_write fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    really_write fd s (off + n) (len - n)
  end

let rec really_write_bytes fd b off len =
  if len > 0 then begin
    let n = Unix.write fd b off len in
    really_write_bytes fd b (off + n) (len - n)
  end

(* [`Eof] only when not a single byte arrives; a partial read followed by
   EOF is a torn frame *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then `Eof else raise (Protocol_error "truncated frame")
      | k -> go (off + k)
  in
  go 0

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Rx_wire: frame exceeds max_frame";
  let b = Buffer.create (4 + len) in
  put_u32 b len;
  Buffer.add_string b payload;
  really_write fd (Buffer.contents b) 0 (4 + len)

let read_frame fd =
  match read_exact fd 4 with
  | `Eof -> None
  | `Ok header ->
      let len = Int32.to_int (String.get_int32_be header 0) in
      if len < 0 || len > max_frame then
        raise (Protocol_error (Printf.sprintf "oversized frame (%d bytes)" len));
      (match read_exact fd len with
      | `Eof -> if len = 0 then Some "" else raise (Protocol_error "truncated frame")
      | `Ok payload -> Some payload)

let send_request fd r = write_frame fd (encode_request r)

let recv_request fd = Option.map decode_request (read_frame fd)

let send_response fd r = write_frame fd (encode_response r)

let recv_response fd =
  match read_frame fd with
  | None -> raise (Protocol_error "connection closed before response")
  | Some payload -> decode_response payload

(* --- per-connection scratch framer ---

   One framer per connection replaces the fresh header/payload [Bytes]
   the plain [send_*]/[recv_*] helpers allocate per frame: the payload is
   encoded into a retained [Buffer.t], blitted after a 4-byte header into
   a retained wire buffer, and written with one [Unix.write] loop; reads
   land in a retained receive buffer sized to the largest frame seen.
   Not thread-safe — a framer belongs to exactly one connection. *)

type framer = {
  payload : Buffer.t;  (* encode scratch, cleared per frame *)
  mutable wire : Bytes.t;  (* header + payload, grown to the largest frame *)
  hdr : Bytes.t;  (* 4-byte receive header *)
  mutable rbuf : Bytes.t;  (* receive payload scratch *)
}

let framer () =
  {
    payload = Buffer.create 512;
    wire = Bytes.create 4096;
    hdr = Bytes.create 4;
    rbuf = Bytes.create 4096;
  }

let framed_send fr fd encode v =
  Buffer.clear fr.payload;
  encode fr.payload v;
  let len = Buffer.length fr.payload in
  if len > max_frame then invalid_arg "Rx_wire: frame exceeds max_frame";
  if Bytes.length fr.wire < 4 + len then
    fr.wire <- Bytes.create (max (4 + len) (2 * Bytes.length fr.wire));
  Bytes.set_int32_be fr.wire 0 (Int32.of_int len);
  Buffer.blit fr.payload 0 fr.wire 4 len;
  really_write_bytes fd fr.wire 0 (4 + len)

let framed_send_request fr fd r = framed_send fr fd encode_request_into r
let framed_send_response fr fd r = framed_send fr fd encode_response_into r

let read_exact_into fd buf n =
  let rec go off =
    if off = n then `Ok
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then `Eof else raise (Protocol_error "truncated frame")
      | k -> go (off + k)
  in
  go 0

let framed_read_frame fr fd =
  match read_exact_into fd fr.hdr 4 with
  | `Eof -> None
  | `Ok ->
      let len = Int32.to_int (Bytes.get_int32_be fr.hdr 0) in
      if len < 0 || len > max_frame then
        raise (Protocol_error (Printf.sprintf "oversized frame (%d bytes)" len));
      if Bytes.length fr.rbuf < len then
        fr.rbuf <- Bytes.create (max len (2 * Bytes.length fr.rbuf));
      (match read_exact_into fd fr.rbuf len with
      | `Eof -> if len = 0 then Some "" else raise (Protocol_error "truncated frame")
      | `Ok -> Some (Bytes.sub_string fr.rbuf 0 len))

let framed_recv_response fr fd =
  match framed_read_frame fr fd with
  | None -> raise (Protocol_error "connection closed before response")
  | Some payload -> decode_response payload
