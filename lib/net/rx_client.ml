exception Error of { status : int; message : string }

type t = {
  fd : Unix.file_descr;
  fr : Rx_wire.framer;
  mutable session : int;
  mutable closed : bool;
}

type txn = { tx : int }
type result = { plan : string; matches : (int * string) list }
type prepared = { stmt : int; stmt_plan : string }

let bad_shape () = raise (Rx_wire.Protocol_error "unexpected response shape")

let exn_of_status status message =
  match status with
  | 3 -> Systemrx.Database.Busy { txid = 0; blockers = [] }
  | 4 -> Rx_txn.Lock_manager.Deadlock { victim = 0; cycle = [] }
  | 5 -> Systemrx.Database.Read_only { reason = message }
  | _ -> Error { status; message }

let rpc c req =
  if c.closed then invalid_arg "Rx_client: connection is closed";
  Rx_wire.framed_send_request c.fr c.fd req;
  match Rx_wire.framed_recv_response c.fr c.fd with
  | Rx_wire.Ok ok -> ok
  | Rx_wire.Err { status; message } -> raise (exn_of_status status message)

let connect ?(host = "127.0.0.1") ?(token = "") ?(client = "rx_client") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { fd; fr = Rx_wire.framer (); session = 0; closed = false } in
  match
    try rpc c (Rx_wire.Hello { token; client })
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Rx_wire.R_hello { session; _ } ->
      c.session <- session;
      c
  | _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      bad_shape ()

let close c =
  if not c.closed then begin
    (try ignore (rpc c Rx_wire.Bye) with _ -> ());
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let session_id c = c.session

let unit_rpc c req =
  match rpc c req with Rx_wire.R_unit -> () | _ -> bad_shape ()

let begin_txn c =
  match rpc c Rx_wire.Begin with
  | Rx_wire.R_txn { txid } -> { tx = txid }
  | _ -> bad_shape ()

let commit c txn = unit_rpc c (Rx_wire.Commit { txid = txn.tx })
let rollback c txn = unit_rpc c (Rx_wire.Rollback { txid = txn.tx })
let txn_id txn = txn.tx

let result_rpc c req =
  match rpc c req with
  | Rx_wire.R_matches { plan; matches } -> { plan; matches }
  | _ -> bad_shape ()

let query ?(ns_env = []) c ~table ~column ~xpath =
  result_rpc c (Rx_wire.Query { table; column; xpath; ns_env })

let prepare ?(ns_env = []) c ~table ~column ~xpath =
  match rpc c (Rx_wire.Prepare { table; column; xpath; ns_env }) with
  | Rx_wire.R_prepared { stmt; plan } -> { stmt; stmt_plan = plan }
  | _ -> bad_shape ()

let run_prepared c p = result_rpc c (Rx_wire.Run_prepared { stmt = p.stmt })
let plan p = p.stmt_plan

let insert c ~table ?(values = []) ?(xml = []) () =
  match rpc c (Rx_wire.Insert { table; values; xml }) with
  | Rx_wire.R_docid { docid } -> docid
  | _ -> bad_shape ()

let insert_many c ~table ~column docs =
  match rpc c (Rx_wire.Insert_many { table; column; docs }) with
  | Rx_wire.R_docids { docids } -> docids
  | _ -> bad_shape ()

let delete c ~table ~docid = unit_rpc c (Rx_wire.Delete { table; docid })

let document c ~table ~column ~docid =
  match rpc c (Rx_wire.Get { table; column; docid }) with
  | Rx_wire.R_doc { doc } -> doc
  | _ -> bad_shape ()

let stats_json c =
  match rpc c Rx_wire.Stats with
  | Rx_wire.R_stats { json } -> json
  | _ -> bad_shape ()

type repl_state = {
  base_lsn : int64;
  durable_lsn : int64;
  generations : int;
  page_size : int;
}

let repl_state c =
  match rpc c Rx_wire.Repl_state with
  | Rx_wire.R_repl_state { base_lsn; durable_lsn; generations; page_size } ->
      { base_lsn; durable_lsn; generations; page_size }
  | _ -> bad_shape ()

let repl_fetch c ~from_lsn ~max_bytes =
  match rpc c (Rx_wire.Repl_fetch { from_lsn; max_bytes }) with
  | Rx_wire.R_repl_batch { start_lsn; durable_lsn; frames } ->
      (start_lsn, frames, durable_lsn)
  | _ -> bad_shape ()

let shutdown c = unit_rpc c Rx_wire.Shutdown

(* --- index lifecycle --- *)

type index_info = Rx_wire.index_info = {
  ix_name : string;
  ix_path : string;
  ix_key_type : string;
  ix_state : string;
  ix_generation : int;
  ix_entries : int;
  ix_build_ms : int;
  ix_prior_generation : int;
  ix_docs_scanned : int;
  ix_docs_total : int;
}

let info_rpc c req =
  match rpc c req with
  | Rx_wire.R_index_info { info } -> info
  | _ -> bad_shape ()

let build_index c ~table ~column ~name ~path ~key_type =
  info_rpc c (Rx_wire.Index_build { table; column; name; path; key_type })

let index_status c ~table ~column ~name =
  info_rpc c (Rx_wire.Index_status { table; column; name })

let rollback_index c ~table ~column ~name =
  info_rpc c (Rx_wire.Index_rollback { table; column; name })

let drop_index c ~table ~column ~name =
  unit_rpc c (Rx_wire.Index_drop { table; column; name })

let list_indexes c ~table ~column =
  match rpc c (Rx_wire.Index_list { table; column }) with
  | Rx_wire.R_index_list { infos } -> infos
  | _ -> bad_shape ()

(* --- pipelined batches --- *)

type op =
  | P_query of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | P_insert of {
      table : string;
      values : (string * string) list;
      xml : (string * string) list;
    }
  | P_delete of { table : string; docid : int }
  | P_get of { table : string; column : string; docid : int }
  | P_begin
  | P_commit
  | P_rollback

type reply =
  | Rp_result of result
  | Rp_docid of int
  | Rp_txn of int
  | Rp_doc of string
  | Rp_unit

let request_of_op = function
  | P_query { table; column; xpath; ns_env } ->
      Rx_wire.Query { table; column; xpath; ns_env }
  | P_insert { table; values; xml } -> Rx_wire.Insert { table; values; xml }
  | P_delete { table; docid } -> Rx_wire.Delete { table; docid }
  | P_get { table; column; docid } -> Rx_wire.Get { table; column; docid }
  | P_begin -> Rx_wire.Begin
  (* txid 0: the session's current transaction, whichever the earlier
     P_begin in this flight opened *)
  | P_commit -> Rx_wire.Commit { txid = 0 }
  | P_rollback -> Rx_wire.Rollback { txid = 0 }

let reply_of_ok = function
  | Rx_wire.R_matches { plan; matches } -> Rp_result { plan; matches }
  | Rx_wire.R_docid { docid } -> Rp_docid docid
  | Rx_wire.R_txn { txid } -> Rp_txn txid
  | Rx_wire.R_doc { doc } -> Rp_doc doc
  | Rx_wire.R_unit -> Rp_unit
  | _ -> bad_shape ()

(* flights stay comfortably under the server's default max_pipeline (32):
   past the bound the server stops reading, and a client that kept
   writing while never reading would deadlock against it once both
   directions' socket buffers filled *)
let flight_size = 16

let pipeline c ops =
  if c.closed then invalid_arg "Rx_client: connection is closed";
  let rec flights acc = function
    | [] -> List.concat (List.rev acc)
    | ops ->
        let rec split n fwd rest =
          match rest with
          | r :: tl when n > 0 -> split (n - 1) (r :: fwd) tl
          | _ -> (List.rev fwd, rest)
        in
        let flight, rest = split flight_size [] ops in
        (* write the whole flight, then read the whole flight: responses
           come back strictly in request order *)
        List.iter (fun op -> Rx_wire.framed_send_request c.fr c.fd (request_of_op op)) flight;
        let replies =
          List.map
            (fun _ ->
              match Rx_wire.framed_recv_response c.fr c.fd with
              | Rx_wire.Ok ok -> Stdlib.Ok (reply_of_ok ok)
              | Rx_wire.Err { status; message } ->
                  Stdlib.Error (exn_of_status status message))
            flight
        in
        flights (replies :: acc) rest
  in
  flights [] ops

(* --- streamed result cursors --- *)

type cursor = { cur_id : int; cur_plan : string; mutable cur_done : bool }

let open_cursor ?(ns_env = []) ?(chunk_bytes = 0) c ~table ~column ~xpath =
  match rpc c (Rx_wire.Open_cursor { table; column; xpath; ns_env; chunk_bytes })
  with
  | Rx_wire.R_cursor { cursor; plan } ->
      { cur_id = cursor; cur_plan = plan; cur_done = false }
  | _ -> bad_shape ()

let cursor_plan cur = cur.cur_plan

let fetch c cur =
  if cur.cur_done then []
  else
    match rpc c (Rx_wire.Fetch { cursor = cur.cur_id }) with
    | Rx_wire.R_rows_chunk { matches } -> matches
    | Rx_wire.R_rows_end ->
        cur.cur_done <- true;
        []
    | _ -> bad_shape ()

let close_cursor c cur =
  if not cur.cur_done then begin
    cur.cur_done <- true;
    unit_rpc c (Rx_wire.Close_cursor { cursor = cur.cur_id })
  end

let fold_query ?ns_env ?chunk_bytes c ~table ~column ~xpath ~init ~f =
  let cur = open_cursor ?ns_env ?chunk_bytes c ~table ~column ~xpath in
  let rec go acc =
    match fetch c cur with
    | [] -> acc
    | rows -> go (List.fold_left (fun a (docid, s) -> f a docid s) acc rows)
  in
  match go init with
  | v -> v
  | exception e ->
      (* the consumer failed mid-stream: free the server-side cursor
         before re-raising, so the session does not leak it *)
      (try close_cursor c cur with _ -> ());
      raise e
