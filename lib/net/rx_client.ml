exception Error of { status : int; message : string }

type t = { fd : Unix.file_descr; mutable session : int; mutable closed : bool }
type txn = { tx : int }
type result = { plan : string; matches : (int * string) list }
type prepared = { stmt : int; stmt_plan : string }

let bad_shape () = raise (Rx_wire.Protocol_error "unexpected response shape")

let rpc c req =
  if c.closed then invalid_arg "Rx_client: connection is closed";
  Rx_wire.send_request c.fd req;
  match Rx_wire.recv_response c.fd with
  | Rx_wire.Ok ok -> ok
  | Rx_wire.Err { status = 3; _ } ->
      raise (Systemrx.Database.Busy { txid = 0; blockers = [] })
  | Rx_wire.Err { status = 4; _ } ->
      raise (Rx_txn.Lock_manager.Deadlock { victim = 0; cycle = [] })
  | Rx_wire.Err { status = 5; message } ->
      raise (Systemrx.Database.Read_only { reason = message })
  | Rx_wire.Err { status; message } -> raise (Error { status; message })

let connect ?(host = "127.0.0.1") ?(token = "") ?(client = "rx_client") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let c = { fd; session = 0; closed = false } in
  match
    try rpc c (Rx_wire.Hello { token; client })
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | Rx_wire.R_hello { session; _ } ->
      c.session <- session;
      c
  | _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      bad_shape ()

let close c =
  if not c.closed then begin
    (try ignore (rpc c Rx_wire.Bye) with _ -> ());
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let session_id c = c.session

let unit_rpc c req =
  match rpc c req with Rx_wire.R_unit -> () | _ -> bad_shape ()

let begin_txn c =
  match rpc c Rx_wire.Begin with
  | Rx_wire.R_txn { txid } -> { tx = txid }
  | _ -> bad_shape ()

let commit c txn = unit_rpc c (Rx_wire.Commit { txid = txn.tx })
let rollback c txn = unit_rpc c (Rx_wire.Rollback { txid = txn.tx })
let txn_id txn = txn.tx

let result_rpc c req =
  match rpc c req with
  | Rx_wire.R_matches { plan; matches } -> { plan; matches }
  | _ -> bad_shape ()

let query ?(ns_env = []) c ~table ~column ~xpath =
  result_rpc c (Rx_wire.Query { table; column; xpath; ns_env })

let prepare ?(ns_env = []) c ~table ~column ~xpath =
  match rpc c (Rx_wire.Prepare { table; column; xpath; ns_env }) with
  | Rx_wire.R_prepared { stmt; plan } -> { stmt; stmt_plan = plan }
  | _ -> bad_shape ()

let run_prepared c p = result_rpc c (Rx_wire.Run_prepared { stmt = p.stmt })
let plan p = p.stmt_plan

let insert c ~table ?(values = []) ?(xml = []) () =
  match rpc c (Rx_wire.Insert { table; values; xml }) with
  | Rx_wire.R_docid { docid } -> docid
  | _ -> bad_shape ()

let insert_many c ~table ~column docs =
  match rpc c (Rx_wire.Insert_many { table; column; docs }) with
  | Rx_wire.R_docids { docids } -> docids
  | _ -> bad_shape ()

let delete c ~table ~docid = unit_rpc c (Rx_wire.Delete { table; docid })

let document c ~table ~column ~docid =
  match rpc c (Rx_wire.Get { table; column; docid }) with
  | Rx_wire.R_doc { doc } -> doc
  | _ -> bad_shape ()

let stats_json c =
  match rpc c Rx_wire.Stats with
  | Rx_wire.R_stats { json } -> json
  | _ -> bad_shape ()

type repl_state = {
  base_lsn : int64;
  durable_lsn : int64;
  generations : int;
  page_size : int;
}

let repl_state c =
  match rpc c Rx_wire.Repl_state with
  | Rx_wire.R_repl_state { base_lsn; durable_lsn; generations; page_size } ->
      { base_lsn; durable_lsn; generations; page_size }
  | _ -> bad_shape ()

let repl_fetch c ~from_lsn ~max_bytes =
  match rpc c (Rx_wire.Repl_fetch { from_lsn; max_bytes }) with
  | Rx_wire.R_repl_batch { start_lsn; durable_lsn; frames } ->
      (start_lsn, frames, durable_lsn)
  | _ -> bad_shape ()

let shutdown c = unit_rpc c Rx_wire.Shutdown
