(** rxd wire protocol: length-prefixed binary frames over a byte stream.

    Every message is one frame: a 4-byte big-endian payload length
    followed by the payload. A request payload is an opcode byte plus
    that operation's fields; a response payload is a status byte —
    [0 = OK] followed by the result, or an error status followed by a
    one-line message. Integers travel as 8-byte big-endian two's
    complement; strings and lists are length-prefixed with an unsigned
    32-bit count. Frames larger than {!max_frame} are rejected before
    their payload is read, and a stream that ends mid-frame raises
    {!Protocol_error} (a stream that ends cleanly {e between} frames is a
    normal disconnect, surfaced as [None] by {!recv_request}).

    Clients may {e pipeline}: several requests can be written before the
    first response is read, and the server answers strictly in request
    order (up to its [max_pipeline] per-connection bound — beyond it the
    server simply stops reading, so TCP flow control paces the client).

    Result sets larger than one frame stream through cursors:
    [Open_cursor] executes the query and answers [R_cursor]; each
    [Fetch] answers one bounded [R_rows_chunk] (or [R_rows_end] once the
    result is exhausted), so a response of any total size crosses the
    wire without ever exceeding {!max_frame}.

    Error statuses 1–6 reuse the engine's stable error table
    ({!Systemrx.Database.error_code}, identical to the [rx] exit codes);
    status {!status_protocol} (7) marks a malformed or oversized frame,
    after which the connection is unusable and both ends close it. *)

exception Protocol_error of string
(** A malformed frame: truncated stream, oversized or negative length,
    unknown opcode/status/tag, or trailing bytes after a complete
    payload. The connection cannot be resynchronized and must be
    closed. *)

val max_frame : int
(** Largest accepted payload, 16 MiB — bounds a session's memory and
    rejects garbage (e.g. a TLS hello) before allocating for it. Results
    bigger than this stream through [Open_cursor]/[Fetch] chunks. *)

val status_protocol : int
(** Status code 7: the peer sent a frame that does not parse. *)

val default_chunk_bytes : int
(** Default [Open_cursor.chunk_bytes] (256 KiB): the serialized-row
    budget of one [R_rows_chunk]. *)

(** One client request. Operations act on the connection's session: a
    session holds at most one open transaction (DML and queries join it
    implicitly while it is open), a table of prepared statements, and a
    table of open cursors. *)
type request =
  | Hello of { token : string; client : string }
      (** Mandatory first request (auth stub: [token] must match the
          server's configured secret, empty when the server has none). *)
  | Query of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Prepare of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Run_prepared of { stmt : int }
  | Begin
  | Commit of { txid : int }
      (** [txid = 0] commits the session's current transaction whatever
          its id — what a pipelined [Begin; ...; Commit] flight uses,
          since the id is not known when the flight is written. *)
  | Rollback of { txid : int }  (** [txid = 0] as in [Commit]. *)
  | Insert of {
      table : string;
      values : (string * string) list;  (** varchar column values *)
      xml : (string * string) list;  (** XML column documents *)
    }
  | Insert_many of { table : string; column : string; docs : string list }
      (** Bulk load; refused inside an explicit transaction. *)
  | Delete of { table : string; docid : int }
  | Get of { table : string; column : string; docid : int }
  | Stats  (** The {!Systemrx.Stats_report.json} document. *)
  | Shutdown  (** Graceful server shutdown (reply comes first). *)
  | Bye  (** Orderly session close. *)
  | Repl_state
      (** The leader's replication position ({!ok.R_repl_state}): WAL base
          and durable LSNs plus the archived generation count. *)
  | Repl_fetch of { from_lsn : int64; max_bytes : int }
      (** Ship durable WAL frames from [from_lsn] (a frame-boundary LSN:
          [0], or [start_lsn + length of frames] from a previous batch),
          cut at a frame boundary within [max_bytes] (the first frame
          always ships whole). Positions below the live WAL base are
          served from the leader's archive. *)
  | Open_cursor of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
      chunk_bytes : int;
          (** serialized-row budget per [R_rows_chunk]; [<= 0] means
              {!default_chunk_bytes}, and the server clamps it so a chunk
              frame never exceeds {!max_frame} *)
    }
      (** Plans and executes the query like [Query], but answers
          [R_cursor] instead of materializing the rows: the result
          streams through subsequent [Fetch] requests in bounded-memory
          chunks. Joins the session transaction when one is open. *)
  | Fetch of { cursor : int }
      (** The next chunk of an open cursor: [R_rows_chunk] with at least
          one row, or [R_rows_end] when the cursor is exhausted (which
          also closes it server-side). *)
  | Close_cursor of { cursor : int }
      (** Frees a cursor early; idempotent on an already-ended cursor id
          is an application error (the id is gone). *)
  | Index_build of {
      table : string;
      column : string;
      name : string;
      path : string;
      key_type : string;  (** ["string"] or ["double"] *)
    }
      (** Builds a value index online ({!Systemrx.Database.Index.build})
          and waits for it to go live; concurrent requests on {e other}
          connections keep running while the build scans. Answers
          [R_index_info] for the live generation. *)
  | Index_status of { table : string; column : string; name : string }
      (** One index's current state, including mid-build progress. *)
  | Index_rollback of { table : string; column : string; name : string }
      (** Swaps the retained prior generation back live
          ({!Systemrx.Database.Index.rollback}); answers [R_index_info]
          for the restored generation. *)
  | Index_drop of { table : string; column : string; name : string }
      (** Drops the index and every retained generation. *)
  | Index_list of { table : string; column : string }
      (** All indexes on the column, live and building. *)

(** One index generation as reported over the wire — the flat mirror of
    {!Systemrx.Database.Index.info}. [ix_state] is ["live"],
    ["building"], or ["failed: <reason>"]; [ix_prior_generation] is [0]
    when no prior generation is retained; the [ix_docs_*] pair is the
    scan progress of an in-flight build ([scanned = total] once live). *)
type index_info = {
  ix_name : string;
  ix_path : string;
  ix_key_type : string;
  ix_state : string;
  ix_generation : int;
  ix_entries : int;
  ix_build_ms : int;
  ix_prior_generation : int;
  ix_docs_scanned : int;
  ix_docs_total : int;
}

(** An OK response's payload, one constructor per result shape. *)
type ok =
  | R_hello of { server : string; session : int }
  | R_matches of { plan : string; matches : (int * string) list }
      (** Query results: the executed plan description plus
          [(docid, serialized subtree)] per match, in document order. *)
  | R_prepared of { stmt : int; plan : string }
  | R_txn of { txid : int }
  | R_unit
  | R_docid of { docid : int }
  | R_docids of { docids : int list }
  | R_doc of { doc : string }
  | R_stats of { json : string }
  | R_repl_state of {
      base_lsn : int64;
      durable_lsn : int64;
      generations : int;
      page_size : int;  (** a fresh replica must adopt this geometry *)
    }
  | R_repl_batch of { start_lsn : int64; durable_lsn : int64; frames : string }
      (** A span of raw CRC-framed WAL bytes starting at [start_lsn]
          (which exceeds the asked [from_lsn] only when the leader's
          history below it is gone — unrecoverable without a rebuild).
          [frames] is empty when the replica is caught up to
          [durable_lsn]. LSNs travel as true 8-byte big-endian [int64]s. *)
  | R_cursor of { cursor : int; plan : string }
      (** An opened cursor: its session-local id and the executed
          access-plan description. *)
  | R_rows_chunk of { matches : (int * string) list }
      (** One bounded chunk of cursor rows, never empty: document order
          continues across chunks. *)
  | R_rows_end  (** The cursor is exhausted and has been freed. *)
  | R_index_info of { info : index_info }
      (** One index's state, answering the [Index_build] /
          [Index_status] / [Index_rollback] requests. *)
  | R_index_list of { infos : index_info list }
      (** Every index on the asked column, answering [Index_list]. *)

type response = Ok of ok | Err of { status : int; message : string }

val encode_request : request -> string
(** The request's frame payload (no length prefix). *)

val encode_request_into : Buffer.t -> request -> unit
(** Appends the request's payload to [b] — the allocation-free form
    {!encode_request} wraps; every integer field goes through
    [Buffer.add_int*_be], so encoding into a retained buffer performs no
    per-frame allocation. *)

val decode_request : string -> request
(** @raise Protocol_error on an unknown opcode, truncation or trailing
    bytes. *)

val encode_response : response -> string
(** The response's frame payload (no length prefix). *)

val encode_response_into : Buffer.t -> response -> unit
(** Appends the response's payload to [b], like {!encode_request_into}. *)

val decode_response : string -> response
(** @raise Protocol_error like {!decode_request}. *)

val send_request : Unix.file_descr -> request -> unit
(** Writes one framed request (single [write] loop — header and payload
    leave together). Allocates per call; connections that care hold a
    {!framer}. *)

val recv_request : Unix.file_descr -> request option
(** Reads one framed request; [None] on a clean disconnect (EOF before
    any header byte).
    @raise Protocol_error on a torn or malformed frame. *)

val send_response : Unix.file_descr -> response -> unit
(** Writes one framed response. *)

val recv_response : Unix.file_descr -> response
(** Reads one framed response — a server never half-closes between a
    request and its reply, so EOF here is an error.
    @raise Protocol_error on EOF or a malformed frame. *)

(** {1 Per-connection scratch framer}

    The plain [send_*]/[recv_*] helpers allocate a header and payload
    buffer per frame. A {!framer} retains those buffers across frames —
    encode scratch, wire buffer, receive scratch, each grown to the
    largest frame seen — so a long-lived connection frames without
    per-frame allocation. A framer belongs to exactly one connection and
    is not thread-safe. *)

type framer
(** Retained encode/decode scratch for one connection. *)

val framer : unit -> framer
(** A fresh framer (a few KiB until frames grow it). *)

val framed_send_request : framer -> Unix.file_descr -> request -> unit
(** {!send_request} through the framer's retained buffers: one [write]
    loop, no per-frame allocation. *)

val framed_send_response : framer -> Unix.file_descr -> response -> unit
(** {!send_response} through the framer's retained buffers. *)

val framed_recv_response : framer -> Unix.file_descr -> response
(** {!recv_response} reading into the framer's retained receive buffer
    (the decoded payload string is the one remaining per-frame
    allocation).
    @raise Protocol_error on EOF or a malformed frame. *)
