(** rxd wire protocol: length-prefixed binary frames over a byte stream.

    Every message is one frame: a 4-byte big-endian payload length
    followed by the payload. A request payload is an opcode byte plus
    that operation's fields; a response payload is a status byte —
    [0 = OK] followed by the result, or an error status followed by a
    one-line message. Integers travel as 8-byte big-endian two's
    complement; strings and lists are length-prefixed with an unsigned
    32-bit count. Frames larger than {!max_frame} are rejected before
    their payload is read, and a stream that ends mid-frame raises
    {!Protocol_error} (a stream that ends cleanly {e between} frames is a
    normal disconnect, surfaced as [None] by {!recv_request}).

    Error statuses 1–6 reuse the engine's stable error table
    ({!Systemrx.Database.error_code}, identical to the [rx] exit codes);
    status {!status_protocol} (7) marks a malformed or oversized frame,
    after which the connection is unusable and both ends close it. *)

exception Protocol_error of string
(** A malformed frame: truncated stream, oversized or negative length,
    unknown opcode/status/tag, or trailing bytes after a complete
    payload. The connection cannot be resynchronized and must be
    closed. *)

val max_frame : int
(** Largest accepted payload, 16 MiB — bounds a session's memory and
    rejects garbage (e.g. a TLS hello) before allocating for it. *)

val status_protocol : int
(** Status code 7: the peer sent a frame that does not parse. *)

(** One client request. Operations act on the connection's session: a
    session holds at most one open transaction (DML and queries join it
    implicitly while it is open) and a table of prepared statements. *)
type request =
  | Hello of { token : string; client : string }
      (** Mandatory first request (auth stub: [token] must match the
          server's configured secret, empty when the server has none). *)
  | Query of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Prepare of {
      table : string;
      column : string;
      xpath : string;
      ns_env : (string * string) list;
    }
  | Run_prepared of { stmt : int }
  | Begin
  | Commit of { txid : int }
  | Rollback of { txid : int }
  | Insert of {
      table : string;
      values : (string * string) list;  (** varchar column values *)
      xml : (string * string) list;  (** XML column documents *)
    }
  | Insert_many of { table : string; column : string; docs : string list }
      (** Bulk load; refused inside an explicit transaction. *)
  | Delete of { table : string; docid : int }
  | Get of { table : string; column : string; docid : int }
  | Stats  (** The {!Systemrx.Stats_report.json} document. *)
  | Shutdown  (** Graceful server shutdown (reply comes first). *)
  | Bye  (** Orderly session close. *)
  | Repl_state
      (** The leader's replication position ({!ok.R_repl_state}): WAL base
          and durable LSNs plus the archived generation count. *)
  | Repl_fetch of { from_lsn : int64; max_bytes : int }
      (** Ship durable WAL frames from [from_lsn] (a frame-boundary LSN:
          [0], or [start_lsn + length of frames] from a previous batch),
          cut at a frame boundary within [max_bytes] (the first frame
          always ships whole). Positions below the live WAL base are
          served from the leader's archive. *)

(** An OK response's payload, one constructor per result shape. *)
type ok =
  | R_hello of { server : string; session : int }
  | R_matches of { plan : string; matches : (int * string) list }
      (** Query results: the executed plan description plus
          [(docid, serialized subtree)] per match, in document order. *)
  | R_prepared of { stmt : int; plan : string }
  | R_txn of { txid : int }
  | R_unit
  | R_docid of { docid : int }
  | R_docids of { docids : int list }
  | R_doc of { doc : string }
  | R_stats of { json : string }
  | R_repl_state of {
      base_lsn : int64;
      durable_lsn : int64;
      generations : int;
      page_size : int;  (** a fresh replica must adopt this geometry *)
    }
  | R_repl_batch of { start_lsn : int64; durable_lsn : int64; frames : string }
      (** A span of raw CRC-framed WAL bytes starting at [start_lsn]
          (which exceeds the asked [from_lsn] only when the leader's
          history below it is gone — unrecoverable without a rebuild).
          [frames] is empty when the replica is caught up to
          [durable_lsn]. LSNs travel as true 8-byte big-endian [int64]s. *)

type response = Ok of ok | Err of { status : int; message : string }

val encode_request : request -> string
(** The request's frame payload (no length prefix). *)

val decode_request : string -> request
(** @raise Protocol_error on an unknown opcode, truncation or trailing
    bytes. *)

val encode_response : response -> string
(** The response's frame payload (no length prefix). *)

val decode_response : string -> response
(** @raise Protocol_error like {!decode_request}. *)

val send_request : Unix.file_descr -> request -> unit
(** Writes one framed request (single [write] loop — header and payload
    leave together). *)

val recv_request : Unix.file_descr -> request option
(** Reads one framed request; [None] on a clean disconnect (EOF before
    any header byte).
    @raise Protocol_error on a torn or malformed frame. *)

val send_response : Unix.file_descr -> response -> unit
(** Writes one framed response. *)

val recv_response : Unix.file_descr -> response
(** Reads one framed response — a server never half-closes between a
    request and its reply, so EOF here is an error.
    @raise Protocol_error on EOF or a malformed frame. *)
