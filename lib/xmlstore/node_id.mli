(** Prefix-encoded logical node IDs (§3.1).

    A {e relative} node ID is a byte string whose last byte is even and all
    other bytes odd ("a relative node ID ends with an even-numbered byte;
    any odd-numbered byte means the relative ID is extended to the next
    byte"). The {e absolute} ID of a node is the concatenation of relative
    IDs along the path from the root; the root's own ID (00) is implicit, so
    the root's absolute ID is the empty string.

    Relative IDs are a prefix-free code, which gives the paper's properties:
    - plain byte-string comparison of absolute IDs is document order;
    - ancestry is testable by component-prefix;
    - the relative ID of each level can be recovered from the absolute ID;
    - there is always room to insert between two siblings by extending the
      ID length.

    Attributes do not receive their own node IDs in this implementation;
    they are addressed as (element ID, attribute position). *)

type t = string
(** Absolute node ID. *)

type rel = string
(** Relative (one-level) node ID. *)

val root : t
val is_root : t -> bool
val compare : t -> t -> int
(** Document order. *)

val equal : t -> t -> bool

val is_valid_rel : rel -> bool
val is_valid : t -> bool

val append : t -> rel -> t
val components : t -> rel list
(** @raise Invalid_argument if [t] is not a valid absolute ID. *)

val parent : t -> t option
(** [None] for the root. *)

val level : t -> int
(** Number of components; 0 for the root. *)

val prefix_at_level : t -> int -> t
(** First [n] components — the ancestor of the node at that level (used for
    NodeID-level ANDing at a fixed element level, §4.3).
    @raise Invalid_argument if the node is shallower than [n]. *)

val last_component : t -> rel option

val is_ancestor : ancestor:t -> t -> bool
(** Strict ancestry (component-prefix, not equality). *)

val is_ancestor_or_self : ancestor:t -> t -> bool

val first_child_rel : rel
(** The relative ID given to a first child ([0x02]). *)

val next_sibling_rel : rel -> rel
(** A fresh relative ID sorting after the given one (used for appends). *)

val before_rel : rel -> rel
(** A fresh relative ID sorting before the given one (insert at head). *)

val between_rel : rel -> rel -> rel
(** [between_rel a b] is a fresh relative ID strictly between [a] and [b].
    @raise Invalid_argument if [a >= b]. *)

val nth_sibling_rel : int -> rel
(** Relative ID for the [n]-th (0-based) child at initial load:
    [0x02, 0x04, ...], extending through odd bytes past 126 siblings. *)

val to_hex : t -> string
(** Debug rendering, e.g. ["02.0604"] → ["02", "0604"] joined with dots. *)
