open Rx_util
open Rx_xml

type header = {
  context : Node_id.t;
  path : (int * int) list;
  ns_in_scope : (int * int) list;
  n_subtrees : int;
}

type entry =
  | Element of {
      rel : Node_id.rel;
      name : Qname.t;
      attrs : Token.attr list;
      ns_decls : (int * int) list;
      n_children : int;
      children_len : int;
      children_off : int;
    }
  | Text of { rel : Node_id.rel; content : string; annot : Typed_value.t option }
  | Comment of { rel : Node_id.rel; content : string }
  | Pi of { rel : Node_id.rel; target : string; data : string }
  | Proxy of { rel : Node_id.rel }

let entry_rel = function
  | Element { rel; _ } | Text { rel; _ } | Comment { rel; _ } | Pi { rel; _ }
  | Proxy { rel } ->
      rel

let encode_pairs w pairs =
  Bytes_io.Writer.varint w (List.length pairs);
  List.iter
    (fun (a, b) ->
      Bytes_io.Writer.varint w a;
      Bytes_io.Writer.varint w b)
    pairs

let decode_pairs r =
  let n = Bytes_io.Reader.varint r in
  List.init n (fun _ ->
      let a = Bytes_io.Reader.varint r in
      let b = Bytes_io.Reader.varint r in
      (a, b))

let encode_header w h =
  Bytes_io.Writer.lstring w h.context;
  encode_pairs w h.path;
  encode_pairs w h.ns_in_scope;
  Bytes_io.Writer.varint w h.n_subtrees

let decode_header record =
  let r = Bytes_io.Reader.of_string record in
  let context = Bytes_io.Reader.lstring r in
  let path = decode_pairs r in
  let ns_in_scope = decode_pairs r in
  let n_subtrees = Bytes_io.Reader.varint r in
  ({ context; path; ns_in_scope; n_subtrees }, Bytes_io.Reader.pos r)

let tag_element = 1
let tag_text = 2
let tag_comment = 3
let tag_pi = 4
let tag_proxy = 5

let encode_qname w (q : Qname.t) =
  Bytes_io.Writer.varint w q.Qname.uri;
  Bytes_io.Writer.varint w q.Qname.local;
  Bytes_io.Writer.varint w q.Qname.prefix

let decode_qname r =
  let uri = Bytes_io.Reader.varint r in
  let local = Bytes_io.Reader.varint r in
  let prefix = Bytes_io.Reader.varint r in
  { Qname.uri; local; prefix }

let encode_element_prefix w ~rel ~name ~attrs ~ns_decls ~n_children ~children_len =
  Bytes_io.Writer.u8 w tag_element;
  Bytes_io.Writer.lstring w rel;
  encode_qname w name;
  Bytes_io.Writer.varint w (List.length attrs);
  List.iter
    (fun (a : Token.attr) ->
      encode_qname w a.name;
      Bytes_io.Writer.lstring w a.value;
      Token_stream.encode_annot w a.annot)
    attrs;
  encode_pairs w ns_decls;
  Bytes_io.Writer.varint w n_children;
  Bytes_io.Writer.varint w children_len

let encode_text w ~rel ~annot content =
  Bytes_io.Writer.u8 w tag_text;
  Bytes_io.Writer.lstring w rel;
  Bytes_io.Writer.lstring w content;
  Token_stream.encode_annot w annot

let encode_comment w ~rel content =
  Bytes_io.Writer.u8 w tag_comment;
  Bytes_io.Writer.lstring w rel;
  Bytes_io.Writer.lstring w content

let encode_pi w ~rel ~target ~data =
  Bytes_io.Writer.u8 w tag_pi;
  Bytes_io.Writer.lstring w rel;
  Bytes_io.Writer.lstring w target;
  Bytes_io.Writer.lstring w data

let encode_proxy w ~rel =
  Bytes_io.Writer.u8 w tag_proxy;
  Bytes_io.Writer.lstring w rel

let decode_entry record off =
  let r = Bytes_io.Reader.of_string ~pos:off record in
  let tag = Bytes_io.Reader.u8 r in
  let rel = Bytes_io.Reader.lstring r in
  if tag = tag_element then begin
    let name = decode_qname r in
    let n_attrs = Bytes_io.Reader.varint r in
    let attrs =
      List.init n_attrs (fun _ ->
          let name = decode_qname r in
          let value = Bytes_io.Reader.lstring r in
          let annot = Token_stream.decode_annot r in
          { Token.name; value; annot })
    in
    let ns_decls = decode_pairs r in
    let n_children = Bytes_io.Reader.varint r in
    let children_len = Bytes_io.Reader.varint r in
    let children_off = Bytes_io.Reader.pos r in
    ( Element { rel; name; attrs; ns_decls; n_children; children_len; children_off },
      children_off + children_len )
  end
  else if tag = tag_text then begin
    let content = Bytes_io.Reader.lstring r in
    let annot = Token_stream.decode_annot r in
    (Text { rel; content; annot }, Bytes_io.Reader.pos r)
  end
  else if tag = tag_comment then begin
    let content = Bytes_io.Reader.lstring r in
    (Comment { rel; content }, Bytes_io.Reader.pos r)
  end
  else if tag = tag_pi then begin
    let target = Bytes_io.Reader.lstring r in
    let data = Bytes_io.Reader.lstring r in
    (Pi { rel; target; data }, Bytes_io.Reader.pos r)
  end
  else if tag = tag_proxy then (Proxy { rel }, Bytes_io.Reader.pos r)
  else invalid_arg (Printf.sprintf "Record_format: bad entry tag %d at %d" tag off)

let iter_children record entry f =
  match entry with
  | Element { children_off; children_len; _ } ->
      let limit = children_off + children_len in
      let rec loop off =
        if off < limit then begin
          let child, next = decode_entry record off in
          f child;
          loop next
        end
      in
      loop children_off
  | Text _ | Comment _ | Pi _ | Proxy _ -> ()

(* Depth-first walk over inline entries; [f] receives (absolute id, entry)
   and proxies are reported but not descended (they have no inline body). *)
let walk record f =
  let header, first = decode_header record in
  let rec walk_seq base off limit =
    if off < limit then begin
      let entry, next = decode_entry record off in
      let abs = Node_id.append base (entry_rel entry) in
      f abs entry;
      (match entry with
      | Element { children_off; children_len; _ } ->
          walk_seq abs children_off (children_off + children_len)
      | Text _ | Comment _ | Pi _ | Proxy _ -> ());
      walk_seq base next limit
    end
  in
  walk_seq header.context first (String.length record)

let interval_endpoints record =
  let endpoints = ref [] in
  let last_inline = ref None in
  walk record (fun abs entry ->
      match entry with
      | Proxy _ ->
          (* a proxied subtree interrupts document-order contiguity *)
          (match !last_inline with
          | Some id -> endpoints := id :: !endpoints
          | None -> ());
          last_inline := None
      | Element _ | Text _ | Comment _ | Pi _ -> last_inline := Some abs);
  (match !last_inline with
  | Some id -> endpoints := id :: !endpoints
  | None -> ());
  List.rev !endpoints

let min_node_id record =
  let result = ref None in
  (try
     walk record (fun abs entry ->
         match entry with
         | Proxy _ -> ()
         | Element _ | Text _ | Comment _ | Pi _ ->
             result := Some abs;
             raise Exit)
   with Exit -> ());
  match !result with
  | Some id -> id
  | None -> invalid_arg "Record_format.min_node_id: record has no inline node"

let node_count record =
  let count = ref 0 in
  walk record (fun _ entry ->
      match entry with
      | Proxy _ -> ()
      | Element _ | Text _ | Comment _ | Pi _ -> incr count);
  !count
