open Rx_util
open Rx_storage
open Rx_xml

type event = { id : Node_id.t option; token : Token.t }

type t = {
  pool : Buffer_pool.t;
  heap : Heap_file.t;
  index : Rx_btree.Btree.t;
  dict : Name_dict.t;
  threshold : int;
  policy : Packer.policy;
  mutable record_observers :
    (int * (docid:int -> rid:Rid.t -> record:string -> unit)) list;
  mutable delete_observers :
    (int * (docid:int -> rid:Rid.t -> record:string -> unit)) list;
  mutable next_observer : int;
  mutable doc_count : int;
  mutable record_bytes : int;
  (* tiny cache: the record most recently fetched, keyed by rid; atomic so
     concurrent scan domains can share it — entries are self-validating
     (checked against the requested rid), so a lost update only costs a
     re-read *)
  last_fetch : (Rid.t * string) option Atomic.t;
}

let create ?(record_threshold = 2048) ?(packing_policy = Packer.Largest_first)
    pool dict =
  {
    pool;
    heap = Heap_file.create pool;
    index = Rx_btree.Btree.create pool;
    dict;
    threshold = record_threshold;
    policy = packing_policy;
    record_observers = [];
    delete_observers = [];
    next_observer = 0;
    doc_count = 0;
    record_bytes = 0;
    last_fetch = Atomic.make None;
  }

let metrics t = Buffer_pool.metrics t.pool

let attach ?(record_threshold = 2048) ?(packing_policy = Packer.Largest_first)
    pool dict ~heap_header ~index_meta =
  let t =
    {
      pool;
      heap = Heap_file.attach pool ~header_page:heap_header;
      index = Rx_btree.Btree.attach pool ~meta_page:index_meta;
      dict;
      threshold = record_threshold;
      policy = packing_policy;
      record_observers = [];
      delete_observers = [];
      next_observer = 0;
      doc_count = 0;
      record_bytes = 0;
      last_fetch = Atomic.make None;
    }
  in
  (* recount documents from distinct docids in the index *)
  let last = ref None in
  Rx_btree.Btree.iter_range t.index (fun key _ ->
      let docid, _ = Key_codec.decode_int64 key 0 in
      if !last <> Some docid then begin
        last := Some docid;
        t.doc_count <- t.doc_count + 1
      end;
      `Continue);
  t

let heap_header t = Heap_file.header_page t.heap
let index_meta t = Rx_btree.Btree.meta_page t.index
let dict t = t.dict

let fresh_observer_id t =
  let id = t.next_observer in
  t.next_observer <- id + 1;
  id

let add_record_observer t f =
  let id = fresh_observer_id t in
  t.record_observers <- t.record_observers @ [ (id, f) ];
  id

let add_delete_observer t f =
  let id = fresh_observer_id t in
  t.delete_observers <- t.delete_observers @ [ (id, f) ];
  id

let remove_record_observer t id =
  t.record_observers <- List.filter (fun (i, _) -> i <> id) t.record_observers

let remove_delete_observer t id =
  t.delete_observers <- List.filter (fun (i, _) -> i <> id) t.delete_observers

let index_key docid node_id =
  let buf = Buffer.create 16 in
  Key_codec.encode_int64 buf (Int64.of_int docid);
  Buffer.add_string buf node_id;
  Buffer.contents buf

let rid_value rid =
  let w = Bytes_io.Writer.create ~capacity:6 () in
  Rid.encode w rid;
  Bytes_io.Writer.contents w

let rid_of_value v = Rid.decode (Bytes_io.Reader.of_string v)

let store_record t ~docid record =
  let rid = Heap_file.insert t.heap record in
  t.record_bytes <- t.record_bytes + String.length record;
  List.iter
    (fun endpoint ->
      Rx_btree.Btree.insert t.index
        ~key:(index_key docid endpoint)
        ~value:(rid_value rid))
    (Record_format.interval_endpoints record);
  List.iter (fun (_, f) -> f ~docid ~rid ~record) t.record_observers

let insert_tokens t ~docid tokens =
  Packer.pack ~policy:t.policy ~threshold:t.threshold
    ~emit:(fun ~min_id:_ ~record -> store_record t ~docid record)
    tokens;
  t.doc_count <- t.doc_count + 1

let insert_tokens_bulk t docs =
  (* Pack every document first, collecting (docid, record) in emit order,
     then place the whole batch in the heap in one pass so the free-space
     map is probed per page rather than per record. *)
  let staged = ref [] in
  List.iter
    (fun (docid, tokens) ->
      Packer.pack ~policy:t.policy ~threshold:t.threshold
        ~emit:(fun ~min_id:_ ~record -> staged := (docid, record) :: !staged)
        tokens)
    docs;
  let staged = List.rev !staged in
  let rids = Heap_file.insert_many t.heap (List.map snd staged) in
  let triples =
    List.map2
      (fun (docid, record) rid ->
        t.record_bytes <- t.record_bytes + String.length record;
        List.iter
          (fun endpoint ->
            Rx_btree.Btree.insert t.index
              ~key:(index_key docid endpoint)
              ~value:(rid_value rid))
          (Record_format.interval_endpoints record);
        (docid, rid, record))
      staged rids
  in
  t.doc_count <- t.doc_count + List.length docs;
  triples

let insert_document t ~docid src = insert_tokens t ~docid (Parser.parse t.dict src)

let fetch t rid =
  match Atomic.get t.last_fetch with
  | Some (r, data) when Rid.equal r rid -> data
  | _ ->
      let data = Heap_file.read t.heap rid in
      Atomic.set t.last_fetch (Some (rid, data));
      data

(* First index entry at or after (docid, node_id); None if the next entry
   belongs to another document. *)
let seek t ~docid node_id =
  let lo = index_key docid node_id in
  let result = ref None in
  Rx_btree.Btree.iter_range t.index ~lo (fun key value ->
      let entry_docid, pos = Key_codec.decode_int64 key 0 in
      if Int64.to_int entry_docid = docid then
        result :=
          Some (String.sub key pos (String.length key - pos), rid_of_value value);
      `Stop);
  !result

let mem t ~docid = Option.is_some (seek t Node_id.root ~docid)

let delete_document t ~docid =
  let keys = ref [] in
  let rids = Hashtbl.create 8 in
  Rx_btree.Btree.iter_prefix t.index ~prefix:(index_key docid Node_id.root)
    (fun key value ->
      keys := key :: !keys;
      Hashtbl.replace rids (rid_of_value value) ();
      `Continue);
  if !keys = [] then invalid_arg (Printf.sprintf "Doc_store: no document %d" docid);
  (* observers run while the NodeID index is still intact so they can
     traverse the document (e.g. to recompute split-subtree values) *)
  let records =
    Hashtbl.fold (fun rid () acc -> (rid, Heap_file.read t.heap rid) :: acc) rids []
  in
  List.iter
    (fun (rid, record) ->
      List.iter (fun (_, f) -> f ~docid ~rid ~record) t.delete_observers)
    records;
  List.iter (fun key -> ignore (Rx_btree.Btree.delete t.index key)) !keys;
  List.iter
    (fun (rid, record) ->
      t.record_bytes <- t.record_bytes - String.length record;
      Heap_file.delete t.heap rid)
    records;
  Atomic.set t.last_fetch None;
  t.doc_count <- t.doc_count - 1

(* Resolve a proxy: the record containing node [abs], and its top-level
   entry for [abs]. *)
let resolve t ~docid abs =
  match seek t ~docid abs with
  | None -> invalid_arg "Doc_store: dangling proxy"
  | Some (_, rid) ->
      let record = fetch t rid in
      let header, first = Record_format.decode_header record in
      let rel_path_len = String.length abs - String.length header.Record_format.context in
      let rel = String.sub abs (String.length header.Record_format.context) rel_path_len in
      (* find the top-level entry with this relative id *)
      let rec find off =
        if off >= String.length record then
          invalid_arg "Doc_store: proxy target not in record"
        else
          let entry, next = Record_format.decode_entry record off in
          if Record_format.entry_rel entry = rel then (record, entry)
          else find next
      in
      find first

(* Emit events for one entry (resolving proxies), depth-first. *)
let rec emit_entry t ~docid record base entry f =
  let rel = Record_format.entry_rel entry in
  let abs = Node_id.append base rel in
  match entry with
  | Record_format.Proxy _ ->
      let record', entry' = resolve t ~docid abs in
      (match entry' with
      | Record_format.Proxy _ -> invalid_arg "Doc_store: proxy chain"
      | _ -> emit_entry t ~docid record' base entry' f)
  | Record_format.Element { name; attrs; ns_decls; _ } ->
      f { id = Some abs; token = Token.Start_element { name; attrs; ns_decls } };
      Record_format.iter_children record entry (fun child ->
          emit_entry t ~docid record abs child f);
      f { id = None; token = Token.End_element }
  | Record_format.Text { content; annot; _ } ->
      f { id = Some abs; token = Token.Text { content; annot } }
  | Record_format.Comment { content; _ } ->
      f { id = Some abs; token = Token.Comment content }
  | Record_format.Pi { target; data; _ } ->
      f { id = Some abs; token = Token.Pi { target; data } }

let root_record t ~docid =
  match seek t ~docid Node_id.root with
  | None -> None
  | Some (_, rid) ->
      let record = fetch t rid in
      let header, first = Record_format.decode_header record in
      if not (Node_id.is_root header.Record_format.context) then
        invalid_arg "Doc_store: root record has non-root context";
      Some (record, first)

let events t ~docid f =
  match root_record t ~docid with
  | None -> invalid_arg (Printf.sprintf "Doc_store: no document %d" docid)
  | Some (record, first) ->
      f { id = None; token = Token.Start_document };
      let rec loop off =
        if off < String.length record then begin
          let entry, next = Record_format.decode_entry record off in
          emit_entry t ~docid record Node_id.root entry f;
          loop next
        end
      in
      loop first;
      f { id = None; token = Token.End_document }

(* --- allocation-free scan --- *)

type scan_sink = {
  scan_start_element : name:Qname.t -> attrs:Token.attr list -> unit;
  scan_end_element : unit -> unit;
  scan_text : content:string -> unit;
  scan_comment : content:string -> unit;
  scan_pi : target:string -> data:string -> unit;
}

(* Unlike [events], no per-node event/token records or absolute node IDs are
   built: the current node's ID is held as mutable (base, rel) cursor state
   and materialized only when the sink forces the [current] thunk — i.e.
   only for nodes the query actually matches. Absolute IDs are still built
   for elements with children (the recursion base) and proxy resolution. *)
let scan t ~docid ~make_sink =
  match root_record t ~docid with
  | None -> invalid_arg (Printf.sprintf "Doc_store: no document %d" docid)
  | Some (record0, first) ->
      let cur_base = ref Node_id.root in
      let cur_rel = ref Node_id.first_child_rel in
      let current () = Node_id.append !cur_base !cur_rel in
      let sink = make_sink ~current in
      let rec emit record base entry =
        match entry with
        | Record_format.Proxy { rel } ->
            let abs = Node_id.append base rel in
            let record', entry' = resolve t ~docid abs in
            (match entry' with
            | Record_format.Proxy _ -> invalid_arg "Doc_store: proxy chain"
            | _ -> emit record' base entry')
        | Record_format.Element { rel; name; attrs; n_children; children_off; children_len; _ }
          ->
            cur_base := base;
            cur_rel := rel;
            sink.scan_start_element ~name ~attrs;
            if n_children > 0 then begin
              let abs = Node_id.append base rel in
              walk record abs children_off (children_off + children_len)
            end;
            sink.scan_end_element ()
        | Record_format.Text { rel; content; _ } ->
            cur_base := base;
            cur_rel := rel;
            sink.scan_text ~content
        | Record_format.Comment { rel; content } ->
            cur_base := base;
            cur_rel := rel;
            sink.scan_comment ~content
        | Record_format.Pi { rel; target; data } ->
            cur_base := base;
            cur_rel := rel;
            sink.scan_pi ~target ~data
      and walk record base off limit =
        if off < limit then begin
          let entry, next = Record_format.decode_entry record off in
          emit record base entry;
          walk record base next limit
        end
      in
      walk record0 Node_id.root first (String.length record0)

let set_readahead t n =
  Heap_file.set_readahead t.heap n;
  Rx_btree.Btree.set_readahead t.index n

(* --- sub-document updates --- *)

type position = Before of Node_id.t | After of Node_id.t | Last_child_of of Node_id.t

(* Replace record [rid] (image [old_record]) with the re-encoded [nodes];
   an empty node list reclaims the record. NodeID-index entries and value
   indexes are maintained through the usual per-record paths. *)
let rewrite_record t ~docid ~rid ~old_record header nodes =
  List.iter (fun (_, f) -> f ~docid ~rid ~record:old_record) t.delete_observers;
  List.iter
    (fun endpoint ->
      ignore (Rx_btree.Btree.delete t.index (index_key docid endpoint)))
    (Record_format.interval_endpoints old_record);
  t.record_bytes <- t.record_bytes - String.length old_record;
  Atomic.set t.last_fetch None;
  if nodes = [] then Heap_file.delete t.heap rid
  else begin
    let record = Record_tree.encode header nodes in
    let rid' = Heap_file.update t.heap rid record in
    t.record_bytes <- t.record_bytes + String.length record;
    List.iter
      (fun endpoint ->
        Rx_btree.Btree.insert t.index
          ~key:(index_key docid endpoint)
          ~value:(rid_value rid'))
      (Record_format.interval_endpoints record);
    List.iter (fun (_, f) -> f ~docid ~rid:rid' ~record) t.record_observers
  end

(* The record where [abs] is stored inline, its decoded form, and the
   relative path of [abs] under the record's context. *)
let locate_inline t ~docid abs =
  match seek t ~docid abs with
  | None -> None
  | Some (_, rid) ->
      let record = fetch t rid in
      let header, _ = Record_format.decode_header record in
      let context = header.Record_format.context in
      if not (Node_id.is_ancestor_or_self ~ancestor:context abs) then None
      else begin
        let rel_path =
          Node_id.components
            (String.sub abs (String.length context)
               (String.length abs - String.length context))
        in
        let _, nodes = Record_tree.decode record in
        Some (rid, record, header, nodes, rel_path)
      end

(* Remove the subtree entry for [abs] from the record where it is inline,
   then chase any proxies it contained. *)
let rec purge_subtree t ~docid abs =
  match locate_inline t ~docid abs with
  | None -> invalid_arg "Doc_store: node to purge not found"
  | Some (rid, record, header, nodes, rel_path) -> (
      let removed = ref None in
      match
        Record_tree.map_subtree nodes rel_path (function
          | Some e ->
              removed := Some e;
              []
          | None -> [])
      with
      | Some nodes' when !removed <> None ->
          rewrite_record t ~docid ~rid ~old_record:record header nodes';
          let parent_abs = Option.value ~default:Node_id.root (Node_id.parent abs) in
          List.iter
            (fun ppath ->
              purge_subtree t ~docid (parent_abs ^ String.concat "" ppath))
            (Record_tree.collect_proxies (Option.get !removed))
      | _ -> invalid_arg "Doc_store: node to purge not found")

(* The record holding the child-entry list of [parent_abs] (the record of
   the parent's own element entry; the root record when the parent is the
   document). *)
let locate_children t ~docid parent_abs =
  if Node_id.is_root parent_abs then
    match seek t ~docid Node_id.root with
    | None -> None
    | Some (_, rid) ->
        let record = fetch t rid in
        let header, _ = Record_format.decode_header record in
        let _, nodes = Record_tree.decode record in
        Some (rid, record, header, nodes, [])
  else locate_inline t ~docid parent_abs

let delete_subtree t ~docid node_id =
  if Node_id.is_root node_id then
    invalid_arg "Doc_store.delete_subtree: cannot delete the document node";
  let parent_abs = Option.value ~default:Node_id.root (Node_id.parent node_id) in
  let last = Option.get (Node_id.last_component node_id) in
  match locate_children t ~docid parent_abs with
  | None -> invalid_arg "Doc_store.delete_subtree: node not found"
  | Some (rid, record, header, nodes, parent_rel_path) -> (
      let removed = ref None in
      match
        Record_tree.map_subtree nodes (parent_rel_path @ [ last ]) (function
          | Some e ->
              removed := Some e;
              []
          | None -> [])
      with
      | Some nodes' when !removed <> None ->
          rewrite_record t ~docid ~rid ~old_record:record header nodes';
          List.iter
            (fun ppath -> purge_subtree t ~docid (parent_abs ^ String.concat "" ppath))
            (Record_tree.collect_proxies (Option.get !removed))
      | _ -> invalid_arg "Doc_store.delete_subtree: node not found")

let update_text t ~docid node_id content =
  match locate_inline t ~docid node_id with
  | None -> invalid_arg "Doc_store.update_text: node not found"
  | Some (rid, record, header, nodes, rel_path) -> (
      let ok = ref false in
      match
        Record_tree.map_subtree nodes rel_path (function
          | Some (Record_tree.Text te) ->
              ok := true;
              [ Record_tree.Text { te with content } ]
          | Some _ -> invalid_arg "Doc_store.update_text: not a text node"
          | None -> [])
      with
      | Some nodes' when !ok ->
          rewrite_record t ~docid ~rid ~old_record:record header nodes'
      | _ -> invalid_arg "Doc_store.update_text: node not found")

(* count the top-level nodes of a balanced fragment *)
let top_level_count tokens =
  let depth = ref 0 and count = ref 0 in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element _ ->
          if !depth = 0 then incr count;
          incr depth
      | Token.End_element -> decr depth
      | Token.Text _ | Token.Comment _ | Token.Pi _ -> if !depth = 0 then incr count)
    tokens;
  if !depth <> 0 then invalid_arg "Doc_store.insert_fragment: unbalanced fragment";
  !count

(* fresh relative ids strictly between [lo] and [hi] (either optional) *)
let fresh_rels ~lo ~hi n =
  match (lo, hi) with
  | Some lo, Some hi ->
      let rec gen cur n acc =
        if n = 0 then List.rev acc
        else
          let r = Node_id.between_rel cur hi in
          gen r (n - 1) (r :: acc)
      in
      gen lo n []
  | Some lo, None ->
      let rec gen cur n acc =
        if n = 0 then List.rev acc
        else
          let r = Node_id.next_sibling_rel cur in
          gen r (n - 1) (r :: acc)
      in
      gen lo n []
  | None, Some hi ->
      (* generate backwards, closest to hi last *)
      let rec gen cur n acc =
        if n = 0 then acc
        else
          let r = Node_id.before_rel cur in
          gen r (n - 1) (r :: acc)
      in
      gen hi n []
  | None, None ->
      List.init n (fun i -> Node_id.nth_sibling_rel i)

let insert_fragment t ~docid position tokens =
  let n = top_level_count tokens in
  if n = 0 then invalid_arg "Doc_store.insert_fragment: empty fragment";
  let parent_abs, anchor_last =
    match position with
    | Before anchor | After anchor ->
        if Node_id.is_root anchor then
          invalid_arg "Doc_store.insert_fragment: anchor cannot be the document";
        ( Option.value ~default:Node_id.root (Node_id.parent anchor),
          Some (Option.get (Node_id.last_component anchor)) )
    | Last_child_of parent -> (parent, None)
  in
  match locate_children t ~docid parent_abs with
  | None -> invalid_arg "Doc_store.insert_fragment: parent not found"
  | Some (rid, record, header, nodes, parent_rel_path) ->
      (* find the parent's child list to compute neighbour rel ids *)
      let children =
        if parent_rel_path = [] && Node_id.is_root parent_abs then Some nodes
        else
          let found = ref None in
          ignore
            (Record_tree.map_subtree nodes parent_rel_path (function
              | Some (Record_tree.Element { children; _ } as e) ->
                  found := Some children;
                  [ e ]
              | Some e -> [ e ]
              | None -> []));
          !found
      in
      (match children with
      | None -> invalid_arg "Doc_store.insert_fragment: parent is not an element"
      | Some children ->
          let rels_of = List.map Record_tree.node_rel children in
          let lo, hi =
            match (position, anchor_last) with
            | Last_child_of _, _ ->
                ((match List.rev rels_of with last :: _ -> Some last | [] -> None), None)
            | Before _, Some a ->
                if not (List.mem a rels_of) then
                  invalid_arg "Doc_store.insert_fragment: anchor not found";
                let rec prev acc = function
                  | [] -> acc
                  | r :: _ when r = a -> acc
                  | r :: rest -> prev (Some r) rest
                in
                (prev None rels_of, Some a)
            | After _, Some a ->
                if not (List.mem a rels_of) then
                  invalid_arg "Doc_store.insert_fragment: anchor not found";
                let rec next = function
                  | [] -> None
                  | r :: rest when r = a -> (
                      match rest with nr :: _ -> Some nr | [] -> None)
                  | _ :: rest -> next rest
                in
                (Some a, next rels_of)
            | (Before _ | After _), None -> assert false
          in
          let rels = fresh_rels ~lo ~hi n in
          let fresh_nodes = Record_tree.of_tokens ~base_rel:rels tokens in
          let target_path =
            (* splice by inserting at the sorted position among siblings;
               map_subtree's insertion form needs a "missing last
               component": use the first fresh rel *)
            parent_rel_path @ [ List.hd rels ]
          in
          (match
             Record_tree.map_subtree nodes target_path (function
               | Some _ -> invalid_arg "Doc_store.insert_fragment: id collision"
               | None -> fresh_nodes)
           with
          | Some nodes' -> rewrite_record t ~docid ~rid ~old_record:record header nodes'
          | None -> invalid_arg "Doc_store.insert_fragment: parent not found");
          List.map (fun rel -> Node_id.append parent_abs rel) rels)

let iter_records t ~docid f =
  let rids = Hashtbl.create 8 in
  Rx_btree.Btree.iter_prefix t.index ~prefix:(index_key docid Node_id.root)
    (fun _ value ->
      Hashtbl.replace rids (rid_of_value value) ();
      `Continue);
  Hashtbl.iter (fun rid () -> f ~rid ~record:(Heap_file.read t.heap rid)) rids

let tokens t ~docid =
  let acc = ref [] in
  events t ~docid (fun e -> acc := e.token :: !acc);
  List.rev !acc

let serialize t ~docid = Serializer.to_string t.dict (tokens t ~docid)

(* --- cursor --- *)

module Cursor = struct
  (* A cursor points at an entry's logical position in its parent's children
     sequence: [record] is the record holding that position (the proxy's
     record when the subtree lives elsewhere); [resolved] caches the real
     record/entry pair. *)
  type cursor = {
    docid : int;
    record : string;
    off : int;
    limit : int;
    base : Node_id.t;
    entry : Record_format.entry; (* as stored at off; may be Proxy *)
    resolved : string * Record_format.entry; (* never Proxy *)
  }

  let make t ~docid ~record ~off ~limit ~base =
    let entry, _ = Record_format.decode_entry record off in
    let abs = Node_id.append base (Record_format.entry_rel entry) in
    let resolved =
      match entry with
      | Record_format.Proxy _ -> resolve t ~docid abs
      | _ -> (record, entry)
    in
    { docid; record; off; limit; base; entry; resolved }

  let node_id c = Node_id.append c.base (Record_format.entry_rel c.entry)
  let entry c = snd c.resolved

  let root t ~docid =
    match root_record t ~docid with
    | None -> None
    | Some (record, first) ->
        if first >= String.length record then None
        else
          Some
            (make t ~docid ~record ~off:first ~limit:(String.length record)
               ~base:Node_id.root)

  let first_child t c =
    match snd c.resolved with
    | Record_format.Element { n_children; children_off; children_len; _ }
      when n_children > 0 ->
        let record = fst c.resolved in
        Some
          (make t ~docid:c.docid ~record ~off:children_off
             ~limit:(children_off + children_len) ~base:(node_id c))
    | _ -> None

  let next_sibling t c =
    let _, next = Record_format.decode_entry c.record c.off in
    if next < c.limit then
      Some (make t ~docid:c.docid ~record:c.record ~off:next ~limit:c.limit ~base:c.base)
    else None

  (* Walk down from the containing record's context to the target id. *)
  let find t ~docid target =
    if Node_id.is_root target then None
    else
      match seek t ~docid target with
      | None -> None
      | Some (_, rid) ->
          let record = fetch t rid in
          let header, first = Record_format.decode_header record in
          let context = header.Record_format.context in
          if not (Node_id.is_ancestor_or_self ~ancestor:context target) then None
          else begin
            let rel_path =
              Node_id.components
                (String.sub target (String.length context)
                   (String.length target - String.length context))
            in
            let rec descend record base off limit = function
              | [] -> None
              | comp :: rest -> (
                  (* locate the entry with relative id [comp] in this
                     children sequence *)
                  let rec scan off =
                    if off >= limit then None
                    else
                      let entry, next = Record_format.decode_entry record off in
                      if Record_format.entry_rel entry = comp then Some (entry, off)
                      else scan next
                  in
                  match scan off with
                  | None -> None
                  | Some (entry, off) ->
                      if rest = [] then
                        Some (make t ~docid ~record ~off ~limit ~base)
                      else
                        let abs = Node_id.append base comp in
                        let record, entry =
                          match entry with
                          | Record_format.Proxy _ -> resolve t ~docid abs
                          | _ -> (record, entry)
                        in
                        (match entry with
                        | Record_format.Element
                            { children_off; children_len; _ } ->
                            descend record abs children_off
                              (children_off + children_len) rest
                        | _ -> None))
            in
            descend record context first (String.length record) rel_path
          end

  let parent t ~docid c =
    match Node_id.parent (node_id c) with
    | None | Some "" -> None
    | Some pid -> find t ~docid pid
end

let subtree_events t ~docid node_id f =
  match Cursor.find t ~docid node_id with
  | None -> invalid_arg "Doc_store.subtree_events: node not found"
  | Some c ->
      (* Namespaces declared on ancestors must reappear on the extracted
         subtree root — the record header's in-scope list plus declarations
         of intra-record ancestors (what makes records "self-contained"). *)
      let inherited =
        let record = fst c.Cursor.resolved in
        let header, _ = Record_format.decode_header record in
        let context = header.Record_format.context in
        let rel_path =
          Node_id.components
            (String.sub node_id (String.length context)
               (String.length node_id - String.length context))
        in
        let _, nodes = Record_tree.decode record in
        let override inner outer =
          inner @ List.filter (fun (p, _) -> not (List.mem_assoc p inner)) outer
        in
        let rec walk nodes acc = function
          | [] | [ _ ] -> acc
          | comp :: rest -> (
              match
                List.find_opt (fun n -> Record_tree.node_rel n = comp) nodes
              with
              | Some (Record_tree.Element e) ->
                  walk e.children (override e.ns_decls acc) rest
              | _ -> acc)
        in
        walk nodes header.Record_format.ns_in_scope rel_path
      in
      let first = ref true in
      emit_entry t ~docid c.Cursor.record
        (Option.value ~default:Node_id.root (Node_id.parent node_id))
        c.Cursor.entry
        (fun e ->
          if !first then begin
            first := false;
            match e.token with
            | Token.Start_element el ->
                let merged =
                  el.Token.ns_decls
                  @ List.filter
                      (fun (p, _) -> not (List.mem_assoc p el.Token.ns_decls))
                      inherited
                in
                f { e with token = Token.Start_element { el with ns_decls = merged } }
            | _ -> f e
          end
          else f e)

type stats = {
  documents : int;
  records : int;
  index_entries : int;
  data_pages : int;
  overflow_pages : int;
  index_pages : int;
  record_bytes : int;
}

let data_page_count t = Heap_file.data_pages t.heap

let stats t =
  {
    documents = t.doc_count;
    records = Heap_file.record_count t.heap;
    index_entries = Rx_btree.Btree.entry_count t.index;
    data_pages = Heap_file.data_pages t.heap;
    overflow_pages = Heap_file.overflow_pages t.heap;
    index_pages = Rx_btree.Btree.page_count t.index;
    record_bytes = t.record_bytes;
  }
