open Rx_util
open Rx_xml

(* One accumulated child entry: its relative id, encoded bytes, and whether
   it is (already) a proxy. Only inline entries are moved out on a flush. *)
type child = { rel : Node_id.rel; bytes : string; is_proxy : bool }

type open_elem = {
  rel : Node_id.rel;
  abs : Node_id.t;
  name : Qname.t option; (* None for the virtual document context *)
  attrs : Token.attr list;
  ns_decls : (int * int) list;
  path : (int * int) list; (* root-first (uri, local) of the element itself *)
  ns_in_scope : (int * int) list;
  mutable next_child : int;
  mutable children : child list; (* reversed *)
  mutable inline_bytes : int;
}

type policy = Largest_first | Flush_all

type t = {
  threshold : int;
  policy : policy;
  emit : min_id:Node_id.t -> record:string -> unit;
  mutable stack : open_elem list; (* innermost first; bottom is the doc *)
  mutable done_ : bool;
}

let create ?(policy = Largest_first) ~threshold ~emit () =
  if threshold < 64 then invalid_arg "Packer.create: threshold too small";
  {
    threshold;
    policy;
    emit;
    stack = [];
    done_ = false;
  }

let doc_frame () =
  {
    rel = "";
    abs = Node_id.root;
    name = None;
    attrs = [];
    ns_decls = [];
    path = [];
    ns_in_scope = [];
    next_child = 0;
    children = [];
    inline_bytes = 0;
  }

(* Flush some inline children of [frame] as one record, replacing them with
   proxies. When [all] is false, victims are chosen largest-first until the
   remaining inline bytes fit the threshold — so in Figure 3 the single big
   Node2 subtree moves out while small siblings stay inline. *)
let flush_children ?(all = false) t frame =
  let child_size (c : child) = String.length c.bytes in
  let inline = List.filter (fun c -> not c.is_proxy) (List.rev frame.children) in
  if inline <> [] then begin
    let victims =
      if all || t.policy = Flush_all then inline
      else begin
        let by_size =
          List.sort
            (fun a b -> compare (child_size b) (child_size a))
            inline
        in
        let remaining = ref frame.inline_bytes in
        let chosen = Hashtbl.create 4 in
        List.iter
          (fun (c : child) ->
            if !remaining > t.threshold then begin
              Hashtbl.replace chosen c.rel ();
              remaining := !remaining - child_size c
            end)
          by_size;
        List.filter (fun (c : child) -> Hashtbl.mem chosen c.rel) inline
      end
    in
    if victims <> [] then begin
      let w = Bytes_io.Writer.create ~capacity:(frame.inline_bytes + 64) () in
      Record_format.encode_header w
        {
          Record_format.context = frame.abs;
          path = frame.path;
          ns_in_scope = frame.ns_in_scope;
          n_subtrees = List.length victims;
        };
      List.iter (fun c -> Bytes_io.Writer.bytes w c.bytes) victims;
      let record = Bytes_io.Writer.contents w in
      t.emit ~min_id:(Record_format.min_node_id record) ~record;
      let victim_rels = Hashtbl.create 4 in
      List.iter (fun (c : child) -> Hashtbl.replace victim_rels c.rel ()) victims;
      frame.children <-
        List.rev_map
          (fun c ->
            if (not c.is_proxy) && Hashtbl.mem victim_rels c.rel then begin
              let pw = Bytes_io.Writer.create ~capacity:8 () in
              Record_format.encode_proxy pw ~rel:c.rel;
              { rel = c.rel; bytes = Bytes_io.Writer.contents pw; is_proxy = true }
            end
            else c)
          (List.rev frame.children);
      frame.inline_bytes <-
        List.fold_left
          (fun acc c -> if c.is_proxy then acc else acc + String.length c.bytes)
          0 (List.rev frame.children)
    end
  end

let add_child t frame child =
  frame.children <- child :: frame.children;
  if not child.is_proxy then
    frame.inline_bytes <- frame.inline_bytes + String.length child.bytes;
  (* the document frame never auto-flushes, so the root record always holds
     the root element inline and is reachable from the NodeID index *)
  if frame.name <> None && frame.inline_bytes > t.threshold then
    flush_children t frame

let alloc_rel frame =
  let rel = Node_id.nth_sibling_rel frame.next_child in
  frame.next_child <- frame.next_child + 1;
  rel

let current t =
  match t.stack with
  | frame :: _ -> frame
  | [] -> invalid_arg "Packer: token outside document"

let feed t token =
  if t.done_ then invalid_arg "Packer: stream after End_document";
  match token with
  | Token.Start_document ->
      if t.stack <> [] then invalid_arg "Packer: nested Start_document";
      t.stack <- [ doc_frame () ]
  | Token.End_document -> (
      match t.stack with
      | [ doc ] ->
          (* the root record: whatever remains at document level *)
          flush_children ~all:true t doc;
          t.stack <- [];
          t.done_ <- true;
          ignore doc
      | _ -> invalid_arg "Packer: End_document with open elements")
  | Token.Start_element { name; attrs; ns_decls } ->
      let parent = current t in
      let rel = alloc_rel parent in
      let frame =
        {
          rel;
          abs = Node_id.append parent.abs rel;
          name = Some name;
          attrs;
          ns_decls;
          path = parent.path @ [ (name.Qname.uri, name.Qname.local) ];
          ns_in_scope =
            (* inner declarations shadow outer ones *)
            ns_decls
            @ List.filter
                (fun (p, _) -> not (List.mem_assoc p ns_decls))
                parent.ns_in_scope;
          next_child = 0;
          children = [];
          inline_bytes = 0;
        }
      in
      t.stack <- frame :: t.stack
  | Token.End_element -> (
      match t.stack with
      | frame :: (parent :: _ as rest) ->
          let name =
            match frame.name with
            | Some n -> n
            | None -> invalid_arg "Packer: End_element at document level"
          in
          (* encode the completed element entry *)
          let children = List.rev frame.children in
          let children_bytes = List.map (fun c -> c.bytes) children in
          let children_len =
            List.fold_left (fun acc b -> acc + String.length b) 0 children_bytes
          in
          let w = Bytes_io.Writer.create ~capacity:(children_len + 64) () in
          Record_format.encode_element_prefix w ~rel:frame.rel ~name
            ~attrs:frame.attrs ~ns_decls:frame.ns_decls
            ~n_children:(List.length children) ~children_len;
          List.iter (Bytes_io.Writer.bytes w) children_bytes;
          t.stack <- rest;
          add_child t parent
            { rel = frame.rel; bytes = Bytes_io.Writer.contents w; is_proxy = false }
      | _ -> invalid_arg "Packer: unbalanced End_element")
  | Token.Text { content; annot } ->
      let parent = current t in
      if parent.name = None && String.trim content = "" then ()
      else begin
        let rel = alloc_rel parent in
        let w = Bytes_io.Writer.create ~capacity:(String.length content + 16) () in
        Record_format.encode_text w ~rel ~annot content;
        add_child t parent { rel; bytes = Bytes_io.Writer.contents w; is_proxy = false }
      end
  | Token.Comment content ->
      let parent = current t in
      let rel = alloc_rel parent in
      let w = Bytes_io.Writer.create ~capacity:(String.length content + 16) () in
      Record_format.encode_comment w ~rel content;
      add_child t parent { rel; bytes = Bytes_io.Writer.contents w; is_proxy = false }
  | Token.Pi { target; data } ->
      let parent = current t in
      let rel = alloc_rel parent in
      let w = Bytes_io.Writer.create ~capacity:32 () in
      Record_format.encode_pi w ~rel ~target ~data;
      add_child t parent { rel; bytes = Bytes_io.Writer.contents w; is_proxy = false }

let finish t =
  if not t.done_ then invalid_arg "Packer.finish: incomplete document"

let pack ?policy ~threshold ~emit tokens =
  let t = create ?policy ~threshold ~emit () in
  List.iter (feed t) tokens;
  finish t

let records_of_tokens ?policy ~threshold tokens =
  let records = ref [] in
  pack ?policy ~threshold
    ~emit:(fun ~min_id:_ ~record -> records := record :: !records)
    tokens;
  List.rev !records
