open Rx_util
open Rx_xml

type node =
  | Element of {
      rel : Node_id.rel;
      name : Qname.t;
      attrs : Token.attr list;
      ns_decls : (int * int) list;
      children : node list;
    }
  | Text of { rel : Node_id.rel; content : string; annot : Typed_value.t option }
  | Comment of { rel : Node_id.rel; content : string }
  | Pi of { rel : Node_id.rel; target : string; data : string }
  | Proxy of { rel : Node_id.rel }

let node_rel = function
  | Element { rel; _ } | Text { rel; _ } | Comment { rel; _ } | Pi { rel; _ }
  | Proxy { rel } ->
      rel

let rec decode_entry record entry =
  match entry with
  | Record_format.Element { rel; name; attrs; ns_decls; _ } ->
      let children = ref [] in
      Record_format.iter_children record entry (fun child ->
          children := decode_entry record child :: !children);
      Element { rel; name; attrs; ns_decls; children = List.rev !children }
  | Record_format.Text { rel; content; annot } -> Text { rel; content; annot }
  | Record_format.Comment { rel; content } -> Comment { rel; content }
  | Record_format.Pi { rel; target; data } -> Pi { rel; target; data }
  | Record_format.Proxy { rel } -> Proxy { rel }

let decode record =
  let header, first = Record_format.decode_header record in
  let nodes = ref [] in
  let rec loop off =
    if off < String.length record then begin
      let entry, next = Record_format.decode_entry record off in
      nodes := decode_entry record entry :: !nodes;
      loop next
    end
  in
  loop first;
  (header, List.rev !nodes)

let rec encode_node w node =
  match node with
  | Element { rel; name; attrs; ns_decls; children } ->
      let cw = Bytes_io.Writer.create () in
      List.iter (encode_node cw) children;
      let children_bytes = Bytes_io.Writer.contents cw in
      Record_format.encode_element_prefix w ~rel ~name ~attrs ~ns_decls
        ~n_children:(List.length children)
        ~children_len:(String.length children_bytes);
      Bytes_io.Writer.bytes w children_bytes
  | Text { rel; content; annot } -> Record_format.encode_text w ~rel ~annot content
  | Comment { rel; content } -> Record_format.encode_comment w ~rel content
  | Pi { rel; target; data } -> Record_format.encode_pi w ~rel ~target ~data
  | Proxy { rel } -> Record_format.encode_proxy w ~rel

let encode header nodes =
  let w = Bytes_io.Writer.create ~capacity:512 () in
  Record_format.encode_header w
    { header with Record_format.n_subtrees = List.length nodes };
  List.iter (encode_node w) nodes;
  Bytes_io.Writer.contents w

let of_tokens ~base_rel tokens =
  (* build a forest from a balanced fragment; [base_rel] names the roots *)
  let pending_roots = ref base_rel in
  let next_root_rel () =
    match !pending_roots with
    | rel :: rest ->
        pending_roots := rest;
        rel
    | [] -> invalid_arg "Record_tree.of_tokens: more top-level nodes than ids"
  in
  (* stack of open elements: (rel, name, attrs, ns, rev children, counter) *)
  let stack = ref [] in
  let result = ref [] in
  let alloc_rel counter =
    let rel = Node_id.nth_sibling_rel !counter in
    incr counter;
    rel
  in
  let rel_for () =
    match !stack with
    | [] -> next_root_rel ()
    | (_, _, _, _, _, counter) :: _ -> alloc_rel counter
  in
  let add node =
    match !stack with
    | [] -> result := node :: !result
    | (rel, name, attrs, ns, children, counter) :: rest ->
        stack := (rel, name, attrs, ns, node :: children, counter) :: rest
  in
  List.iter
    (fun token ->
      match token with
      | Token.Start_document | Token.End_document -> ()
      | Token.Start_element { name; attrs; ns_decls } ->
          let rel = rel_for () in
          stack := (rel, name, attrs, ns_decls, [], ref 0) :: !stack
      | Token.End_element -> (
          match !stack with
          | (rel, name, attrs, ns_decls, children, _) :: rest ->
              stack := rest;
              add (Element { rel; name; attrs; ns_decls; children = List.rev children })
          | [] -> invalid_arg "Record_tree.of_tokens: unbalanced fragment")
      | Token.Text { content; annot } ->
          let rel = rel_for () in
          add (Text { rel; content; annot })
      | Token.Comment content ->
          let rel = rel_for () in
          add (Comment { rel; content })
      | Token.Pi { target; data } ->
          let rel = rel_for () in
          add (Pi { rel; target; data }))
    tokens;
  if !stack <> [] then invalid_arg "Record_tree.of_tokens: unclosed element";
  if !pending_roots <> [] then
    invalid_arg "Record_tree.of_tokens: fewer top-level nodes than ids";
  List.rev !result

(* Insert nodes into a sibling list, keeping relative-id order. *)
let splice_sorted siblings nodes =
  let rel_of = node_rel in
  let rec insert acc = function
    | [] -> List.rev acc @ nodes
    | s :: rest ->
        if
          List.for_all (fun n -> String.compare (rel_of n) (rel_of s) < 0) nodes
        then List.rev acc @ nodes @ (s :: rest)
        else insert (s :: acc) rest
  in
  insert [] siblings

let map_subtree nodes rel_path edit =
  let rec go nodes = function
    | [] -> None
    | [ last ] ->
        let found = ref false in
        let out =
          List.concat_map
            (fun n ->
              if node_rel n = last then begin
                found := true;
                edit (Some n)
              end
              else [ n ])
            nodes
        in
        if !found then Some out
        else
          (* target absent: treat as an insertion among these siblings *)
          Some (splice_sorted nodes (edit None))
    | comp :: rest -> (
        let found = ref None in
        let out =
          List.map
            (fun n ->
              match n with
              | Element ({ rel; children; _ } as e) when rel = comp -> (
                  match go children rest with
                  | Some children' ->
                      found := Some ();
                      Element { e with children = children' }
                  | None -> n)
              | _ -> n)
            nodes
        in
        match !found with Some () -> Some out | None -> None)
  in
  go nodes rel_path

let collect_proxies node =
  let acc = ref [] in
  let rec walk path n =
    match n with
    | Proxy { rel } -> acc := List.rev (rel :: path) :: !acc
    | Element { rel; children; _ } -> List.iter (walk (rel :: path)) children
    | Text _ | Comment _ | Pi _ -> ()
  in
  walk [] node;
  List.rev !acc
