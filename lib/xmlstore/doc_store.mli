(** Storage of XML column data (§3.1, Figure 2): an internal XML table
    (heap file of packed records) plus the NodeID index mapping logical
    (DocID, NodeID) positions to physical RIDs via interval upper
    endpoints.

    Traversal (§3.4) resolves proxy nodes through the NodeID index, so
    records can be placed anywhere — there are no physical links between
    records. *)

type t

type event = { id : Node_id.t option; token : Rx_xml.Token.t }
(** [id] is set on node-introducing tokens (start-element, text, comment,
    PI) and [None] on end-element. *)

val create :
  ?record_threshold:int ->
  ?packing_policy:Packer.policy ->
  Rx_storage.Buffer_pool.t ->
  Rx_xml.Name_dict.t ->
  t
(** [record_threshold] bounds packed-record entry sections (default 2048
    bytes) and [packing_policy] selects the grouping strategy — the two
    packing knobs ablated in E1. *)

val attach :
  ?record_threshold:int ->
  ?packing_policy:Packer.policy ->
  Rx_storage.Buffer_pool.t ->
  Rx_xml.Name_dict.t ->
  heap_header:int ->
  index_meta:int ->
  t

val heap_header : t -> int
val index_meta : t -> int
val dict : t -> Rx_xml.Name_dict.t

val metrics : t -> Rx_obs.Metrics.t
(** The registry of the underlying buffer pool — components layered on the
    store (executor, value indexes) report there. *)

val add_record_observer :
  t -> (docid:int -> rid:Rx_storage.Rid.t -> record:string -> unit) -> int
(** Called for every packed record as it is stored — how XPath value
    indexes generate their keys "per record" (§3.2). Returns a handle for
    {!remove_record_observer}. *)

val add_delete_observer :
  t -> (docid:int -> rid:Rx_storage.Rid.t -> record:string -> unit) -> int
(** Like {!add_record_observer}, for record deletion; returns a handle for
    {!remove_delete_observer}. *)

val remove_record_observer : t -> int -> unit
(** Detaches a record observer by handle (no-op if already removed) — how a
    dropped value index stops receiving maintenance callbacks. *)

val remove_delete_observer : t -> int -> unit
(** Detaches a delete observer by handle (no-op if already removed). *)

val insert_tokens : t -> docid:int -> Rx_xml.Token.t list -> unit
val insert_document : t -> docid:int -> string -> unit
(** Parses and stores. @raise Rx_xml.Parser.Parse_error on bad input. *)

val insert_tokens_bulk :
  t ->
  (int * Rx_xml.Token.t list) list ->
  (int * Rx_storage.Rid.t * string) list
(** Bulk {!insert_tokens}: packs every [(docid, tokens)] document, places
    all resulting records through {!Rx_storage.Heap_file.insert_many} (one
    free-space probe per page, one record-count bump for the batch), and
    maintains the NodeID index. Record observers are deliberately {e not}
    fired — instead every stored [(docid, rid, record)] is returned so the
    caller can run index maintenance batched per index rather than per
    document. *)

val delete_document : t -> docid:int -> unit
val mem : t -> docid:int -> bool

val events : t -> docid:int -> (event -> unit) -> unit
(** Whole-document traversal in document order. *)

(** Callbacks for the allocation-free {!scan} traversal. Strings passed to
    the callbacks ([name], [attrs], [content]…) are decoded from the packed
    record as usual, but no per-node event records, token values, or
    absolute node IDs are built. *)
type scan_sink = {
  scan_start_element :
    name:Rx_xml.Qname.t -> attrs:Rx_xml.Token.attr list -> unit;
  scan_end_element : unit -> unit;
  scan_text : content:string -> unit;
  scan_comment : content:string -> unit;
  scan_pi : target:string -> data:string -> unit;
}

val scan : t -> docid:int -> make_sink:(current:(unit -> Node_id.t) -> scan_sink) -> unit
(** Whole-document traversal like {!events}, but allocation-free per node:
    the current node's absolute ID is materialized only when the sink forces
    the [current] thunk — QuickXScan forces it only for nodes that match, so
    non-matching nodes cost no allocation. [current] is only valid inside
    the sink callback it was forced from (the cursor state it reads is
    mutated as the scan advances). *)

val set_readahead : t -> int -> unit
(** Sets the readahead window on the store's heap file and NodeID B+tree
    (see {!Rx_storage.Heap_file.set_readahead}). *)

val subtree_events : t -> docid:int -> Node_id.t -> (event -> unit) -> unit
(** Traversal of one subtree, located via the NodeID index — the §3.4
    path for access from an XPath value index. *)

val iter_records :
  t -> docid:int -> (rid:Rx_storage.Rid.t -> record:string -> unit) -> unit
(** Visits each packed record of the document once (index backfill). *)

(** {1 Sub-document updates}

    The operations §3.1's node-ID design exists for: existing node IDs are
    never renumbered ("stable upon update"), middle insertions extend the
    ID length ("always space for insertion in the middle"), and only the
    affected records are rewritten. Value-index observers fire for the old
    and new images, keeping XPath value indexes consistent. *)

type position =
  | Before of Node_id.t (** new sibling(s) before this node *)
  | After of Node_id.t (** new sibling(s) after this node *)
  | Last_child_of of Node_id.t (** append under this element *)

val insert_fragment : t -> docid:int -> position -> Rx_xml.Token.t list -> Node_id.t list
(** Inserts a balanced XML fragment (one or more top-level nodes, no
    document wrapper); returns the new top-level node IDs in order.
    @raise Invalid_argument if the anchor node does not exist, or
    [Last_child_of] names a non-element. *)

val update_text : t -> docid:int -> Node_id.t -> string -> unit
(** Replaces the content of a text node.
    @raise Invalid_argument if the node is not a text node. *)

val delete_subtree : t -> docid:int -> Node_id.t -> unit
(** Removes a node and its whole subtree (records that become empty are
    reclaimed). @raise Invalid_argument on the root element (delete the
    document instead) or a missing node. *)

val tokens : t -> docid:int -> Rx_xml.Token.t list
val serialize : t -> docid:int -> string

(** Cursor navigation with subtree skipping: [next_sibling] jumps over an
    entire subtree in O(1) within a record using the stored subtree
    length. *)
module Cursor : sig
  type cursor

  val root : t -> docid:int -> cursor option
  (** First document-level node. *)

  val find : t -> docid:int -> Node_id.t -> cursor option
  val node_id : cursor -> Node_id.t

  val entry : cursor -> Record_format.entry
  (** Resolved entry (never [Proxy]). *)

  val first_child : t -> cursor -> cursor option
  val next_sibling : t -> cursor -> cursor option
  val parent : t -> docid:int -> cursor -> cursor option
end

val data_page_count : t -> int
(** Number of heap data pages, O(1). The executor compares this against
    the [parallel_scan_min_pages] threshold to decide whether a partitioned
    multi-domain scan is worth spinning up. *)

type stats = {
  documents : int;
  records : int;
  index_entries : int;
  data_pages : int;
  overflow_pages : int;
  index_pages : int;
  record_bytes : int;
}

val stats : t -> stats
