(** Editable form of a packed record, for sub-document updates (§3.1: node
    IDs "are stable upon update of the tree" and "there is always space for
    insertion in the middle"). A record is decoded into a node tree, edited,
    and re-encoded; child counts and subtree lengths are recomputed on
    encoding. *)

type node =
  | Element of {
      rel : Node_id.rel;
      name : Rx_xml.Qname.t;
      attrs : Rx_xml.Token.attr list;
      ns_decls : (int * int) list;
      children : node list;
    }
  | Text of { rel : Node_id.rel; content : string; annot : Rx_xml.Typed_value.t option }
  | Comment of { rel : Node_id.rel; content : string }
  | Pi of { rel : Node_id.rel; target : string; data : string }
  | Proxy of { rel : Node_id.rel }

val node_rel : node -> Node_id.rel

val decode : string -> Record_format.header * node list
val encode : Record_format.header -> node list -> string
(** Recomputes [n_subtrees], child counts and subtree lengths. *)

val of_tokens : base_rel:Node_id.rel list -> Rx_xml.Token.t list -> node list
(** Builds nodes from a balanced token fragment (no document wrapper),
    assigning the given relative IDs to the top-level nodes (one per
    top-level node, in order) and fresh sibling IDs below.
    @raise Invalid_argument on unbalanced input or arity mismatch. *)

val map_subtree :
  node list -> Node_id.rel list -> (node option -> node list) -> node list option
(** [map_subtree nodes rel_path edit] finds the entry addressed by the
    relative path and replaces it by [edit (Some entry)]'s result (empty
    list = delete, several = splice). If the path's last component is not
    present but its parent is, [edit None] supplies nodes to insert at the
    sorted position among that parent's children. Returns [None] if the
    path cannot be located. *)

val collect_proxies : node -> Node_id.rel list list
(** Relative paths (from the node's parent) of every proxy inside the
    subtree, the node itself included if it is a proxy. *)
