(** Binary format of packed XML records (§3.1, Figure 3).

    A record holds a sequence of subtrees that share a common parent (the
    {e context node}). The header carries the context's absolute node ID,
    its path from the root (name IDs) and its in-scope namespaces, making
    every record self-contained when reached from an XPath value index.
    Structure nesting represents parent-child relationships: each element
    entry embeds its children; each non-leaf entry stores its child count
    and the byte length of its children section (so traversal can skip whole
    subtrees). A subtree packed into another record is represented by a
    proxy entry carrying only the subtree root's relative node ID. *)

type header = {
  context : Node_id.t;
  path : (int * int) list;
      (** (namespace URI id, local-name id) of each ancestor, root first;
          its length equals the context's level. *)
  ns_in_scope : (int * int) list; (** (prefix id, URI id) *)
  n_subtrees : int;
}

type entry =
  | Element of {
      rel : Node_id.rel;
      name : Rx_xml.Qname.t;
      attrs : Rx_xml.Token.attr list;
      ns_decls : (int * int) list;
      n_children : int;
      children_len : int;
      children_off : int; (** absolute offset of the children section *)
    }
  | Text of { rel : Node_id.rel; content : string; annot : Rx_xml.Typed_value.t option }
  | Comment of { rel : Node_id.rel; content : string }
  | Pi of { rel : Node_id.rel; target : string; data : string }
  | Proxy of { rel : Node_id.rel }

val entry_rel : entry -> Node_id.rel

val encode_header : Rx_util.Bytes_io.Writer.t -> header -> unit
val decode_header : string -> header * int
(** Returns the header and the offset of the first entry. *)

val encode_element_prefix :
  Rx_util.Bytes_io.Writer.t ->
  rel:Node_id.rel ->
  name:Rx_xml.Qname.t ->
  attrs:Rx_xml.Token.attr list ->
  ns_decls:(int * int) list ->
  n_children:int ->
  children_len:int ->
  unit
(** The element entry up to (excluding) its children bytes, which the caller
    appends. *)

val encode_text :
  Rx_util.Bytes_io.Writer.t ->
  rel:Node_id.rel -> annot:Rx_xml.Typed_value.t option -> string -> unit

val encode_comment : Rx_util.Bytes_io.Writer.t -> rel:Node_id.rel -> string -> unit

val encode_pi :
  Rx_util.Bytes_io.Writer.t -> rel:Node_id.rel -> target:string -> data:string -> unit

val encode_proxy : Rx_util.Bytes_io.Writer.t -> rel:Node_id.rel -> unit

val decode_entry : string -> int -> entry * int
(** [(entry, next)] where [next] is the offset just past the whole entry,
    including an element's children section — i.e. the next sibling. *)

val iter_children : string -> entry -> (entry -> unit) -> unit
(** Applies the callback to each direct child entry of an element. *)

val interval_endpoints : string -> Node_id.t list
(** Upper endpoints of the maximal document-order-contiguous node-ID
    intervals stored inline in this record — exactly the NodeID-index
    entries the record contributes (§3.1: three entries for the two records
    of Figure 3). *)

val min_node_id : string -> Node_id.t
(** Absolute ID of the first inline node (the [minNodeID] column). *)

val node_count : string -> int
(** Inline nodes in this record (elements, texts, comments, PIs —
    attributes and proxies excluded). *)
