type t = string
type rel = string

let root = ""
let is_root t = t = ""
let compare = String.compare
let equal = String.equal

let is_odd_byte c = Char.code c land 1 = 1
let is_even_byte c = Char.code c land 1 = 0

let is_valid_rel rel =
  let n = String.length rel in
  n > 0
  && is_even_byte rel.[n - 1]
  && (let ok = ref true in
      for i = 0 to n - 2 do
        if not (is_odd_byte rel.[i]) then ok := false
      done;
      !ok)
  && String.for_all (fun c -> c <> '\x00') rel

(* Split an absolute ID into components: each component extends through odd
   bytes and ends at the first even byte. *)
let components t =
  let n = String.length t in
  let rec loop start i acc =
    if i >= n then
      if start = i then List.rev acc
      else invalid_arg "Node_id.components: truncated component"
    else if is_even_byte t.[i] then
      loop (i + 1) (i + 1) (String.sub t start (i + 1 - start) :: acc)
    else loop start (i + 1) acc
  in
  loop 0 0 []

let is_valid t =
  match components t with
  | comps -> List.for_all is_valid_rel comps
  | exception Invalid_argument _ -> false

let append t rel = t ^ rel

let parent t =
  if is_root t then None
  else begin
    (* drop the final component: scan backwards past the trailing even byte
       through the odd extension bytes *)
    let n = String.length t in
    let i = ref (n - 2) in
    while !i >= 0 && is_odd_byte t.[!i] do
      decr i
    done;
    Some (String.sub t 0 (!i + 1))
  end

let level t = List.length (components t)

let prefix_at_level t n =
  let comps = components t in
  if List.length comps < n then invalid_arg "Node_id.prefix_at_level: too shallow";
  String.concat "" (List.filteri (fun i _ -> i < n) comps)

let last_component t =
  if is_root t then None
  else
    let p = Option.get (parent t) in
    Some (String.sub t (String.length p) (String.length t - String.length p))

let is_ancestor_or_self ~ancestor t =
  (* component-prefix test: prefix-free components make plain string prefix
     equivalent to component prefix *)
  String.length ancestor <= String.length t
  && String.sub t 0 (String.length ancestor) = ancestor

let is_ancestor ~ancestor t =
  String.length ancestor < String.length t && is_ancestor_or_self ~ancestor t

let first_child_rel = "\x02"

let next_sibling_rel rel =
  let n = String.length rel in
  let last = Char.code rel.[n - 1] in
  if last <= 0xfc then String.sub rel 0 (n - 1) ^ String.make 1 (Char.chr (last + 2))
  else
    (* 0xfe: no even byte above it; extend through odd 0xff *)
    String.sub rel 0 (n - 1) ^ "\xff\x02"

(* A component strictly smaller than [rel]. *)
let rec before_rel rel =
  let first = Char.code rel.[0] in
  if first >= 0x03 then "\x02"
  else if first = 0x02 then "\x01\x02"
  else (* 0x01: recurse into the tail *)
    "\x01" ^ before_rel (String.sub rel 1 (String.length rel - 1))

let between_rel a b =
  if String.compare a b >= 0 then invalid_arg "Node_id.between_rel: a >= b";
  (* find the first differing byte; since components are prefix-free and
     a < b, it exists within both *)
  let rec diff i =
    if i >= String.length a || i >= String.length b then
      invalid_arg "Node_id.between_rel: invalid components"
    else if a.[i] <> b.[i] then i
    else diff (i + 1)
  in
  let i = diff 0 in
  let prefix = String.sub a 0 i in
  let x = Char.code a.[i] and y = Char.code b.[i] in
  let m = if x land 1 = 0 then x + 2 else x + 1 in
  if m < y then prefix ^ String.make 1 (Char.chr m)
  else if x land 1 = 0 then begin
    if y = x + 2 then
      (* both even: a and b end here; slide in under the odd byte between *)
      prefix ^ String.make 1 (Char.chr (x + 1)) ^ "\x02"
    else
      (* y = x + 1, odd: descend into b's subspace, before its tail *)
      prefix
      ^ String.make 1 (Char.chr y)
      ^ before_rel (String.sub b (i + 1) (String.length b - i - 1))
  end
  else
    (* x odd, y = x + 1 even: extend within a's subspace, after its tail *)
    prefix
    ^ String.make 1 (Char.chr x)
    ^ next_sibling_rel (String.sub a (i + 1) (String.length a - i - 1))

let nth_sibling_rel n =
  if n < 0 then invalid_arg "Node_id.nth_sibling_rel: negative";
  (* 0..125 fit in one even byte (0x02..0xfc); beyond that, prepend 0xff
     extension bytes *)
  let rec loop n acc =
    if n < 126 then acc ^ String.make 1 (Char.chr (2 * (n + 1)))
    else loop (n - 126) (acc ^ "\xff")
  in
  loop n ""

let to_hex t =
  components t
  |> List.map (fun comp ->
         String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length comp) (fun i -> Char.code comp.[i]))))
  |> String.concat "."
